"""Should this machine enable EasyCrash for this application? (Sec. 8)

The paper's operator checklist: from the system MTBF, checkpoint cost
and the acceptable performance loss ts, derive the recomputability
threshold τ; plan EasyCrash for the application; measure its
recomputability; enable EasyCrash only when it clears τ.  This example
runs the full procedure for two applications on two machine profiles.

Run:  python examples/deployment_advisor.py
"""

from repro.apps.registry import get_factory
from repro.core.advisor import DeploymentScenario, advise
from repro.core.planner import EasyCrashConfig
from repro.system.mtbf import HOUR
from repro.util.tables import render_table

PLANNER = EasyCrashConfig(n_tests=150, seed=11, refinement_tests=80)

SCENARIOS = {
    "NVMe checkpoints (T_chk=32s)": DeploymentScenario(12 * HOUR, 32.0, ts=0.03),
    "HDD checkpoints (T_chk=3200s)": DeploymentScenario(12 * HOUR, 3200.0, ts=0.03),
}

APPS = ("kmeans", "EP")


def main() -> None:
    rows = []
    for app_name in APPS:
        factory = get_factory(app_name)
        for label, scenario in SCENARIOS.items():
            report = advise(factory, scenario, PLANNER, validation_tests=100)
            rows.append(
                [
                    app_name,
                    label,
                    f"{report.tau:.2f}",
                    f"{report.measured_recomputability:.2f}",
                    "EasyCrash" if report.use_easycrash else "plain C/R",
                    f"{report.efficiency_without:.3f}",
                    f"{report.efficiency_with:.3f}",
                ]
            )
    print(render_table(
        ["App", "Machine", "tau", "Measured R", "Decision", "Eff. C/R", "Eff. chosen"],
        rows,
        title="EasyCrash deployment decisions (MTBF 12h)",
    ))
    print("\nReading: kmeans clears tau easily and gains efficiency — most on")
    print("the slow-checkpoint machine; EP can never clear tau (its RNG")
    print("stream is unrecoverable stack state), so the advisor keeps plain")
    print("C/R, exactly the paper's Sec. 8 guidance.")


if __name__ == "__main__":
    main()

"""Quickstart: crash an HPC kernel on NVM and watch it recompute.

Runs the MG multigrid solver under NVCT (the crash tester), injects
random crashes, restarts each time from the data objects remaining in
NVM, and reports the paper's four response classes — first without any
persistence, then with EasyCrash-style flushing of the critical object.

Run:  python examples/quickstart.py
"""

from repro.apps.base import AppFactory
from repro.apps.mg import MG
from repro.nvct import CampaignConfig, PersistencePlan, run_campaign

N_TESTS = 40


def describe(label: str, result) -> None:
    fr = result.response_fractions()
    print(f"\n{label}")
    print(f"  recomputability (S1 rate): {result.recomputability():.0%}")
    for resp, frac in fr.items():
        print(f"  {resp.name} ({resp.value}): {frac:.0%}")


def main() -> None:
    factory = AppFactory(MG, n=33, nit=20, seed=2020, verify_rtol=1e-6)
    print("Benchmark: NPB-style MG, 33^3 grid, 20 V-cycles")
    print(f"Crash tests per campaign: {N_TESTS} (uniform over main-loop accesses)")

    baseline = run_campaign(
        factory, CampaignConfig(n_tests=N_TESTS, seed=1, plan=PersistencePlan.none())
    )
    describe("Without EasyCrash (only the loop iterator persisted):", baseline)

    protected = run_campaign(
        factory,
        CampaignConfig(n_tests=N_TESTS, seed=1, plan=PersistencePlan.at_loop_end(["u"])),
    )
    describe("Persisting the solution field u at every iteration end:", protected)

    gained = protected.recomputability() - baseline.recomputability()
    print(f"\nEasyCrash-style selective persistence transformed "
          f"{gained:.0%} of crashes into successful recomputation.")


if __name__ == "__main__":
    main()

"""Anatomy of a crash: NVCT's postmortem view of one failure.

Crashes the FT spectral kernel at a handful of random points and prints,
for each crash, where it happened (iteration/region), the data
inconsistent rate of every candidate object (the paper's Sec. 3 metric),
and whether the restart recomputed successfully — showing directly why
*when* and *what* was persisted decides recomputability.

Run:  python examples/crash_anatomy.py
"""

from repro.apps.registry import get_factory
from repro.nvct import CampaignConfig, PersistencePlan, run_campaign

N_TESTS = 14


def show(result, title: str) -> None:
    print(f"\n{title}")
    print(f"{'crash at':>22}  {'region':<8} " +
          " ".join(f"{n:>8}" for n in sorted(result.records[0].rates)) +
          "   outcome")
    for rec in result.records:
        rates = " ".join(f"{rec.rates[n]:>8.2f}" for n in sorted(rec.rates))
        print(f"  iter {rec.iteration:>3} @ {rec.counter:>10}  {rec.region:<8} "
              f"{rates}   {rec.response.name} ({rec.response.value})")
    print(f"  recomputability: {result.recomputability():.0%}")


def main() -> None:
    factory = get_factory("FT")
    print("Benchmark: NPB-style FT (cumulative spectral evolution + checksums)")
    print("Inconsistent rate = fraction of an object's bytes whose NVM copy")
    print("differs from the architectural state at the crash.")

    baseline = run_campaign(
        factory, CampaignConfig(n_tests=N_TESTS, seed=5, plan=PersistencePlan.none())
    )
    show(baseline, "Without persistence:")

    protected = run_campaign(
        factory,
        CampaignConfig(
            n_tests=N_TESTS, seed=5,
            plan=PersistencePlan.at_loop_end(["w", "sums"]),
        ),
    )
    show(protected, "Persisting w and the checksum history at iteration ends:")

    print("\nNote the pattern: crashes inside the evolve region (R1) stay fatal —")
    print("the cumulative multiply is replayed on partially persisted data —")
    print("while crashes elsewhere become exact replays. This is the paper's")
    print("Observation 3: where you persist (and where you crash) matters.")


if __name__ == "__main__":
    main()

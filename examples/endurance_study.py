"""NVM wear study: where do the writes land? (extension)

NVM endurance is the paper's second motivation for minimizing writes
(PCM-class cells endure ~1e8 writes).  This example compares the
per-block wear pattern of a plain run, an EasyCrash-protected run and a
checkpointed run of MG, and estimates relative device lifetimes with and
without ideal wear leveling.

Run:  python examples/endurance_study.py
"""

import numpy as np

from repro.apps.registry import get_factory
from repro.checkpoint.cr import simulate_checkpoint
from repro.nvct import PersistencePlan, Runtime
from repro.perf.endurance import analyze_wear
from repro.util.tables import render_table


def tracked_run(factory, plan, checkpoint=False):
    rt = Runtime(plan=plan)
    rt.track_write_counts = True
    app = factory.make(runtime=rt)
    with np.errstate(all="ignore"):
        app.run()
    if checkpoint:
        simulate_checkpoint(rt, [o.name for o in app.ws.heap.candidates()])
    rt.hierarchy.writeback_all()
    return analyze_wear(rt.heap)


def main() -> None:
    factory = get_factory("kmeans")
    variants = {
        "plain run": (PersistencePlan.none(persist_iterator=False), False),
        "EasyCrash (flush centroids)": (
            PersistencePlan.at_loop_end(["centroids", "inertia"]),
            False,
        ),
        "C/R (one checkpoint)": (PersistencePlan.none(persist_iterator=False), True),
    }
    rows = []
    for label, (plan, chk) in variants.items():
        prof = tracked_run(factory, plan, checkpoint=chk)
        rows.append(
            [
                label,
                prof.total_writes,
                prof.max_block_writes,
                f"{prof.hotspot_ratio:.1f}x",
                f"{prof.gini:.2f}",
                f"{prof.leveling_gain():.1f}x",
            ]
        )
    print(render_table(
        ["Variant", "NVM writes", "Hottest block", "Hotspot ratio", "Wear Gini",
         "Ideal-leveling gain"],
        rows,
        title="kmeans: NVM wear profile by persistence strategy",
    ))
    print("\nReading: flushing the tiny critical state every iteration puts")
    print("all the extra wear on a handful of lines (high hotspot ratio) —")
    print("exactly the pattern Start-Gap-style wear leveling (Qureshi et")
    print("al., cited by the paper) spreads out; bulk C/R copies distribute")
    print("their (much larger) write volume uniformly instead.")


if __name__ == "__main__":
    main()

"""Data-center view: when does EasyCrash pay off? (paper Sec. 7)

Sweeps the analytic system model over checkpoint costs, machine scales
and application recomputability, printing the efficiency of plain C/R vs
C/R + EasyCrash and the break-even threshold τ.

Run:  python examples/system_efficiency.py
"""

from repro.system import (
    SystemParams,
    efficiency_baseline,
    efficiency_easycrash,
    mtbf_for_nodes,
    recomputability_threshold,
)
from repro.system.mtbf import HOUR
from repro.util.tables import render_table

TS = 0.015  # EasyCrash runtime overhead


def main() -> None:
    rows = []
    for t_chk in (32.0, 320.0, 3200.0):
        p = SystemParams(mtbf_s=12 * HOUR, t_chk_s=t_chk)
        base = efficiency_baseline(p)
        rows.append(
            [
                f"{int(t_chk)}s",
                base,
                efficiency_easycrash(p, 0.5, TS),
                efficiency_easycrash(p, 0.82, TS),
                efficiency_easycrash(p, 0.95, TS),
                recomputability_threshold(p, TS),
            ]
        )
    print(render_table(
        ["T_chk", "no EC", "EC R=0.50", "EC R=0.82", "EC R=0.95", "tau"],
        rows,
        title="System efficiency, 100k nodes (MTBF 12 h), 10-year horizon",
    ))

    rows = []
    for nodes in (100_000, 200_000, 400_000):
        p = SystemParams(mtbf_s=mtbf_for_nodes(nodes), t_chk_s=3200.0)
        rows.append(
            [
                f"{nodes // 1000}k",
                f"{mtbf_for_nodes(nodes) / HOUR:.0f}h",
                efficiency_baseline(p),
                efficiency_easycrash(p, 0.82, TS),
            ]
        )
    print()
    print(render_table(
        ["Nodes", "MTBF", "no EC", "EC R=0.82"],
        rows,
        title="Scaling the machine (T_chk = 3200 s)",
    ))
    print("\nReading: the EasyCrash advantage grows with checkpoint cost and "
          "machine scale;\nτ is the minimum recomputability at which EasyCrash "
          "beats plain C/R.")


if __name__ == "__main__":
    main()

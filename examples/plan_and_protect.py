"""The full EasyCrash workflow on a workload: plan, then protect.

Runs the paper's four-step workflow on kmeans:

1. a baseline crash-test campaign;
2. Spearman-correlation selection of critical data objects;
3. code-region selection (knapsack over flush points x frequencies,
   bounded by the 3% runtime-overhead budget);
4. a production plan — validated here with a fresh campaign.

Run:  python examples/plan_and_protect.py
"""

from repro.apps.registry import get_factory
from repro.core import EasyCrashConfig, plan_easycrash
from repro.nvct import CampaignConfig, run_campaign

N_TESTS = 150


def main() -> None:
    factory = get_factory("kmeans")
    print("Planning EasyCrash for kmeans "
          f"({N_TESTS}-test campaigns, ts = 3%)...")
    report = plan_easycrash(
        factory, EasyCrashConfig(n_tests=N_TESTS, seed=11, refinement_tests=80)
    )

    print("\nStep 1 — baseline campaign:")
    print(f"  recomputability without EasyCrash: "
          f"{report.baseline_campaign.recomputability():.0%}")

    print("\nStep 2 — critical data objects (Spearman rank correlation):")
    for name, corr in sorted(report.selection.correlations.items()):
        mark = "*" if name in report.critical_objects else " "
        print(f"  {mark} {name:12s} rho={corr.rho:+.3f}  p={corr.pvalue:.2e}")
    print(f"  selected: {', '.join(report.critical_objects) or '(none)'}")

    print("\nStep 3 — flush points (region/frequency knapsack):")
    sel = report.region_selection
    if sel is None:
        print("  no profitable flush points — EasyCrash degenerates to C/R")
    else:
        for choice in sel.choices:
            where = "iteration end" if choice.region == "__loop_end__" else choice.region
            print(f"  flush at {where}, every {choice.frequency} execution(s) "
                  f"(est. overhead {choice.cost_share:.1%})")
        print(f"  predicted recomputability: {sel.predicted_recomputability:.0%} "
              f"(budget used: {sel.total_cost_share:.1%} of {sel.ts:.0%})")

    print("\nStep 4 — production validation (fresh campaign):")
    check = run_campaign(
        factory, CampaignConfig(n_tests=N_TESTS, seed=77, plan=report.plan)
    )
    print(f"  measured recomputability with EasyCrash: {check.recomputability():.0%}")
    print(f"  mean extra iterations among S2 tests: "
          f"{check.mean_extra_iterations():.1f}")


if __name__ == "__main__":
    main()

"""Multi-threaded crash testing (extension).

Runs the data-parallel kmeans on the MESI-lite multi-core model: each
simulated core streams its shard of the points through a private L1 over
a shared LLC.  A crash loses *every* core's unflushed dirty lines; the
campaign shows the paper's Sec. 4.1 observation that multi-threaded runs
reach the same conclusions as single-threaded ones.

Run:  python examples/multicore_crash.py
"""

from repro.apps.base import AppFactory
from repro.apps.parallel_kmeans import ParallelKMeans
from repro.nvct import CampaignConfig, PersistencePlan, run_campaign

N_TESTS = 30


def main() -> None:
    factory = AppFactory(ParallelKMeans, n_points=8192, n_features=8, k=12, seed=2020)
    plans = {
        "no persistence": PersistencePlan.none(),
        "critical objects flushed": PersistencePlan.at_loop_end(
            ["centroids", "inertia", "assign"]
        ),
    }
    print("Data-parallel kmeans under crash tests (MESI-lite coherence)\n")
    print(f"{'configuration':<42s} recomputability")
    for cores in (1, 2, 4):
        for label, plan in plans.items():
            cfg = CampaignConfig(n_tests=N_TESTS, seed=7, plan=plan, n_cores=cores)
            result = run_campaign(factory, cfg)
            print(f"  {cores} core(s), {label:<32s} {result.recomputability():>6.0%}")
    print("\nSame conclusion at every core count: the tiny critical state")
    print("(centroids) decides recomputability — paper Sec. 4.1: 'the")
    print("conclusions we draw from multiple threads are the same'.")


if __name__ == "__main__":
    main()

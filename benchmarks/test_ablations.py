"""Ablations of EasyCrash's design choices (DESIGN.md Sec. 5).

Each ablation isolates one ingredient of the design and shows what it
buys: flush-frequency interpolation (Eq. 5), correlation-based object
selection, the crash-time distribution, and the flush instruction choice
(CLWB vs CLFLUSHOPT).
"""

import numpy as np
import pytest
from conftest import emit

from repro.harness.experiments import ExperimentReport
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.plan import PersistencePlan
from repro.perf.costmodel import CostModel
from repro.util.rng import derive_rng


def test_ablation_flush_frequency(benchmark, ctx, results_dir):
    """Eq. 5's frequency dimension: recomputability vs flush frequency
    should interpolate between the baseline and the every-iteration
    maximum — the knob the knapsack uses under tight budgets."""

    def run():
        rows = []
        name = "kmeans"
        crit = list(ctx.plan_report(name).critical_objects)
        base = ctx.plan_report(name).baseline_campaign.recomputability()
        maxr = None
        for x in (1, 2, 4, 8):
            camp = ctx.campaign(
                name,
                PersistencePlan.at_loop_end(crit, frequency=x),
                f"abl-freq-{x}",
            )
            r = camp.recomputability()
            if x == 1:
                maxr = r
            predicted = (maxr - base) / x + base
            rows.append([f"every {x} iteration(s)", r, predicted])
        rows.append(["no flushing", base, base])
        return ExperimentReport(
            "Ablation frequency",
            "kmeans recomputability vs flush frequency (measured vs Eq. 5)",
            ["Frequency", "Measured", "Eq. 5 prediction"],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    measured = [row[1] for row in report.rows[:4]]
    assert measured == sorted(measured, reverse=True)  # monotone in x
    # Eq. 5 is a usable approximation (the paper relies on it).
    for row in report.rows[:4]:
        assert abs(row[1] - row[2]) < 0.30


def test_ablation_selection_strategy(benchmark, ctx, results_dir):
    """Correlation-based selection vs naive strategies at equal effort."""

    def run():
        name = "IS"
        report = ctx.plan_report(name)
        crit = list(report.critical_objects)
        heap = ctx.factory(name).make(None).ws.heap
        candidates = [o.name for o in heap.candidates()]
        rng = derive_rng(7, "ablation-selection")
        random_pick = list(rng.choice(candidates, size=min(len(crit), len(candidates)), replace=False))
        largest = sorted(candidates, key=lambda n: heap.objects[n].nbytes, reverse=True)[: len(crit)]
        rows = []
        for label, objs in (
            ("EasyCrash selection", crit),
            ("random objects", random_pick),
            ("largest objects", largest),
        ):
            camp = ctx.campaign(
                name, PersistencePlan.at_loop_end(objs), f"abl-sel-{label}"
            )
            size = sum(heap.objects[n].nbytes for n in objs)
            rows.append([label, ", ".join(objs), size, camp.recomputability()])
        return ExperimentReport(
            "Ablation selection",
            "IS recomputability: what you flush matters more than how much",
            ["Strategy", "Objects", "Bytes flushed/op", "Recomputability"],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    by = {r[0]: r for r in report.rows}
    ec = by["EasyCrash selection"]
    largest = by["largest objects"]
    # The selected (tiny) objects beat the largest-objects heuristic,
    # which burns orders of magnitude more flush traffic.
    assert ec[3] >= largest[3] - 0.05
    assert ec[2] < largest[2]


def test_ablation_crash_distribution(benchmark, ctx, results_dir):
    """Sensitivity of measured recomputability to the crash-time
    distribution (the paper assumes discrete uniform)."""

    def run():
        name = "MG"
        rows = []
        for dist in ("uniform", "early", "late"):
            cfg = CampaignConfig(
                n_tests=ctx.settings.n_tests,
                seed=ctx.settings.seed + 1,
                plan=PersistencePlan.none(),
                distribution=dist,
            )
            camp = run_campaign(ctx.factory(name), cfg)
            rows.append([dist, camp.recomputability()])
        return ExperimentReport(
            "Ablation crash distribution",
            "MG baseline recomputability under different crash-time distributions",
            ["Distribution", "Recomputability"],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    vals = {r[0]: r[1] for r in report.rows}
    assert all(0.0 <= v <= 1.0 for v in vals.values())


def test_ablation_flush_instruction(benchmark, ctx, results_dir):
    """CLWB (retain line) vs CLFLUSHOPT (invalidate): same NVM image,
    different cost — the reason the paper's estimator doubles CLFLUSH
    costs and modern persistence code prefers CLWB."""

    def run():
        name = "MG"
        crit = list(ctx.plan_report(name).critical_objects)
        cm = CostModel()
        baseline = ctx.measure(name, ctx.plan_baseline_no_iterator(), "t4-baseline")
        rows = []
        for label, invalidate in (("CLWB", False), ("CLFLUSHOPT", True)):
            plan = PersistencePlan(
                objects=tuple(crit), at_iteration_end=True, invalidate=invalidate
            )
            stats = ctx.measure(name, plan, f"abl-instr-{label}")
            camp = ctx.campaign(name, plan, f"abl-instr-{label}")
            rows.append(
                [
                    label,
                    camp.recomputability(),
                    cm.normalized_time(stats.memory, baseline.memory, invalidate=invalidate),
                    stats.memory.nvm_fills,
                ]
            )
        return ExperimentReport(
            "Ablation flush instruction",
            "MG under CLWB vs CLFLUSHOPT persistence",
            ["Instruction", "Recomputability", "Norm. time", "NVM fills"],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    by = {r[0]: r for r in report.rows}
    # Equal protection...
    assert abs(by["CLWB"][1] - by["CLFLUSHOPT"][1]) < 0.15
    # ...but invalidation costs more (reloads -> more fills, more time).
    assert by["CLFLUSHOPT"][3] >= by["CLWB"][3]
    assert by["CLFLUSHOPT"][2] >= by["CLWB"][2] - 1e-9


def test_ablation_crash_model(benchmark, ctx, results_dir):
    """Persistence-domain ablation: how much of the paper's inconsistency
    is the whole-cache-loss assumption itself.  Survivor overlays
    guarantee eadr <= adr <= whole-cache-loss exactly (per crash point
    and per object), so the aggregate table must be monotone too."""

    def run():
        models = ("whole-cache-loss", "adr", "eadr", "torn")
        rows = []
        for name in ("EP", "kmeans", "MG"):
            rates = {}
            recomp = {}
            for model in models:
                cfg = CampaignConfig(
                    n_tests=ctx.settings.n_tests,
                    seed=ctx.settings.seed + 1,
                    plan=PersistencePlan.none(),
                    crash_model=model,
                )
                camp = run_campaign(ctx.factory(name), cfg)
                per_obj = camp.weighted_object_rates()
                rates[model] = sum(per_obj.values()) / max(1, len(per_obj))
                recomp[model] = camp.recomputability()
            rows.append(
                [name]
                + [rates[m] for m in models]
                + [recomp["whole-cache-loss"], recomp["eadr"]]
            )
        return ExperimentReport(
            "Ablation crash model",
            "mean inconsistent rate by crash model (no persistence plan)",
            [
                "App",
                "whole-cache-loss",
                "adr",
                "eadr",
                "torn",
                "Recomp (wcl)",
                "Recomp (eadr)",
            ],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    for row in report.rows:
        app, wcl, adr, eadr, torn = row[0], row[1], row[2], row[3], row[4]
        assert 0.0 <= eadr <= adr <= wcl <= 1.0, (app, eadr, adr, wcl)
        assert torn <= wcl + 1e-12, (app, torn, wcl)
        # A surviving persistence domain cannot hurt recomputability.
        assert row[6] >= row[5] - 1e-12, (app, row[5], row[6])


def test_recovery_mix(benchmark, ctx, results_dir):
    """Multi-node recovery mix: how often a crashed node restarts from its
    NVM image (acceptance S1/S2) vs rolling the cluster back to the last
    checkpoint, per burst size and crash model.  MG is the interesting
    application here — its measured responses genuinely mix S1 and S4, so
    the orchestrator exercises both paths."""
    from repro.cluster.emulator import run_cluster_campaign
    from repro.system.efficiency import SystemParams, efficiency_measured_multinode
    from repro.system.mtbf import HOUR

    def run():
        name = "MG"
        nodes = 4
        p = SystemParams(mtbf_s=12 * HOUR, t_chk_s=320.0)
        rows = []
        for model in ("whole-cache-loss", "adr", "eadr"):
            cfg = CampaignConfig(
                n_tests=ctx.settings.n_tests,
                seed=ctx.settings.seed + 1,
                plan=PersistencePlan.none(),
                crash_model=model,
                nodes=nodes,
                correlation=0.3,
            )
            result = run_cluster_campaign(ctx.factory(name), cfg)
            mix = result.log.mix()
            decided = mix["nvm_restart"] + mix["rollback"]
            r = mix["nvm_restart"] / decided if decided else 0.0
            eff = efficiency_measured_multinode(p, mix, 0.015, nodes)
            for k, row in result.log.by_burst_size().items():
                rows.append(
                    [model, k, row["bursts"], row["nvm_restart"],
                     row["rollback"], row["peers_rewound"], "", ""]
                )
            rows.append(
                [model, "all", len(result.log.bursts), mix["nvm_restart"],
                 mix["rollback"], sum(b.peers_rewound for b in result.log.bursts),
                 r, eff]
            )
        return ExperimentReport(
            "Recovery mix",
            f"MG on {nodes} emulated nodes, correlation 0.3: NVM restart vs "
            "checkpoint rollback per burst size and crash model",
            ["Crash model", "Burst size", "Bursts", "NVM restarts",
             "Rollbacks", "Peers rewound", "Measured R", "Efficiency"],
            rows,
            notes="R = NVM-restart fraction of recovery decisions; efficiency "
            "via efficiency_measured_multinode (T_chk=320 s, MTBF 12 h, ts=1.5%)",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    totals = {r[0]: r for r in report.rows if r[1] == "all"}
    assert set(totals) == {"whole-cache-loss", "adr", "eadr"}
    for model, row in totals.items():
        # every victim got exactly one decision, and MG mixes both kinds
        assert row[3] + row[4] > 0, model
        assert 0.0 <= row[6] <= 1.0 and 0.0 <= row[7] <= 1.0, model
    assert totals["whole-cache-loss"][4] > 0  # rollbacks happen under wcl
    # A friendlier persistence domain can only help the restart fraction.
    assert totals["eadr"][6] >= totals["whole-cache-loss"][6] - 1e-12

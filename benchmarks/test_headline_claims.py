"""Regenerates the paper's headline summary claims end to end."""

from conftest import emit

from repro.harness import experiments


def test_headline(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.headline_claims(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    vals = {r[0]: r[1] for r in report.rows}
    base = vals["avg recomputability w/o EasyCrash (paper: 28%)"]
    ec = vals["avg recomputability with EasyCrash (paper: 82%)"]
    transformed = vals["failing crashes transformed (paper: 54%)"]
    overhead = vals["avg runtime overhead (paper: 1.5%)"]
    reduction = vals["extra-NVM-write reduction vs C/R (paper: 44%)"]
    gain = vals["efficiency gain @ T_chk=3200s (paper: up to 24%)"]
    # Shape bands around the paper's headline numbers.
    assert 0.1 < base < 0.6
    assert ec > 0.6
    assert transformed > 0.35
    assert overhead < 0.06
    assert reduction > 0.2
    assert 0.05 < gain < 0.45

"""Regenerates Figure 6: the full EasyCrash result."""

from conftest import emit

from repro.harness import experiments


def test_fig6(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig6_easycrash(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    rows = {r[0]: r for r in report.rows}
    avg = rows["Average"]
    # Paper headline: 28% -> 82% on average.  Shape targets:
    assert avg[3] > avg[1] + 0.3  # EasyCrash is a large improvement
    assert avg[3] > 0.6  # high absolute recomputability
    # EasyCrash tracks the (much more expensive) best configuration.
    assert avg[4] >= avg[3] - 1e-9
    assert avg[4] - avg[3] < 0.25
    # Note: the paper's "verified" methodology (consistent copies taken at
    # the crash instant) sits slightly *above* NVCT there; under our
    # trajectory-exact verification a mid-iteration consistent copy can be
    # worse than a flushed iteration boundary, so VFY is only required to
    # stay in a sane band here (divergence documented in EXPERIMENTS.md).
    assert avg[5] > 0.3

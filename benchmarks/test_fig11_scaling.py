"""Regenerates Figure 11: efficiency scaling with machine size (CG)."""

from conftest import emit

from repro.harness import experiments


def test_fig11(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig11_scaling(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    rows = {r[0]: r for r in report.rows}
    for t_chk in (32, 3200):
        gains = [
            rows[f"T_chk={t_chk}s, {n}k nodes"][2] - rows[f"T_chk={t_chk}s, {n}k nodes"][1]
            for n in (100, 200, 400)
        ]
        # With EasyCrash the system always does at least as well, and the
        # advantage grows with scale (paper Fig. 11).
        assert all(g >= -1e-9 for g in gains)
        assert gains[2] >= gains[0]

"""Regenerates Table 4: runtime overhead of persistence."""

from conftest import emit

from repro.harness import experiments


def test_table4(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.table4_overhead(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    rows = {r[0]: r for r in report.rows}
    avg = rows["Average"]
    # Shape: EasyCrash's overhead is small and far below both the
    # no-selection baseline and the best-recomputability configuration.
    assert avg[3] < 1.06  # paper: 1.015
    assert avg[4] > avg[3]  # persist-all costs more than EasyCrash
    assert avg[5] > avg[3]  # best costs more than EasyCrash
    # Every app respects the ts=3% bound within modeling slack.
    for name, row in rows.items():
        if name != "Average":
            assert row[3] < 1.08, f"{name} exceeds the overhead bound"

"""Regenerates Figure 9: NVM write traffic of EasyCrash vs C/R."""

from conftest import emit

from repro.harness import experiments


def test_fig9(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig9_nvm_writes(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    avg = [r for r in report.rows if r[0] == "Average"][0]
    ec, cr_crit, cr_all = avg[1], avg[2], avg[3]
    # Shape: EasyCrash adds fewer extra writes than traditional C/R of all
    # data objects (the paper's headline comparison: +16% vs +50%).  At
    # mini-app scale the LLC:footprint ratio is ~20x larger than the
    # paper's, which inflates flush-induced writes for the small hot apps
    # (the paper itself notes EC "is not beneficial" for small objects),
    # so the critical-object C/R variant is not strictly dominated here.
    assert ec < cr_all
    assert cr_crit <= cr_all + 1e-9
    assert ec - 1.0 < 0.6  # modest extra writes over the plain run

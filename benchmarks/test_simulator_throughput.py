"""Throughput of the NVCT simulation engine itself.

These are classic pytest-benchmark timings (not paper figures): blocks
per second through the vectorized cache models.  They guard against
performance regressions that would make thousand-test campaigns
impractical.
"""

import numpy as np
import pytest

from repro.memsim.config import CacheLevelConfig, HierarchyConfig
from repro.memsim.hierarchy import CacheHierarchy
from repro.memsim.multicore import MulticoreHierarchy

STREAM_BLOCKS = 200_000


def stream(h):
    # 20 sweeps over a 20k-block array (2x the default LLC): a realistic
    # mini-app access mix with steady capacity evictions.
    for i in range(20):
        h.access(0, 20_000, write=(i % 2 == 0))


def test_single_level_stream_throughput(benchmark):
    def run():
        h = CacheHierarchy(HierarchyConfig.scaled_llc())
        stream(h)
        return h.stats.nvm_writes

    writes = benchmark(run)
    assert writes > 0


def test_three_level_stream_throughput(benchmark):
    def run():
        h = CacheHierarchy(HierarchyConfig.scaled_three_level())
        stream(h)
        return h.stats.nvm_writes

    writes = benchmark(run)
    assert writes > 0


def test_multicore_stream_throughput(benchmark):
    def run():
        h = MulticoreHierarchy(
            4,
            CacheLevelConfig("L1", 32 * 1024, 8),
            CacheLevelConfig("LLC", 640 * 1024, 10),
        )
        for i in range(20):
            h.access(i % 4, 0, 20_000, write=(i % 2 == 0))
        return h.stats.nvm_writes

    writes = benchmark(run)
    assert writes > 0


def test_flush_throughput(benchmark):
    h = CacheHierarchy(HierarchyConfig.scaled_llc())
    h.access(0, 10_000, write=True)

    def run():
        return h.flush(0, 10_000)

    issued, _dirty = benchmark(run)
    assert issued == 10_000


def test_scatter_throughput(benchmark):
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 10_000, size=20_000)

    def run():
        h = CacheHierarchy(HierarchyConfig.scaled_llc())
        h.access_blocks(blocks, write=True)
        return h.stats.nvm_writes

    benchmark(run)

"""Regenerates Figure 5: selected vs all-candidate persistence."""

import numpy as np
from conftest import emit

from repro.harness import experiments


def test_fig5(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig5_selection_strategies(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    # Shape: persisting the selected objects recovers almost all of the
    # all-candidates recomputability (paper: within 3%; we allow slack for
    # the smaller campaigns).
    diffs = [row[3] - row[2] for row in report.rows if row[0] != "EP"]
    assert float(np.mean(diffs)) < 0.10
    # And selection is far better than no persistence on average.
    gains = [row[2] - row[1] for row in report.rows]
    assert float(np.mean(gains)) > 0.2

"""Regenerates Table 1: benchmark characteristics."""

from conftest import emit

from repro.harness import experiments


def test_table1(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.table1_characteristics(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    # Shape assertions: all 11 benchmarks with their paper region counts.
    apps = {row[0]: row for row in report.rows}
    assert len(apps) == 11
    assert apps["CG"][1] == 6
    assert apps["MG"][1] == 4
    assert apps["BT"][1] == 15
    assert apps["SP"][1] == 16
    assert apps["IS"][1] == 8
    # IS's critical object is tiny; FT/botsspar's spans most candidates.
    assert "KB" in apps["IS"][5] or apps["IS"][5].endswith("B")

"""Regenerates Figure 10: end-to-end system efficiency (MTBF 12 h)."""

from conftest import emit

from repro.harness import experiments


def test_fig10(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig10_system_efficiency(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    rows = {r[0]: r for r in report.rows}
    # Shape: the EasyCrash advantage grows with checkpoint cost
    # (paper: 2% / 3% / 15% average gain at 32/320/3200 s).
    gains = [rows[f"T_chk={t}s"][4] - rows[f"T_chk={t}s"][1] for t in (32, 320, 3200)]
    assert gains[0] >= -1e-9
    assert gains[2] > gains[1] > gains[0] - 1e-9
    assert gains[2] > 0.05
    # tau shrinks as checkpoints get more expensive.
    taus = [rows[f"T_chk={t}s"][5] for t in (32, 320, 3200)]
    assert taus[0] > taus[1] > taus[2]

"""Regenerates Figure 3: post-crash response classes without persistence."""

from conftest import emit

from repro.harness import experiments


def test_fig3(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig3_responses(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    rows = {r[0]: r for r in report.rows}
    # Shape: different applications have very different recomputability
    # (Observation 1); EP/botsspar near zero, SP high.
    assert rows["EP"][1] < 0.1
    assert rows["botsspar"][1] < 0.1
    assert rows["SP"][1] > 0.5
    # kmeans is dominated by extra-iteration recoveries (S2).
    assert rows["kmeans"][2] > 0.5
    # IS cannot recompute (interruptions/verification failures).
    assert rows["IS"][3] + rows["IS"][4] > 0.8

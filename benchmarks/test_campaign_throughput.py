"""Throughput of the campaign layer (regression guard).

Conventional pytest-benchmark timings for the crash-test campaign
pipeline, the analogue of ``test_simulator_throughput.py`` one layer up:
campaign-layer regressions (snapshotting, classification dispatch, the
parallel engine's chunking/IPC overhead) are tracked like cache-simulator
regressions.

``test_parallel_classification_speedup`` additionally asserts that
fanning classification out over workers beats serial wall-clock — only
on runners with enough CPUs to make that physically possible.
"""

import os
import time

import numpy as np
import pytest

from repro.apps.registry import get_factory
from repro.nvct.campaign import CampaignConfig, _classify, run_campaign
from repro.nvct.parallel import classify_snapshots
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import CountingRuntime, Runtime

APP = "MG"  # restarts re-run a real solve: classification dominates
N_TESTS = 16


@pytest.fixture(scope="module")
def snapshots():
    """One instrumented execution providing every snapshot to classify."""
    factory = get_factory(APP)
    golden, _ = factory.golden()
    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    points = np.linspace(
        (counting.window_begin or 0) + 1, counting.counter, N_TESTS, dtype=np.int64
    )
    cfg = CampaignConfig(plan=PersistencePlan.none())
    rt = Runtime(plan=cfg.plan, crash_points=points)
    factory.make(runtime=rt).run()
    return factory, rt.snapshots, golden.iterations, cfg


def test_serial_classification_throughput(benchmark, snapshots):
    factory, snaps, golden_iterations, cfg = snapshots

    def run():
        return [_classify(factory, s, golden_iterations, cfg) for s in snaps]

    records = benchmark.pedantic(run, rounds=3)
    assert len(records) == N_TESTS


def test_parallel_classification_throughput(benchmark, snapshots):
    factory, snaps, golden_iterations, cfg = snapshots
    jobs = max(2, min(4, os.cpu_count() or 1))

    def run():
        return classify_snapshots(
            factory, snaps, golden_iterations, cfg, jobs=jobs
        )

    records = benchmark.pedantic(run, rounds=3)
    assert len(records) == N_TESTS


def test_campaign_end_to_end_throughput(benchmark):
    def run():
        return run_campaign(
            get_factory("EP"), CampaignConfig(n_tests=10, seed=0), jobs=1
        )

    result = benchmark.pedantic(run, rounds=3)
    assert result.n_tests == 10


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup assertion needs >= 4 CPUs to be physically meaningful",
)
def test_parallel_classification_speedup(snapshots):
    factory, snaps, golden_iterations, cfg = snapshots

    t0 = time.perf_counter()
    serial = [_classify(factory, s, golden_iterations, cfg) for s in snaps]
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = classify_snapshots(factory, snaps, golden_iterations, cfg, jobs=4)
    t_parallel = time.perf_counter() - t0

    assert serial == parallel  # the speedup is free: results are bit-identical
    # Loose bound (pool startup + IPC amortized over N_TESTS real solves):
    # jobs=4 must clearly beat serial, even if far from 4x.
    assert t_parallel < t_serial * 0.8, (
        f"parallel {t_parallel:.2f}s not faster than serial {t_serial:.2f}s"
    )

"""Throughput of the campaign layer (regression guard).

Conventional pytest-benchmark timings for the crash-test campaign
pipeline, the analogue of ``test_simulator_throughput.py`` one layer up:
campaign-layer regressions (snapshotting, classification dispatch, the
parallel engine's chunking/IPC overhead) are tracked like cache-simulator
regressions.

``test_parallel_classification_speedup`` additionally asserts that
fanning classification out over workers beats serial wall-clock — only
on runners with enough CPUs to make that physically possible.
"""

import os
import time

import numpy as np
import pytest

from repro.apps.base import AppFactory, Application
from repro.apps.registry import get_factory
from repro.nvct.campaign import CampaignConfig, _classify, run_campaign
from repro.nvct.parallel import classify_snapshots
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import CountingRuntime, Runtime

APP = "MG"  # restarts re-run a real solve: classification dominates
N_TESTS = 16


@pytest.fixture(scope="module")
def snapshots():
    """One instrumented execution providing every snapshot to classify."""
    factory = get_factory(APP)
    golden, _ = factory.golden()
    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    points = np.linspace(
        (counting.window_begin or 0) + 1, counting.counter, N_TESTS, dtype=np.int64
    )
    cfg = CampaignConfig(plan=PersistencePlan.none())
    rt = Runtime(plan=cfg.plan, crash_points=points)
    factory.make(runtime=rt).run()
    return factory, rt.snapshots, golden.iterations, cfg


def test_serial_classification_throughput(benchmark, snapshots):
    factory, snaps, golden_iterations, cfg = snapshots

    def run():
        return [_classify(factory, s, golden_iterations, cfg) for s in snaps]

    records = benchmark.pedantic(run, rounds=3)
    assert len(records) == N_TESTS


def test_parallel_classification_throughput(benchmark, snapshots):
    factory, snaps, golden_iterations, cfg = snapshots
    jobs = max(2, min(4, os.cpu_count() or 1))

    def run():
        return classify_snapshots(
            factory, snaps, golden_iterations, cfg, jobs=jobs
        )

    records = benchmark.pedantic(run, rounds=3)
    assert len(records) == N_TESTS


def test_campaign_end_to_end_throughput(benchmark):
    def run():
        return run_campaign(
            get_factory("EP"), CampaignConfig(n_tests=10, seed=0), jobs=1
        )

    result = benchmark.pedantic(run, rounds=3)
    assert result.n_tests == 10


# -- golden-pass snapshot production ------------------------------------------
#
# The snapshot-production phase is the campaign's other scaling axis: the
# legacy path pays O(n_points x heap) in full-image copies and diffs during
# the instrumented run, the golden pass O(heap + writeback_traffic) via
# delta replay.  A streaming app whose per-iteration working set is a
# quarter of a 3 MB candidate array reproduces the regime the paper's
# mini-apps live in (heap larger than the per-point mutation set), where
# the asymptotic gap is visible at realistic point counts.

_STREAM_SIZE = 384 * 1024  # doubles: 3 MB candidate heap
_GOLDEN_SCALE = {"quick": (2, 160), "default": (2, 256), "paper": (3, 384)}


class _StreamApp(Application):
    """Sliding-window streaming update over a large persistent array."""

    NAME = "bench-golden-stream"
    REGIONS = ("sweep",)
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, size: int = _STREAM_SIZE, nit: int = 2, **kw):
        super().__init__(runtime, size=size, nit=nit, **kw)
        self.size = size
        self.nit = nit

    def nominal_iterations(self):
        return self.nit

    def _allocate(self):
        self.field = self.ws.array("field", (self.size,), candidate=True)

    def _initialize(self):
        self.field.np[...] = 0.0

    def _iterate(self, it):
        q = self.size // 4
        lo = (it % 4) * q
        with self.ws.region("sweep"):
            self.field.update(slice(lo, lo + q), lambda a: np.add(a, 1.0, out=a))
        return False

    def reference_outcome(self):
        return {"sum": float(self.field.np.sum())}

    def verify(self):
        if self.golden is None:
            return True
        return self.reference_outcome()["sum"] == self.golden["sum"]


@pytest.fixture(scope="module")
def stream_setup():
    nit, n_points = _GOLDEN_SCALE.get(
        os.environ.get("REPRO_BENCH_SCALE", "default"), _GOLDEN_SCALE["default"]
    )
    factory = AppFactory(_StreamApp, nit=nit)
    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    points = np.unique(
        np.linspace(
            (counting.window_begin or 0) + 1, counting.counter, n_points,
            dtype=np.int64,
        )
    )
    assert points.size >= 100  # the regime the golden pass is specified for
    return factory, points


def _produce_images(factory, points, golden: bool) -> int:
    """One instrumented run + materialization of every crash image."""
    rt = Runtime(plan=PersistencePlan.none(), crash_points=points, golden=golden)
    factory.make(runtime=rt).run()
    if golden:
        return sum(1 for _ in rt.golden_store().snapshots())
    return len(rt.snapshots)


def test_snapshot_production_legacy(benchmark, stream_setup):
    factory, points = stream_setup
    n = benchmark.pedantic(lambda: _produce_images(factory, points, False), rounds=3)
    assert n == points.size


def test_snapshot_production_golden(benchmark, stream_setup):
    factory, points = stream_setup
    n = benchmark.pedantic(lambda: _produce_images(factory, points, True), rounds=3)
    assert n == points.size


def test_golden_snapshot_speedup(stream_setup):
    """The golden pass must beat legacy snapshot production >= 5x at
    >= 100 crash points (measured margin is 10-18x across scales)."""
    factory, points = stream_setup
    _produce_images(factory, points, True)  # warm both paths
    _produce_images(factory, points, False)

    t0 = time.perf_counter()
    _produce_images(factory, points, False)
    t_legacy = time.perf_counter() - t0

    t0 = time.perf_counter()
    _produce_images(factory, points, True)
    t_golden = time.perf_counter() - t0

    assert t_golden * 5 < t_legacy, (
        f"golden pass {t_golden:.3f}s not >=5x faster than legacy "
        f"{t_legacy:.3f}s at {points.size} crash points"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup assertion needs >= 4 CPUs to be physically meaningful",
)
def test_parallel_classification_speedup(snapshots):
    factory, snaps, golden_iterations, cfg = snapshots

    t0 = time.perf_counter()
    serial = [_classify(factory, s, golden_iterations, cfg) for s in snaps]
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = classify_snapshots(factory, snaps, golden_iterations, cfg, jobs=4)
    t_parallel = time.perf_counter() - t0

    assert serial == parallel  # the speedup is free: results are bit-identical
    # Loose bound (pool startup + IPC amortized over N_TESTS real solves):
    # jobs=4 must clearly beat serial, even if far from 4x.
    assert t_parallel < t_serial * 0.8, (
        f"parallel {t_parallel:.2f}s not faster than serial {t_serial:.2f}s"
    )

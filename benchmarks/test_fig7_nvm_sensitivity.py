"""Regenerates Figure 7: performance under emulated NVM configurations."""

from conftest import emit

from repro.harness import experiments


def test_fig7(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig7_nvm_sensitivity(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    avg = [r for r in report.rows if r[0] == "Average"][0]
    # Columns: EC/no-EC for 4x lat, 8x lat, 1/6 bw, 1/8 bw.
    ec4, no4, ec8, no8, ec6, no6, ec8b, no8b = avg[1:]
    # EasyCrash stays cheap on every configuration (paper: <9%).
    for v in (ec4, ec8, ec6, ec8b):
        assert v < 1.15
    # The persist-everything baseline is much worse on every configuration,
    # and worst on the latency-bound points (paper: 48%/62% vs 21%/22%):
    # flushes are synchronous, so latency multipliers hit them hardest.
    assert no4 > ec4 and no8 > ec8 and no6 > ec6 and no8b > ec8b
    assert no8 > no4
    assert no8 > no8b

"""Regenerates Figure 8: performance on the Optane DC PMM preset."""

from conftest import emit

from repro.harness import experiments


def test_fig8(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig8_optane(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    avg = [r for r in report.rows if r[0] == "Average"][0]
    ec, no_ec = avg[1], avg[2]
    # Paper: EasyCrash 6% overhead on Optane, 50% without it.
    assert ec < 1.15
    assert no_ec > ec + 0.05

"""Regenerates Figure 4: MG sensitivity to which object / which region."""

from conftest import emit

from repro.harness import experiments


def test_fig4a_objects(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig4_mg_objects(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    vals = {row[0]: row[1] for row in report.rows}
    # Observation 2: persisting u helps much more than persisting r.
    assert vals["persist u"] > vals["none (iterator only)"] + 0.2
    assert vals["persist r"] < vals["persist u"] - 0.2


def test_fig4b_regions(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: experiments.fig4_mg_regions(ctx), rounds=1, iterations=1
    )
    emit(report, results_dir)
    vals = {row[0]: row[1] for row in report.rows}
    base = vals["none"]
    per_region = {k: v for k, v in vals.items() if k.startswith("persist u at R")}
    # Observation 3: region choice matters — the best and worst single
    # regions differ substantially.
    assert max(per_region.values()) - min(per_region.values()) > 0.15
    assert max(per_region.values()) > base + 0.1

"""Benchmark-session fixtures.

The experiment context is process-wide, so the expensive planning
campaigns (the EasyCrash workflow per application) are paid once per
``pytest benchmarks/`` session and shared by every table/figure driver.

Set ``REPRO_BENCH_SCALE=quick|default|paper`` to trade fidelity for time.
"""

from pathlib import Path

import pytest

from repro.harness.context import get_context

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    return get_context()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(report, results_dir):
    """Print a regenerated table/figure and persist it as an artifact."""
    text = report.render()
    print("\n" + text)
    report.save(results_dir)
    return report

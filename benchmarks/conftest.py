"""Benchmark-session fixtures and machine-readable artifact emission.

The experiment context is process-wide, so the expensive planning
campaigns (the EasyCrash workflow per application) are paid once per
``pytest benchmarks/`` session and shared by every table/figure driver.

Every table/figure driver calls :func:`emit`, which routes all artifacts
through the one writer of :mod:`repro.obs.export` (parent directories
created, UTF-8, single trailing newline) and gives each text report a
JSON twin in ``benchmarks/results/``.  At session end the collected
pytest-benchmark timings (plus any live telemetry registry) are written
as bench.json records to a top-level ``BENCH_<git-sha>.json`` — the
machine-readable trajectory the CI ``perf-gate`` job uploads and diffs.

Set ``REPRO_BENCH_SCALE=quick|default|paper`` to trade fidelity for time.
"""

import os
from pathlib import Path

import pytest

from repro.harness.context import get_context
from repro.obs import export as obs_export
from repro.obs import registry as obs_registry

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def ctx():
    return get_context()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def emit(report, results_dir):
    """Print a regenerated table/figure and persist it as text + JSON twin."""
    text = report.render()
    print("\n" + text)
    report.save(results_dir)
    report.save_json(results_dir, scale=_scale())
    return report


def _benchmark_records(session) -> list:
    """pytest-benchmark timings as bench.json records (ops/s gated rates)."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return []
    sha = obs_export.git_sha(REPO_ROOT)
    records = []
    for bench in bench_session.benchmarks:
        try:
            mean = float(bench.stats.mean)
            ops = float(bench.stats.ops)
        except Exception:
            continue  # errored or empty benchmark: nothing to record
        name = bench.name
        records.append(
            {"metric": f"benchmark.{name}.mean_s", "value": mean, "unit": "s",
             "scale": _scale(), "git_sha": sha}
        )
        records.append(
            {"metric": f"benchmark.{name}.ops", "value": ops, "unit": "ops/s",
             "scale": _scale(), "git_sha": sha}
        )
    return records


def pytest_sessionfinish(session, exitstatus):
    """Write the session's bench trajectory file: ``BENCH_<sha>.json``."""
    records = _benchmark_records(session)
    reg = obs_registry()
    if reg is not None:
        records.extend(
            obs_export.bench_records(reg, scale=_scale(), calibrate=False)
        )
    if not records:
        return
    sha = obs_export.git_sha(REPO_ROOT)
    records.append(
        {"metric": obs_export.CALIBRATION_METRIC,
         "value": obs_export.calibration_ops_per_s(), "unit": "ops/s",
         "scale": _scale(), "git_sha": sha}
    )
    target = REPO_ROOT / f"BENCH_{sha}.json"
    obs_export.write_bench(target, records)
    if reg is not None:
        obs_export.write_jsonl(
            target.with_suffix(".trace.jsonl"), reg.tracer.to_records()
        )
    print(f"\nbench trajectory: {target} ({len(records)} records)")

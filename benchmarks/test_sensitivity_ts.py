"""Sensitivity of the plan to the overhead bound ts (paper Sec. 6).

The paper also runs ts = 2% and 5%: the runtime overhead is always
bounded by ts, but a smaller ts forces less frequent persistence and can
push some benchmarks below the recomputability threshold τ.
"""

from conftest import emit

from repro.apps.registry import get_factory
from repro.core.planner import EasyCrashConfig, plan_easycrash
from repro.harness.experiments import ExperimentReport
from repro.nvct.campaign import CampaignConfig, run_campaign


def test_sensitivity_ts(benchmark, ctx, results_dir):
    def run():
        name = "kmeans"  # flush-budget-sensitive: moderate critical set
        factory = get_factory(name)
        rows = []
        for ts in (0.005, 0.02, 0.03, 0.05):
            report = plan_easycrash(
                factory,
                EasyCrashConfig(
                    n_tests=ctx.settings.planner_tests,
                    seed=ctx.settings.seed,
                    ts=ts,
                    refinement_tests=ctx.settings.refinement_tests,
                ),
            )
            val = run_campaign(
                factory,
                CampaignConfig(
                    n_tests=ctx.settings.n_tests,
                    seed=ctx.settings.seed + 5,
                    plan=report.plan,
                ),
            )
            sel = report.region_selection
            rows.append(
                [
                    f"ts={ts:.1%}",
                    sel.total_cost_share if sel else 0.0,
                    report.predicted_recomputability,
                    val.recomputability(),
                ]
            )
        return ExperimentReport(
            "Sensitivity ts",
            f"{name}: plan cost and recomputability vs the overhead bound ts",
            ["Bound", "Plan cost share", "Predicted R", "Measured R"],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    # The bound is always respected...
    for row in report.rows:
        bound = float(row[0].split("=")[1].rstrip("%")) / 100.0
        assert row[1] <= bound + 1e-9
    # ...and recomputability is monotone-ish in the allowed budget.
    measured = [row[3] for row in report.rows]
    assert measured[-1] >= measured[0] - 0.05


def test_multicore_conclusions(benchmark, ctx, results_dir):
    """Paper Sec. 4.1: multi-threaded runs reach the same conclusions."""
    from repro.apps.base import AppFactory
    from repro.apps.parallel_kmeans import ParallelKMeans
    from repro.nvct.plan import PersistencePlan

    def run():
        factory = AppFactory(ParallelKMeans, n_points=8192, n_features=8, k=12, seed=2020)
        rows = []
        plans = {
            "none": PersistencePlan.none(),
            "critical@loop": PersistencePlan.at_loop_end(["centroids", "inertia", "assign"]),
        }
        for cores in (1, 4):
            for label, plan in plans.items():
                cfg = CampaignConfig(
                    n_tests=max(30, ctx.settings.n_tests // 2),
                    seed=11,
                    plan=plan,
                    n_cores=cores,
                )
                camp = run_campaign(factory, cfg)
                rows.append([f"{cores} core(s), {label}", camp.recomputability()])
        return ExperimentReport(
            "Multicore",
            "kmeans recomputability, single- vs multi-threaded (MESI-lite)",
            ["Configuration", "Recomputability"],
            rows,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(report, results_dir)
    vals = {r[0]: r[1] for r in report.rows}
    for cores in (1, 4):
        assert (
            vals[f"{cores} core(s), critical@loop"]
            > vals[f"{cores} core(s), none"] + 0.3
        )

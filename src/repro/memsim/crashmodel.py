"""Pluggable crash models: what survives a failure besides the NVM image.

The paper (EasyCrash, CLUSTER 2020) models exactly one failure mode: the
whole cache hierarchy vanishes and only the NVM image survives.  Real
platforms sit on a spectrum of persistence domains:

``whole-cache-loss``
    The paper's model and the default.  Caches are volatile; a crash
    leaves the NVM image exactly as the last write-back left it.
``adr``
    Asynchronous DRAM Refresh: the memory controller's bounded
    write-pending queue is inside the persistence domain.  Under the
    simulator's instant write-back idealization a literal WPQ of already
    written-back lines is indistinguishable from ``whole-cache-loss``, so
    the model drains the ``wpq`` *most recently stored* dirty cache lines
    (the lines an ADR-backed controller's queue would hold at the moment
    of failure) — excluding the in-flight line, which ADR does not
    protect mid-store.
``eadr``
    Extended ADR: the platform flushes *all* dirty cache contents on
    power failure.  Only the single in-flight store can be lost, and it
    tears at ``granularity``-byte boundaries: a seeded prefix of the
    in-flight line persists.
``torn``
    No residual-energy domain at all, but multi-word stores tear:
    the in-flight line persists a seeded ``granularity``-aligned prefix
    while every other dirty line is lost (``whole-cache-loss`` plus torn
    writes).

Each model reduces to a *survivor plan* over the dirty cache blocks at
the crash point: a set of blocks persisted in full plus at most one
partial (in-flight) block with a surviving byte prefix.  Survivor bytes
are overlaid onto the NVM image with the block's architectural bytes —
overlays can only make NVM bytes *equal* to architectural state, which
yields the structural guarantee tested in CI::

    inconsistent-rate(eadr) <= inconsistent-rate(adr) <= inconsistent-rate(whole-cache-loss)

holding exactly, per crash point and per object (eADR's survivor set is
a superset of ADR's, which is a superset of the empty set).

Determinism: the only randomness is the torn-prefix draw, taken from a
generator derived as ``derive_rng(seed, "crash-model", spec, counter)``
per crash point — same seed, same model, same point ⇒ bit-identical
crash image.  :mod:`repro.memsim.reference` carries a slow pure-Python
mirror of the survivor-plan selection as the per-model test oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import UsageError
from repro.memsim.blocks import BLOCK_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (heap lives in nvct)
    from repro.memsim.hierarchy import CacheHierarchy
    from repro.nvct.heap import PersistentHeap

__all__ = [
    "DEFAULT_CRASH_MODEL",
    "CrashModel",
    "WholeCacheLoss",
    "Adr",
    "Eadr",
    "Torn",
    "get_model",
    "in_flight_block",
]

#: Spec string of the paper's (and the campaign engine's default) model.
DEFAULT_CRASH_MODEL = "whole-cache-loss"

#: Default write-pending-queue depth for ``adr`` (lines, i.e. 4 KiB at 64 B).
ADR_WPQ_DEPTH = 64

#: Default tear granularity in bytes for ``eadr`` and ``torn`` (one
#: machine word on the paper's platform is 8 bytes).
TEAR_GRANULARITY = 8

#: ``(full_blocks, partial)``: absolute block ids persisted in full, plus
#: an optional ``(block, surviving_prefix_bytes)`` in-flight partial.
SurvivorPlan = tuple[np.ndarray, "tuple[int, int] | None"]

_EMPTY_BLOCKS = np.empty(0, dtype=np.int64)


def in_flight_block(dirty_blocks: np.ndarray, store_seq: np.ndarray) -> int:
    """The dirty block holding the in-flight store, or ``-1``.

    The in-flight line is the most recently stored dirty block (highest
    store sequence number, ties broken toward the highest block id).
    Blocks with sequence ``0`` were never stored since tracking began, so
    when nothing has a positive sequence there is no in-flight store.
    """
    if dirty_blocks.size == 0:
        return -1
    top = int(store_seq.max())
    if top <= 0:
        return -1
    return int(dirty_blocks[store_seq == top].max())


class CrashModel:
    """A crash model: which dirty cache bytes survive a failure.

    Subclasses implement :meth:`survivor_plan`; everything else —
    overlay construction, fingerprinting, the high-level :meth:`apply` —
    is shared.
    """

    name: str = ""

    def params(self) -> dict[str, int]:
        """Model parameters, canonicalized (defaults made explicit)."""
        return {}

    @property
    def spec(self) -> str:
        """Canonical spec string (``"adr"`` and ``"adr:wpq=64"`` agree)."""
        params = self.params()
        if not params:
            return self.name
        args = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"{self.name}:{args}"

    def fingerprint(self) -> dict[str, object]:
        """Canonical content-key payload: name plus explicit parameters,
        so two spellings of the same model hash identically and any
        parameter change invalidates cached artifacts."""
        return {"name": self.name, **self.params()}

    @property
    def is_default(self) -> bool:
        return self.name == DEFAULT_CRASH_MODEL

    # -- survivor selection ---------------------------------------------------

    def survivor_plan(
        self,
        dirty_blocks: np.ndarray,
        store_seq: np.ndarray,
        rng: np.random.Generator,
    ) -> SurvivorPlan:
        """Given the sorted dirty block ids and their aligned store
        sequence numbers, return the survivor plan.  ``rng`` is consumed
        only by models with a torn in-flight prefix, and only when an
        in-flight block exists (keeps the draw schedule mirrorable by the
        reference oracle)."""
        raise NotImplementedError

    def _torn_prefix(self, rng: np.random.Generator, granularity: int) -> int:
        """Surviving prefix length of the in-flight line: a uniformly
        drawn number of whole ``granularity``-byte sub-stores."""
        n_granules = BLOCK_SIZE // granularity
        return int(rng.integers(0, n_granules + 1)) * granularity

    # -- overlay construction -------------------------------------------------

    def survivor_overlays(
        self,
        heap: "PersistentHeap",
        hierarchy: "CacheHierarchy",
        store_seq: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Materialize the survivor plan as per-object byte overlays.

        Returns ``{object_name: (byte_idx, values)}`` where ``values``
        are the *architectural* bytes at ``byte_idx`` (object-relative) —
        the bytes the persistence domain drains before the lights go out.
        Only tracked objects (candidates and the iterator) are included;
        objects without survivor bytes are omitted.
        """
        dirty = hierarchy.resident_dirty_blocks()
        if dirty.size == 0:
            return {}
        full, partial = self.survivor_plan(dirty, store_seq[dirty], rng)
        full = np.sort(full)
        overlays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for obj in heap._order:
            if not (obj.candidate or obj.role == "iterator"):
                continue
            base, end = obj.base_block, obj.end_block
            rel = full[(full >= base) & (full < end)] - base
            idx = (rel[:, None] * BLOCK_SIZE + np.arange(BLOCK_SIZE)).ravel()
            parts = [idx[idx < obj.nbytes]]
            if partial is not None:
                pblock, cut = partial
                if base <= pblock < end and cut > 0:
                    lo = (pblock - base) * BLOCK_SIZE
                    parts.append(np.arange(lo, min(lo + cut, obj.nbytes), dtype=np.int64))
            idx = np.sort(np.concatenate(parts)) if len(parts) > 1 else parts[0]
            if idx.size:
                overlays[obj.name] = (idx, obj.data_bytes[idx])
        return overlays

    def apply(
        self,
        hierarchy: "CacheHierarchy",
        nvm: Mapping[str, np.ndarray],
        rng: np.random.Generator,
        *,
        heap: "PersistentHeap",
        store_seq: np.ndarray | None = None,
    ) -> Mapping[str, np.ndarray]:
        """Apply the crash to an NVM image snapshot, in place.

        ``nvm`` maps object names to (mutable) copies of their NVM bytes,
        as produced by ``PersistentHeap.snapshot_nvm()``; survivor bytes
        are overlaid and the patched mapping returned.
        """
        if store_seq is None:
            store_seq = np.zeros(heap.total_blocks(), dtype=np.int64)
        for name, (idx, vals) in self.survivor_overlays(heap, hierarchy, store_seq, rng).items():
            state = nvm.get(name)
            if state is not None:
                state[idx] = vals
        return nvm


class WholeCacheLoss(CrashModel):
    """The paper's model: every dirty cache line is lost."""

    name = DEFAULT_CRASH_MODEL

    def survivor_plan(
        self, dirty_blocks: np.ndarray, store_seq: np.ndarray, rng: np.random.Generator
    ) -> SurvivorPlan:
        return _EMPTY_BLOCKS, None


class Adr(CrashModel):
    """ADR domain: a bounded WPQ of the most recently stored lines drains."""

    name = "adr"

    def __init__(self, wpq: int = ADR_WPQ_DEPTH):
        if wpq < 1:
            raise UsageError(f"crash model adr: wpq must be >= 1, got {wpq}")
        self.wpq = int(wpq)

    def params(self) -> dict[str, int]:
        return {"wpq": self.wpq}

    def survivor_plan(
        self, dirty_blocks: np.ndarray, store_seq: np.ndarray, rng: np.random.Generator
    ) -> SurvivorPlan:
        inflight = in_flight_block(dirty_blocks, store_seq)
        if inflight >= 0:
            keep = dirty_blocks != inflight
            dirty_blocks, store_seq = dirty_blocks[keep], store_seq[keep]
        # Most recent first: ascending (seq, block) lexsort, take the tail.
        order = np.lexsort((dirty_blocks, store_seq))
        return np.sort(dirty_blocks[order[-self.wpq :]]), None


class Eadr(CrashModel):
    """eADR domain: all dirty lines flush; the in-flight store tears."""

    name = "eadr"

    def __init__(self, granularity: int = TEAR_GRANULARITY):
        self.granularity = _check_granularity(self.name, granularity)

    def params(self) -> dict[str, int]:
        return {"granularity": self.granularity}

    def survivor_plan(
        self, dirty_blocks: np.ndarray, store_seq: np.ndarray, rng: np.random.Generator
    ) -> SurvivorPlan:
        inflight = in_flight_block(dirty_blocks, store_seq)
        if inflight < 0:
            return dirty_blocks.copy(), None
        full = dirty_blocks[dirty_blocks != inflight]
        return full, (inflight, self._torn_prefix(rng, self.granularity))


class Torn(CrashModel):
    """Torn writes only: the in-flight store persists a seeded prefix."""

    name = "torn"

    def __init__(self, granularity: int = TEAR_GRANULARITY):
        self.granularity = _check_granularity(self.name, granularity)

    def params(self) -> dict[str, int]:
        return {"granularity": self.granularity}

    def survivor_plan(
        self, dirty_blocks: np.ndarray, store_seq: np.ndarray, rng: np.random.Generator
    ) -> SurvivorPlan:
        inflight = in_flight_block(dirty_blocks, store_seq)
        if inflight < 0:
            return _EMPTY_BLOCKS, None
        return _EMPTY_BLOCKS, (inflight, self._torn_prefix(rng, self.granularity))


def _check_granularity(name: str, granularity: int) -> int:
    g = int(granularity)
    if g < 1 or BLOCK_SIZE % g != 0:
        raise UsageError(
            f"crash model {name}: granularity must divide the {BLOCK_SIZE}-byte "
            f"block size, got {granularity}"
        )
    return g


_MODELS: dict[str, type[CrashModel]] = {
    WholeCacheLoss.name: WholeCacheLoss,
    Adr.name: Adr,
    Eadr.name: Eadr,
    Torn.name: Torn,
}


def get_model(spec: "str | CrashModel") -> CrashModel:
    """Parse a crash-model spec string (``"adr"``, ``"torn:granularity=8"``).

    Parameters follow the model name after a colon, comma-separated
    ``key=value`` pairs with integer values.  Raises :class:`UsageError`
    (CLI exit code 2) for unknown models, parameters, or values.
    """
    if isinstance(spec, CrashModel):
        return spec
    text = str(spec).strip()
    name, _, rest = text.partition(":")
    cls = _MODELS.get(name)
    if cls is None:
        known = ", ".join(sorted(_MODELS))
        raise UsageError(f"unknown crash model {name!r} (known: {known})")
    kwargs: dict[str, int] = {}
    if rest:
        for pair in rest.split(","):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or not key:
                raise UsageError(f"crash model {name}: malformed parameter {pair!r}")
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise UsageError(
                    f"crash model {name}: parameter {key} needs an integer, got {value!r}"
                ) from None
    try:
        return cls(**kwargs)
    except TypeError:
        raise UsageError(
            f"crash model {name}: unknown parameter(s) {sorted(kwargs)}"
        ) from None

"""Cache-block address arithmetic.

All simulation happens at cache-block granularity: a block id is
``byte_address // BLOCK_SIZE``.  The persistent heap aligns every data
object to a block boundary so no block is shared between objects.
"""

from __future__ import annotations

import numpy as np

BLOCK_SIZE = 64
"""Cache block (line) size in bytes, matching the paper's 64 B lines."""

__all__ = ["BLOCK_SIZE", "block_span", "bytes_to_blocks", "align_up"]


def align_up(nbytes: int, alignment: int = BLOCK_SIZE) -> int:
    """Round ``nbytes`` up to a multiple of ``alignment``."""
    if nbytes < 0:
        raise ValueError("size must be non-negative")
    return (nbytes + alignment - 1) // alignment * alignment


def block_span(byte_lo: int, byte_hi: int, block_size: int = BLOCK_SIZE) -> tuple[int, int]:
    """Half-open block-id range covering the byte range ``[byte_lo, byte_hi)``.

    Returns ``(b0, b1)`` such that blocks ``b0 .. b1-1`` contain every byte
    of the range.  An empty byte range yields an empty block range.
    """
    if byte_hi <= byte_lo:
        return (byte_lo // block_size, byte_lo // block_size)
    return (byte_lo // block_size, (byte_hi - 1) // block_size + 1)


def bytes_to_blocks(nbytes: int, block_size: int = BLOCK_SIZE) -> int:
    """Number of blocks needed to hold ``nbytes`` bytes."""
    return (nbytes + block_size - 1) // block_size


def block_bytes(blocks: np.ndarray, base_block: int, block_size: int = BLOCK_SIZE) -> np.ndarray:
    """Flat byte indices (relative to ``base_block``) covered by ``blocks``.

    Used to copy whole blocks between an object's architectural bytes and
    its NVM image with a single fancy-indexing operation.
    """
    rel = (np.asarray(blocks, dtype=np.int64) - base_block) * block_size
    return (rel[:, None] + np.arange(block_size, dtype=np.int64)[None, :]).ravel()

"""Cache hierarchy configuration.

The paper's evaluation hierarchy (Table 3 / Sec. 4.1) is a Xeon Gold
6126-like three-level hierarchy.  We provide both a paper-like full
hierarchy and a scaled-down single-level configuration used by default in
the crash campaigns: with scaled-down workloads, what matters is that the
application footprint exceeds the simulated LLC by the same ratio as in
the paper, and that persistence is governed by the (inclusive) LLC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memsim.blocks import BLOCK_SIZE

__all__ = ["CacheLevelConfig", "HierarchyConfig"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheLevelConfig:
    """One set-associative cache level."""

    name: str
    size_bytes: int
    ways: int
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError(f"{self.name}: size and ways must be positive")
        if self.size_bytes % (self.ways * self.block_size) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*block ({self.ways}*{self.block_size})"
            )
        if not _is_pow2(self.num_sets):
            raise ConfigError(
                f"{self.name}: number of sets ({self.num_sets}) must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_size)

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size


@dataclass(frozen=True)
class HierarchyConfig:
    """An inclusive multi-level hierarchy, listed from L1 to LLC."""

    levels: tuple[CacheLevelConfig, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigError("hierarchy needs at least one level")
        bs = {lv.block_size for lv in self.levels}
        if len(bs) != 1:
            raise ConfigError("all levels must share one block size")
        sizes = [lv.size_bytes for lv in self.levels]
        if any(a > b for a, b in zip(sizes, sizes[1:])):
            raise ConfigError("levels must be ordered small (L1) to large (LLC)")

    @property
    def block_size(self) -> int:
        return self.levels[0].block_size

    @property
    def llc(self) -> CacheLevelConfig:
        return self.levels[-1]

    @property
    def min_sets(self) -> int:
        return min(lv.num_sets for lv in self.levels)

    @staticmethod
    def scaled_llc(size_bytes: int = 640 * 1024, ways: int = 10) -> "HierarchyConfig":
        """Single-level scaled LLC used by default in crash campaigns.

        640 KB against ~1-4 MB mini-app footprints reproduces the regime the
        paper studies: streaming traffic forces steady write-back of cold
        data while hot, re-read data objects stay partially cache-resident
        (and thus stale in NVM) across iterations unless explicitly flushed.
        """
        return HierarchyConfig((CacheLevelConfig("LLC", size_bytes, ways),))

    @staticmethod
    def paper_like() -> "HierarchyConfig":
        """Xeon Gold 6126-like hierarchy.

        The paper lists 32 KB/8-way L1, 1 MB/12-way L2, 19.25 MB/11-way L3.
        The L2/L3 set counts are not powers of two; we use the nearest
        power-of-two-set equivalents (1 MB/16-way, 16 MB/16-way), which
        keeps capacity/associativity in the same regime.
        """
        return HierarchyConfig(
            (
                CacheLevelConfig("L1", 32 * 1024, 8),
                CacheLevelConfig("L2", 1024 * 1024, 16),
                CacheLevelConfig("L3", 16 * 1024 * 1024, 16),
            )
        )

    @staticmethod
    def scaled_three_level() -> "HierarchyConfig":
        """Three-level hierarchy scaled down to match mini-app footprints."""
        return HierarchyConfig(
            (
                CacheLevelConfig("L1", 4 * 1024, 4),
                CacheLevelConfig("L2", 32 * 1024, 8),
                CacheLevelConfig("L3", 128 * 1024, 8),
            )
        )

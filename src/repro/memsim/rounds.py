"""Round decomposition of access sequences.

A *round* is a group of block ids whose sets are pairwise distinct at the
smallest cache level (set counts are powers of two, so distinctness there
implies distinctness at every level).  Because per-set LRU state evolves
independently, any grouping that preserves each set's subsequence order is
an exact reordering; rounds are what both the vectorized hierarchy and the
reference model iterate over, so their semantics coincide by construction.

Within a round, updates are applied in phases: probe/refresh first, then
installs from the LLC upward.  This is the canonical serialization of the
round's (conceptually concurrent) accesses.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["iter_rounds_contiguous", "iter_rounds_generic"]


def iter_rounds_contiguous(block_lo: int, block_hi: int, min_sets: int) -> Iterator[np.ndarray]:
    """Rounds for a contiguous range: consecutive chunks of ``min_sets``
    blocks (any ``min_sets`` consecutive integers have distinct sets)."""
    for start in range(block_lo, block_hi, min_sets):
        stop = min(start + min_sets, block_hi)
        yield np.arange(start, stop, dtype=np.int64)


def iter_rounds_generic(blocks: np.ndarray, min_sets: int) -> Iterator[np.ndarray]:
    """Rounds for an arbitrary ordered sequence: the j-th round holds the
    j-th occurrence of every set, preserving per-set order exactly."""
    blocks = np.asarray(blocks, dtype=np.int64)
    if blocks.size == 0:
        return
    sets = blocks & (min_sets - 1)
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    boundary = np.flatnonzero(np.diff(sorted_sets) != 0) + 1
    starts = np.concatenate(([0], boundary))
    sizes = np.diff(np.concatenate((starts, [sets.size])))
    within = np.arange(sets.size) - np.repeat(starts, sizes)
    occurrence = np.empty(sets.size, dtype=np.int64)
    occurrence[order] = within
    for j in range(int(occurrence.max()) + 1):
        yield blocks[occurrence == j]

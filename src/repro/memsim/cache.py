"""Vectorized set-associative LRU cache level.

The simulator processes *rounds*: arrays of block ids that map to pairwise
distinct sets.  Because LRU state is independent per set, any grouping of
an access sequence that preserves each set's subsequence order is exact;
rounds let every update be a handful of NumPy operations over a
``[n_round, ways]`` slab instead of a Python loop per access.

State per (set, way): ``tags`` (block id, -1 invalid), ``dirty`` flag, and
a monotonically increasing ``stamp`` used for LRU victim choice (invalid
ways carry stamp -1 so they are always preferred victims).
"""

from __future__ import annotations

import numpy as np

from repro.memsim.config import CacheLevelConfig
from repro.memsim.stats import CacheStats

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """One cache level; all round arguments must have pairwise-distinct sets."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        self.tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self.dirty = np.zeros((self.num_sets, self.ways), dtype=bool)
        self.stamp = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    # -- pure queries ------------------------------------------------------

    def sets_of(self, blocks: np.ndarray) -> np.ndarray:
        return blocks & self._set_mask

    def lookup(self, blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Presence mask and hit way for each block (no state change)."""
        if blocks.size == 0:
            empty = np.empty(0, dtype=bool)
            return empty, np.empty(0, dtype=np.int64)
        sets = self.sets_of(blocks)
        match = self.tags[sets] == blocks[:, None]
        present = match.any(axis=1)
        way = match.argmax(axis=1)
        return present, way

    def contains(self, blocks: np.ndarray) -> np.ndarray:
        present, _ = self.lookup(np.asarray(blocks, dtype=np.int64))
        return present

    def dirty_tags(self) -> np.ndarray:
        """Unsorted block ids of dirty resident lines (cheap union input)."""
        return self.tags[self.dirty & (self.tags >= 0)]

    def resident_dirty_blocks(self) -> np.ndarray:
        """Sorted block ids currently resident and dirty at this level."""
        return np.sort(self.dirty_tags())

    def resident_blocks(self) -> np.ndarray:
        return np.sort(self.tags[self.tags >= 0])

    # -- state transitions (round granularity) -----------------------------

    def refresh(self, blocks: np.ndarray, ways: np.ndarray, set_dirty: bool) -> None:
        """LRU-refresh hit blocks; optionally mark them dirty (store hit)."""
        if blocks.size == 0:
            return
        sets = self.sets_of(blocks)
        self._clock += 1
        self.stamp[sets, ways] = self._clock
        if set_dirty:
            self.dirty[sets, ways] = True

    def install(self, blocks: np.ndarray, dirty: bool) -> tuple[np.ndarray, np.ndarray]:
        """Insert missing blocks, evicting LRU victims.

        Returns ``(victim_tags, victim_dirty)`` for the *valid* victims
        displaced by the installs.  Callers are responsible for routing
        dirty victims (to the next level or to NVM).
        """
        if blocks.size == 0:
            e = np.empty(0, dtype=np.int64)
            return e, np.empty(0, dtype=bool)
        sets = self.sets_of(blocks)
        victim_way = self.stamp[sets].argmin(axis=1)
        vt = self.tags[sets, victim_way]
        vd = self.dirty[sets, victim_way]
        valid = vt >= 0
        self._clock += 1
        self.tags[sets, victim_way] = blocks
        self.dirty[sets, victim_way] = dirty
        self.stamp[sets, victim_way] = self._clock
        self.stats.evictions += int(valid.sum())
        self.stats.dirty_evictions += int((valid & vd).sum())
        return vt[valid], vd[valid]

    def remove(self, blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Invalidate the given blocks if present (back-invalidation/CLFLUSH).

        Returns ``(present_mask, was_dirty)`` aligned with ``blocks``.
        """
        present, way = self.lookup(blocks)
        was_dirty = np.zeros_like(present)
        if present.any():
            sets = self.sets_of(blocks[present])
            w = way[present]
            was_dirty[present] = self.dirty[sets, w]
            self.tags[sets, w] = -1
            self.dirty[sets, w] = False
            self.stamp[sets, w] = -1
            self.stats.invalidations += int(present.sum())
        return present, was_dirty

    def clean(self, blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Clear dirty bits of the given blocks if present (CLWB semantics).

        Returns ``(present_mask, was_dirty)`` aligned with ``blocks``.
        """
        present, way = self.lookup(blocks)
        was_dirty = np.zeros_like(present)
        if present.any():
            sets = self.sets_of(blocks[present])
            w = way[present]
            was_dirty[present] = self.dirty[sets, w]
            self.dirty[sets, w] = False
        return present, was_dirty

    def mark_dirty(self, blocks: np.ndarray) -> np.ndarray:
        """Set dirty bits for blocks written back from an upper level.

        Returns the mask of blocks *not* found (caller must spill them to
        the next level / NVM).
        """
        present, way = self.lookup(blocks)
        if present.any():
            sets = self.sets_of(blocks[present])
            self.dirty[sets, way[present]] = True
        return ~present

    def writeback_all(self) -> np.ndarray:
        """Clean every dirty line; return their block ids (sorted)."""
        mask = self.dirty & (self.tags >= 0)
        blocks = np.sort(self.tags[mask])
        self.dirty[:, :] = False
        return blocks

    def invalidate_all(self) -> None:
        self.tags[:, :] = -1
        self.dirty[:, :] = False
        self.stamp[:, :] = -1

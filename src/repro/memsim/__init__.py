"""Cache/NVM memory simulation substrate (the core of NVCT).

This package provides the machinery the paper's PIN-based NVCT tool
provides natively: a set-associative, write-back, write-allocate, LRU
cache hierarchy simulated at 64-byte cache-block granularity, plus the
semantics of the x86 cache-flush instructions (CLFLUSH / CLFLUSHOPT /
CLWB) and event counters for NVM write traffic.

The simulator is *value-aware* through :class:`repro.nvct.heap.PersistentHeap`:
whenever a dirty block leaves the last-level cache (eviction or flush) the
heap copies the block's current architectural bytes into the NVM image, so
cache/memory inconsistency at a crash is directly observable.
"""

from repro.memsim.blocks import BLOCK_SIZE, block_span, bytes_to_blocks
from repro.memsim.config import CacheLevelConfig, HierarchyConfig
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.hierarchy import CacheHierarchy
from repro.memsim.reference import ReferenceCache
from repro.memsim.stats import CacheStats, MemoryStats

__all__ = [
    "BLOCK_SIZE",
    "block_span",
    "bytes_to_blocks",
    "CacheLevelConfig",
    "HierarchyConfig",
    "SetAssociativeCache",
    "CacheHierarchy",
    "ReferenceCache",
    "CacheStats",
    "MemoryStats",
]

"""Slow, dictionary-based reference cache model.

A direct, one-block-at-a-time implementation of the inclusive write-back
write-allocate LRU hierarchy, following the canonical round-phase
serialization documented in :mod:`repro.memsim.rounds`.  It exists purely
as a test oracle: the property-based tests drive identical access
sequences through this model and through the vectorized
:class:`repro.memsim.hierarchy.CacheHierarchy` and require identical final
state and NVM write-back event streams.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.memsim.config import CacheLevelConfig, HierarchyConfig
from repro.memsim.rounds import iter_rounds_contiguous, iter_rounds_generic

__all__ = ["ReferenceCache", "ReferenceHierarchy", "reference_survivor_plan"]


class ReferenceCache:
    """One level: each set is an ``OrderedDict`` block -> dirty flag, ordered
    least- to most-recently used."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self.sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def _set(self, block: int) -> OrderedDict[int, bool]:
        return self.sets[block % self.config.num_sets]

    def contains(self, block: int) -> bool:
        return block in self._set(block)

    def is_dirty(self, block: int) -> bool:
        return self._set(block).get(block, False)

    def touch(self, block: int, dirty: bool) -> bool:
        """Refresh an existing block; returns True when it was present."""
        s = self._set(block)
        if block not in s:
            return False
        s.move_to_end(block)
        if dirty:
            s[block] = True
        return True

    def install(self, block: int, dirty: bool) -> tuple[int, bool] | None:
        """Insert a block; returns the evicted ``(block, dirty)`` if any."""
        s = self._set(block)
        victim = None
        if len(s) >= self.config.ways:
            victim = s.popitem(last=False)
        s[block] = dirty
        return victim

    def remove(self, block: int) -> tuple[bool, bool]:
        s = self._set(block)
        if block in s:
            return True, s.pop(block)
        return False, False

    def clean(self, block: int) -> tuple[bool, bool]:
        s = self._set(block)
        if block in s:
            d = s[block]
            s[block] = False
            return True, d
        return False, False

    def mark_dirty(self, block: int) -> bool:
        """Returns True when the block was found (dirty bit set)."""
        s = self._set(block)
        if block in s:
            s[block] = True
            return True
        return False

    def resident_dirty_blocks(self) -> list[int]:
        return sorted(b for s in self.sets for b, d in s.items() if d)

    def resident_blocks(self) -> list[int]:
        return sorted(b for s in self.sets for b in s)


class ReferenceHierarchy:
    """Inclusive multi-level reference model mirroring CacheHierarchy.

    NVM write-backs are recorded in ``self.nvm_writebacks`` in event order.
    """

    def __init__(self, config: HierarchyConfig):
        self.config = config
        self.levels = [ReferenceCache(lv) for lv in config.levels]
        self.nvm_writebacks: list[int] = []
        self.nvm_fills = 0
        self._min_sets = config.min_sets

    def _nvm_writeback(self, block: int) -> None:
        self.nvm_writebacks.append(block)

    def _install_at(self, li: int, block: int, dirty: bool) -> None:
        victim = self.levels[li].install(block, dirty)
        if victim is None:
            return
        vblock, vdirty = victim
        if li == len(self.levels) - 1:
            # LLC eviction: back-invalidate upper levels, merge dirtiness.
            dirty_any = vdirty
            for up in self.levels[:-1]:
                present, was_dirty = up.remove(vblock)
                dirty_any = dirty_any or (present and was_dirty)
            if dirty_any:
                self._nvm_writeback(vblock)
        else:
            # Mid-level eviction: back-invalidate upper levels and merge
            # their dirtiness, then spill the dirty bit into the next level
            # (inclusive ⇒ present); spill stragglers straight to NVM.
            dirty_any = vdirty
            for up in self.levels[:li]:
                present, was_dirty = up.remove(vblock)
                dirty_any = dirty_any or (present and was_dirty)
            if dirty_any and not self.levels[li + 1].mark_dirty(vblock):
                self._nvm_writeback(vblock)

    def access_round(self, blocks: np.ndarray, write: bool) -> None:
        n = len(self.levels)
        hit_levels: list[int] = []
        for block in blocks:
            b = int(block)
            hit_level = n
            for li, lv in enumerate(self.levels):
                if lv.contains(b):
                    hit_level = li
                    break
            if hit_level == n:
                self.nvm_fills += 1
            else:
                self.levels[hit_level].touch(b, dirty=(write and hit_level == 0))
            hit_levels.append(hit_level)
        # Install phase: LLC first, then up, block order within each level.
        for li in range(n - 1, -1, -1):
            for block, h in zip(blocks, hit_levels):
                if h > li:
                    self._install_at(li, int(block), dirty=(write and li == 0))

    def access(self, block_lo: int, block_hi: int, write: bool) -> None:
        for rnd in iter_rounds_contiguous(block_lo, block_hi, self._min_sets):
            self.access_round(rnd, write)

    def access_blocks(self, blocks: np.ndarray, write: bool) -> None:
        for rnd in iter_rounds_generic(blocks, self._min_sets):
            self.access_round(rnd, write)

    def flush_blocks(self, blocks: np.ndarray, invalidate: bool = False) -> None:
        for block in blocks:
            b = int(block)
            dirty_any = False
            for lv in self.levels:
                if invalidate:
                    present, was_dirty = lv.remove(b)
                else:
                    present, was_dirty = lv.clean(b)
                dirty_any = dirty_any or (present and was_dirty)
            if dirty_any:
                self._nvm_writeback(b)

    def flush(self, block_lo: int, block_hi: int, invalidate: bool = False) -> None:
        self.flush_blocks(np.arange(block_lo, block_hi, dtype=np.int64), invalidate)

    def writeback_all(self) -> None:
        dirty: set[int] = set()
        for lv in self.levels:
            dirty.update(lv.resident_dirty_blocks())
            for s in lv.sets:
                for b in s:
                    s[b] = False
        for b in sorted(dirty):
            self._nvm_writeback(b)

    def resident_dirty_blocks(self) -> list[int]:
        dirty: set[int] = set()
        for lv in self.levels:
            dirty.update(lv.resident_dirty_blocks())
        return sorted(dirty)


def reference_survivor_plan(
    name: str,
    params: dict[str, int],
    dirty_blocks: list[int],
    store_seq: list[int],
    rng: np.random.Generator,
) -> tuple[list[int], tuple[int, int] | None]:
    """One-element-at-a-time mirror of
    :meth:`repro.memsim.crashmodel.CrashModel.survivor_plan` — the
    per-model ground truth for the property tests.

    Takes ``(model name, params, dirty block ids, aligned store sequence
    numbers, rng)`` and returns ``(blocks persisted in full, optional
    (in-flight block, surviving prefix bytes))``.  The rng draw schedule
    matches the vectorized implementation exactly: one ``integers`` draw,
    made only by the tearing models and only when an in-flight block
    exists.
    """
    from repro.memsim.blocks import BLOCK_SIZE

    pairs = sorted(zip(dirty_blocks, store_seq))
    inflight = -1
    best_seq = 0
    for block, seq in pairs:
        if seq > 0 and (seq, block) >= (best_seq, inflight):
            best_seq, inflight = seq, block

    def torn_prefix(granularity: int) -> int:
        n_granules = BLOCK_SIZE // granularity
        return int(rng.integers(0, n_granules + 1)) * granularity

    if name == "whole-cache-loss":
        return [], None
    if name == "adr":
        wpq = params["wpq"]
        rest = sorted(
            ((seq, block) for block, seq in pairs if block != inflight), reverse=True
        )
        return sorted(block for _seq, block in rest[:wpq]), None
    if name == "eadr":
        full = sorted(block for block, _seq in pairs if block != inflight)
        if inflight < 0:
            return full, None
        return full, (inflight, torn_prefix(params["granularity"]))
    if name == "torn":
        if inflight < 0:
            return [], None
        return [], (inflight, torn_prefix(params["granularity"]))
    raise ValueError(f"unknown crash model {name!r}")

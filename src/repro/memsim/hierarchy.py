"""Inclusive multi-level cache hierarchy, vectorized.

Semantics (validated against :class:`repro.memsim.reference.ReferenceHierarchy`
by property-based tests):

* write-back, write-allocate at every level;
* inclusive: a block resident at level *i* is resident at every level below;
* store dirtiness lands in L1; dirty L1 victims spill their dirty bit into
  L2, and so on; only blocks leaving the *LLC* (eviction, flush, drain)
  reach NVM;
* LLC evictions back-invalidate upper levels and merge their dirtiness
  (as real inclusive hierarchies do via snooping);
* flush instructions operate on all levels at once; ``invalidate=True``
  models CLFLUSH/CLFLUSHOPT (line leaves the cache), ``False`` models CLWB
  (line retained clean).

Accesses are processed in *rounds* of block ids with pairwise-distinct
sets at the smallest level (set counts are powers of two, so distinctness
at the smallest level implies it everywhere), which makes per-set LRU
order exact while every update is a NumPy slab operation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import HierarchyConfig
from repro.memsim.rounds import iter_rounds_contiguous, iter_rounds_generic
from repro.memsim.stats import MemoryStats

__all__ = ["CacheHierarchy"]

WritebackSink = Callable[[np.ndarray], None]

_FLUSH_CHUNK = 8192  # blocks per flush lookup slab (memory bound, not exactness)


class CacheHierarchy:
    """Multi-level inclusive cache with an NVM write-back sink.

    ``writeback_sink`` is called, in event order, with arrays of block ids
    whose dirty data is being written to NVM; the persistent heap uses it
    to copy architectural bytes into the NVM image at exactly that moment.
    """

    def __init__(self, config: HierarchyConfig, writeback_sink: WritebackSink | None = None):
        self.config = config
        self.levels = [SetAssociativeCache(lv) for lv in config.levels]
        self.stats = MemoryStats(
            per_level={lv.name: c.stats for lv, c in zip(config.levels, self.levels)}
        )
        self._sink = writeback_sink
        self._round = config.min_sets

    # -- NVM write routing --------------------------------------------------

    def _writeback(self, blocks: np.ndarray, source: str) -> None:
        if blocks.size == 0:
            return
        n = int(blocks.size)
        self.stats.nvm_writes += n
        if source == "evict":
            self.stats.nvm_writes_from_evictions += n
        elif source == "flush":
            self.stats.nvm_writes_from_flushes += n
        elif source == "nt":
            self.stats.nvm_writes_from_nt += n
        else:
            self.stats.nvm_writes_from_drain += n
        self.stats.nvm_writeback_events += 1
        if self._sink is not None:
            self._sink(blocks)

    def _route_victims(self, level_idx: int, vtags: np.ndarray, vdirty: np.ndarray) -> None:
        if vtags.size == 0:
            return
        if level_idx == len(self.levels) - 1:
            # LLC eviction: back-invalidate uppers, merge dirtiness, persist.
            dirty_any = vdirty.copy()
            for up in self.levels[:-1]:
                _present, was_dirty = up.remove(vtags)
                dirty_any |= was_dirty
            self._writeback(vtags[dirty_any], "evict")
        else:
            # Mid-level eviction: inclusivity demands the victim leave the
            # upper levels too; merge their dirtiness before spilling down.
            dirty_any = vdirty.copy()
            for up in self.levels[:level_idx]:
                _present, was_dirty = up.remove(vtags)
                dirty_any |= was_dirty
            spill = vtags[dirty_any]
            if spill.size:
                missing = self.levels[level_idx + 1].mark_dirty(spill)
                # Inclusivity makes this empty in practice; spill any
                # stragglers straight to NVM (semantically a merge).
                self._writeback(spill[missing], "evict")

    # -- access paths ---------------------------------------------------------

    def _access_round(self, blocks: np.ndarray, write: bool) -> None:
        n_levels = len(self.levels)
        hit_level = np.full(blocks.size, n_levels, dtype=np.int64)
        undecided = np.arange(blocks.size)
        for li, lv in enumerate(self.levels):
            if undecided.size == 0:
                break
            sub = blocks[undecided]
            present, way = lv.lookup(sub)
            if write:
                lv.stats.write_accesses += int(sub.size)
                lv.stats.write_hits += int(present.sum())
            else:
                lv.stats.read_accesses += int(sub.size)
                lv.stats.read_hits += int(present.sum())
            hit_idx = undecided[present]
            hit_level[hit_idx] = li
            lv.refresh(blocks[hit_idx], way[present], set_dirty=(write and li == 0))
            undecided = undecided[~present]
        self.stats.nvm_fills += int(undecided.size)
        # Install bottom-up wherever the block was absent.
        for li in range(n_levels - 1, -1, -1):
            need = hit_level > li
            if not need.any():
                continue
            vt, vd = self.levels[li].install(blocks[need], dirty=(write and li == 0))
            self._route_victims(li, vt, vd)

    def access(self, block_lo: int, block_hi: int, write: bool) -> None:
        """Access the contiguous block range ``[block_lo, block_hi)``, in order."""
        for rnd in iter_rounds_contiguous(block_lo, block_hi, self._round):
            self._access_round(rnd, write)

    def access_blocks(self, blocks: np.ndarray, write: bool) -> None:
        """Access an arbitrary ordered sequence of block ids.

        The sequence is split into rounds by per-set occurrence order,
        which preserves every set's subsequence order (and is therefore
        exact for LRU state) while letting each round be vectorized.
        """
        for rnd in iter_rounds_generic(blocks, self._round):
            self._access_round(rnd, write)

    def store_nontemporal(self, blocks: np.ndarray) -> None:
        """Non-temporal (streaming) stores: write the blocks straight to
        NVM, invalidating any cached copies (MOVNT semantics).  The caller
        must have applied the store to architectural state already."""
        blocks = np.unique(np.asarray(blocks, dtype=np.int64))
        if blocks.size == 0:
            return
        for lv in self.levels:
            lv.remove(blocks)
        self._writeback(blocks, "nt")

    # -- flush / drain --------------------------------------------------------

    def flush(self, block_lo: int, block_hi: int, invalidate: bool = False) -> tuple[int, int]:
        """Flush the contiguous block range (CLWB or, with ``invalidate``,
        CLFLUSHOPT semantics).  Returns ``(blocks_issued, dirty_written)``."""
        issued = 0
        dirty_written = 0
        for start in range(block_lo, block_hi, _FLUSH_CHUNK):
            stop = min(start + _FLUSH_CHUNK, block_hi)
            blocks = np.arange(start, stop, dtype=np.int64)
            dirty_written += self._flush_blocks_chunk(blocks, invalidate)
            issued += int(blocks.size)
        return issued, dirty_written

    def flush_blocks(self, blocks: np.ndarray, invalidate: bool = False) -> tuple[int, int]:
        """Flush an arbitrary array of distinct block ids."""
        blocks = np.asarray(blocks, dtype=np.int64)
        issued = 0
        dirty_written = 0
        for start in range(0, blocks.size, _FLUSH_CHUNK):
            chunk = blocks[start : start + _FLUSH_CHUNK]
            dirty_written += self._flush_blocks_chunk(chunk, invalidate)
            issued += int(chunk.size)
        return issued, dirty_written

    def _flush_blocks_chunk(self, blocks: np.ndarray, invalidate: bool) -> int:
        if blocks.size == 0:
            return 0
        llc = self.levels[-1]
        llc.stats.flush_issued += int(blocks.size)
        dirty_any = np.zeros(blocks.size, dtype=bool)
        present_any = np.zeros(blocks.size, dtype=bool)
        for lv in self.levels:
            if invalidate:
                present, was_dirty = lv.remove(blocks)
            else:
                present, was_dirty = lv.clean(blocks)
            dirty_any |= was_dirty
            present_any |= present
        llc.stats.flush_dirty_hits += int(dirty_any.sum())
        llc.stats.flush_clean_hits += int((present_any & ~dirty_any).sum())
        self._writeback(blocks[dirty_any], "flush")
        return int(dirty_any.sum())

    def writeback_all(self) -> int:
        """Drain every dirty line to NVM (checkpoint barrier / end of run)."""
        dirty: np.ndarray | None = None
        for lv in self.levels:
            b = lv.writeback_all()
            dirty = b if dirty is None else np.union1d(dirty, b)
        assert dirty is not None
        self._writeback(dirty, "drain")
        return int(dirty.size)

    def invalidate_all(self) -> None:
        """Drop all cache contents *without* writing anything back.

        This is what a crash does to volatile caches.
        """
        for lv in self.levels:
            lv.invalidate_all()

    # -- analysis -------------------------------------------------------------

    def resident_dirty_blocks(self) -> np.ndarray:
        """Union of dirty blocks across all levels (postmortem analysis).

        One concatenate + one ``np.unique`` instead of a pairwise
        ``union1d`` chain: this runs per persist event when analysis
        listeners are attached, so it is mildly hot."""
        return np.unique(np.concatenate([lv.dirty_tags() for lv in self.levels]))

    @property
    def llc(self) -> SetAssociativeCache:
        return self.levels[-1]

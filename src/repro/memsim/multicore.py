"""Multi-core cache simulation with MESI-lite coherence (extension).

The paper evaluates both single- and multi-threaded configurations and
reports identical conclusions; this module provides the multi-core
substrate: per-core private L1 caches over a shared, inclusive LLC with
invalidation-based coherence.

MESI-lite semantics (value flow is exact because the heap's architectural
arrays always hold the latest data; the protocol tracks *where* dirtiness
lives):

* a core's **read miss** downgrades a remote MODIFIED copy: the owner's
  dirty bit moves to the shared LLC, both cores end with clean copies;
* a core's **write** invalidates all remote copies (remote dirtiness
  merges into the LLC copy) and leaves the writer's L1 copy MODIFIED;
* dirty L1 victims spill their dirty bit into the LLC (inclusive);
* only LLC evictions/flushes write NVM, back-invalidating every L1 and
  merging any private dirtiness — so a crash loses *all* cores' unflushed
  stores, exactly the exposure the paper studies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import CacheLevelConfig
from repro.memsim.rounds import iter_rounds_contiguous, iter_rounds_generic
from repro.memsim.stats import MemoryStats

__all__ = ["MulticoreHierarchy"]

WritebackSink = Callable[[np.ndarray], None]


class MulticoreHierarchy:
    """N private L1 caches over one shared inclusive LLC."""

    def __init__(
        self,
        n_cores: int,
        l1: CacheLevelConfig,
        llc: CacheLevelConfig,
        writeback_sink: WritebackSink | None = None,
    ):
        if n_cores < 1:
            raise ConfigError("need at least one core")
        if llc.size_bytes < l1.size_bytes:
            raise ConfigError("LLC must be at least as large as an L1")
        self.n_cores = n_cores
        self.l1s = [SetAssociativeCache(l1) for _ in range(n_cores)]
        self.llc = SetAssociativeCache(llc)
        self.stats = MemoryStats(
            per_level={f"L1.{c}": l1c.stats for c, l1c in enumerate(self.l1s)}
        )
        self.stats.per_level["LLC"] = self.llc.stats
        self._sink = writeback_sink
        self._round = min(l1.num_sets, llc.num_sets)

    # -- NVM write routing ---------------------------------------------------

    def _writeback(self, blocks: np.ndarray, source: str) -> None:
        if blocks.size == 0:
            return
        n = int(blocks.size)
        self.stats.nvm_writes += n
        if source == "evict":
            self.stats.nvm_writes_from_evictions += n
        elif source == "flush":
            self.stats.nvm_writes_from_flushes += n
        elif source == "nt":
            self.stats.nvm_writes_from_nt += n
        else:
            self.stats.nvm_writes_from_drain += n
        if self._sink is not None:
            self._sink(blocks)

    def store_nontemporal(self, blocks: np.ndarray) -> None:
        """Non-temporal stores: straight to NVM, invalidating every cache."""
        blocks = np.unique(np.asarray(blocks, dtype=np.int64))
        if blocks.size == 0:
            return
        for cache in (*self.l1s, self.llc):
            cache.remove(blocks)
        self._writeback(blocks, "nt")

    def _llc_install(self, blocks: np.ndarray, dirty: bool) -> None:
        vt, vd = self.llc.install(blocks, dirty)
        if vt.size == 0:
            return
        dirty_any = vd.copy()
        for l1 in self.l1s:
            _present, was_dirty = l1.remove(vt)
            dirty_any |= was_dirty
        self._writeback(vt[dirty_any], "evict")

    def _spill_l1_victims(self, vt: np.ndarray, vd: np.ndarray) -> None:
        spill = vt[vd]
        if spill.size:
            missing = self.llc.mark_dirty(spill)
            self._writeback(spill[missing], "evict")

    # -- coherent access -------------------------------------------------------

    def _access_round(self, core: int, blocks: np.ndarray, write: bool) -> None:
        me = self.l1s[core]
        present, way = me.lookup(blocks)
        if write:
            me.stats.write_accesses += int(blocks.size)
            me.stats.write_hits += int(present.sum())
        else:
            me.stats.read_accesses += int(blocks.size)
            me.stats.read_hits += int(present.sum())

        if write:
            # Invalidate every remote copy; remote dirtiness merges into
            # the (inclusive) LLC copy.
            for c, other in enumerate(self.l1s):
                if c == core:
                    continue
                was_present, was_dirty = other.remove(blocks)
                merged = blocks[was_present & was_dirty]
                if merged.size:
                    missing = self.llc.mark_dirty(merged)
                    self._writeback(merged[missing], "evict")
        me.refresh(blocks[present], way[present], set_dirty=write)

        miss = blocks[~present]
        if miss.size == 0:
            return
        llc_present, llc_way = self.llc.lookup(miss)
        self.llc.stats.read_accesses += int(miss.size)
        self.llc.stats.read_hits += int(llc_present.sum())
        if not write:
            # Read miss: downgrade any remote MODIFIED owner (its dirty
            # bit moves to the LLC; the copy stays shared-clean).
            for c, other in enumerate(self.l1s):
                if c == core:
                    continue
                owner_present, owner_way = other.lookup(miss)
                owned = miss[owner_present]
                if owned.size:
                    _p, was_dirty = other.clean(owned)
                    dirty_owned = owned[was_dirty]
                    if dirty_owned.size:
                        missing = self.llc.mark_dirty(dirty_owned)
                        self._writeback(dirty_owned[missing], "evict")
        # Fill the LLC for blocks absent there.
        absent = miss[~llc_present]
        self.stats.nvm_fills += int(absent.size)
        if absent.size:
            self._llc_install(absent, dirty=False)
        else:
            self.llc.refresh(miss[llc_present], llc_way[llc_present], set_dirty=False)
        # Install into the requesting L1.
        vt, vd = me.install(miss, dirty=write)
        self._spill_l1_victims(vt, vd)

    def access(self, core: int, block_lo: int, block_hi: int, write: bool) -> None:
        """Core ``core`` accesses the contiguous block range, in order."""
        for rnd in iter_rounds_contiguous(block_lo, block_hi, self._round):
            self._access_round(core, rnd, write)

    def access_blocks(self, core: int, blocks: np.ndarray, write: bool) -> None:
        for rnd in iter_rounds_generic(blocks, self._round):
            self._access_round(core, rnd, write)

    # -- persistence -----------------------------------------------------------

    def flush(self, block_lo: int, block_hi: int, invalidate: bool = False) -> tuple[int, int]:
        blocks = np.arange(block_lo, block_hi, dtype=np.int64)
        return self.flush_blocks(blocks, invalidate)

    def flush_blocks(self, blocks: np.ndarray, invalidate: bool = False) -> tuple[int, int]:
        blocks = np.asarray(blocks, dtype=np.int64)
        self.llc.stats.flush_issued += int(blocks.size)
        dirty_any = np.zeros(blocks.size, dtype=bool)
        for cache in (*self.l1s, self.llc):
            if invalidate:
                _present, was_dirty = cache.remove(blocks)
            else:
                _present, was_dirty = cache.clean(blocks)
            dirty_any |= was_dirty
        self.llc.stats.flush_dirty_hits += int(dirty_any.sum())
        self._writeback(blocks[dirty_any], "flush")
        return int(blocks.size), int(dirty_any.sum())

    def writeback_all(self) -> int:
        dirty: np.ndarray | None = None
        for cache in (*self.l1s, self.llc):
            b = cache.writeback_all()
            dirty = b if dirty is None else np.union1d(dirty, b)
        assert dirty is not None
        self._writeback(dirty, "drain")
        return int(dirty.size)

    def invalidate_all(self) -> None:
        """A crash: every core's caches and the LLC lose their contents."""
        for cache in (*self.l1s, self.llc):
            cache.invalidate_all()

    # -- analysis ---------------------------------------------------------------

    def resident_dirty_blocks(self) -> np.ndarray:
        out: np.ndarray | None = None
        for cache in (*self.l1s, self.llc):
            b = cache.resident_dirty_blocks()
            out = b if out is None else np.union1d(out, b)
        assert out is not None
        return out

    def dirty_owner(self, block: int) -> str | None:
        """Which cache holds the block MODIFIED (coherence invariant:
        at most one private owner)."""
        owners = [
            f"L1.{c}"
            for c, l1 in enumerate(self.l1s)
            if l1.contains(np.array([block])).any()
            and block in l1.resident_dirty_blocks()
        ]
        if len(owners) > 1:
            raise AssertionError(f"coherence violation: {owners}")
        if owners:
            return owners[0]
        if block in self.llc.resident_dirty_blocks():
            return "LLC"
        return None

"""Golden-pass crash simulation: one execution, N crash images.

The legacy campaign path materializes a full copy of every restart-relevant
object's NVM image — plus a full-heap architectural-vs-NVM diff — at each
of the N crash points of the single instrumented execution, so snapshot
production costs ``O(N x heap_bytes)`` even though the execution itself
runs only once.

This module replaces that with a *golden pass*:

* :class:`GoldenRecorder` rides the instrumented run.  It captures one
  base NVM image per object at the start of the crash window, then logs
  every NVM write-back as a ``(segment, byte_idx, values)`` delta, where a
  *segment* is the span between consecutive crash points (persist-op /
  access boundaries included).  Inconsistent rates are maintained
  incrementally: stores and write-backs mark their blocks stale, and a
  crash point only re-diffs the stale blocks — exact, because a block's
  architectural and NVM bytes can only change through those two paths.
* :class:`GoldenStore` replays the deltas after the run.  Per object the
  deltas are concatenated into flat arrays with a prefix-reduction
  (``searchsorted`` over segment ids -> cumulative element bounds), so
  materializing crash image *k* is "patch everything up to bound[k+1]" —
  a pair of vectorized fancy assignments per object, not a heap copy.
  Ascending batches of crash points share one rolling buffer; consumers
  either *borrow* read-only views (zero-copy, valid until the next image)
  or request stable copies (parallel classification, which ships packed
  payloads anyway).

The reconstructed snapshots are bit-identical to the legacy path's — the
same bytes land in NVM in the same event order, and the incremental rate
bookkeeping counts exactly the bytes a full diff would — which is proven
by the equivalence suite in ``tests/nvct/test_golden.py``.

Telemetry: ``golden.deltas_recorded`` / ``golden.delta_bytes`` (recording,
published by the runtime), ``golden.images_materialized`` /
``golden.bytes_copied`` / ``golden.replay_ms`` (replay, published here).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.memsim.blocks import BLOCK_SIZE

if TYPE_CHECKING:  # imported lazily at runtime (nvct depends on memsim)
    from repro.nvct.heap import DataObject, PersistentHeap
    from repro.nvct.runtime import Snapshot

__all__ = ["GoldenRecorder", "GoldenStore", "GoldenSnapshotSource"]

_ARANGE_B = np.arange(BLOCK_SIZE, dtype=np.int64)


@dataclass
class _ImageMeta:
    """Crash-point metadata recorded in place of a full snapshot."""

    counter: int
    iteration: int
    region: str
    rates: dict[str, float]


@dataclass
class _Tracked:
    """Per-object recording state (restart-relevant objects only)."""

    obj: "DataObject"
    base: np.ndarray  # NVM image at the start of the crash window
    seg: list[int] = field(default_factory=list)  # segment id per delta event
    idx: list[np.ndarray] = field(default_factory=list)  # byte indices per event
    vals: list[np.ndarray] = field(default_factory=list)  # byte values per event
    # Rate bookkeeping (candidates only; None for the loop iterator).
    stale: np.ndarray | None = None  # per-block "re-diff me" mask
    counts: np.ndarray | None = None  # per-block differing-byte counts
    total: int = 0  # sum(counts) maintained incrementally


class GoldenRecorder:
    """Records per-segment NVM write-back deltas during one instrumented run.

    Installed by the runtime as the heap's delta sink; ``mark_base`` is
    called at the first ``main_loop_begin`` (right after the init-phase
    ``sync_nvm``), ``take`` at every crash point, and ``build_store`` after
    the run.  Recording stops by itself once all expected images are taken.
    """

    def __init__(self, heap: "PersistentHeap", n_images: int) -> None:
        self.heap = heap
        self.n_images = int(n_images)
        self._tracked: dict[str, _Tracked] = {}
        self._rate_order: list[_Tracked] = []
        self._metas: list[_ImageMeta] = []
        self._extras: dict[int, dict[str, tuple[np.ndarray, np.ndarray]]] | None = None
        self._active = False
        self.deltas_recorded = 0
        self.delta_bytes = 0

    @property
    def n_taken(self) -> int:
        return len(self._metas)

    # -- recording hooks ------------------------------------------------------

    def mark_base(self) -> None:
        """Capture base NVM images at the start of the crash window.

        Objects are enumerated here (not at construction) because the heap
        is still being populated when the runtime attaches; by the first
        ``main_loop_begin`` every allocation has happened and ``sync_nvm``
        has made data == nvm, so all diff counts start at zero."""
        self._tracked.clear()
        self._rate_order = []
        for o in self.heap._order:
            if not (o.candidate or o.role == "iterator"):
                continue
            t = _Tracked(obj=o, base=o.nvm_bytes[: o.nbytes].copy())
            if o.candidate and o.role == "data":
                t.stale = np.zeros(o.nblocks, dtype=bool)
                t.counts = np.zeros(o.nblocks, dtype=np.int64)
                self._rate_order.append(t)
            self._tracked[o.name] = t
        self._metas = []
        self._extras = None
        self._active = True

    def on_writeback(
        self,
        obj: "DataObject",
        rel_blocks: np.ndarray,
        byte_idx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """Heap delta sink: ``vals`` were just persisted at ``byte_idx``."""
        if not self._active:
            return
        t = self._tracked.get(obj.name)
        if t is None:
            return
        # byte_idx / vals are freshly materialized by the heap and never
        # mutated afterwards, so they are stored without copying.
        t.seg.append(len(self._metas))
        t.idx.append(byte_idx)
        t.vals.append(vals)
        self.deltas_recorded += 1
        self.delta_bytes += int(byte_idx.size)
        if t.stale is not None:
            t.stale[rel_blocks] = True

    def on_store(self, obj: "DataObject", byte_lo: int, byte_hi: int) -> None:
        """Architectural store over an object-relative byte range."""
        if not self._active:
            return
        t = self._tracked.get(obj.name)
        if t is None or t.stale is None:
            return
        t.stale[byte_lo // BLOCK_SIZE : (byte_hi - 1) // BLOCK_SIZE + 1] = True

    def on_store_blocks(self, obj: "DataObject", blocks: np.ndarray) -> None:
        """Architectural scatter store over absolute block ids."""
        if not self._active:
            return
        t = self._tracked.get(obj.name)
        if t is None or t.stale is None:
            return
        t.stale[blocks - obj.base_block] = True

    def take(
        self,
        counter: int,
        iteration: int,
        region: str,
        extras: dict[str, tuple[np.ndarray, np.ndarray, int]] | None = None,
    ) -> None:
        """Record one crash point: metadata plus exact inconsistent rates.

        Only blocks touched since the previous crash point are re-diffed;
        untouched blocks keep their cached counts, so the rates equal a
        full architectural-vs-NVM diff bit for bit at a fraction of the
        cost.

        ``extras`` carries a crash model's survivor overlay for this image
        (``{name: (byte_idx, values, fixed)}``): the overlay bytes are
        stored for replay and ``fixed`` — the count of overlay bytes that
        differed from the NVM image — is subtracted from the raw diff,
        which equals a post-overlay full diff exactly (overlay bytes are
        architectural, so they can only turn differing bytes equal)."""
        rates: dict[str, float] = {}
        for t in self._rate_order:
            o = t.obj
            assert t.stale is not None and t.counts is not None
            sb = np.nonzero(t.stale)[0]
            if sb.size:
                old = int(t.counts[sb].sum())
                self._recount(t, sb)
                t.total += int(t.counts[sb].sum()) - old
                t.stale[sb] = False
            total = t.total
            if extras is not None and o.name in extras:
                total -= extras[o.name][2]
            rates[o.name] = total / o.nbytes if o.nbytes else 0.0
        if extras is not None:
            if self._extras is None:
                self._extras = {}
            self._extras[len(self._metas)] = {
                name: (idx, vals) for name, (idx, vals, _fixed) in extras.items()
                if name in self._tracked
            }
        self._metas.append(_ImageMeta(counter, iteration, region, rates))
        if len(self._metas) >= self.n_images:
            self._active = False  # past the last crash point: stop recording

    @staticmethod
    def _recount(t: _Tracked, sb: np.ndarray) -> None:
        o = t.obj
        nb = o.nbytes
        assert t.counts is not None
        full = sb[(sb + 1) * BLOCK_SIZE <= nb]
        if full.size:
            byte_idx = (full[:, None] * BLOCK_SIZE + _ARANGE_B).ravel()
            neq = o.data_bytes[byte_idx] != o.nvm_bytes[byte_idx]
            t.counts[full] = neq.reshape(-1, BLOCK_SIZE).sum(axis=1)
        for b in sb[(sb + 1) * BLOCK_SIZE > nb]:  # the padded tail block
            lo = int(b) * BLOCK_SIZE
            t.counts[b] = int(np.count_nonzero(o.data_bytes[lo:nb] != o.nvm_bytes[lo:nb]))

    # -- store construction ---------------------------------------------------

    def build_store(self) -> "GoldenStore":
        """Freeze the log into a replayable :class:`GoldenStore`.

        Per object, event deltas are concatenated into flat index/value
        arrays and the per-image element bounds are derived by a single
        ``searchsorted`` over the (non-decreasing) segment ids — the
        prefix-reduction that lets replay jump between crash points."""
        if self.n_images and not self._tracked:
            raise RuntimeError("golden recorder never saw main_loop_begin")
        n = len(self._metas)
        base: dict[str, np.ndarray] = {}
        idx: dict[str, np.ndarray] = {}
        vals: dict[str, np.ndarray] = {}
        bounds: dict[str, np.ndarray] = {}
        for name, t in self._tracked.items():
            base[name] = t.base
            if t.seg:
                sizes = np.fromiter((a.size for a in t.idx), dtype=np.int64, count=len(t.idx))
                offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])
                ev_seg = np.asarray(t.seg, dtype=np.int64)
                # bounds[j] = elements persisted before image j fired.
                ev_bound = np.searchsorted(ev_seg, np.arange(n + 1, dtype=np.int64), side="left")
                idx[name] = np.concatenate(t.idx)
                vals[name] = np.concatenate(t.vals)
                bounds[name] = offsets[ev_bound]
            else:
                idx[name] = np.empty(0, dtype=np.int64)
                vals[name] = np.empty(0, dtype=np.uint8)
                bounds[name] = np.zeros(n + 1, dtype=np.int64)
        return GoldenStore(
            metas=list(self._metas), base=base, idx=idx, vals=vals, bounds=bounds,
            extras=self._extras,
        )


class GoldenStore:
    """Replayable delta store: reconstructs crash-time NVM images on demand."""

    def __init__(
        self,
        metas: list[_ImageMeta],
        base: dict[str, np.ndarray],
        idx: dict[str, np.ndarray],
        vals: dict[str, np.ndarray],
        bounds: dict[str, np.ndarray],
        extras: dict[int, dict[str, tuple[np.ndarray, np.ndarray]]] | None = None,
    ) -> None:
        self._metas = metas
        self._base = base
        self._idx = idx
        self._vals = vals
        self._bounds = bounds
        # Per-image crash-model survivor overlays (None for the default
        # whole-cache-loss model): applied on top of the delta prefix when
        # an image is materialized, undone before advancing to the next.
        self._extras = extras
        self._names = list(base)
        self.images_materialized = 0
        self.bytes_copied = 0
        self.replay_ms = 0.0

    @property
    def n_images(self) -> int:
        return len(self._metas)

    def counters(self) -> list[int]:
        """Access-counter value of every recorded crash point (in order)."""
        return [m.counter for m in self._metas]

    def image_signatures(self) -> list[tuple[int, ...]]:
        """Dirty-block signature of every crash image, in order.

        The signature of image *k* is the per-object delta-array bound
        vector ``(bounds[name][k+1] for name in sorted objects)``: two
        crash points with equal signatures received exactly the same
        write-back prefix on every restart-relevant object, so their
        reconstructed NVM images — and therefore the deterministic
        restart outcome — are bit-identical.  This is what the analyzer's
        equivalence pass partitions the crash-point space by.  Bounds are
        monotone per object, so equal signatures can only occur on
        consecutive crash points.

        When the store carries crash-model survivor overlays, each
        signature gains one trailing element: a digest of the image's
        overlay bytes, so two points are only merged when both the
        persisted prefix *and* the surviving cache bytes agree.  Default
        (whole-cache-loss) signatures are unchanged.
        """
        names = sorted(self._names)
        n = self.n_images
        sigs: list[tuple[int, ...]] = []
        for k in range(n):
            sig = tuple(int(self._bounds[name][k + 1]) for name in names)
            if self._extras is not None:
                sig = sig + (self._extras_digest(self._extras.get(k, {})),)
            sigs.append(sig)
        return sigs

    @staticmethod
    def _extras_digest(overlay: dict[str, tuple[np.ndarray, np.ndarray]]) -> int:
        h = hashlib.blake2b(digest_size=8)
        for name in sorted(overlay):
            idx, vals = overlay[name]
            h.update(name.encode())
            h.update(idx.tobytes())
            h.update(vals.tobytes())
        return int.from_bytes(h.digest(), "little")

    def image_meta(self, k: int) -> tuple[int, int, str, dict[str, float]]:
        """``(counter, iteration, region, rates)`` of crash image ``k``."""
        m = self._metas[k]
        return m.counter, m.iteration, m.region, dict(m.rates)

    def snapshots(
        self, indices: Iterable[int] | None = None, copy: bool = False
    ) -> Iterator["Snapshot"]:
        """Yield :class:`~repro.nvct.runtime.Snapshot` objects for the given
        strictly-ascending crash-point ``indices`` (default: all).

        One rolling buffer per object is patched forward through the delta
        arrays; skipped crash points cost only their deltas.  With
        ``copy=False`` the yielded ``nvm_state`` arrays are read-only
        *borrowed views* that are invalidated by the next iteration — the
        zero-copy contract for in-process, one-at-a-time consumption.
        ``copy=True`` yields stable read-only copies (counted in
        ``golden.bytes_copied``) for consumers that retain or ship them.
        """
        from repro.nvct.runtime import Snapshot

        idx_list = list(range(self.n_images)) if indices is None else [int(i) for i in indices]
        yielded = 0
        copied = 0
        spent = 0.0
        cur: dict[str, np.ndarray] = {}
        views: dict[str, np.ndarray] = {}
        pos = dict.fromkeys(self._names, 0)
        try:
            t0 = time.perf_counter()
            for name in self._names:
                a = self._base[name].copy()
                cur[name] = a
                v = a[:]
                v.flags.writeable = False
                views[name] = v
            spent += time.perf_counter() - t0
            prev = -1
            undo: list[tuple[str, np.ndarray, np.ndarray]] = []
            for k in idx_list:
                if not prev < k < self.n_images:
                    raise IndexError(
                        f"snapshot indices must be strictly ascending and < {self.n_images}"
                    )
                t0 = time.perf_counter()
                # Undo the previous image's survivor overlay before rolling
                # forward: the delta prefix must patch pristine NVM bytes.
                for name, uidx, saved in undo:
                    cur[name][uidx] = saved
                undo = []
                for name in self._names:
                    hi = int(self._bounds[name][k + 1])
                    lo = pos[name]
                    if hi > lo:
                        # Duplicate byte indices resolve last-write-wins
                        # under NumPy fancy assignment — event order.
                        cur[name][self._idx[name][lo:hi]] = self._vals[name][lo:hi]
                        pos[name] = hi
                if self._extras is not None:
                    for name, (eidx, evals) in self._extras.get(k, {}).items():
                        buf = cur.get(name)
                        if buf is None:
                            continue
                        undo.append((name, eidx, buf[eidx].copy()))
                        buf[eidx] = evals
                m = self._metas[k]
                if copy:
                    state = {}
                    for name in self._names:
                        c = cur[name].copy()
                        c.flags.writeable = False
                        state[name] = c
                        copied += c.nbytes
                else:
                    state = dict(views)
                snap = Snapshot(
                    index=k,
                    counter=m.counter,
                    iteration=m.iteration,
                    region=m.region,
                    nvm_state=state,
                    rates=dict(m.rates),
                    consistent_state=None,
                )
                spent += time.perf_counter() - t0
                # Count before yielding: the image exists by now, and a
                # consumer that stops pulling at the last item (zip) never
                # resumes the generator past this yield.
                yielded += 1
                prev = k
                yield snap
        finally:
            self.images_materialized += yielded
            self.bytes_copied += copied
            self.replay_ms += spent * 1000.0
            from repro.obs import registry

            if (reg := registry()) is not None:
                reg.counter("golden.images_materialized", unit="images").inc(yielded)
                if copied:
                    reg.counter("golden.bytes_copied", unit="bytes").inc(copied)
                reg.counter("golden.replay_ms", unit="ms").inc(spent * 1000.0)


class GoldenSnapshotSource:
    """Adapter feeding a :class:`GoldenStore` to the parallel engine.

    Exposes the ``len`` / ``get(lo, hi)`` snapshot-source protocol of
    :mod:`repro.nvct.parallel` over an index subset.  Sequential ranges
    advance one shared replay generator; an out-of-order request (the
    serial-fallback path re-reading an already-packed chunk) restarts a
    fresh replay from the base images, so every range is pristine no
    matter what happened to previously shipped payloads."""

    def __init__(self, store: GoldenStore, indices: Iterable[int]) -> None:
        self._store = store
        self._indices = [int(i) for i in indices]
        self._gen: Iterator["Snapshot"] | None = None
        self._pos = 0

    def __len__(self) -> int:
        return len(self._indices)

    def get(self, lo: int, hi: int) -> list["Snapshot"]:
        if hi <= lo:
            return []
        if self._gen is None or lo != self._pos:
            self._gen = self._store.snapshots(self._indices[lo:], copy=True)
            self._pos = lo
        out = [next(self._gen) for _ in range(hi - lo)]
        self._pos = hi
        return out

"""Event counters for the cache/NVM simulation.

The performance model (``repro.perf``) and the write-endurance analysis
(Fig. 9) are both derived from these counters, so they are the simulator's
primary output next to the NVM value image.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.metrics import MetricRegistry

__all__ = ["CacheStats", "MemoryStats"]


@dataclass
class CacheStats:
    """Per-cache-level event counters."""

    read_accesses: int = 0
    write_accesses: int = 0
    read_hits: int = 0
    write_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    flush_issued: int = 0
    flush_dirty_hits: int = 0
    flush_clean_hits: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "CacheStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def publish(self, reg: "MetricRegistry", prefix: str) -> None:
        """Add this level's event counts to the telemetry registry
        (``<prefix>.read_hits`` etc.) — called at run boundaries, never
        on the access path, so simulation speed is unaffected."""
        for f in fields(self):
            reg.counter(f"{prefix}.{f.name}", unit="blocks").inc(getattr(self, f.name))
        reg.counter(f"{prefix}.misses", unit="blocks").inc(self.misses)


@dataclass
class MemoryStats:
    """NVM-side event counters (what the endurance study cares about).

    ``nvm_writes`` counts dirty blocks written back from the last-level
    cache (evictions, flushes and end-of-run write-back-all), matching the
    paper's methodology: "Whenever a dirty cache block is written back from
    the last level cache to NVM, we count the number of writes by one."
    """

    nvm_writes: int = 0
    nvm_writes_from_evictions: int = 0
    nvm_writes_from_flushes: int = 0
    nvm_writes_from_drain: int = 0
    nvm_writes_from_nt: int = 0  # non-temporal (cache-bypassing) stores
    nvm_fills: int = 0
    # Write-back *events* (sink invocations): the granularity at which the
    # golden-pass recorder logs deltas, so events x mean-blocks-per-event
    # bounds the replay log size.
    nvm_writeback_events: int = 0
    per_level: dict[str, CacheStats] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        d: dict[str, object] = {
            "nvm_writes": self.nvm_writes,
            "nvm_writes_from_evictions": self.nvm_writes_from_evictions,
            "nvm_writes_from_flushes": self.nvm_writes_from_flushes,
            "nvm_writes_from_drain": self.nvm_writes_from_drain,
            "nvm_writes_from_nt": self.nvm_writes_from_nt,
            "nvm_fills": self.nvm_fills,
            "nvm_writeback_events": self.nvm_writeback_events,
        }
        for name, cs in self.per_level.items():
            d[name] = cs.as_dict()
        return d

    def publish(self, reg: "MetricRegistry", prefix: str = "memsim") -> None:
        """Add NVM-side and per-level counters to the telemetry registry."""
        reg.counter(f"{prefix}.nvm_writes", unit="blocks").inc(self.nvm_writes)
        reg.counter(f"{prefix}.nvm_writes_from_evictions", unit="blocks").inc(
            self.nvm_writes_from_evictions
        )
        reg.counter(f"{prefix}.nvm_writes_from_flushes", unit="blocks").inc(
            self.nvm_writes_from_flushes
        )
        reg.counter(f"{prefix}.nvm_writes_from_drain", unit="blocks").inc(
            self.nvm_writes_from_drain
        )
        reg.counter(f"{prefix}.nvm_writes_from_nt", unit="blocks").inc(self.nvm_writes_from_nt)
        reg.counter(f"{prefix}.nvm_fills", unit="blocks").inc(self.nvm_fills)
        reg.counter(f"{prefix}.nvm_writeback_events", unit="events").inc(
            self.nvm_writeback_events
        )
        for name, cs in self.per_level.items():
            cs.publish(reg, f"{prefix}.{name}")

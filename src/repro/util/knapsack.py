"""Knapsack solvers for EasyCrash's code-region selection (Sec. 5.2).

The paper casts region selection as a 0-1 knapsack: item weight is the
runtime performance loss of persisting at a region, item value is the
recomputability gained, and capacity is the user overhead bound ``ts``.
With per-loop flush frequencies (Eq. 5) each region contributes a *group*
of mutually exclusive options, i.e. a multiple-choice knapsack.  Both are
solved exactly by dynamic programming over discretized weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KnapsackSolution", "knapsack_01", "knapsack_multiple_choice"]


@dataclass(frozen=True)
class KnapsackSolution:
    """Result of a knapsack DP: chosen items, total value and weight."""

    value: float
    weight: float
    chosen: tuple[int, ...]


def _discretize(weights: list[float], capacity: float, resolution: int) -> tuple[list[int], int]:
    """Map float weights to integer grid units, rounding weights *up* so the
    float capacity constraint can never be violated by rounding."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    if capacity == 0:
        return [0 if w <= 0 else resolution + 1 for w in weights], 0
    scale = resolution / capacity
    grid = []
    for w in weights:
        if w <= 0:
            grid.append(0)
            continue
        g = w * scale
        # Overweight or numerically degenerate (subnormal capacity): unfit.
        grid.append(int(np.ceil(g - 1e-12)) if np.isfinite(g) and g <= resolution else resolution + 1)
    return grid, resolution


def knapsack_01(
    values: list[float],
    weights: list[float],
    capacity: float,
    resolution: int = 1000,
) -> KnapsackSolution:
    """Exact 0-1 knapsack via DP over a discretized weight grid.

    ``resolution`` sets the grid granularity: weights are scaled so the
    capacity maps to ``resolution`` units and rounded up (conservative).
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    n = len(values)
    grid, cap = _discretize(list(weights), capacity, resolution)
    # dp[w] = best value at weight exactly <= w ; keep parent pointers.
    dp = np.zeros(cap + 1, dtype=float)
    take = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        w, v = grid[i], values[i]
        if w > cap or v <= 0:
            continue
        cand = dp[: cap + 1 - w] + v
        region = dp[w:]
        better = cand > region + 1e-15
        region[better] = cand[better]
        take[i, w:][better] = True
    best_w = int(np.argmax(dp))
    chosen: list[int] = []
    w = best_w
    for i in range(n - 1, -1, -1):
        if take[i, w]:
            chosen.append(i)
            w -= grid[i]
    chosen.reverse()
    total_w = float(sum(weights[i] for i in chosen))
    total_v = float(sum(values[i] for i in chosen))
    return KnapsackSolution(total_v, total_w, tuple(chosen))


def knapsack_multiple_choice(
    groups: list[list[tuple[float, float]]],
    capacity: float,
    resolution: int = 1000,
) -> KnapsackSolution:
    """Multiple-choice knapsack: pick at most one ``(value, weight)`` option
    per group, maximizing total value subject to the weight capacity.

    Returns ``chosen`` as a tuple of option indices per group (-1 = skip).
    """
    flat_weights = [w for g in groups for (_, w) in g]
    grid_all, cap = _discretize(flat_weights, capacity, resolution)
    grids: list[list[int]] = []
    pos = 0
    for g in groups:
        grids.append(grid_all[pos : pos + len(g)])
        pos += len(g)

    neg_inf = -np.inf
    dp = np.zeros(cap + 1, dtype=float)
    choice = np.full((len(groups), cap + 1), -1, dtype=np.int32)
    for gi, g in enumerate(groups):
        new_dp = dp.copy()  # option: skip the group
        for oi, (v, _w) in enumerate(g):
            w = grids[gi][oi]
            if w > cap:
                continue
            cand = np.full(cap + 1, neg_inf)
            cand[w:] = dp[: cap + 1 - w] + v
            better = cand > new_dp + 1e-15
            new_dp[better] = cand[better]
            choice[gi, better] = oi
        dp = new_dp
    best_w = int(np.argmax(dp))
    chosen = [-1] * len(groups)
    w = best_w
    for gi in range(len(groups) - 1, -1, -1):
        oi = int(choice[gi, w])
        chosen[gi] = oi
        if oi >= 0:
            w -= grids[gi][oi]
    total_v = float(sum(groups[gi][oi][0] for gi, oi in enumerate(chosen) if oi >= 0))
    total_w = float(sum(groups[gi][oi][1] for gi, oi in enumerate(chosen) if oi >= 0))
    return KnapsackSolution(total_v, total_w, tuple(chosen))

"""Rank statistics used by EasyCrash's data-object selection.

The paper selects critical data objects with Spearman's rank correlation
between each object's data-inconsistent rate and the recomputation outcome
across a crash-test campaign (Sec. 5.1).  We implement the tie-corrected
coefficient and its two-sided p-value (t approximation) from first
principles; the test suite cross-checks against ``scipy.stats.spearmanr``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SpearmanResult", "spearman", "rankdata_average"]


def rankdata_average(values: np.ndarray) -> np.ndarray:
    """Rank data (1-based) with ties assigned the average of their ranks.

    Equivalent to ``scipy.stats.rankdata(values, method="average")``.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("rankdata_average expects a 1-D array")
    n = values.size
    order = np.argsort(values, kind="stable")
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.arange(1, n + 1, dtype=float)
    # Average ranks within tie groups.
    sorted_vals = values[order]
    # Boundaries of runs of equal values.
    boundary = np.flatnonzero(np.diff(sorted_vals) != 0) + 1
    starts = np.concatenate(([0], boundary))
    ends = np.concatenate((boundary, [n]))
    for lo, hi in zip(starts, ends):
        if hi - lo > 1:
            ranks[order[lo:hi]] = 0.5 * (lo + 1 + hi)
    return ranks


@dataclass(frozen=True)
class SpearmanResult:
    """Spearman rank correlation coefficient and its two-sided p-value."""

    rho: float
    pvalue: float
    n: int

    def significant(self, alpha: float = 0.01) -> bool:
        """True when the correlation is statistically significant."""
        return not math.isnan(self.rho) and self.pvalue < alpha


def _student_t_sf(t: float, df: float) -> float:
    """Survival function of Student's t via the regularized incomplete beta.

    ``P(T > t)`` for ``t >= 0``; symmetric otherwise.
    """
    if df <= 0:
        return float("nan")
    if math.isinf(t):
        return 0.0 if t > 0 else 1.0
    x = df / (df + t * t)
    # I_x(df/2, 1/2) = P(|T| > |t|); use the regularized incomplete beta
    # through scipy when available, else a continued-fraction fallback.
    try:
        from scipy.special import betainc

        p_two_sided = float(betainc(df / 2.0, 0.5, x))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        p_two_sided = _betainc_cf(df / 2.0, 0.5, x)
    half = 0.5 * p_two_sided
    return half if t >= 0 else 1.0 - half


def _betainc_cf(a: float, b: float, x: float, max_iter: int = 200) -> float:
    """Regularized incomplete beta by Lentz's continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x, max_iter) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x, max_iter) / b


def _betacf(a: float, b: float, x: float, max_iter: int) -> float:
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def spearman(x: np.ndarray, y: np.ndarray) -> SpearmanResult:
    """Spearman rank correlation with a two-sided t-approximation p-value.

    Returns ``rho = nan, p = 1`` when either input is constant (the
    correlation is undefined; such objects are never selected as critical).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("spearman expects two equal-length 1-D arrays")
    n = x.size
    if n < 3:
        return SpearmanResult(float("nan"), 1.0, n)
    if np.ptp(x) == 0.0 or np.ptp(y) == 0.0:
        return SpearmanResult(float("nan"), 1.0, n)
    rx = rankdata_average(x)
    ry = rankdata_average(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = math.sqrt(float(rx @ rx) * float(ry @ ry))
    if denom == 0.0:
        return SpearmanResult(float("nan"), 1.0, n)
    rho = float(rx @ ry) / denom
    rho = max(-1.0, min(1.0, rho))
    if abs(rho) >= 1.0:
        return SpearmanResult(rho, 0.0, n)
    t = rho * math.sqrt((n - 2) / (1.0 - rho * rho))
    p = 2.0 * _student_t_sf(abs(t), n - 2)
    return SpearmanResult(rho, min(1.0, max(0.0, p)), n)

"""Shared utilities: deterministic RNG, rank statistics, knapsack solvers,
and plain-text table rendering used by the experiment harness."""

from repro.util.rng import derive_rng, derive_seed
from repro.util.stats import SpearmanResult, spearman
from repro.util.knapsack import knapsack_01, knapsack_multiple_choice
from repro.util.tables import render_table

__all__ = [
    "derive_rng",
    "derive_seed",
    "SpearmanResult",
    "spearman",
    "knapsack_01",
    "knapsack_multiple_choice",
    "render_table",
]

"""Deterministic random-number helpers.

Every stochastic component (crash-point sampling, workload generation,
Monte Carlo kernels) derives its generator from a root seed plus a string
key, so whole experiment campaigns replay bit-identically.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng"]


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a key path.

    The derivation hashes ``root_seed`` together with the string forms of
    ``keys``; it is stable across processes and Python versions (unlike
    ``hash``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for key in keys:
        h.update(b"\x00")
        h.update(str(key).encode())
    return int.from_bytes(h.digest(), "little")


def derive_rng(root_seed: int, *keys: object) -> np.random.Generator:
    """Return a ``numpy`` Generator seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(root_seed, *keys))

"""Plain-text table rendering for the experiment harness.

The benchmark drivers regenerate the paper's tables and figure series as
aligned ASCII tables on stdout, in the same row/column layout the paper
reports.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(v: object, float_fmt: str = "{:.3f}") -> str:
    """Render a cell: floats via ``float_fmt``, percents for tagged tuples."""
    if isinstance(v, float):
        return float_fmt.format(v)
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table with an optional title line."""
    str_rows = [[format_value(c, float_fmt) for c in row] for row in rows]
    cols = len(headers)
    for r in str_rows:
        if len(r) != cols:
            raise ValueError("row width does not match header width")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)

"""System MTBF scaling.

The paper anchors on Blue Waters-scale measurements (Martino et al.):
~2 failures/day at 100,000 nodes (MTBF = 12 h), and scales inversely with
node count (Fang et al.) — 6 h at 200k nodes, 3 h at 400k.
"""

from __future__ import annotations

__all__ = ["mtbf_for_nodes", "HOUR"]

HOUR = 3600.0
_REFERENCE_NODES = 100_000
_REFERENCE_MTBF_S = 12 * HOUR


def mtbf_for_nodes(nodes: int) -> float:
    """System MTBF in seconds for a machine of ``nodes`` nodes."""
    if nodes <= 0:
        raise ValueError("node count must be positive")
    return _REFERENCE_MTBF_S * _REFERENCE_NODES / nodes

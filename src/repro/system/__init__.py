"""End-to-end system-efficiency emulation (paper Sec. 7).

Analytic model of a large-scale machine running a long job under
synchronous coordinated checkpoint/restart, with and without EasyCrash:
Young's checkpoint interval, Eq. 6-9's time accounting, MTBF scaling with
machine size, and the recomputability threshold τ.
"""

from repro.system.efficiency import (
    SystemParams,
    efficiency_baseline,
    efficiency_easycrash,
    efficiency_improvement,
    recomputability_threshold,
)
from repro.system.mtbf import mtbf_for_nodes

__all__ = [
    "SystemParams",
    "efficiency_baseline",
    "efficiency_easycrash",
    "efficiency_improvement",
    "recomputability_threshold",
    "mtbf_for_nodes",
]

"""System-efficiency model (paper Sec. 7, Eqs. 6-9).

Notation follows the paper.  The total system time is fixed (10 years in
the evaluation); the model solves for the number of checkpoints ``N`` and
reports efficiency = useful computation / total time.

Without EasyCrash (Eq. 6)::

    Total = N (T + T_chk) + M (T_vain + T_r + T_sync),  M = Total / MTBF

with Young's interval ``T = sqrt(2 T_chk MTBF)``, ``T_vain = T/2``,
``T_r = T_chk`` and ``T_sync = 0.5 T_chk``.

With EasyCrash (Eqs. 8-9), a fraction ``R`` of the ``M`` crashes restart
from NVM at cost ``T_r' + T_sync`` (T_r' is the time to reload data
objects from NVM-resident memory — seconds, not minutes) and lose no
computed work; the rest roll back to the last checkpoint.  The checkpoint
interval stretches to ``T' = sqrt(2 T_chk MTBF/(1-R))`` and the useful
computation carries EasyCrash's runtime overhead ``ts``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from repro.checkpoint.multilevel import CorrelatedFailureProcess

__all__ = [
    "SystemParams",
    "efficiency_baseline",
    "efficiency_baseline_under",
    "efficiency_easycrash",
    "efficiency_easycrash_under",
    "efficiency_by_crash_model",
    "efficiency_measured_multinode",
    "efficiency_improvement",
    "recomputability_threshold",
]

YEAR = 365.0 * 24 * 3600


@dataclass(frozen=True)
class SystemParams:
    """Machine/application parameters of the Sec. 7 emulation."""

    mtbf_s: float
    t_chk_s: float
    total_time_s: float = 10 * YEAR
    sync_fraction: float = 0.5  # T_sync = fraction * T_chk (Fang et al.)
    t_r_nvm_s: float = 2.0  # EasyCrash reload from NVM (T_r')

    def __post_init__(self) -> None:
        if min(self.mtbf_s, self.t_chk_s, self.total_time_s) <= 0:
            raise ValueError("times must be positive")

    @property
    def t_sync(self) -> float:
        return self.sync_fraction * self.t_chk_s

    @property
    def t_restore(self) -> float:
        return self.t_chk_s  # paper: T_r = T_chk

    def young_interval(self, mtbf: float | None = None) -> float:
        """Young's optimum checkpoint interval, capped by the total time."""
        t = math.sqrt(2.0 * self.t_chk_s * (mtbf or self.mtbf_s))
        return min(t, self.total_time_s)


def efficiency_baseline(p: SystemParams) -> float:
    """Eq. 6: efficiency of C/R without EasyCrash."""
    t = p.young_interval()
    m = p.total_time_s / p.mtbf_s
    recovery = m * (t / 2.0 + p.t_restore + p.t_sync)
    n = (p.total_time_s - recovery) / (t + p.t_chk_s)
    useful = max(0.0, n * t)
    return min(1.0, useful / p.total_time_s)


def _restart_sync(p: SystemParams, nodes: int | None) -> float:
    """Coordination charge for an NVM restart, gated on surviving peers.

    ``T_sync`` is a cross-node barrier: restarting peers re-join the
    surviving checkpointing nodes.  With no topology (``nodes=None``) the
    historical behaviour — always charge it — is kept for backward
    compatibility with Eq. 9.  With a known topology the charge applies
    only when there *are* peers to coordinate with: a single-node system
    (or one where a burst took every node) pays no barrier on restart.
    """
    if nodes is not None and nodes <= 1:
        return 0.0
    return p.t_sync


def efficiency_easycrash(
    p: SystemParams, recomputability: float, ts: float, nodes: int | None = None
) -> float:
    """Eqs. 8-9: efficiency with EasyCrash at the given recomputability
    ``R`` and runtime overhead ``ts``.

    ``nodes`` (optional) gates the NVM-restart coordination term on the
    surviving-node count — see :func:`_restart_sync`."""
    if not 0.0 <= recomputability < 1.0:
        if recomputability >= 1.0:
            recomputability = 1.0 - 1e-9
        else:
            raise ValueError("recomputability must be in [0, 1)")
    if not 0.0 <= ts < 1.0:
        raise ValueError("ts must be in [0, 1)")
    mtbf_ec = p.mtbf_s / (1.0 - recomputability)
    t_prime = p.young_interval(mtbf_ec)
    m = p.total_time_s / p.mtbf_s
    m_rollback = m * (1.0 - recomputability)
    m_recompute = m * recomputability
    recovery = m_rollback * (t_prime / 2.0 + p.t_restore + p.t_sync)
    recovery += m_recompute * (p.t_r_nvm_s + _restart_sync(p, nodes))
    n = (p.total_time_s - recovery) / (t_prime + p.t_chk_s)
    useful = max(0.0, n * t_prime) * (1.0 - ts)
    return min(1.0, useful / p.total_time_s)


def efficiency_improvement(p: SystemParams, recomputability: float, ts: float) -> float:
    """Absolute efficiency gain of EasyCrash over plain C/R."""
    return efficiency_easycrash(p, recomputability, ts) - efficiency_baseline(p)


# -- emulated failure schedules (correlated arrivals) --------------------------
#
# Eqs. 6-9 take the crash count as its Poisson expectation M = Total/MTBF.
# The *_under variants replace that expectation with the crash count of a
# sampled CorrelatedFailureProcess schedule, so burst-correlated failures
# (which the closed form cannot express) feed the same algebra.  At
# correlation 0 and a long horizon they converge to the closed forms.


def _failures_over(p: SystemParams, process: "CorrelatedFailureProcess") -> float:
    return float(process.arrivals(p.total_time_s).size)


def efficiency_baseline_under(
    p: SystemParams, process: "CorrelatedFailureProcess"
) -> float:
    """Eq. 6 with ``M`` drawn from an emulated failure schedule."""
    t = p.young_interval()
    m = _failures_over(p, process)
    recovery = m * (t / 2.0 + p.t_restore + p.t_sync)
    n = (p.total_time_s - recovery) / (t + p.t_chk_s)
    useful = max(0.0, n * t)
    return min(1.0, useful / p.total_time_s)


def efficiency_easycrash_under(
    p: SystemParams,
    recomputability: float,
    ts: float,
    process: "CorrelatedFailureProcess",
    nodes: int | None = None,
) -> float:
    """Eqs. 8-9 with ``M`` drawn from an emulated failure schedule.

    The checkpoint interval still uses the *nominal* MTBF (the schedule
    is not known in advance), which is exactly why correlated bursts
    hurt: the system checkpoints as if failures were Poisson."""
    if recomputability >= 1.0:
        recomputability = 1.0 - 1e-9
    if not 0.0 <= recomputability < 1.0:
        raise ValueError("recomputability must be in [0, 1)")
    if not 0.0 <= ts < 1.0:
        raise ValueError("ts must be in [0, 1)")
    mtbf_ec = p.mtbf_s / (1.0 - recomputability)
    t_prime = p.young_interval(mtbf_ec)
    m = _failures_over(p, process)
    m_rollback = m * (1.0 - recomputability)
    m_recompute = m * recomputability
    recovery = m_rollback * (t_prime / 2.0 + p.t_restore + p.t_sync)
    recovery += m_recompute * (p.t_r_nvm_s + _restart_sync(p, nodes))
    n = (p.total_time_s - recovery) / (t_prime + p.t_chk_s)
    useful = max(0.0, n * t_prime) * (1.0 - ts)
    return min(1.0, useful / p.total_time_s)


def efficiency_by_crash_model(
    p: SystemParams,
    recomputability_by_model: Mapping[str, float],
    ts: float,
    process: "CorrelatedFailureProcess | None" = None,
    nodes: int | None = None,
) -> dict[str, float]:
    """EasyCrash efficiency per crash model (Sec. 7 consuming the
    crash-model ablation).

    ``recomputability_by_model`` maps a crash-model spec to the
    application recomputability measured under it (e.g. via
    :func:`repro.core.model.application_recomputability_by_model`);
    with ``process`` the emulated-schedule variant is used instead of
    the closed form.  ``nodes`` gates the NVM-restart coordination term
    on the surviving-node count (:func:`_restart_sync`): previously a
    restart was always charged ``T_sync`` even when no checkpointing
    peer survived to coordinate with.
    """
    if process is None:
        return {
            model: efficiency_easycrash(p, r, ts, nodes=nodes)
            for model, r in recomputability_by_model.items()
        }
    return {
        model: efficiency_easycrash_under(p, r, ts, process, nodes=nodes)
        for model, r in recomputability_by_model.items()
    }


def efficiency_measured_multinode(
    p: SystemParams,
    mix: Mapping[str, int],
    ts: float,
    nodes: int,
    process: "CorrelatedFailureProcess | None" = None,
) -> float:
    """EasyCrash efficiency from a *measured* multi-node recovery mix.

    Where :func:`efficiency_easycrash` takes the recomputability ``R`` as
    an assumed input, this derives it from what the cluster emulator
    actually observed: ``mix`` is a recovery-decision tally as produced
    by :meth:`repro.cluster.recovery.RecoveryLog.mix` — counts keyed by
    ``"nvm_restart"`` and ``"rollback"`` — and ``R`` is the measured NVM
    restart fraction.  ``nodes`` must be the emulated topology size; it
    gates the restart coordination term (:func:`_restart_sync`).  With
    ``process`` the crash count ``M`` comes from that emulated schedule
    instead of the Poisson expectation.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    nvm = int(mix.get("nvm_restart", 0))
    rollback = int(mix.get("rollback", 0))
    if nvm < 0 or rollback < 0:
        raise ValueError("recovery mix counts must be non-negative")
    total = nvm + rollback
    measured_r = nvm / total if total else 0.0
    if process is None:
        return efficiency_easycrash(p, measured_r, ts, nodes=nodes)
    return efficiency_easycrash_under(p, measured_r, ts, process, nodes=nodes)


def efficiency_at_interval(p: SystemParams, interval_s: float) -> float:
    """Baseline efficiency with an arbitrary checkpoint interval (not
    necessarily Young's), for interval-optimality studies."""
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    t = min(interval_s, p.total_time_s)
    m = p.total_time_s / p.mtbf_s
    recovery = m * (t / 2.0 + p.t_restore + p.t_sync)
    n = (p.total_time_s - recovery) / (t + p.t_chk_s)
    return min(1.0, max(0.0, n * t) / p.total_time_s)


def optimal_interval(p: SystemParams, tol: float = 1e-3) -> float:
    """The exactly optimal checkpoint interval by golden-section search.

    The paper relies on El-Sayed & Schroeder's observation that Young's
    first-order interval performs nearly identically; this lets tests and
    ablations verify that claim inside the model.
    """
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    lo = max(1.0, p.t_chk_s * 1e-3)
    hi = p.total_time_s / 2.0
    # Work in log-space: the efficiency curve is unimodal in log(T).
    llo, lhi = math.log(lo), math.log(hi)
    while lhi - llo > tol:
        a = lhi - phi * (lhi - llo)
        b = llo + phi * (lhi - llo)
        if efficiency_at_interval(p, math.exp(a)) < efficiency_at_interval(p, math.exp(b)):
            llo = a
        else:
            lhi = b
    return math.exp(0.5 * (llo + lhi))


def recomputability_threshold(
    p: SystemParams, ts: float, tol: float = 1e-4
) -> float:
    """τ: the minimum recomputability at which EasyCrash beats plain C/R
    (Sec. 7, "Determination of recomputability threshold"), by bisection.

    Returns 1.0 when no recomputability below 1 suffices (EasyCrash cannot
    help at this overhead), and 0.0 when it always helps.
    """
    base = efficiency_baseline(p)
    if efficiency_easycrash(p, 0.0, ts) > base:
        return 0.0
    hi_val = efficiency_easycrash(p, 1.0 - 1e-9, ts)
    if hi_val <= base:
        return 1.0
    lo, hi = 0.0, 1.0 - 1e-9
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if efficiency_easycrash(p, mid, ts) > base:
            hi = mid
        else:
            lo = mid
    return hi


def with_mtbf(p: SystemParams, mtbf_s: float) -> SystemParams:
    """Convenience: the same scenario at a different MTBF."""
    return replace(p, mtbf_s=mtbf_s)

"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-apps``
    The benchmark suite with footprints and region counts.
``campaign APP``
    Run a crash-test campaign and print the postmortem summary.
``plan APP``
    Run the EasyCrash planning workflow and print the resulting plan.
``experiment ID``
    Regenerate one of the paper's tables/figures (e.g. ``fig6``,
    ``table1``); ``experiment all`` regenerates everything.
``system``
    The Sec. 7 system-efficiency model for given MTBF/checkpoint cost.
``analyze``
    Crash-consistency and instrumentation-escape analyzer over the
    benchmark apps (static AST pass + dynamic trace pass) plus the
    engine durability self-lint; ``--strict`` is the CI gate,
    ``--sarif`` exports SARIF 2.1.0, and ``--emit-plan`` runs the
    trace-equivalence pass and writes a pruned crash plan for
    ``campaign --crash-plan``.
``stats``
    Dump a machine-readable ``bench.json`` produced by ``campaign
    --stats`` or the benchmark session, or diff two of them
    (``--diff current baseline``); the diff's exit code is the CI
    perf-regression gate (see ``tools/check_bench_regression.py``).
``doctor``
    Environment preflight (interpreter/numpy versions, cache-dir
    writability, free disk, quota, journal ownership) and ``doctor
    fsck [--repair]``: scan the artifact cache and campaign journals,
    classifying every entry (ok / legacy-v0 / corrupt / foreign-version
    / orphaned-tmp); ``--repair`` quarantines the bad ones and rebuilds
    the LRU index.
``serve APP``
    Campaign orchestration scheduler (:mod:`repro.service`): shard the
    campaign into leased trial chunks, hand them to ``repro work``
    workers over a Unix socket, reap dead workers, and assemble the
    final (bit-identical) result from the journals.  ``--resume``
    rebuilds the queue after a scheduler crash.
``work``
    Stateless campaign worker: connect to a ``repro serve`` socket,
    pull leases, execute chunks through the golden-pass engine, stream
    records back, heartbeat, commit.  Run as many as you like.

Exit codes: 0 success, 1 findings/regression/failed check, 2 usage or
environment error, 3 data corruption (:class:`~repro.errors.
SnapshotCorruptError`), 130 interrupted — see :mod:`repro.errors`.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import (
    EXIT_CORRUPT,
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_USAGE,
    JournalError,
    ServiceError,
    SnapshotCorruptError,
    UsageError,
)

__all__ = ["main", "build_parser"]

EXPERIMENTS = {
    "table1": "table1_characteristics",
    "fig3": "fig3_responses",
    "fig4a": "fig4_mg_objects",
    "fig4b": "fig4_mg_regions",
    "fig5": "fig5_selection_strategies",
    "fig6": "fig6_easycrash",
    "table4": "table4_overhead",
    "fig7": "fig7_nvm_sensitivity",
    "fig8": "fig8_optane",
    "fig9": "fig9_nvm_writes",
    "fig10": "fig10_system_efficiency",
    "fig11": "fig11_scaling",
    "headline": "headline_claims",
}


def _add_jobs_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel campaign engine "
        "(0 = all CPUs; default: $REPRO_JOBS, else serial)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EasyCrash reproduction: NVM crash testing for HPC applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the benchmark applications")

    ch = sub.add_parser("characterize", help="profile an application's data objects")
    ch.add_argument("app")

    c = sub.add_parser("campaign", help="run a crash-test campaign")
    c.add_argument("app", help="application name (see list-apps)")
    c.add_argument("--tests", type=int, default=100, help="number of crash tests")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument(
        "--plan",
        choices=["none", "loop", "easycrash"],
        default="none",
        help="persistence plan: none, flush candidates at loop end, or the planned EasyCrash configuration",
    )
    c.add_argument("--cores", type=int, default=1, help="simulated cores")
    c.add_argument("--save", metavar="FILE", help="write the campaign to a JSON file")
    c.add_argument(
        "--until-stable",
        action="store_true",
        help="grow the campaign until the estimate moves < 5%% between rounds (the paper's stopping rule)",
    )
    c.add_argument(
        "--stats",
        metavar="FILE",
        default=None,
        help="enable telemetry (repro.obs) and write bench.json metrics to "
        "FILE plus the span trace to FILE's .trace.jsonl sibling",
    )
    c.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="write-ahead trial journal (JSONL): created if missing, and a "
        "rerun against the same journal skips every completed trial — an "
        "interrupted campaign resumed this way is bit-identical to an "
        "uninterrupted one",
    )
    c.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed classification chunk in the parallel "
        "engine before the circuit breaker degrades to serial (default 2)",
    )
    c.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial deadline: a trial exceeding it is quarantined as a "
        "FAILED record instead of hanging the campaign (serial engine, "
        "Unix only; default: unbounded)",
    )
    c.add_argument(
        "--no-golden",
        action="store_true",
        help="disable the golden-pass batched snapshot engine and take "
        "full per-crash-point snapshots instead (the bit-identical legacy "
        "oracle; also REPRO_GOLDEN=0)",
    )
    c.add_argument(
        "--crash-plan",
        metavar="FILE",
        default=None,
        help="pruned crash plan from `repro analyze --emit-plan`: execute "
        "one trial per NVM-image equivalence class (plus a purity tail) "
        "and broadcast the results — bit-identical to the full campaign",
    )
    c.add_argument(
        "--crash-model",
        metavar="MODEL",
        default="whole-cache-loss",
        help="crash model (repro.memsim.crashmodel): whole-cache-loss "
        "(default, the paper's), adr[:wpq=N] (a bounded write-pending "
        "queue of the most recent lines drains), eadr[:granularity=G] "
        "(dirty caches flush; the in-flight store tears), or "
        "torn[:granularity=G] (a seeded prefix of the in-flight store "
        "persists)",
    )
    c.add_argument(
        "--nodes",
        type=int,
        default=1,
        metavar="N",
        help="emulated cluster size: shard the campaign across N nodes, "
        "each with its own cache hierarchy and NVM survivor overlay, and "
        "drive crashes from a correlated burst schedule (repro.cluster); "
        "--tests counts total node crashes across the cluster",
    )
    c.add_argument(
        "--correlation",
        type=float,
        default=0.0,
        metavar="C",
        help="failure correlation in [0, 1): each crash spawns a "
        "correlated follow-up with probability C, so one burst can take "
        "down several nodes at the same instant (default 0)",
    )
    c.add_argument(
        "--burst-window",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="emulated-time window grouping correlated failures into one "
        "burst (default 600)",
    )
    c.add_argument(
        "--recovery-log",
        metavar="FILE",
        default=None,
        help="(multi-node) write the per-burst recovery-decision log "
        "(NVM restart vs checkpoint rollback, coordinated-rollback "
        "propagation) as JSON",
    )
    _add_jobs_flag(c)

    p = sub.add_parser("plan", help="run the EasyCrash planning workflow")
    p.add_argument("app")
    p.add_argument("--tests", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ts", type=float, default=0.03, help="runtime overhead bound")
    _add_jobs_flag(p)

    e = sub.add_parser("experiment", help="regenerate a paper table/figure")
    e.add_argument("id", choices=[*EXPERIMENTS, "all"])
    _add_jobs_flag(e)
    e.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent artifact cache directory (default: $REPRO_CACHE_DIR)",
    )

    an = sub.add_parser(
        "analyze",
        help="crash-consistency / instrumentation-escape analyzer",
        description="Run the static (AST) and dynamic (trace) analysis "
        "passes over the application suite; see docs/API.md for the rule "
        "catalog and the baseline/allowlist workflow.",
    )
    an.add_argument(
        "paths", nargs="*",
        help="source files for the static pass (default: the repro.apps package)",
    )
    an.add_argument(
        "--strict", action="store_true",
        help="fail on any active finding, warnings included (the CI gate)",
    )
    an.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the dynamic trace pass (static AST analysis only)",
    )
    an.add_argument(
        "--apps", nargs="*", default=None, metavar="APP",
        help="applications for the dynamic pass (default: the whole registry)",
    )
    an.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline allowlist JSON (default: tools/analysis_baseline.json if present)",
    )
    an.add_argument(
        "--update-baseline", action="store_true",
        help="write all current findings to the baseline file and exit",
    )
    an.add_argument(
        "--no-self-lint", action="store_true",
        help="skip the engine durability self-lint (harness + journal)",
    )
    an.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write the report as SARIF 2.1.0 (active findings as "
        "results, baselined ones with suppressions)",
    )
    an.add_argument(
        "--emit-plan", metavar="FILE", default=None,
        help="run the trace-equivalence pass for one app (requires "
        "--apps APP) and write a pruned crash plan consumable by "
        "`repro campaign --crash-plan`",
    )
    an.add_argument(
        "--tests", type=int, default=200,
        help="(--emit-plan) campaign size the plan covers (default 200)",
    )
    an.add_argument(
        "--seed", type=int, default=0,
        help="(--emit-plan) campaign seed the plan covers (default 0)",
    )
    an.add_argument(
        "--distribution", choices=["uniform", "early", "late"],
        default="uniform",
        help="(--emit-plan) crash-time distribution of the campaign",
    )
    an.add_argument(
        "--campaign-plan", choices=["none", "loop"], default="none",
        help="(--emit-plan) persistence plan of the campaign: none or "
        "flush candidates at loop end",
    )
    an.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="(--emit-plan) extra audited members per equivalence class "
        "(default 1; 0 disables the purity audit)",
    )
    an.add_argument(
        "--crash-model", metavar="MODEL", default="whole-cache-loss",
        help="(--emit-plan) crash model of the campaign the plan is for "
        "(see `repro campaign --crash-model`)",
    )

    st = sub.add_parser(
        "stats",
        help="dump or diff bench.json telemetry files",
        description="Dump bench.json metric files as tables, or with "
        "--diff compare CURRENT against BASELINE: rate metrics (unit */s) "
        "are calibration-normalized and gate the exit code (1 when any "
        "drops more than --threshold below the baseline).",
    )
    st.add_argument("files", nargs="+", metavar="FILE", help="bench.json file(s)")
    st.add_argument(
        "--diff", action="store_true",
        help="treat FILEs as CURRENT BASELINE and compare them",
    )
    st.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRAC",
        help="allowed fractional slowdown of gated rate metrics (default 0.15)",
    )

    d = sub.add_parser(
        "doctor",
        help="environment preflight and artifact-store fsck",
        description="Without an action: preflight the environment a long "
        "campaign depends on. 'doctor fsck' scans the artifact cache and "
        "any --journal files, printing a per-entry verdict; --repair "
        "quarantines bad entries (never deletes), truncates corrupt "
        "journal tails, and rebuilds the cache's LRU index.",
    )
    d.add_argument(
        "action", nargs="?", choices=["preflight", "fsck"], default="preflight",
        help="what to run (default: preflight)",
    )
    d.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="artifact cache root to check (default: $REPRO_CACHE_DIR)",
    )
    d.add_argument(
        "--journal", action="append", default=[], metavar="FILE",
        help="campaign journal to check (repeatable)",
    )
    d.add_argument(
        "--repair", action="store_true",
        help="fsck only: quarantine bad entries and rebuild the LRU index",
    )

    sv = sub.add_parser(
        "serve",
        help="campaign orchestration scheduler (lease-based, crash-restartable)",
        description="Shard a campaign into fixed-size trial chunks and "
        "serve them as journaled work leases to `repro work` workers over "
        "a Unix socket. Every grant/expiry/commit is an fsync'd journal "
        "line, so a SIGKILL'd scheduler restarts with --resume and the "
        "final result is bit-identical to `repro campaign` (same summary, "
        "same --save file).",
    )
    sv.add_argument("app", help="application name (see list-apps)")
    sv.add_argument("--socket", required=True, metavar="PATH",
                    help="Unix socket path the scheduler listens on")
    sv.add_argument("--journal", required=True, metavar="FILE",
                    help="campaign trial journal (per-node siblings are "
                    "derived for --nodes, like `campaign --resume`)")
    sv.add_argument("--lease-journal", metavar="FILE", default=None,
                    help="lease event journal (default: <journal>.leases)")
    sv.add_argument("--chunk-size", type=int, default=8, metavar="N",
                    help="trials per work lease (default 8)")
    sv.add_argument("--heartbeat-deadline", type=float, default=30.0,
                    metavar="SECONDS",
                    help="missed-heartbeat deadline before the reaper "
                    "expires a lease and re-issues its chunk (default 30)")
    sv.add_argument("--resume", action="store_true",
                    help="rebuild the queue from an existing lease journal "
                    "(required after a scheduler crash; without it a "
                    "non-empty lease journal is refused)")
    sv.add_argument("--tests", type=int, default=100)
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--plan", choices=["none", "loop", "easycrash"], default="none",
                    help="persistence plan (as in `repro campaign`)")
    sv.add_argument("--cores", type=int, default=1, help="simulated cores")
    sv.add_argument("--save", metavar="FILE",
                    help="write the assembled campaign to a JSON file")
    sv.add_argument("--no-golden", action="store_true",
                    help="legacy snapshot path on the workers (see campaign)")
    sv.add_argument("--trial-timeout", type=float, default=None, metavar="SECONDS",
                    help="per-trial deadline on the workers")
    sv.add_argument("--crash-plan", metavar="FILE", default=None,
                    help="pruned crash plan (see `repro campaign --crash-plan`)")
    sv.add_argument("--crash-model", metavar="MODEL", default="whole-cache-loss",
                    help="crash model (see `repro campaign --crash-model`)")
    sv.add_argument("--nodes", type=int, default=1, metavar="N",
                    help="emulated cluster size (see `repro campaign --nodes`)")
    sv.add_argument("--correlation", type=float, default=0.0, metavar="C",
                    help="failure correlation (see campaign)")
    sv.add_argument("--burst-window", type=float, default=600.0, metavar="SECONDS",
                    help="burst grouping window (see campaign)")
    sv.add_argument("--recovery-log", metavar="FILE", default=None,
                    help="(multi-node) write the recovery-decision log as JSON")

    w = sub.add_parser(
        "work",
        help="stateless campaign worker for a `repro serve` scheduler",
        description="Connect to a scheduler socket, pull work leases, "
        "execute their trial chunks through the golden-pass engine, "
        "stream records back, and heartbeat until the campaign is done. "
        "Safe to SIGKILL at any point: the reaper re-issues the chunk "
        "and fencing tokens reject this worker's late commit.",
    )
    w.add_argument("--socket", required=True, metavar="PATH",
                   help="Unix socket path of the scheduler")
    w.add_argument("--name", default=None, metavar="NAME",
                   help="worker name for lease bookkeeping (default: worker-<pid>)")
    w.add_argument("--idle-timeout", type=float, default=30.0, metavar="SECONDS",
                   help="how long to retry a dead socket before concluding "
                   "the campaign is over (default 30)")
    w.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="connect retries burned per backoff cycle (default 8)")

    a = sub.add_parser("advise", help="Sec. 8 deployment decision for an application")
    a.add_argument("app")
    a.add_argument("--mtbf-hours", type=float, default=12.0)
    a.add_argument("--t-chk", type=float, default=3200.0)
    a.add_argument("--ts", type=float, default=0.03)
    a.add_argument("--tests", type=int, default=150)

    s = sub.add_parser("system", help="Sec. 7 system-efficiency model")
    s.add_argument("--mtbf-hours", type=float, default=12.0)
    s.add_argument("--t-chk", type=float, default=3200.0)
    s.add_argument("--recomputability", type=float, default=0.82)
    s.add_argument("--ts", type=float, default=0.015)
    return parser


def _cmd_list_apps() -> int:
    from repro.apps.registry import APP_NAMES, get_factory
    from repro.util.tables import render_table

    rows = []
    for name in APP_NAMES:
        fac = get_factory(name)
        app = fac.make(None)
        heap = app.ws.heap
        rows.append(
            [
                name,
                len(fac.regions),
                f"{heap.footprint_bytes() / 1024:.0f}KB",
                f"{heap.candidate_bytes() / 1024:.0f}KB",
                app.nominal_iterations(),
            ]
        )
    print(render_table(
        ["App", "#regions", "Footprint", "Candidates", "Iterations"], rows
    ))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_factory
    from repro.nvct.characterize import characterize

    print(characterize(get_factory(args.app)).render())
    return 0


def _install_sigterm_handler() -> None:
    """Turn SIGTERM into the same graceful unwind SIGINT gets.

    A supervisor's ``kill`` (the default TERM, not KILL) must not drop a
    journal tail: raising ``KeyboardInterrupt`` unwinds through the
    ``finally`` blocks that flush + fsync every open journal, and
    :func:`main` maps it to the documented INTERRUPTED exit code.
    Installed only for journal-writing commands (campaign, serve, work).
    """
    import signal

    def _term(signum: object, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _term)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass


def _build_persistence_plan(args: argparse.Namespace, factory):
    """The ``--plan none|loop|easycrash`` leg shared by campaign and serve."""
    from repro.core.planner import EasyCrashConfig, plan_easycrash
    from repro.nvct.plan import PersistencePlan

    if args.plan == "none":
        return PersistencePlan.none()
    if args.plan == "loop":
        app = factory.make(None)
        return PersistencePlan.at_loop_end([o.name for o in app.ws.heap.candidates()])
    report = plan_easycrash(
        factory, EasyCrashConfig(n_tests=args.tests, seed=args.seed)
    )
    print(f"critical objects: {', '.join(report.critical_objects) or '(none)'}")
    return report.plan


def _print_single_result(result) -> None:
    """Postmortem summary of a single-node campaign (campaign and serve
    print through this one function, so their outputs diff clean)."""
    from repro.nvct.report import (
        campaign_summary,
        object_inconsistency_table,
        region_breakdown,
    )

    print(campaign_summary(result))
    print()
    print(region_breakdown(result))
    print()
    print(object_inconsistency_table(result))


def _print_cluster_result(result, args: argparse.Namespace) -> None:
    """Cluster postmortem + optional artifacts (shared campaign/serve)."""
    from repro.cluster.report import cluster_summary, decision_log, recovery_mix_table

    if getattr(args, "save", None):
        from repro.nvct.serialize import save_cluster_result

        print(f"cluster campaign saved to {save_cluster_result(result, args.save)}")
    if getattr(args, "recovery_log", None):
        import json as _json

        from repro.obs.export import write_text

        out = write_text(args.recovery_log, _json.dumps(result.log.to_dict(), indent=1))
        print(f"recovery log written to {out}")
    print(cluster_summary(result))
    print()
    print(recovery_mix_table(result.log))
    print()
    print(decision_log(result.log))


def _cmd_campaign(args: argparse.Namespace) -> int:
    import contextlib
    import os

    from repro import obs
    from repro.apps.registry import get_factory
    from repro.nvct.campaign import CampaignConfig, run_campaign

    _install_sigterm_handler()
    stats_file = getattr(args, "stats", None)
    scope = obs.enabled() if stats_file else contextlib.nullcontext()
    with scope as reg:
        factory = get_factory(args.app)
        plan = _build_persistence_plan(args, factory)
        cfg = CampaignConfig(
            n_tests=args.tests, seed=args.seed, plan=plan, n_cores=args.cores,
            crash_model=getattr(args, "crash_model", "whole-cache-loss"),
            nodes=getattr(args, "nodes", 1),
            correlation=getattr(args, "correlation", 0.0),
            burst_window_s=getattr(args, "burst_window", 600.0),
        )
        retry = None
        if getattr(args, "max_retries", None) is not None:
            from repro.harness.resilience import RetryPolicy

            retry = RetryPolicy(max_retries=args.max_retries)
        crash_plan = getattr(args, "crash_plan", None)
        if cfg.nodes > 1 or cfg.correlation > 0.0:
            return _cluster_campaign(args, factory, cfg, retry, crash_plan)
        if getattr(args, "until_stable", False):
            if getattr(args, "resume", None):
                print("campaign: --resume is not supported with --until-stable "
                      "(round sizes grow adaptively)", file=sys.stderr)
                return 2
            if crash_plan:
                print("campaign: --crash-plan is not supported with "
                      "--until-stable (the plan covers a fixed campaign)",
                      file=sys.stderr)
                return 2
            from repro.nvct.adaptive import recomputability_interval, run_campaign_until_stable

            stable = run_campaign_until_stable(factory, cfg, round_size=args.tests)
            result = stable.result
            lo, hi = recomputability_interval(result)
            print(f"stabilized after {stable.rounds} rounds "
                  f"({result.n_tests} tests); 95% CI: [{lo:.3f}, {hi:.3f}]")
        else:
            result = run_campaign(
                factory,
                cfg,
                journal=getattr(args, "resume", None),
                retry=retry,
                trial_timeout=getattr(args, "trial_timeout", None),
                golden=False if getattr(args, "no_golden", False) else None,
                plan=crash_plan,
            )
            if crash_plan and result.executed_trials is not None:
                print(f"crash plan: executed {result.executed_trials} of "
                      f"{result.n_tests} trials (equivalence-pruned)")
        if getattr(args, "save", None):
            from repro.nvct.serialize import save_campaign

            print(f"campaign saved to {save_campaign(result, args.save)}")
        _print_single_result(result)
        if reg is not None:
            from pathlib import Path

            from repro.obs import export as obs_export

            records = obs_export.bench_records(
                reg, scale=os.environ.get("REPRO_BENCH_SCALE", "default")
            )
            out = obs_export.write_bench(stats_file, records)
            trace = obs_export.write_jsonl(
                Path(stats_file).with_suffix(".trace.jsonl"), reg.tracer.to_records()
            )
            print(f"\nbench metrics: {out} ({len(records)} records; trace: {trace})")
    return 0


def _cluster_campaign(args, factory, cfg, retry, crash_plan) -> int:
    """The multi-node leg of ``repro campaign`` (--nodes/--correlation)."""
    from repro.cluster import run_cluster_campaign

    if getattr(args, "until_stable", False):
        print("campaign: --until-stable is not supported with --nodes/"
              "--correlation (the burst schedule covers a fixed campaign)",
              file=sys.stderr)
        return 2
    if crash_plan:
        print("campaign: --crash-plan is not supported with --nodes/"
              "--correlation (plans cover single-node crash schedules)",
              file=sys.stderr)
        return 2
    if args.cores > 1:
        print("campaign: --cores > 1 is not supported with --nodes/"
              "--correlation (each emulated node is one rank)",
              file=sys.stderr)
        return 2
    result = run_cluster_campaign(
        factory,
        cfg,
        journal=getattr(args, "resume", None),
        retry=retry,
        trial_timeout=getattr(args, "trial_timeout", None),
        golden=False if getattr(args, "no_golden", False) else None,
    )
    _print_cluster_result(result, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_factory
    from repro.nvct.campaign import CampaignConfig, run_campaign
    from repro.service import CampaignScheduler, serve_forever

    _install_sigterm_handler()
    factory = get_factory(args.app)
    plan = _build_persistence_plan(args, factory)
    cfg = CampaignConfig(
        n_tests=args.tests, seed=args.seed, plan=plan, n_cores=args.cores,
        crash_model=args.crash_model, nodes=args.nodes,
        correlation=args.correlation, burst_window_s=args.burst_window,
    )
    crash_plan = None
    if args.crash_plan:
        from repro.analysis.equiv_pass import CrashPlan

        crash_plan = CrashPlan.load(args.crash_plan)
    golden = False if args.no_golden else None
    scheduler = CampaignScheduler(
        factory,
        cfg,
        journal=args.journal,
        lease_journal=args.lease_journal,
        chunk_size=args.chunk_size,
        deadline_s=args.heartbeat_deadline,
        resume=args.resume,
        crash_plan=crash_plan,
        golden=golden,
        trial_timeout=args.trial_timeout,
    )
    scheduler.prepare()
    assert scheduler.table is not None
    counts = scheduler.table.counts()
    print(
        f"serving {factory.name}: {len(scheduler.table.states)} chunk(s) "
        f"({counts['committed']} already committed), "
        f"lease deadline {args.heartbeat_deadline:g}s, socket {args.socket}"
    )
    serve_forever(scheduler, args.socket)
    print("campaign complete; assembling the result from the journals")
    # The service is a drop-in superset of `repro campaign`: the final
    # result is the ordinary engine replaying the now-complete journals
    # (bit-identical by construction) and the summary is printed through
    # the same helpers, so outputs diff clean against a serial run.
    if cfg.nodes > 1 or cfg.correlation > 0.0:
        from repro.cluster import run_cluster_campaign

        result = run_cluster_campaign(
            factory, cfg, journal=args.journal,
            trial_timeout=args.trial_timeout, golden=golden,
        )
        _print_cluster_result(result, args)
        return 0
    result = run_campaign(
        factory, cfg, journal=args.journal, plan=crash_plan,
        trial_timeout=args.trial_timeout, golden=golden,
    )
    if args.save:
        from repro.nvct.serialize import save_campaign

        print(f"campaign saved to {save_campaign(result, args.save)}")
    _print_single_result(result)
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service import run_worker

    _install_sigterm_handler()
    retry = None
    if args.max_retries is not None:
        from repro.harness.resilience import RetryPolicy

        retry = RetryPolicy(max_retries=args.max_retries, base_delay=0.1, max_delay=2.0)
    committed = run_worker(
        args.socket,
        name=args.name,
        idle_timeout_s=args.idle_timeout,
        retry=retry,
    )
    print(f"worker done: {committed} chunk(s) committed")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import sys as _sys

    from repro.obs import export as obs_export

    try:
        if args.diff:
            if len(args.files) != 2:
                print("stats --diff needs exactly CURRENT and BASELINE", file=_sys.stderr)
                return 2
            current, baseline = (obs_export.load_bench(f) for f in args.files)
            diff = obs_export.diff_bench(current, baseline, threshold=args.threshold)
            print(obs_export.render_diff(diff))
            return 0 if diff.ok else 1
        for path in args.files:
            print(obs_export.render_bench(obs_export.load_bench(path)))
    except SnapshotCorruptError:
        raise  # a ValueError subclass, but corruption exits 3, not 2
    except (OSError, ValueError) as exc:
        print(f"stats: {exc}", file=_sys.stderr)
        return 2
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.harness import store

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR", "").strip() or None
    journals = [Path(j) for j in args.journal]

    if args.action == "preflight":
        checks = store.preflight(cache_dir=cache_dir, journals=journals)
        width = max(len(c.name) for c in checks)
        healthy = True
        for c in checks:
            print(f"{'ok' if c.ok else 'FAIL':>4}  {c.name:<{width}}  {c.detail}")
            healthy = healthy and c.ok
        print("doctor: OK" if healthy else "doctor: FAIL")
        return 0 if healthy else 1

    # fsck
    if cache_dir is None and not journals:
        print(
            "doctor fsck: nothing to scan (set --cache-dir/$REPRO_CACHE_DIR "
            "or pass --journal)",
            file=sys.stderr,
        )
        return 2
    verdicts: list[store.Verdict] = []
    if cache_dir is not None:
        verdicts.extend(store.fsck_cache(cache_dir))
    for journal in journals:
        journal_verdicts, _ = store.fsck_journal(journal)
        verdicts.extend(journal_verdicts)
    for v in verdicts:
        detail = f"  ({v.detail})" if v.detail else ""
        print(f"{v.verdict:>15}  {v.path}{detail}")
    bad = [v for v in verdicts if v.bad]
    if not bad:
        print(f"fsck: OK ({len(verdicts)} entr{'y' if len(verdicts) == 1 else 'ies'})")
        return 0
    if not args.repair:
        print(f"fsck: {len(bad)} bad entr{'y' if len(bad) == 1 else 'ies'} "
              "(rerun with --repair to quarantine)")
        return 1
    moved: list[Path] = []
    if cache_dir is not None:
        moved.extend(store.repair_cache(cache_dir))
    for journal in journals:
        tail = store.repair_journal(journal)
        if tail is not None:
            moved.append(tail)
    for target in moved:
        print(f"quarantined -> {target}")
    print(f"fsck: repaired ({len(moved)} quarantined, index rebuilt)")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_factory
    from repro.core.planner import EasyCrashConfig, plan_easycrash

    factory = get_factory(args.app)
    report = plan_easycrash(
        factory, EasyCrashConfig(n_tests=args.tests, seed=args.seed, ts=args.ts)
    )
    print(f"application: {report.app}")
    print(f"baseline recomputability: {report.baseline_campaign.recomputability():.1%}")
    print(f"critical objects: {', '.join(report.critical_objects) or '(none)'}")
    sel = report.region_selection
    if sel is None:
        print("no profitable persistence plan (EasyCrash degenerates to C/R)")
        return 0
    for choice in sel.choices:
        where = "iteration end" if choice.region == "__loop_end__" else f"region {choice.region}"
        print(f"flush at {where}, every {choice.frequency} execution(s)"
              f" (est. overhead {choice.cost_share:.2%})")
    print(f"predicted recomputability: {sel.predicted_recomputability:.1%}")
    print(f"budget: {sel.total_cost_share:.2%} of ts={sel.ts:.0%}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import experiments
    from repro.harness.context import get_context

    ctx = get_context()
    ids = list(EXPERIMENTS) if args.id == "all" else [args.id]
    for exp_id in ids:
        fn = getattr(experiments, EXPERIMENTS[exp_id])
        print(fn(ctx).render())
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze
    from repro.analysis.findings import Baseline, DEFAULT_BASELINE_PATH

    baseline_path = args.baseline or (
        DEFAULT_BASELINE_PATH if DEFAULT_BASELINE_PATH.exists() else None
    )
    if args.update_baseline:
        report = analyze(
            paths=args.paths or None,
            apps=args.apps,
            dynamic=not args.no_dynamic,
            engine_lint=not args.no_self_lint,
            baseline=None,
        )
        baseline = Baseline(
            keys={f.key for f in report.findings},
            path=args.baseline or DEFAULT_BASELINE_PATH,
        )
        out = baseline.save()
        print(f"baseline updated: {len(baseline.keys)} key(s) -> {out}")
        return 0
    report = analyze(
        paths=args.paths or None,
        apps=args.apps,
        dynamic=not args.no_dynamic,
        engine_lint=not args.no_self_lint,
        baseline=baseline_path,
    )
    print(report.render())
    if args.sarif:
        from repro.analysis.sarif import write_sarif

        print(f"sarif report: {write_sarif(report, args.sarif)}")
    if args.emit_plan:
        _emit_crash_plan(args)
    if report.ok(strict=args.strict):
        print("analysis: OK" + (" (strict)" if args.strict else ""))
        return 0
    return 1


def _emit_crash_plan(args: argparse.Namespace) -> None:
    """The ``analyze --emit-plan`` leg: trace-equivalence pass for one app."""
    from repro.analysis.equiv_pass import DEFAULT_TAIL, build_crash_plan
    from repro.apps.registry import get_factory
    from repro.harness.cache import ArtifactCache
    from repro.nvct.campaign import CampaignConfig
    from repro.nvct.plan import PersistencePlan

    if not args.apps or len(args.apps) != 1:
        raise UsageError(
            "--emit-plan needs exactly one application: repeat with "
            "`--apps APP` naming the campaign the plan is for"
        )
    factory = get_factory(args.apps[0])
    if args.campaign_plan == "none":
        plan = PersistencePlan.none()
    else:
        app = factory.make(None)
        plan = PersistencePlan.at_loop_end([o.name for o in app.ws.heap.candidates()])
    cfg = CampaignConfig(
        n_tests=args.tests,
        seed=args.seed,
        plan=plan,
        distribution=args.distribution,
        crash_model=getattr(args, "crash_model", "whole-cache-loss"),
    )
    tail = DEFAULT_TAIL if args.tail is None else args.tail
    crash_plan = build_crash_plan(
        factory, cfg, tail=tail, cache=ArtifactCache.from_env()
    )
    out = crash_plan.save(args.emit_plan)
    print(crash_plan.summary())
    print(f"crash plan written: {out}")


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_factory
    from repro.core.advisor import DeploymentScenario, advise
    from repro.core.planner import EasyCrashConfig

    scenario = DeploymentScenario(
        mtbf_s=args.mtbf_hours * 3600.0, t_chk_s=args.t_chk, ts=args.ts
    )
    report = advise(
        get_factory(args.app),
        scenario,
        EasyCrashConfig(n_tests=args.tests, refinement_tests=max(40, args.tests // 2)),
        validation_tests=args.tests,
    )
    print(report.summary())
    if report.use_easycrash:
        print(f"plan: {report.plan}")
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from repro.system.efficiency import (
        SystemParams,
        efficiency_baseline,
        efficiency_easycrash,
        recomputability_threshold,
    )

    p = SystemParams(mtbf_s=args.mtbf_hours * 3600.0, t_chk_s=args.t_chk)
    base = efficiency_baseline(p)
    ec = efficiency_easycrash(p, args.recomputability, args.ts)
    print(f"MTBF {args.mtbf_hours:.1f}h, T_chk {args.t_chk:.0f}s, "
          f"R={args.recomputability:.2f}, ts={args.ts:.1%}")
    print(f"efficiency without EasyCrash: {base:.3f}")
    print(f"efficiency with EasyCrash:    {ec:.3f}  ({ec - base:+.3f})")
    print(f"tau (break-even recomputability): {recomputability_threshold(p, args.ts):.3f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    import os

    args = build_parser().parse_args(argv)
    # The engine reads REPRO_JOBS / REPRO_CACHE_DIR wherever campaigns are
    # launched (CLI paths, harness context, planner); the flags just seed
    # the environment so one mechanism serves every layer.
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "cache_dir", None):
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # Worker pools are terminated by the context managers unwinding and
        # every journal append was already fsync'd, so a Ctrl-C'd campaign
        # with --resume loses at most the trial in flight.
        print(
            "\ninterrupted — pools terminated, journal flushed; "
            "rerun with --resume to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except SnapshotCorruptError as exc:
        # Corruption that no self-healing path absorbed: distinct exit code
        # so automation can tell "data is damaged" (run doctor fsck) from
        # usage errors.
        print(f"corrupt: {exc}", file=sys.stderr)
        print("hint: repro doctor fsck --repair quarantines bad entries", file=sys.stderr)
        return EXIT_CORRUPT
    except JournalError as exc:
        print(f"journal: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ServiceError as exc:
        # The command ran but the service could not finish its job (e.g.
        # a worker's circuit breaker tripped): a failure, not a usage
        # error — journals are intact, another worker can carry on.
        print(f"service: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list-apps":
        return _cmd_list_apps()
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "doctor":
        return _cmd_doctor(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "work":
        return _cmd_work(args)
    if args.command == "advise":
        return _cmd_advise(args)
    if args.command == "system":
        return _cmd_system(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

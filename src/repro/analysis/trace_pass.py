"""Dynamic (trace) pass: validate a runtime event stream against a plan.

The runtime emits a :class:`repro.nvct.runtime.RuntimeEvent` stream when a
listener is attached (stores, region/iteration boundaries, per-object
commit-point flushes).  :func:`check_trace` replays that stream against
the :class:`~repro.nvct.plan.PersistencePlan` the run claimed to execute
and reports crash-consistency violations:

``dirty-at-commit``
    After an object's commit-point flush, some of its cache blocks are
    still dirty — the plan *claims* the object is persistent at this
    point, but a crash here would expose unflushed data.
``dead-persist``
    A flush of an object with no recorded stores since its previous
    flush: every issued line is clean by construction, so the operation
    buys no recomputability and only costs flush latency.
``persist-order``
    The persist events disagree with the plan's region/iteration
    schedule — a scheduled flush is missing, an unscheduled plan-group
    flush appears, or a flush group covers the wrong object set.

Each rule reports once per (app, object/region) — repeated identical
violations across iterations collapse into the first occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.findings import Finding, Severity
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import Runtime, RuntimeEvent

__all__ = ["TraceCollector", "check_trace", "run_traced"]


@dataclass
class TraceCollector:
    """Runtime listener that records the event stream."""

    events: list[RuntimeEvent] = field(default_factory=list)

    def __call__(self, event: RuntimeEvent) -> None:
        self.events.append(event)


def run_traced(
    factory,
    plan: PersistencePlan,
    max_iterations: int | None = None,
    runtime: Runtime | None = None,
) -> list[RuntimeEvent]:
    """Execute an application under an instrumented runtime with a trace
    listener attached; return the event stream.

    ``factory`` is an :class:`repro.apps.base.AppFactory`; the golden run
    is *not* triggered (no verification happens here, only tracing).  A
    pre-built ``runtime`` may be injected (e.g. a deliberately broken
    subclass in tests); it must carry the same plan.
    """
    rt = runtime if runtime is not None else Runtime(plan=plan)
    collector = TraceCollector()
    rt.add_listener(collector)
    app = factory.app_cls(runtime=rt, **factory.params)
    app.setup()
    app.run(max_iterations=max_iterations)
    return collector.events


def _boundary_expects_flush(event: RuntimeEvent, plan: PersistencePlan) -> bool:
    if not plan.objects:
        return False
    if event.kind == "region_end":
        return plan.flushes_at(event.region, event.exec_count)
    if event.kind == "iteration_end":
        return (
            plan.at_iteration_end
            and event.exec_count % plan.iteration_frequency == 0
        )
    return False


def check_trace(
    events: Sequence[RuntimeEvent], plan: PersistencePlan, app: str = "?"
) -> list[Finding]:
    """Validate one run's event stream against its persistence plan."""
    findings: list[Finding] = []
    seen_keys: set[str] = set()

    def add(rule: str, severity: Severity, event: RuntimeEvent, symbol: str, message: str) -> None:
        key = f"{rule}:{app}:{symbol}"
        if key in seen_keys:
            return
        seen_keys.add(key)
        findings.append(
            Finding(
                rule=rule,
                severity=severity,
                where=f"app={app} it={event.iteration} region={event.region}",
                message=message,
                key=key,
            )
        )

    stores_since: dict[str, int] = {}
    consumed: set[int] = set()  # indices of persists matched to a boundary

    for i, event in enumerate(events):
        if event.kind == "store":
            assert event.obj is not None
            stores_since[event.obj] = stores_since.get(event.obj, 0) + event.blocks
            continue

        if event.kind == "persist":
            assert event.obj is not None
            if stores_since.get(event.obj, 0) == 0:
                add(
                    "dead-persist",
                    Severity.WARNING,
                    event,
                    event.obj,
                    f"object {event.obj!r} flushed ({event.blocks} lines "
                    "issued) with no stores since its previous flush: "
                    "every line is clean, the persist is dead cost",
                )
            stores_since[event.obj] = 0
            if event.remaining_dirty > 0:
                add(
                    "dirty-at-commit",
                    Severity.ERROR,
                    event,
                    event.obj,
                    f"object {event.obj!r} still has {event.remaining_dirty} "
                    "dirty cache blocks after its commit-point flush: the "
                    "plan claims it persistent here but a crash would see "
                    "stale NVM data",
                )
            if event.scheduled and i not in consumed:
                add(
                    "persist-order",
                    Severity.ERROR,
                    event,
                    f"{event.region}:{event.obj}",
                    f"scheduled flush of {event.obj!r} in region "
                    f"{event.region!r} does not match any plan boundary "
                    "(plan-group persist outside the region/iteration "
                    "schedule)",
                )
            continue

        if event.kind in ("region_end", "iteration_end"):
            expected = _boundary_expects_flush(event, plan)
            # The plan group, if any, is emitted as consecutive persist
            # events immediately after the boundary event.
            got: dict[str, int] = {}
            j = i + 1
            while (
                j < len(events)
                and events[j].kind == "persist"
                and events[j].scheduled
            ):
                assert events[j].obj is not None
                got[events[j].obj] = j  # type: ignore[index]
                j += 1
            if not expected:
                continue  # stray persists are flagged by the loop above
            consumed.update(got.values())
            boundary = (
                f"end of region {event.region!r}"
                if event.kind == "region_end"
                else f"end of iteration {event.iteration}"
            )
            for name in plan.objects:
                if name not in got:
                    add(
                        "persist-order",
                        Severity.ERROR,
                        event,
                        f"missing:{boundary}:{name}",
                        f"plan schedules a flush of {name!r} at {boundary} "
                        f"(execution {event.exec_count}) but no persist "
                        "event occurred",
                    )
            for name in got:
                if name not in plan.objects:
                    add(
                        "persist-order",
                        Severity.ERROR,
                        event,
                        f"extra:{boundary}:{name}",
                        f"flush group at {boundary} persisted {name!r}, "
                        "which the plan does not list",
                    )
    return findings

"""SARIF 2.1.0 export of analyzer reports (``repro analyze --sarif``).

SARIF (Static Analysis Results Interchange Format) is the lingua franca
CI systems ingest for code-scanning annotations.  One run object carries
the whole analyzer invocation: the rule catalog from
:data:`repro.analysis.findings.RULES` becomes ``tool.driver.rules``, and
every finding — active *and* baselined — becomes a ``result``.

Two repo-specific conventions ride on standard fields:

* ``partialFingerprints.reproKey`` carries the finding's stable,
  line-number-free baseline key, so SARIF consumers deduplicate results
  across commits exactly the way the baseline allowlist does;
* baselined findings are exported with a ``suppressions`` entry
  (``kind: "external"``) instead of being dropped — the gate ignores
  them but the dashboard still shows what was allowlisted.

Static findings (``where`` = ``path:line``) get a physical location;
dynamic findings (``where`` = ``app=MG it=2 region=R1``) have no source
coordinate, so their coordinate stays in the message text and the
result carries only the fingerprint.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING

from repro import __version__
from repro.analysis.findings import RULES, Finding

if TYPE_CHECKING:
    from repro.analysis.driver import AnalysisReport

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``where`` values that point at source: "src/repro/apps/mg.py:123"
_WHERE_RE = re.compile(r"^(?P<path>[^:]+\.py):(?P<line>\d+)$")


def _result(finding: Finding, suppressed: bool) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "level": finding.severity.value,
        "message": {"text": f"{finding.message} [{finding.where}]"},
        "partialFingerprints": {"reproKey": finding.key},
    }
    m = _WHERE_RE.match(finding.where)
    if m:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": Path(m["path"]).as_posix()},
                    "region": {"startLine": int(m["line"])},
                }
            }
        ]
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "baseline allowlist"}
        ]
    return result


def to_sarif(report: "AnalysisReport") -> dict:
    """An :class:`AnalysisReport` as a SARIF 2.1.0 log object."""
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": description},
            "properties": {"pass": pass_name},
            "defaultConfiguration": {
                # ordering rules and engine-lint hygiene default to their
                # catalog severity; SARIF wants it on the rule too
                "level": "error" if rule_id not in _WARNING_RULES else "warning",
            },
        }
        for rule_id, (pass_name, description) in sorted(RULES.items())
    ]
    results = [_result(f, suppressed=False) for f in report.findings]
    results += [_result(f, suppressed=True) for f in report.suppressed]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "version": __version__,
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {
                    "filesAnalyzed": report.files_analyzed,
                    "appsTraced": report.apps_traced,
                    "engineFilesLinted": report.engine_files_linted,
                },
            }
        ],
    }


#: rules whose findings are warnings by construction (kept in sync with
#: the severities the passes emit; everything else defaults to error)
_WARNING_RULES = {
    "dead-persist",
    "redundant-persist",
    "unpersisted-at-exit",
    "rename-without-dir-fsync",
    "bare-open-w",
}


def write_sarif(report: "AnalysisReport", path: str | Path) -> Path:
    """Serialize ``report`` to ``path`` as SARIF JSON (atomic write)."""
    from repro.harness.store import atomic_write_bytes

    doc = json.dumps(to_sarif(report), indent=2, sort_keys=True) + "\n"
    return atomic_write_bytes(path, doc.encode("utf-8"))

"""Crash-consistency and instrumentation-escape analysis.

Every measurement in this reproduction assumes that application kernels
touch simulated NVM *only* through the managed-array API and that the
regions an app declares match the regions it executes.  A silent raw
``.np`` escape or a region/write-set mismatch corrupts inconsistent-rate
measurements without failing any functional test.  This package holds the
two cooperating passes that guard that assumption (in the spirit of
WITCHER-style systematic crash-consistency checking):

* :mod:`repro.analysis.static_pass` — a Python ``ast`` pass over the
  application sources, catching instrumentation escapes, out-of-region
  writes, region declarations that drift from region use, and data
  objects that bypass the persistent heap;
* :mod:`repro.analysis.trace_pass` — an event-stream validator over the
  runtime's persist/store events, catching dirty-at-commit objects,
  dead persists, and persist-schedule violations;
* :mod:`repro.analysis.driver` — the front end that runs both passes,
  applies the baseline allowlist, and powers ``repro analyze``.
"""

from repro.analysis.findings import (
    Baseline,
    Finding,
    RULES,
    Severity,
)
from repro.analysis.driver import AnalysisReport, analyze
from repro.analysis.static_pass import analyze_source, analyze_paths
from repro.analysis.trace_pass import TraceCollector, check_trace, run_traced

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "RULES",
    "Severity",
    "TraceCollector",
    "analyze",
    "analyze_paths",
    "analyze_source",
    "check_trace",
    "run_traced",
]

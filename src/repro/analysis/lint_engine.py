"""Durability-idiom lint over the engine's *own* persistence code.

The crash-test harness promises that its artifacts — journals, cache
entries, quarantined tails — survive the very failures it injects into
applications.  That promise rests on a small set of idioms (write →
``flush`` → ``os.fsync``; publish via temp file + ``os.replace`` +
parent-directory fsync), and nothing previously checked that the engine
actually follows them.  This pass turns the analyzer on the engine:

* ``write-without-fsync`` (error) — a file handle opened for writing (or
  truncated) inside a function that never routes that handle to an
  ``os.fsync``.  A handle that *escapes* (stored on an attribute such as
  ``self._fh``) is excused when its class fsyncs somewhere — the
  journal's open-then-``_write_line`` split is the sanctioned shape.
* ``rename-without-dir-fsync`` (warning) — ``os.replace`` /
  ``os.rename`` / ``shutil.move`` / one-argument ``.replace(...)`` with
  no reachable directory fsync (a call whose name contains
  ``fsync_dir``): the rename itself may not survive a crash.
* ``bare-open-w`` (warning) — a literal ``open(..., "w")`` /  ``"wt"``:
  truncate-then-write tears on crash; durable text goes through the
  atomic writer (:func:`repro.harness.store.atomic_write_bytes`).

The checks are per-function summaries joined by an intra-module call
graph (bare-name calls and ``self.``/``cls.`` method calls), so helpers
like ``_fsync_dir`` and ``_write_line`` give closure credit to their
callers.  Findings reuse the analyzer's line-number-free keys
(``rule:file:function:symbol``) and the inline
``# analysis: allow(<rule>)`` suppression syntax.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.static_pass import _allowed_rules

__all__ = ["lint_paths", "lint_source", "default_engine_targets"]

#: text modes whose bare use always warrants the atomic writer instead
_BARE_TEXT_MODES = {"w", "wt"}


def default_engine_targets(src_root: str | Path | None = None) -> list[Path]:
    """The engine surfaces whose durability claims the lint guards.

    With no argument the targets are resolved from the installed
    ``repro`` package itself — the lint always checks the code that is
    actually running.
    """
    if src_root is None:
        import repro

        root = Path(repro.__file__).parent.parent
    else:
        root = Path(src_root)
    targets = sorted((root / "repro" / "harness").glob("*.py"))
    targets.append(root / "repro" / "nvct" / "journal.py")
    return [p for p in targets if p.exists()]


def _is_write_mode(mode: str) -> bool:
    return any(ch in mode for ch in "wax+")


def _call_name(func: ast.AST) -> str | None:
    """Dotted name of a call target: ``os.fsync``, ``open``, ``self.close``."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


@dataclass
class _HandleOp:
    """One write-mode ``open``/``fdopen`` or ``.truncate`` in a function."""

    lineno: int
    symbol: str  # the mode string, or "truncate"
    handle: str | None  # local variable the handle is bound to, if any
    escapes: bool  # stored on an attribute (self._fh = open(...)) or returned


@dataclass
class _FnSummary:
    qualname: str
    class_name: str | None
    lineno: int
    writes: list[_HandleOp] = field(default_factory=list)
    bare_text_opens: list[tuple[int, str]] = field(default_factory=list)
    renames: list[tuple[int, str]] = field(default_factory=list)
    fsync_args: list[set[str]] = field(default_factory=list)  # names fed to os.fsync
    has_dir_fsync: bool = False
    calls: list[str] = field(default_factory=list)
    handle_passed_to: dict[str, list[str]] = field(default_factory=dict)

    @property
    def has_fsync(self) -> bool:
        return bool(self.fsync_args)


class _FnVisitor(ast.NodeVisitor):
    """Summarize one function body (nested defs merge into the parent)."""

    def __init__(self, summary: _FnSummary):
        self.s = summary

    # -- assignments: where do opened handles land? ---------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)  # record the open() op first, then bind it
        self._bind(node.targets, node.value)

    def visit_With(self, node: ast.With) -> None:
        self.generic_visit(node)
        for item in node.items:
            if item.optional_vars is not None:
                self._bind([item.optional_vars], item.context_expr)

    def _bind(self, targets: list[ast.AST], value: ast.AST) -> None:
        op = self._open_op(value)
        if op is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                op.handle = target.id
            elif isinstance(target, ast.Attribute):
                op.escapes = True

    def visit_Return(self, node: ast.Return) -> None:
        self.generic_visit(node)
        if node.value is not None:
            op = self._open_op(node.value)
            if op is not None:
                op.escapes = True

    # -- calls ----------------------------------------------------------------

    def _open_op(self, node: ast.AST) -> _HandleOp | None:
        """The already-recorded op for an ``open``/``fdopen`` call node."""
        if isinstance(node, ast.Call):
            for op in self.s.writes:
                if op.lineno == node.lineno and op.symbol != "truncate":
                    return op
        return None

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name in ("open", "io.open", "os.fdopen"):
            mode = self._mode_of(node)
            if mode is not None and _is_write_mode(mode):
                self.s.writes.append(_HandleOp(node.lineno, mode, None, False))
                if mode in _BARE_TEXT_MODES and name != "os.fdopen":
                    self.s.bare_text_opens.append((node.lineno, mode))
        elif name in ("os.replace", "os.rename", "shutil.move"):
            self.s.renames.append((node.lineno, name))
        elif name == "os.fsync":
            args: set[str] = set()
            for arg in node.args:
                args |= _names_in(arg)
            self.s.fsync_args.append(args)
        elif name is not None:
            leaf = name.rsplit(".", 1)[-1]
            if "fsync_dir" in leaf:
                self.s.has_dir_fsync = True
            elif leaf == "truncate" and isinstance(node.func, ast.Attribute):
                base = node.func.value
                handle = base.id if isinstance(base, ast.Name) else None
                escapes = isinstance(base, ast.Attribute)
                self.s.writes.append(
                    _HandleOp(node.lineno, "truncate", handle, escapes)
                )
            elif leaf in ("replace", "rename") and len(node.args) == 1:
                # one-argument .replace/.rename = pathlib-style, not str.replace
                self.s.renames.append((node.lineno, f"Path.{leaf}"))
            if isinstance(node.func, ast.Name):
                self.s.calls.append(name)
            elif isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ) and node.func.value.id in ("self", "cls"):
                self.s.calls.append(node.func.attr)
            for arg in node.args:
                for var in _names_in(arg):
                    self.s.handle_passed_to.setdefault(var, []).append(
                        name.rsplit(".", 1)[-1] if "." in name else name
                    )
        self.generic_visit(node)

    @staticmethod
    def _mode_of(node: ast.Call) -> str | None:
        mode: ast.AST | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None


def _collect_functions(tree: ast.Module) -> list[tuple[ast.FunctionDef, str | None]]:
    out: list[tuple[ast.FunctionDef, str | None]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, None))
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((sub, node.name))
    return out


def _summaries(tree: ast.Module) -> dict[str, _FnSummary]:
    table: dict[str, _FnSummary] = {}
    for fn, cls in _collect_functions(tree):
        qual = f"{cls}.{fn.name}" if cls else fn.name
        summary = _FnSummary(qual, cls, fn.lineno)
        _FnVisitor(summary).generic_visit(fn)
        table[qual] = summary
    return table


def _resolve(table: dict[str, _FnSummary], caller: _FnSummary, name: str) -> str | None:
    """A callee name → its qualname, preferring same-class methods."""
    leaf = name.rsplit(".", 1)[-1]
    if caller.class_name is not None and f"{caller.class_name}.{leaf}" in table:
        return f"{caller.class_name}.{leaf}"
    if leaf in table:
        return leaf
    return None


def _reachable(
    table: dict[str, _FnSummary], start: str, fact: "callable"
) -> bool:
    """Does ``fact`` hold for ``start`` or any transitively-called local fn?"""
    seen: set[str] = set()
    stack = [start]
    while stack:
        qual = stack.pop()
        if qual in seen:
            continue
        seen.add(qual)
        s = table[qual]
        if fact(s):
            return True
        for callee in s.calls:
            resolved = _resolve(table, s, callee)
            if resolved is not None:
                stack.append(resolved)
    return False


def _class_fsyncs(table: dict[str, _FnSummary], cls: str | None) -> bool:
    if cls is None:
        return False
    return any(
        s.has_fsync for s in table.values() if s.class_name == cls
    )


def _handle_satisfied(
    table: dict[str, _FnSummary], s: _FnSummary, op: _HandleOp
) -> bool:
    """Is this opened/truncated handle plausibly fsync'd before it matters?"""
    if op.escapes:
        # the handle outlives the function (self._fh = ...): the class owns
        # the fsync discipline — require *someone* in the class to fsync
        return _class_fsyncs(table, s.class_name) or _reachable(
            table, s.qualname, lambda f: f.has_fsync
        )
    if op.handle is not None:
        for args in s.fsync_args:
            if op.handle in args:
                return True
        for callee in s.handle_passed_to.get(op.handle, ()):
            resolved = _resolve(table, s, callee)
            if resolved is not None and _reachable(
                table, resolved, lambda f: f.has_fsync
            ):
                return True
        return False
    # anonymous handle (open() used inline): any local fsync gets credit
    return s.has_fsync


def lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Run the durability lint over one module's source."""
    tree = ast.parse(source, filename=filename)
    lines = source.splitlines()
    table = _summaries(tree)
    fname = Path(filename).name
    findings: list[Finding] = []

    def add(rule: str, sev: Severity, lineno: int, symbol: str, qual: str, msg: str) -> None:
        if rule in _allowed_rules(lines, lineno):
            return
        findings.append(
            Finding(
                rule=rule,
                severity=sev,
                where=f"{filename}:{lineno}",
                message=msg,
                key=f"{rule}:{fname}:{qual}:{symbol}",
            )
        )

    for s in table.values():
        for op in s.writes:
            if not _handle_satisfied(table, s, op):
                what = (
                    "file truncated"
                    if op.symbol == "truncate"
                    else f"file opened {op.symbol!r}"
                )
                add(
                    "write-without-fsync",
                    Severity.ERROR,
                    op.lineno,
                    op.symbol,
                    s.qualname,
                    f"{what} in {s.qualname} with no os.fsync on the handle: "
                    "a crash can lose or tear the write",
                )
        if s.renames and not _reachable(table, s.qualname, lambda f: f.has_dir_fsync):
            for lineno, symbol in s.renames:
                add(
                    "rename-without-dir-fsync",
                    Severity.WARNING,
                    lineno,
                    symbol,
                    s.qualname,
                    f"{symbol} in {s.qualname} never fsyncs the parent "
                    "directory: the rename may not survive a crash",
                )
        for lineno, mode in s.bare_text_opens:
            add(
                "bare-open-w",
                Severity.WARNING,
                lineno,
                mode,
                s.qualname,
                f'bare open(..., "{mode}") in {s.qualname}: durable text '
                "goes through atomic_write_bytes (temp file + fsync + rename)",
            )
    return findings


def lint_paths(paths: Iterable[Path | str]) -> list[Finding]:
    """Run the durability lint over engine source files."""
    findings: list[Finding] = []
    for path in paths:
        path = Path(path)
        findings.extend(lint_source(path.read_text(), filename=str(path)))
    return findings

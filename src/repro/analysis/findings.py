"""Structured findings, the rule catalog, and the baseline allowlist.

A :class:`Finding` is one violation discovered by either pass.  Its
``key`` is deliberately line-number-free (rule + file/app + symbol), so
baselines survive unrelated edits; its ``where`` carries the precise
``file:line`` (static) or ``app/iteration/region`` (dynamic) coordinate
for humans.

Intentional violations are suppressed in one of two ways:

* inline — a ``# analysis: allow(<rule>[, <rule>...])`` comment on the
  offending line or the line directly above it (static pass only);
* baseline — the finding's ``key`` listed in the JSON baseline file
  (``tools/analysis_baseline.json``), used mainly for dynamic findings
  and bulk-adoption of the gate on legacy code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = ["Severity", "Finding", "RULES", "Baseline", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = Path("tools") / "analysis_baseline.json"


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"


#: rule id -> (pass, one-line description)
RULES: dict[str, tuple[str, str]] = {
    "raw-np-escape": (
        "static",
        "ManagedArray.np used in main-loop code: accesses bypass the "
        "access counter and cache simulation",
    ),
    "out-of-region-write": (
        "static",
        "managed-array write in the main loop outside any declared code "
        "region: the store is attributed to no region",
    ),
    "region-mismatch": (
        "static",
        "region ids used by _iterate and the class REGIONS declaration "
        "disagree",
    ),
    "unregistered-object": (
        "static",
        "numpy array allocated as application state without registering "
        "it with the PersistentHeap",
    ),
    "torn-commit": (
        "static",
        "multi-object commit group with no single atomic root: the final "
        "persist of the group is not a one-word scalar marker",
    ),
    "unpersisted-at-exit": (
        "static",
        "object stored but never persisted before the iteration ends, in "
        "a class that commits durability manually",
    ),
    "redundant-persist": (
        "static",
        "object re-persisted with no store since its previous persist: "
        "flush latency with no durability gained",
    ),
    "dirty-at-commit": (
        "dynamic",
        "cache blocks of a plan-persisted object still dirty after its "
        "commit-point flush",
    ),
    "dead-persist": (
        "dynamic",
        "persistence operation flushed an object with no stores since "
        "its previous flush (never-dirtied blocks)",
    ),
    "persist-order": (
        "static+dynamic",
        "static: scalar commit marker persisted while guarded data still "
        "has unpersisted stores; dynamic: persist events disagree with "
        "the plan's region/iteration schedule",
    ),
    "write-without-fsync": (
        "engine-lint",
        "durable artifact written through a handle that never reaches an "
        "os.fsync: a crash can lose or tear the write",
    ),
    "rename-without-dir-fsync": (
        "engine-lint",
        "os.replace/os.rename publish without fsyncing the parent "
        "directory: the rename itself may not survive a crash",
    ),
    "bare-open-w": (
        "engine-lint",
        'bare open(..., "w") on a durable artifact: use the atomic '
        "writer (temp file + fsync + rename) instead",
    ),
}


@dataclass(frozen=True)
class Finding:
    """One analyzer violation."""

    rule: str
    severity: Severity
    where: str  # "path.py:123" or "app=MG it=2 region=R1"
    message: str
    key: str  # stable baseline key (no line numbers)

    def render(self) -> str:
        return f"{self.severity.value:7s} {self.rule:20s} {self.where}: {self.message}"


@dataclass
class Baseline:
    """Allowlist of finding keys accepted as intentional."""

    keys: set[str] = field(default_factory=set)
    path: Path | None = None

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = Path(self.path)

    @staticmethod
    def load(path: Path | str | None) -> "Baseline":
        if path is None:
            return Baseline()
        p = Path(path)
        if not p.exists():
            return Baseline(path=p)
        data = json.loads(p.read_text())
        return Baseline(keys=set(data.get("allow", [])), path=p)

    def save(self, path: Path | str | None = None) -> Path:
        p = Path(path) if path is not None else self.path
        if p is None:
            raise ValueError("baseline has no path")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(
            json.dumps({"version": 1, "allow": sorted(self.keys)}, indent=2) + "\n"
        )
        return p

    def allows(self, finding: Finding) -> bool:
        return finding.key in self.keys

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (active, suppressed)."""
        active = [f for f in findings if not self.allows(f)]
        suppressed = [f for f in findings if self.allows(f)]
        return active, suppressed

"""Static (AST) pass over application sources.

The pass understands the application contract of :mod:`repro.apps.base`:
an app class allocates managed objects in ``_allocate`` via
``self.ws.array/scalar/iterator``, runs its main loop in ``_iterate``
inside ``with ws.region(...)`` blocks, and may touch raw NumPy state
freely in the sanctioned init/verification paths (``_allocate``,
``_initialize``, ``_post_restore``, ``verify``, ``reference_outcome``).

Rules
-----

``raw-np-escape``
    ``.np`` (the raw architectural array) referenced in a method
    reachable from ``_iterate``.  Reads bypass the access counter
    (warning); writes additionally bypass crash-point splitting and the
    cache simulation entirely (error).
``out-of-region-write``
    A managed write (``write``/``update``/``write_at``/``set``) reachable
    from ``_iterate`` through a call chain that is not protected by any
    ``with ws.region(...)`` block.
``region-mismatch``
    Region ids used by the main loop vs. the class ``REGIONS``
    declaration, in both directions.  Simple loop-carried region names
    (literal tuples, ``enumerate`` over literals, f-strings over such
    variables) are resolved; if any region argument stays unresolvable,
    the declared-but-unused direction is skipped for that class.
``unregistered-object``
    ``self.<attr> = np.zeros(...)``-style allocations in ``_allocate``
    that bypass the persistent heap (no access accounting, no NVM image,
    invisible to restart).

Ordering rules (interprocedural, over the :mod:`~repro.analysis.
callgraph` linearization of one ``_iterate`` pass; they activate only on
*manual* ``persist()`` calls — plan-driven flushes are checked by the
dynamic pass):

``persist-order``
    A scalar commit marker is persisted while another object it guards
    still has unpersisted stores (WITCHER-style ordering invariant: the
    marker becomes durable before the data it vouches for).
``torn-commit``
    A commit group (consecutive persists, no stores or region exits in
    between) publishes two or more objects with no single atomic root —
    the group's final persist must target a one-word scalar, the only
    atomically-persistable object, for the commit to be all-or-nothing.
``redundant-persist``
    An object re-persisted with no store since its previous persist in
    the same pass: pure flush latency, no durability gained.
``unpersisted-at-exit``
    In a class that opts into manual persistence, an object whose last
    store of the pass is never followed by a persist — it leaves the
    iteration volatile while sibling objects were committed.

Suppression: ``# analysis: allow(<rule>)`` on the offending line or the
line directly above.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.callgraph import ClassGraph, Op, build_class_graph
from repro.analysis.findings import Finding, Severity

__all__ = ["analyze_source", "analyze_paths"]

#: methods whose raw-NumPy use is sanctioned (init / postmortem paths)
SANCTIONED_METHODS = frozenset(
    {
        "__init__",
        "_allocate",
        "_initialize",
        "_post_restore",
        "verify",
        "reference_outcome",
        "nominal_iterations",
    }
)

MANAGED_WRITE_METHODS = frozenset({"write", "update", "write_at", "set"})

NUMPY_ALLOCATORS = frozenset(
    {
        "array",
        "arange",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "linspace",
        "ones",
        "ones_like",
        "zeros",
        "zeros_like",
    }
)

_ALLOW_RE = re.compile(r"#\s*analysis:\s*allow\(([^)]*)\)")


def _allowed_rules(lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed at a 1-based source line (same line or the one above)."""
    out: set[str] = set()
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines):
            m = _ALLOW_RE.search(lines[ln - 1])
            if m:
                out.update(part.strip() for part in m.group(1).split(","))
    return out


def _expr_text(node: ast.AST, limit: int = 60) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass
class _ClassInfo:
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef]
    regions: tuple[str, ...] | None  # literal REGIONS, if declared


def _collect_classes(tree: ast.Module) -> list[_ClassInfo]:
    out = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        regions: tuple[str, ...] | None = None
        for item in node.body:
            if (
                isinstance(item, ast.Assign)
                and len(item.targets) == 1
                and isinstance(item.targets[0], ast.Name)
                and item.targets[0].id == "REGIONS"
            ):
                try:
                    value = ast.literal_eval(item.value)
                except ValueError:
                    continue
                if isinstance(value, tuple) and all(isinstance(v, str) for v in value):
                    regions = value
        bases = tuple(
            b.id if isinstance(b, ast.Name) else b.attr
            for b in node.bases
            if isinstance(b, (ast.Name, ast.Attribute))
        )
        out.append(_ClassInfo(node.name, node, bases, methods, regions))
    return out


def _is_app_class(info: _ClassInfo) -> bool:
    return "_iterate" in info.methods or "_allocate" in info.methods


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` -> attr name."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _managed_names(info: _ClassInfo) -> set[str]:
    """Attributes assigned from ``self.ws.array/scalar/iterator(...)``."""
    from repro.analysis.callgraph import managed_kinds

    return set(managed_kinds(info.methods))


def _hot_methods(info: _ClassInfo, graph: ClassGraph | None = None) -> set[str]:
    """Methods reachable from ``_iterate`` (the main-loop call graph)."""
    if graph is None:
        graph = build_class_graph(info.name, info.methods)
    return graph.reachable("_iterate")


# -- region-name resolution ----------------------------------------------------


def _literal_str_seq(node: ast.AST) -> list[object] | None:
    """A tuple/list literal -> python values (strings and tuples kept)."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    try:
        return list(ast.literal_eval(node))
    except ValueError:
        return None


def _loop_bindings(fn: ast.FunctionDef) -> dict[str, set[str]]:
    """String values loop variables can take, for simple literal loops.

    Handles ``for x in ("a", "b")``, ``for a, b in (("r", 1), ...)`` and
    both wrapped in ``enumerate(...)``.
    """
    bindings: dict[str, set[str]] = {}

    def bind(target: ast.AST, values: list[object]) -> None:
        if isinstance(target, ast.Name):
            strs = {v for v in values if isinstance(v, str)}
            if strs:
                bindings.setdefault(target.id, set()).update(strs)
            return
        if isinstance(target, ast.Tuple):
            for pos, elt in enumerate(target.elts):
                sub = [
                    v[pos]
                    for v in values
                    if isinstance(v, tuple) and len(v) > pos
                ]
                bind(elt, sub)

    for node in ast.walk(fn):
        if not isinstance(node, ast.For):
            continue
        it, target = node.iter, node.target
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "enumerate"
            and it.args
        ):
            seq = _literal_str_seq(it.args[0])
            if seq is not None and isinstance(target, ast.Tuple) and len(target.elts) == 2:
                bind(target.elts[1], seq)
            continue
        seq = _literal_str_seq(it)
        if seq is not None:
            bind(target, seq)
    return bindings


def _resolve_region_arg(
    node: ast.AST, bindings: dict[str, set[str]]
) -> set[str] | None:
    """Possible region-name strings of a ``region(...)`` argument, or
    ``None`` when unresolvable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.JoinedStr):
        options: list[set[str]] = []
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                options.append({part.value})
            elif isinstance(part, ast.FormattedValue):
                sub = _resolve_region_arg(part.value, bindings)
                if sub is None:
                    return None
                options.append(sub)
            else:
                return None
        out = {""}
        for opt in options:
            out = {prefix + piece for prefix in out for piece in opt}
        return out
    return None


def _region_calls(fn: ast.FunctionDef) -> list[ast.Call]:
    return [
        node
        for node in ast.walk(fn)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "region"
    ]


# -- per-class analysis --------------------------------------------------------


@dataclass
class _ClassAnalyzer:
    info: _ClassInfo
    path: Path
    lines: list[str]
    regions: tuple[str, ...] | None
    findings: list[Finding] = field(default_factory=list)

    def _add(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
        symbol: str,
        method: str,
    ) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule in _allowed_rules(self.lines, lineno):
            return
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                where=f"{self.path}:{lineno}",
                message=message,
                key=f"{rule}:{self.path.name}:{self.info.name}.{method}:{symbol}",
            )
        )

    # -- rule: raw-np-escape ---------------------------------------------------

    def check_np_escapes(self, hot: set[str]) -> None:
        for name in sorted(hot):
            fn = self.info.methods[name]
            write_nodes = self._assignment_target_nodes(fn)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Attribute) and node.attr == "np"):
                    continue
                # Plain module references (``np.zeros``) are Name nodes,
                # not Attribute; an Attribute ``.np`` is the managed-array
                # property (or something shaped exactly like it).
                is_write = id(node) in write_nodes
                text = _expr_text(node)
                self._add(
                    "raw-np-escape",
                    Severity.ERROR if is_write else Severity.WARNING,
                    node,
                    f"raw array {'written' if is_write else 'read'} via "
                    f"`{text}` in main-loop code; use the managed "
                    "read/write API so the access is simulated",
                    text,
                    name,
                )

    @staticmethod
    def _assignment_target_nodes(fn: ast.FunctionDef) -> set[int]:
        """ids of AST nodes that appear inside assignment targets."""
        out: set[int] = set()
        for node in ast.walk(fn):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                for sub in ast.walk(tgt):
                    out.add(id(sub))
        return out

    # -- rule: out-of-region-write ---------------------------------------------

    def check_out_of_region_writes(self, hot: set[str], managed: set[str]) -> None:
        if "_iterate" not in self.info.methods:
            return
        # entered[name] = {True} if ever called outside a region block,
        # {False} if only inside; writes only matter on the True side.
        entered: dict[str, set[bool]] = {"_iterate": {True}}
        work = [("_iterate", True)]
        seen: set[tuple[str, bool]] = set()
        while work:
            name, unprotected = work.pop()
            if (name, unprotected) in seen or name not in self.info.methods:
                continue
            seen.add((name, unprotected))
            fn = self.info.methods[name]
            for callee, call_in_region in self._self_calls_with_region(fn):
                callee_unprotected = unprotected and not call_in_region
                entered.setdefault(callee, set()).add(callee_unprotected)
                work.append((callee, callee_unprotected))
        for name in sorted(hot):
            if True not in entered.get(name, set()):
                continue
            fn = self.info.methods[name]
            for node, in_region in self._managed_writes_with_region(fn, managed):
                if in_region:
                    continue
                text = _expr_text(node.func)
                self._add(
                    "out-of-region-write",
                    Severity.ERROR,
                    node,
                    f"managed write `{text}(...)` executes outside any "
                    "`with ws.region(...)` block: the store belongs to no "
                    "declared region",
                    text,
                    name,
                )

    def _walk_with_region_flag(self, fn: ast.FunctionDef):
        """Yield (node, lexically-inside-region-with) for a function body."""

        def visit(node: ast.AST, in_region: bool):
            for child in ast.iter_child_nodes(node):
                child_in_region = in_region
                if isinstance(child, ast.With) and any(
                    isinstance(item.context_expr, ast.Call)
                    and isinstance(item.context_expr.func, ast.Attribute)
                    and item.context_expr.func.attr == "region"
                    for item in child.items
                ):
                    child_in_region = True
                yield child, child_in_region
                yield from visit(child, child_in_region)

        yield from visit(fn, False)

    def _self_calls_with_region(self, fn: ast.FunctionDef):
        for node, in_region in self._walk_with_region_flag(fn):
            if isinstance(node, ast.Call):
                attr = _self_attr(node.func)
                if attr is not None:
                    yield attr, in_region

    def _managed_writes_with_region(self, fn: ast.FunctionDef, managed: set[str]):
        for node, in_region in self._walk_with_region_flag(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MANAGED_WRITE_METHODS
            ):
                # self.<managed>.write(...), self.<managed>.arr.update(...)
                base = node.func.value
                if isinstance(base, ast.Attribute) and base.attr == "arr":
                    base = base.value
                if _self_attr(base) in managed:
                    yield node, in_region

    # -- rule: region-mismatch -------------------------------------------------

    def check_region_mismatch(self, hot: set[str]) -> None:
        if self.regions is None or "_iterate" not in self.info.methods:
            return
        used: set[str] = set()
        fully_resolved = True
        first_region_node: ast.AST | None = None
        for name in sorted(hot):
            fn = self.info.methods[name]
            bindings = _loop_bindings(fn)
            for call in _region_calls(fn):
                if first_region_node is None:
                    first_region_node = call
                if not call.args:
                    continue
                resolved = _resolve_region_arg(call.args[0], bindings)
                if resolved is None:
                    fully_resolved = False
                    continue
                for rid in sorted(resolved):
                    if rid not in self.regions:
                        self._add(
                            "region-mismatch",
                            Severity.ERROR,
                            call,
                            f"region {rid!r} entered by {name}() is not in "
                            f"{self.info.name}.REGIONS",
                            rid,
                            name,
                        )
                used.update(resolved)
        if fully_resolved:
            for rid in self.regions:
                if rid not in used:
                    self._add(
                        "region-mismatch",
                        Severity.ERROR,
                        first_region_node or self.info.node,
                        f"region {rid!r} declared in {self.info.name}.REGIONS "
                        "is never entered by the main loop",
                        rid,
                        "_iterate",
                    )

    # -- ordering rules (interprocedural, callgraph-linearized) ----------------

    def check_persist_ordering(self, graph: ClassGraph) -> None:
        """persist-order / torn-commit / redundant-persist /
        unpersisted-at-exit over one linearized ``_iterate`` pass.

        All four rules key on *manual* ``persist()`` calls — a class with
        none (the plan-driven idiom every registry app uses) produces no
        ordering findings, so the rules gate nothing retroactively.
        """
        seq = graph.linearize("_iterate")
        if not any(op.kind == "persist" for op in seq):
            return
        data_kinds = {"array", "scalar"}
        scalars = {a for a, k in graph.managed.items() if k == "scalar"}
        tracked = {a for a, k in graph.managed.items() if k in data_kinds}

        # pending[obj] = first store op since obj's last persist
        pending: dict[str, Op] = {}
        ever_persisted: set[str] = set()
        for op in seq:
            if op.kind == "store" and op.target in tracked:
                pending.setdefault(op.target, op)
            elif op.kind == "persist" and op.target in tracked:
                if op.target in scalars:
                    for guarded, store_op in sorted(pending.items()):
                        if guarded == op.target:
                            continue
                        self._add(
                            "persist-order",
                            Severity.ERROR,
                            op,
                            f"commit marker `self.{op.target}` persisted while "
                            f"`self.{guarded}` (stored at line "
                            f"{store_op.lineno}) still has unpersisted data: "
                            "a crash after this persist exposes a durable "
                            "marker guarding volatile state — persist the "
                            "data first, the marker last",
                            f"{op.target}:{guarded}",
                            op.method,
                        )
                if op.target not in pending and op.target in ever_persisted:
                    self._add(
                        "redundant-persist",
                        Severity.WARNING,
                        op,
                        f"`self.{op.target}.persist()` with no store since "
                        "its previous persist in the same pass: every line "
                        "is already durable, the flush is dead cost",
                        op.target,
                        op.method,
                    )
                ever_persisted.add(op.target)
                pending.pop(op.target, None)

        self._check_torn_commits(seq, tracked, scalars)

        # unpersisted-at-exit: stored after its last persist, never
        # committed before the pass ends.
        for obj, store_op in sorted(pending.items()):
            self._add(
                "unpersisted-at-exit",
                Severity.WARNING,
                store_op,
                f"`self.{obj}` stored at line {store_op.lineno} but never "
                "persisted before the iteration ends, in a class that "
                "commits durability manually: the object stays volatile "
                "while its siblings were persisted",
                obj,
                store_op.method,
            )

    def _check_torn_commits(
        self, seq: list[Op], tracked: set[str], scalars: set[str]
    ) -> None:
        """Flag multi-object commit groups with no atomic root.

        A *commit group* is a maximal run of persist ops with no store or
        region exit in between.  Publishing >= 2 objects is all-or-nothing
        only if the group's final persist targets a one-word scalar (the
        single atomically-persistable word, stored last) — otherwise a
        crash between the group's flushes leaves a torn logical commit.
        """
        group: list[Op] = []

        def close_group() -> None:
            targets = {op.target for op in group}
            if len(targets) >= 2 and group[-1].target not in scalars:
                first = group[0]
                self._add(
                    "torn-commit",
                    Severity.ERROR,
                    first,
                    f"commit group persists {len(targets)} objects "
                    f"({', '.join(sorted(targets))}) with no atomic root: "
                    "the final persist of the group must be a one-word "
                    "scalar marker for the multi-object commit to be "
                    "all-or-nothing",
                    "+".join(sorted(targets)),
                    first.method,
                )
            group.clear()

        for op in seq:
            if op.kind == "persist" and op.target in tracked:
                group.append(op)
            elif group:
                close_group()
        if group:
            close_group()

    # -- rule: unregistered-object ---------------------------------------------

    def check_unregistered_objects(self) -> None:
        fn = self.info.methods.get("_allocate")
        if fn is None:
            return
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in NUMPY_ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in {"np", "numpy"}
            ):
                continue
            for tgt in node.targets:
                attr = _self_attr(tgt)
                if attr is None:
                    continue
                self._add(
                    "unregistered-object",
                    Severity.ERROR,
                    node,
                    f"`self.{attr}` allocated with "
                    f"`{_expr_text(node.value.func)}(...)` but never "
                    "registered with the PersistentHeap: it has no NVM "
                    "image and its accesses are invisible to the simulator",
                    f"self.{attr}",
                    "_allocate",
                )


def _analyze_module(
    tree: ast.Module,
    source: str,
    path: Path,
    region_registry: dict[str, tuple[str, ...]],
) -> list[Finding]:
    lines = source.splitlines()
    findings: list[Finding] = []
    for info in _collect_classes(tree):
        if not _is_app_class(info):
            continue
        regions = info.regions
        if regions is None:
            for base in info.bases:
                if base in region_registry:
                    regions = region_registry[base]
                    break
        analyzer = _ClassAnalyzer(info, path, lines, regions)
        graph = build_class_graph(info.name, info.methods)
        hot = _hot_methods(info, graph)
        hot_unsanctioned = {m for m in hot if m not in SANCTIONED_METHODS}
        managed = set(graph.managed)
        analyzer.check_np_escapes(hot_unsanctioned)
        analyzer.check_out_of_region_writes(hot_unsanctioned, managed)
        analyzer.check_region_mismatch(hot_unsanctioned)
        analyzer.check_unregistered_objects()
        analyzer.check_persist_ordering(graph)
        findings.extend(analyzer.findings)
    return findings


def analyze_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Run the static pass over one module's source text."""
    tree = ast.parse(source, filename=filename)
    registry = {
        info.name: info.regions
        for info in _collect_classes(tree)
        if info.regions is not None
    }
    return _analyze_module(tree, source, Path(filename), registry)


def analyze_paths(paths: Iterable[Path | str]) -> list[Finding]:
    """Run the static pass over a set of files (two-phase, so REGIONS
    declarations resolve across modules for subclassed apps)."""
    parsed: list[tuple[Path, str, ast.Module]] = []
    registry: dict[str, tuple[str, ...]] = {}
    for raw in sorted(Path(p) for p in paths):
        source = raw.read_text()
        tree = ast.parse(source, filename=str(raw))
        parsed.append((raw, source, tree))
        for info in _collect_classes(tree):
            if info.regions is not None:
                registry[info.name] = info.regions
    findings: list[Finding] = []
    for path, source, tree in parsed:
        findings.extend(_analyze_module(tree, source, path, registry))
    return findings

"""Trace equivalence pass: partition crash points, emit pruned crash plans.

Most sampled crash points land in equivalence classes the campaign has
already measured: NVM content only changes on *write-backs* (dirty-line
evictions and persist flushes), so every crash point between two
consecutive write-back events sees the bit-identical NVM image and —
classification being deterministic — produces the bit-identical restart
outcome.  This pass replays the golden recording's write-back delta log
(:meth:`repro.memsim.golden.GoldenStore.image_signatures`), groups the
sampled crash points by dirty-block signature, and emits a
:class:`CrashPlan`: the full sampled point set, its partition into
equivalence classes, one *representative* per class to actually execute,
and a sampled *tail* of extra members per class whose classification is
re-run and cross-checked against the representative (an online purity
audit of the equivalence relation).

``run_campaign(plan=...)`` consumes the plan: it classifies only the
representatives (plus tails), broadcasts each representative's response
to its class, and takes every record's coordinates (counter, iteration,
region, per-object inconsistent rates) from the crash point's own golden
metadata — so the pruned campaign's records, and every aggregate derived
from them, are **bit-identical** to the full campaign's while executing
``n_classes + n_tails`` restarts instead of ``n_points``
(``tests/analysis/test_equiv_pass.py`` asserts both properties).

A plan is only valid for the exact campaign it was computed from; it
embeds the campaign content fingerprint (same ingredients as the
artifact cache's campaign key) and :func:`CrashPlan.validate_for`
refuses anything else with a usage error rather than silently producing
wrong science.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import UsageError

if TYPE_CHECKING:
    from repro.apps.base import AppFactory
    from repro.harness.cache import ArtifactCache
    from repro.memsim.golden import GoldenStore
    from repro.nvct.campaign import CampaignConfig

__all__ = [
    "CRASH_PLAN_VERSION",
    "CrashPlan",
    "crash_plan_key",
    "partition_signatures",
    "build_crash_plan",
]

CRASH_PLAN_VERSION = 1

#: default number of extra class members classified as a purity audit
DEFAULT_TAIL = 1


def crash_plan_key(factory: "AppFactory", cfg: "CampaignConfig") -> str:
    """Campaign content fingerprint a crash plan is bound to.

    Same ingredients as :func:`repro.harness.cache.campaign_key` (app,
    factory params, persistence plan, full config, package versions):
    any change that could alter the sampled points or the write-back
    schedule invalidates the plan.
    """
    from repro.harness.cache import (
        _versions,
        campaign_config_doc,
        fingerprint,
        plan_to_dict,
    )

    return fingerprint(
        {
            "kind": "crash-plan",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "plan": plan_to_dict(cfg.plan),
            "config": campaign_config_doc(cfg),
        }
    )


def partition_signatures(signatures: list[tuple[int, ...]]) -> list[int]:
    """Class id per crash point, from per-point dirty-block signatures.

    Signatures are per-object delta bounds, monotone in the crash-point
    index, so equal signatures are necessarily consecutive: the partition
    is a run-length grouping.  Class ids are dense and ascending.
    """
    class_ids: list[int] = []
    current = -1
    prev: tuple[int, ...] | None = None
    for sig in signatures:
        if sig != prev:
            current += 1
            prev = sig
        class_ids.append(current)
    return class_ids


@dataclass
class CrashPlan:
    """A pruned crash plan: sampled points, their partition, what to run.

    ``points``/``weights`` are the deduplicated sampled crash points (the
    exact set the full campaign would run) and their multiplicities;
    ``class_ids[i]`` assigns point *i* to an equivalence class;
    ``reps[c]`` is the point index executed for class *c*; ``tails[c]``
    are extra point indices of class *c* that are also executed and
    cross-checked against the representative.
    """

    app: str
    campaign_fingerprint: str
    seed: int
    n_tests: int
    distribution: str
    window: tuple[int, int]
    points: list[int]
    weights: list[int]
    class_ids: list[int]
    reps: list[int]
    tails: list[list[int]] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_classes(self) -> int:
        return len(self.reps)

    def executed_indices(self) -> list[int]:
        """Sorted point indices the pruned campaign actually classifies."""
        out = set(self.reps)
        for tail in self.tails:
            out.update(tail)
        return sorted(out)

    def members(self, c: int) -> list[int]:
        return [i for i, cid in enumerate(self.class_ids) if cid == c]

    # -- validation ------------------------------------------------------------

    def validate_for(self, factory: "AppFactory", cfg: "CampaignConfig") -> None:
        """Refuse to prune a campaign this plan was not computed for."""
        if self.app != factory.name:
            raise UsageError(
                f"crash plan was computed for app {self.app!r}, "
                f"not {factory.name!r}"
            )
        expected = crash_plan_key(factory, cfg)
        if self.campaign_fingerprint != expected:
            raise UsageError(
                f"crash plan fingerprint {self.campaign_fingerprint[:12]}… does "
                f"not match this campaign ({expected[:12]}…): the config, "
                "persistence plan, or code version changed — re-emit with "
                "`repro analyze --emit-plan`"
            )

    def _check_shape(self) -> None:
        n = len(self.points)
        if not (len(self.weights) == len(self.class_ids) == n):
            raise UsageError("crash plan: points/weights/class_ids length mismatch")
        if self.class_ids != partition_signatures([(c,) for c in self.class_ids]):
            # ids must be dense, ascending, consecutive runs
            raise UsageError("crash plan: class ids are not a consecutive partition")
        if len(self.reps) != (max(self.class_ids) + 1 if self.class_ids else 0):
            raise UsageError("crash plan: one representative per class required")
        for c, r in enumerate(self.reps):
            if not (0 <= r < n) or self.class_ids[r] != c:
                raise UsageError(f"crash plan: representative {r} not in class {c}")
        for c, tail in enumerate(self.tails):
            for t in tail:
                if not (0 <= t < n) or self.class_ids[t] != c:
                    raise UsageError(f"crash plan: tail point {t} not in class {c}")

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": CRASH_PLAN_VERSION,
            "kind": "crash-plan",
            "app": self.app,
            "campaign_fingerprint": self.campaign_fingerprint,
            "seed": self.seed,
            "n_tests": self.n_tests,
            "distribution": self.distribution,
            "window": list(self.window),
            "n_classes": self.n_classes,
            "points": list(self.points),
            "weights": list(self.weights),
            "class_ids": list(self.class_ids),
            "reps": list(self.reps),
            "tails": [list(t) for t in self.tails],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CrashPlan":
        if not isinstance(doc, dict) or doc.get("kind") != "crash-plan":
            raise UsageError("not a crash plan document")
        if doc.get("version") != CRASH_PLAN_VERSION:
            raise UsageError(f"unsupported crash plan version {doc.get('version')!r}")
        plan = cls(
            app=str(doc["app"]),
            campaign_fingerprint=str(doc["campaign_fingerprint"]),
            seed=int(doc["seed"]),
            n_tests=int(doc["n_tests"]),
            distribution=str(doc["distribution"]),
            window=(int(doc["window"][0]), int(doc["window"][1])),
            points=[int(p) for p in doc["points"]],
            weights=[int(w) for w in doc["weights"]],
            class_ids=[int(c) for c in doc["class_ids"]],
            reps=[int(r) for r in doc["reps"]],
            tails=[[int(t) for t in tail] for tail in doc.get("tails", [])],
        )
        plan._check_shape()
        return plan

    def save(self, path: str | Path) -> Path:
        """Write the plan as JSON through the atomic artifact writer."""
        from repro.obs.export import write_text

        return write_text(path, json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "CrashPlan":
        try:
            doc = json.loads(Path(path).read_text())
        except OSError as exc:
            raise UsageError(f"cannot read crash plan {path}: {exc}") from exc
        except ValueError as exc:
            raise UsageError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        executed = len(self.executed_indices())
        ratio = self.n_points / executed if executed else float("nan")
        return (
            f"crash plan: {self.app}: {self.n_points} sampled points -> "
            f"{self.n_classes} equivalence classes "
            f"({executed} executed trials incl. purity tail, "
            f"{ratio:.1f}x fewer than naive)"
        )


def plan_from_store(
    factory: "AppFactory",
    cfg: "CampaignConfig",
    window: tuple[int, int],
    points: "list[int]",
    weights: "list[int]",
    store: "GoldenStore",
    tail: int = DEFAULT_TAIL,
) -> CrashPlan:
    """Partition an already-recorded golden store into a crash plan."""
    from repro.util.rng import derive_rng

    class_ids = partition_signatures(store.image_signatures())
    n_classes = (max(class_ids) + 1) if class_ids else 0
    members: list[list[int]] = [[] for _ in range(n_classes)]
    for i, c in enumerate(class_ids):
        members[c].append(i)
    reps = [m[0] for m in members]
    rng = derive_rng(cfg.seed, "crash-plan-tail", factory.name)
    tails: list[list[int]] = []
    for m in members:
        rest = m[1:]
        k = min(tail, len(rest))
        if k:
            picked = sorted(int(rest[j]) for j in rng.choice(len(rest), size=k, replace=False))
        else:
            picked = []
        tails.append(picked)
    return CrashPlan(
        app=factory.name,
        campaign_fingerprint=crash_plan_key(factory, cfg),
        seed=cfg.seed,
        n_tests=cfg.n_tests,
        distribution=cfg.distribution,
        window=window,
        points=[int(p) for p in points],
        weights=[int(w) for w in weights],
        class_ids=class_ids,
        reps=reps,
        tails=tails,
    )


def build_crash_plan(
    factory: "AppFactory",
    cfg: "CampaignConfig",
    tail: int = DEFAULT_TAIL,
    cache: "ArtifactCache | None" = None,
) -> CrashPlan:
    """Compute a pruned crash plan for one campaign.

    Runs the profile pass and one golden recording execution (the same
    work the campaign's snapshot phase does — no restarts), replays the
    delta log into per-point signatures, and partitions.  With ``cache``
    (or ``REPRO_CACHE_DIR`` via :meth:`ArtifactCache.from_env`), the plan
    is content-addressed by :func:`crash_plan_key` and the delta replay
    is skipped entirely on a warm hit.
    """
    import numpy as np

    from repro.nvct.campaign import (
        CountingRuntime,
        _dedupe_crash_points,
        _instrumented_run,
        _sample_crash_points,
    )

    if cfg.n_cores > 1 or cfg.verified_mode:
        raise UsageError(
            "crash plans require the golden-pass engine "
            "(single-core, non-verified campaigns)"
        )
    key = crash_plan_key(factory, cfg)
    if cache is not None:
        cached = cache.get_crash_plan(key)
        if cached is not None and len(cached.executed_indices()) and cached_tail_ok(cached, tail):
            return cached

    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    window = (counting.window_begin or 0, counting.counter)
    sampled = _sample_crash_points(
        window, cfg.n_tests, cfg.seed, factory.name, cfg.distribution
    )
    points, weights = _dedupe_crash_points(sampled)
    rt, _ = _instrumented_run(factory, cfg, points, golden=True)
    store = rt.golden_store()
    if store is None or store.n_images != points.size:
        raise RuntimeError(f"{factory.name}: golden recording lost crash points")
    plan = plan_from_store(
        factory, cfg, window,
        [int(p) for p in points], [int(w) for w in np.asarray(weights)],
        store, tail=tail,
    )
    if cache is not None:
        cache.put_crash_plan(key, plan)
    return plan


def cached_tail_ok(plan: CrashPlan, tail: int) -> bool:
    """A cached plan satisfies a request iff its tails are at least as
    long as requested (longer tails only add purity checks)."""
    if tail == 0:
        return True
    return all(
        len(t) >= min(tail, len(plan.members(c)) - 1)
        for c, t in enumerate(plan.tails)
    )

"""Interprocedural call-graph summaries for app classes.

PR 2's static pass walked each method in isolation and only used
``self.<method>()`` call *names* for reachability.  The ordering rules
(persist-order, torn-commit, redundant-persist, unpersisted-at-exit)
need more: the *sequence* of managed stores and explicit ``persist()``
calls as the main loop would execute them, across helper methods.

:func:`build_class_graph` summarizes every method of one app class into
an ordered list of :class:`Op` records (managed stores, manual persists,
self-calls, region-block exits), and :meth:`ClassGraph.linearize`
expands the summary starting from ``_iterate`` by inlining self-calls in
program order — a context-insensitive, cycle-safe linearization that is
exact for the straight-line helper decomposition the app contract uses.
Branches and loop bodies contribute their ops in source order (both
sides of an ``if`` are kept), which over-approximates the set of
executed orders; the ordering rules are written so this yields false
negatives at worst, not false positives on the correct idioms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Op",
    "MethodSummary",
    "ClassGraph",
    "build_class_graph",
    "managed_kinds",
    "self_attr",
]

#: methods of a managed object that store into it
MANAGED_WRITE_METHODS = frozenset({"write", "update", "write_at", "set"})

#: hard cap on linearized ops (recursion / pathological inlining backstop)
_MAX_OPS = 100_000


def self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` -> attr name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def managed_kinds(methods: dict[str, ast.FunctionDef]) -> dict[str, str]:
    """Managed attributes and how they were allocated.

    Returns ``{attr: kind}`` for every ``self.<attr> = self.ws.array/
    scalar/iterator(...)`` assignment anywhere in the class; ``kind`` is
    the workspace factory name (``"array"``, ``"scalar"``,
    ``"iterator"``).  Scalars matter to the ordering rules: a one-word
    scalar is the only object whose persist is atomic on NVM, so it is
    the only legal root of a multi-object commit.
    """
    kinds: dict[str, str] = {}
    for fn in methods.values():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"array", "scalar", "iterator"}
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "ws"
            ):
                for tgt in node.targets:
                    attr = self_attr(tgt)
                    if attr is not None:
                        kinds[attr] = func.attr
    return kinds


@dataclass(frozen=True)
class Op:
    """One summarized operation, in source order within its method.

    ``kind``:

    * ``"store"`` — managed write (``self.<obj>.write/update/write_at/
      set``); ``target`` is the object attribute name.
    * ``"persist"`` — manual commit (``self.<obj>.persist()``).
    * ``"call"`` — ``self.<method>(...)``; ``target`` is the method name.
    * ``"region_end"`` — exit of a ``with ws.region(...)`` block (a
      potential plan-driven flush boundary); ``target`` is the literal
      region name when resolvable, else ``"?"``.
    """

    kind: str
    target: str
    method: str  # defining method (for finding keys)
    lineno: int


@dataclass
class MethodSummary:
    """Ordered op sequence of one method plus its self-call set."""

    name: str
    ops: list[Op] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)


def _managed_base(node: ast.Attribute) -> str | None:
    """Object attr of ``self.<obj>.<meth>`` / ``self.<obj>.arr.<meth>``."""
    base = node.value
    if isinstance(base, ast.Attribute) and base.attr == "arr":
        base = base.value
    return self_attr(base)


class _Summarizer(ast.NodeVisitor):
    """Collect :class:`Op` records for one method body, in source order."""

    def __init__(self, method: str, managed: set[str]) -> None:
        self.method = method
        self.managed = managed
        self.ops: list[Op] = []
        self.calls: set[str] = set()

    def _emit(self, kind: str, target: str, node: ast.AST) -> None:
        self.ops.append(Op(kind, target, self.method, getattr(node, "lineno", 0)))

    def visit_With(self, node: ast.With) -> None:
        region: str | None = None
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr == "region"
            ):
                region = "?"
                if ctx.args and isinstance(ctx.args[0], ast.Constant) and isinstance(
                    ctx.args[0].value, str
                ):
                    region = ctx.args[0].value
            self.visit(ctx)
        for stmt in node.body:
            self.visit(stmt)
        if region is not None:
            self._emit("region_end", region, node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            base = _managed_base(node.func)
            if base is not None and base in self.managed:
                if attr in MANAGED_WRITE_METHODS:
                    self._emit("store", base, node)
                elif attr == "persist":
                    self._emit("persist", base, node)
            method = self_attr(node.func)
            if method is not None:
                self.calls.add(method)
                self._emit("call", method, node)
        self.generic_visit(node)

    # Keep nested function/class definitions out of the summary: their
    # bodies do not execute when the enclosing method runs.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


@dataclass
class ClassGraph:
    """Call-graph summary of one app class."""

    class_name: str
    summaries: dict[str, MethodSummary]
    managed: dict[str, str]  # attr -> "array" | "scalar" | "iterator"

    def reachable(self, root: str = "_iterate") -> set[str]:
        """Methods reachable from ``root`` through self-calls."""
        if root not in self.summaries:
            return set()
        seen: set[str] = set()
        work = [root]
        while work:
            name = work.pop()
            if name in seen or name not in self.summaries:
                continue
            seen.add(name)
            work.extend(self.summaries[name].calls)
        return seen

    def linearize(self, root: str = "_iterate") -> list[Op]:
        """Program-order op sequence of one ``root`` invocation.

        ``call`` ops whose target is a summarized method are replaced by
        that method's linearized body (cycle-safe: a method already on
        the inline stack contributes nothing, matching the base-case-
        terminates reading of recursion); calls to unknown methods are
        dropped.  The result contains only store/persist/region_end ops.
        """
        out: list[Op] = []

        def expand(name: str, stack: tuple[str, ...]) -> None:
            if name in stack or name not in self.summaries or len(out) > _MAX_OPS:
                return
            for op in self.summaries[name].ops:
                if op.kind == "call":
                    expand(op.target, stack + (name,))
                else:
                    out.append(op)

        expand(root, ())
        return out


def build_class_graph(
    class_name: str, methods: dict[str, ast.FunctionDef]
) -> ClassGraph:
    """Summarize one class (name + its method AST nodes) into a graph."""
    managed = managed_kinds(methods)
    summaries: dict[str, MethodSummary] = {}
    for name, fn in methods.items():
        s = _Summarizer(name, set(managed))
        for stmt in fn.body:
            s.visit(stmt)
        summaries[name] = MethodSummary(name=name, ops=s.ops, calls=s.calls)
    return ClassGraph(class_name=class_name, summaries=summaries, managed=managed)

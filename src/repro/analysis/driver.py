"""Analyzer front end: run both passes, apply the baseline, render.

``analyze()`` is what ``repro analyze`` (and the CI gate) calls:

* the static pass runs over the application package sources (or any
  explicit file list);
* the dynamic pass runs each registry application for a few instrumented
  iterations under a flush-everything-at-loop-end plan — the strictest
  schedule, so every commit-point invariant is exercised — and validates
  the resulting event stream;
* the engine self-lint (:mod:`repro.analysis.lint_engine`) checks the
  harness's own durability idioms — fsync discipline, rename publishing,
  bare ``open(..., "w")`` — over ``repro/harness`` and the campaign
  journal;
* findings whose stable key appears in the baseline allowlist are
  suppressed (reported separately), everything else is active.

Exit policy (mirrored by the CLI): with ``--strict`` any active finding
fails; without it only ``error``-severity findings do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import (
    Baseline,
    DEFAULT_BASELINE_PATH,
    Finding,
    Severity,
)
from repro.analysis.static_pass import analyze_paths
from repro.analysis.trace_pass import check_trace, run_traced

__all__ = ["AnalysisReport", "analyze", "default_app_paths"]

#: iterations of instrumented execution per app in the dynamic pass —
#: enough for every region and two persist intervals to execute.
DYNAMIC_ITERATIONS = 3


def default_app_paths() -> list[Path]:
    """The benchmark-suite sources (every module in ``repro.apps``)."""
    import repro.apps

    pkg_dir = Path(repro.apps.__file__).parent
    return sorted(p for p in pkg_dir.glob("*.py") if p.name != "__init__.py")


@dataclass
class AnalysisReport:
    """Combined result of one analyzer invocation."""

    findings: list[Finding] = field(default_factory=list)  # active
    suppressed: list[Finding] = field(default_factory=list)  # baselined
    files_analyzed: int = 0
    apps_traced: int = 0
    engine_files_linted: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def ok(self, strict: bool = False) -> bool:
        return not (self.findings if strict else self.errors)

    def render(self) -> str:
        lines = [
            f"analysis: {self.files_analyzed} files, "
            f"{self.apps_traced} apps traced, "
            f"{self.engine_files_linted} engine files linted, "
            f"{len(self.findings)} active finding(s), "
            f"{len(self.suppressed)} baselined"
        ]
        for f in sorted(self.findings, key=lambda f: (f.severity.value, f.rule, f.where)):
            lines.append("  " + f.render())
        if self.suppressed:
            lines.append("baselined (allowlisted) findings:")
            for f in sorted(self.suppressed, key=lambda f: f.key):
                lines.append(f"    {f.rule:20s} {f.key}")
        return "\n".join(lines)


def _trace_app(name: str) -> list[Finding]:
    from repro.apps.registry import get_factory
    from repro.nvct.plan import PersistencePlan

    factory = get_factory(name)
    probe = factory.app_cls(runtime=None, **factory.params)
    probe.setup()
    candidates = [o.name for o in probe.ws.heap.candidates()]
    plan = PersistencePlan.at_loop_end(candidates)
    iterations = min(DYNAMIC_ITERATIONS, probe.nominal_iterations())
    events = run_traced(factory, plan, max_iterations=iterations)
    return check_trace(events, plan, app=name)


def analyze(
    paths: Iterable[Path | str] | None = None,
    apps: Sequence[str] | None = None,
    dynamic: bool = True,
    engine_lint: bool = True,
    baseline: Baseline | Path | str | None = DEFAULT_BASELINE_PATH,
) -> AnalysisReport:
    """Run the full analyzer.

    ``paths`` defaults to the ``repro.apps`` sources; ``apps`` defaults
    to the whole registry (dynamic pass) and is validated against it —
    an unknown name raises :class:`~repro.errors.UsageError` (CLI exit
    2) instead of a stack trace; ``baseline`` may be a loaded
    :class:`Baseline`, a path, or ``None`` for no allowlist.
    """
    from repro.apps.registry import APP_NAMES, get_factory
    from repro.errors import UsageError

    names = list(apps) if apps is not None else list(APP_NAMES)
    for name in names:
        try:
            get_factory(name)
        except KeyError:
            raise UsageError(
                f"unknown application {name!r} — see `repro list-apps`"
            ) from None

    file_list = list(paths) if paths is not None else default_app_paths()
    findings = analyze_paths(file_list)
    apps_traced = 0
    if dynamic:
        for name in names:
            findings.extend(_trace_app(name))
            apps_traced += 1
    engine_files = 0
    if engine_lint:
        from repro.analysis.lint_engine import default_engine_targets, lint_paths

        targets = default_engine_targets()
        findings.extend(lint_paths(targets))
        engine_files = len(targets)
    if not isinstance(baseline, Baseline):
        baseline = Baseline.load(baseline)
    active, suppressed = baseline.split(findings)
    return AnalysisReport(
        findings=active,
        suppressed=suppressed,
        files_analyzed=len(file_list),
        apps_traced=apps_traced,
        engine_files_linted=engine_files,
    )

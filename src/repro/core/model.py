"""The paper's recomputability model (Sec. 5.2, Eqs. 1-5).

* Eq. 1 — application recomputability is the execution-time-share-weighted
  sum of per-region recomputabilities: ``Y = Σ a_k c_k``.
* Eq. 2 — replacing region k's recomputability with its post-persistence
  value gives ``Y'``.
* Eq. 5 — persisting every x-th loop execution interpolates linearly
  between the unpersisted (``c_k``) and maximally persisted (``c_k^max``)
  recomputability: ``c_k^x = (c_k^max - c_k)/x + c_k``.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "application_recomputability",
    "application_recomputability_by_model",
    "recomputability_with_frequency",
    "recomputability_with_plan",
]


def application_recomputability(
    shares: Mapping[str, float], c: Mapping[str, float]
) -> float:
    """Eq. 1: ``Y = Σ_k a_k · c_k`` over the regions present in ``shares``.

    Regions without a measured recomputability contribute their share at
    recomputability 0 (conservative).
    """
    return float(sum(a * c.get(k, 0.0) for k, a in shares.items()))


def application_recomputability_by_model(
    shares: Mapping[str, float],
    c_by_model: Mapping[str, Mapping[str, float]],
) -> dict[str, float]:
    """Eq. 1 evaluated once per crash model.

    ``c_by_model`` maps a crash-model spec (see
    :mod:`repro.memsim.crashmodel`) to per-region recomputabilities
    measured by campaigns run under that model; the Sec. 7 emulator
    (:func:`repro.system.efficiency.efficiency_by_crash_model`) consumes
    the result to compare persistence-domain assumptions on equal terms.
    """
    return {
        model: application_recomputability(shares, c)
        for model, c in c_by_model.items()
    }


def recomputability_with_frequency(c_k: float, c_k_max: float, x: int) -> float:
    """Eq. 5: the recomputability of a loop region flushed every ``x``-th
    execution, interpolated between ``c_k`` (x → ∞) and ``c_k_max`` (x=1)."""
    if x < 1:
        raise ValueError("flush frequency divisor must be >= 1")
    return (c_k_max - c_k) / x + c_k


def recomputability_with_plan(
    shares: Mapping[str, float],
    c: Mapping[str, float],
    c_max: Mapping[str, float],
    frequencies: Mapping[str, int],
) -> float:
    """Eq. 2 generalized to multiple selected regions: regions in
    ``frequencies`` use Eq. 5's interpolated value, others keep ``c_k``."""
    total = 0.0
    for k, a in shares.items():
        base = c.get(k, 0.0)
        if k in frequencies:
            total += a * recomputability_with_frequency(
                base, c_max.get(k, base), frequencies[k]
            )
        else:
            total += a * base
    return float(total)

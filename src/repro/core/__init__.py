"""EasyCrash: the paper's primary contribution.

Given an application, EasyCrash decides *which* data objects to persist
(:mod:`repro.core.selection`, Spearman rank correlation between per-object
inconsistent rates and recomputation success) and *where / how often* to
flush them (:mod:`repro.core.regions`, a multiple-choice knapsack over
code regions and flush frequencies driven by the recomputability model of
:mod:`repro.core.model`), subject to a runtime overhead bound ``ts`` and
a system-efficiency-derived recomputability threshold ``tau``.

:mod:`repro.core.planner` orchestrates the paper's four-step workflow:
crash-test campaign → data-object selection → code-region selection →
production plan.
"""

from repro.core.selection import SelectionResult, select_critical_objects
from repro.core.model import (
    application_recomputability,
    recomputability_with_frequency,
    recomputability_with_plan,
)
from repro.core.regions import RegionChoice, RegionSelectionResult, select_code_regions
from repro.core.planner import EasyCrashConfig, EasyCrashPlanReport, plan_easycrash
from repro.core.advisor import AdvisorReport, DeploymentScenario, advise

__all__ = [
    "SelectionResult",
    "select_critical_objects",
    "application_recomputability",
    "recomputability_with_frequency",
    "recomputability_with_plan",
    "RegionChoice",
    "RegionSelectionResult",
    "select_code_regions",
    "EasyCrashConfig",
    "EasyCrashPlanReport",
    "plan_easycrash",
    "AdvisorReport",
    "DeploymentScenario",
    "advise",
]

"""Critical data-object selection (paper Sec. 5.1).

For each candidate data object, build two vectors across a crash-test
campaign — its data-inconsistent rate at each crash, and the binary
recomputation outcome — and compute Spearman's rank correlation.  An
object is *critical* when

* the coefficient is negative (higher inconsistency ⇒ lower success), and
* the two-sided p-value is below the significance threshold (0.01 in the
  paper: "less than it statistically shows a very strong correlation").

One adaptation over the paper: an object that is *always* heavily
inconsistent (a small, cache-hot object that never gets written back
naturally — e.g. kmeans' centroids) has a near-constant rate vector, so
its correlation is undefined even though persisting it is essential.
When the campaign shows substantial failures, such degenerate-rate
objects are selected as critical too; the subsequent region-selection
campaign validates (or refutes) the choice empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.nvct.campaign import CampaignResult
from repro.util.stats import SpearmanResult, spearman

__all__ = ["SelectionResult", "select_critical_objects"]


@dataclass
class SelectionResult:
    """Outcome of the data-object selection step."""

    critical: tuple[str, ...]
    correlations: dict[str, SpearmanResult]
    alpha: float

    def is_critical(self, name: str) -> bool:
        return name in self.critical


def select_critical_objects(
    campaign: CampaignResult,
    alpha: float = 0.01,
    degenerate_rate_threshold: float = 0.25,
) -> SelectionResult:
    """Select critical data objects from a baseline campaign's records."""
    success = campaign.success_vector()
    failure_rate = 1.0 - campaign.recomputability() if campaign.records else 0.0
    rates = campaign.object_rate_vectors()
    correlations: dict[str, SpearmanResult] = {}
    critical: list[str] = []
    for name, vec in sorted(rates.items()):
        res = spearman(vec, success)
        correlations[name] = res
        if res.significant(alpha) and res.rho < 0:
            critical.append(name)
        elif (
            math.isnan(res.rho)
            and failure_rate > 0.05
            and float(np.median(vec)) >= degenerate_rate_threshold
        ):
            critical.append(name)
    return SelectionResult(tuple(critical), correlations, alpha)

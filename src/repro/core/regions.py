"""Code-region selection (paper Sec. 5.2).

Given the per-region execution-time shares ``a_k``, the baseline
recomputabilities ``c_k`` (campaign without persistence), the measured
maximal recomputabilities under flushing, and a conservative flush-cost
estimate, choose flush points and frequencies maximizing predicted
recomputability subject to

* the runtime-overhead bound ``Σ l_k(x_k) < ts`` (Eq. 3), and
* the system-efficiency threshold ``Y' > τ`` (Eq. 4).

This is the paper's 0-1 knapsack, extended with per-loop flush
frequencies (Eq. 5) into a multiple-choice knapsack, solved exactly by
dynamic programming.

One adaptation over the paper: the *end of the main-loop iteration*
(where Fig. 2a's example flushes, jointly with the loop iterator) is a
first-class flush point alongside the inner code regions, with its own
measured effect (``c_loop``).  This matters because restart happens at
iteration granularity: a flush paired with the iterator creates an exact
replay point, while a mid-iteration flush can only reduce staleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.model import recomputability_with_frequency
from repro.perf.costmodel import CostModel
from repro.util.knapsack import knapsack_multiple_choice

__all__ = ["RegionChoice", "RegionSelectionResult", "select_code_regions"]

LOOP_END = "__loop_end__"


@dataclass(frozen=True)
class RegionChoice:
    """One selected flush point with its frequency and model predictions."""

    region: str  # a region id, or LOOP_END
    frequency: int
    cost_share: float
    gain: float


@dataclass
class RegionSelectionResult:
    """Output of the region-selection knapsack."""

    choices: tuple[RegionChoice, ...]
    predicted_recomputability: float
    baseline_recomputability: float
    total_cost_share: float
    ts: float
    tau: float

    @property
    def frequencies(self) -> dict[str, int]:
        return {c.region: c.frequency for c in self.choices if c.region != LOOP_END}

    @property
    def loop_frequency(self) -> int | None:
        for c in self.choices:
            if c.region == LOOP_END:
                return c.frequency
        return None

    @property
    def feasible(self) -> bool:
        """Eq. 4: does the predicted recomputability clear τ?"""
        return self.predicted_recomputability > self.tau


def select_code_regions(
    shares: Mapping[str, float],
    c_base: Mapping[str, float],
    c_region_max: Mapping[str, float],
    c_loop_max: Mapping[str, float],
    executions: Mapping[str, int],
    nominal_iterations: int,
    critical_blocks: int,
    base_time: float,
    *,
    cost_model: CostModel | None = None,
    ts: float = 0.03,
    tau: float = 0.0,
    freq_options: tuple[int, ...] = (1, 2, 4, 8),
    invalidate: bool = False,
    measured_flush_once: float | None = None,
) -> RegionSelectionResult:
    """Run the multiple-choice knapsack over flush points × frequencies.

    ``critical_blocks`` is the cache-block count of the critical objects
    (one persistence operation flushes all of them); ``base_time`` is the
    measured no-persistence execution time, which converts flush costs
    into overhead *shares* comparable with ``ts``.
    """
    cm = cost_model or CostModel()
    if measured_flush_once is not None:
        # Measurement-based estimate from a campaign's persist events,
        # like the paper's "overhead measurement of flushing one cache
        # block"; much tighter than the all-dirty worst case.
        flush_once = measured_flush_once
    else:
        flush_once = cm.estimate_flush_once(critical_blocks, invalidate=invalidate)
    regions = [k for k, a in sorted(shares.items()) if a > 0 and not k.startswith("__")]

    groups: list[list[tuple[float, float]]] = []
    meta: list[list[tuple[str, int, float, float]]] = []

    def add_group(name: str, per_exec: int, gain_at_freq) -> None:
        group: list[tuple[float, float]] = []
        info: list[tuple[str, int, float, float]] = []
        for x in freq_options:
            gain = gain_at_freq(x)
            cost = flush_once * (per_exec / x) / base_time if per_exec else 0.0
            if gain <= 0:
                continue
            group.append((gain, cost))
            info.append((name, x, cost, gain))
        groups.append(group)
        meta.append(info)

    # Inner code regions (the paper's items).
    for k in regions:
        ck = c_base.get(k, 0.0)
        ckm = c_region_max.get(k, ck)
        add_group(
            k,
            executions.get(k, 0),
            lambda x, ck=ck, ckm=ckm, a=shares[k]: a
            * (recomputability_with_frequency(ck, ckm, x) - ck),
        )

    # The iteration-boundary flush point (adaptation, see module docstring).
    def loop_gain(x: int) -> float:
        total = 0.0
        for k in regions:
            ck = c_base.get(k, 0.0)
            ckl = c_loop_max.get(k, ck)
            total += shares[k] * (recomputability_with_frequency(ck, ckl, x) - ck)
        return total

    add_group(LOOP_END, nominal_iterations, loop_gain)

    solution = knapsack_multiple_choice(groups, ts)
    choices: list[RegionChoice] = []
    for gi, oi in enumerate(solution.chosen):
        if oi >= 0:
            name, x, cost, gain = meta[gi][oi]
            choices.append(RegionChoice(name, x, cost, gain))

    # Predicted Y': per region, the best of the selected mechanisms
    # (cross-mechanism effects are not additive; taking the max is the
    # conservative combination, in the spirit of the paper's own
    # no-propagation approximation).
    loop_x = None
    for c in choices:
        if c.region == LOOP_END:
            loop_x = c.frequency
    region_x = {c.region: c.frequency for c in choices if c.region != LOOP_END}
    baseline_y = 0.0
    predicted_y = 0.0
    for k in regions:
        a = shares[k]
        ck = c_base.get(k, 0.0)
        baseline_y += a * ck
        cand = [ck]
        if loop_x is not None:
            cand.append(recomputability_with_frequency(ck, c_loop_max.get(k, ck), loop_x))
        if k in region_x:
            cand.append(
                recomputability_with_frequency(ck, c_region_max.get(k, ck), region_x[k])
            )
        predicted_y += a * max(cand)

    return RegionSelectionResult(
        choices=tuple(choices),
        predicted_recomputability=float(predicted_y),
        baseline_recomputability=float(baseline_y),
        total_cost_share=float(sum(c.cost_share for c in choices)),
        ts=ts,
        tau=tau,
    )

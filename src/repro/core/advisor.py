"""Deployment advisor: when to use EasyCrash (paper Sec. 8).

The paper's operator workflow: given (1) the system MTBF, (2) the
checkpoint overhead, (3) the application's recomputability with EasyCrash
and (4) the acceptable performance loss ``ts``, compute the
recomputability threshold τ from the system model and enable EasyCrash
only when the application clears it — otherwise fall back to plain C/R
(e.g. for small-footprint or zero-tolerance applications, Sec. 8's two
unsuitable categories).

:func:`advise` runs that procedure end to end: τ from
:func:`~repro.system.efficiency.recomputability_threshold`, the planning
workflow with that τ, a validation campaign for the measured
recomputability, and the projected system efficiencies either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.planner import EasyCrashConfig, EasyCrashPlanReport, plan_easycrash
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.plan import PersistencePlan
from repro.system.efficiency import (
    SystemParams,
    efficiency_baseline,
    efficiency_easycrash,
    recomputability_threshold,
)

if TYPE_CHECKING:  # avoid a circular import (apps depend on core consumers)
    from repro.apps.base import AppFactory

__all__ = ["DeploymentScenario", "AdvisorReport", "advise"]


@dataclass(frozen=True)
class DeploymentScenario:
    """The operator-supplied inputs of the paper's Sec. 8 checklist."""

    mtbf_s: float
    t_chk_s: float
    ts: float = 0.03

    def system_params(self) -> SystemParams:
        return SystemParams(mtbf_s=self.mtbf_s, t_chk_s=self.t_chk_s)


@dataclass
class AdvisorReport:
    """The advisor's decision and its supporting numbers."""

    app: str
    scenario: DeploymentScenario
    tau: float
    plan_report: EasyCrashPlanReport
    measured_recomputability: float
    efficiency_without: float
    efficiency_with: float
    use_easycrash: bool

    @property
    def plan(self) -> PersistencePlan:
        if self.use_easycrash:
            return self.plan_report.plan
        return PersistencePlan.none()

    @property
    def efficiency_gain(self) -> float:
        return self.efficiency_with - self.efficiency_without

    def summary(self) -> str:
        verdict = "USE EasyCrash" if self.use_easycrash else "use plain C/R"
        return (
            f"{self.app}: tau={self.tau:.3f}, measured R={self.measured_recomputability:.3f} "
            f"-> {verdict} (efficiency {self.efficiency_without:.3f} -> "
            f"{self.efficiency_with:.3f})"
        )


def advise(
    factory: "AppFactory",
    scenario: DeploymentScenario,
    planner_config: EasyCrashConfig | None = None,
    validation_tests: int = 150,
) -> AdvisorReport:
    """Run the Sec. 8 decision procedure for one application."""
    params = scenario.system_params()
    tau = recomputability_threshold(params, scenario.ts)

    cfg = planner_config or EasyCrashConfig()
    cfg = replace(cfg, ts=scenario.ts, tau=tau)
    report = plan_easycrash(factory, cfg)

    validation = run_campaign(
        factory,
        CampaignConfig(n_tests=validation_tests, seed=cfg.seed + 101, plan=report.plan),
    )
    # Laplace smoothing: a finite campaign cannot certify R = 1 and the
    # efficiency model divides by 1 - R.
    n = validation.n_tests
    measured = (validation.recomputability() * n + 0.5) / (n + 1)

    base_eff = efficiency_baseline(params)
    # The measured overhead is bounded by ts (the planner enforces the
    # budget); use ts itself as the conservative overhead estimate.
    ec_eff = efficiency_easycrash(params, measured, scenario.ts)
    use = report.plan.is_active and measured > tau and ec_eff > base_eff
    return AdvisorReport(
        app=factory.name,
        scenario=scenario,
        tau=tau,
        plan_report=report,
        measured_recomputability=measured,
        efficiency_without=base_eff,
        efficiency_with=ec_eff if use else base_eff,
        use_easycrash=use,
    )

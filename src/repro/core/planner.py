"""EasyCrash's four-step workflow (paper Sec. 5.3).

1. **Crash-test campaign** — run a baseline campaign (only the loop
   iterator persisted) and collect per-object inconsistent rates,
   per-region recomputabilities ``c_k`` and time shares ``a_k``.
2. **Data-object selection** — Spearman correlation picks the critical
   objects.
3. **Code-region selection** — a second campaign, persisting the critical
   objects at every region, measures ``c_k^max``; the knapsack picks the
   regions and flush frequencies under the ``ts`` overhead bound and the
   ``τ`` threshold.
4. **Production plan** — the resulting :class:`PersistencePlan` drives
   production runs (EasyCrash "automatically manages cache flushes").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import AppFactory
from repro.core.regions import RegionSelectionResult, select_code_regions
from repro.core.selection import SelectionResult, select_critical_objects
from repro.memsim.config import HierarchyConfig
from repro.nvct.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.nvct.plan import PersistencePlan
from repro.perf.costmodel import CostModel

__all__ = ["EasyCrashConfig", "EasyCrashPlanReport", "plan_easycrash"]


@dataclass(frozen=True)
class EasyCrashConfig:
    """Tunables of the planning workflow."""

    # The paper runs 1000-2000 crash tests per campaign so that weak-but-
    # real correlations (e.g. kmeans' centroids) reach p < 0.01; 300 is
    # the scaled-down default with the same property on the mini-apps.
    n_tests: int = 300
    seed: int = 0
    hierarchy: HierarchyConfig | None = None
    ts: float = 0.03  # runtime-overhead bound (paper: 3%)
    tau: float = 0.0  # recomputability threshold from the system model
    alpha: float = 0.01  # Spearman significance threshold
    freq_options: tuple[int, ...] = (1, 2, 4, 8)
    cost_model: CostModel = field(default_factory=CostModel)
    # Upgrade to the full candidate set when it beats the correlation-based
    # selection by more than this margin (paper Fig. 5 reports < 3%
    # difference when the selection is sound).
    selection_verification_gap: float = 0.03
    # Greedy refinement: drop the largest critical objects whose removal
    # does not reduce recomputability (they inflate the flush budget and
    # force lower flush frequencies).  Campaigns for refinement trials use
    # fewer tests; 0 disables refinement.
    max_refinement_trials: int = 4
    refinement_tests: int = 150


@dataclass
class EasyCrashPlanReport:
    """Everything the workflow produced, for analysis and benchmarking."""

    app: str
    baseline_campaign: CampaignResult
    selection: SelectionResult
    max_campaign: CampaignResult | None
    loop_campaign: CampaignResult | None
    region_selection: RegionSelectionResult | None
    plan: PersistencePlan

    @property
    def critical_objects(self) -> tuple[str, ...]:
        return self.selection.critical

    @property
    def predicted_recomputability(self) -> float:
        if self.region_selection is None:
            return self.baseline_campaign.recomputability()
        return self.region_selection.predicted_recomputability


def plan_easycrash(factory: AppFactory, config: EasyCrashConfig) -> EasyCrashPlanReport:
    """Run the full EasyCrash planning workflow for one application."""
    # Step 1: baseline campaign (iterator-only persistence, footnote 3).
    base_cfg = CampaignConfig(
        n_tests=config.n_tests,
        seed=config.seed,
        hierarchy=config.hierarchy,
        plan=PersistencePlan.none(),
    )
    baseline = run_campaign(factory, base_cfg)

    # Step 2: data-object selection.
    selection = select_critical_objects(baseline, alpha=config.alpha)
    if not selection.critical:
        # No correlation signal.  Three cases: (a) almost nothing fails —
        # EasyCrash degenerates to the iterator-only plan; (b) almost
        # everything fails (near-constant success vector, e.g. a direct
        # method like botsspar), where correlation is statistically blind;
        # (c) the correlation is *positive* (trajectory-replay apps like
        # CG, where high inconsistency at the crash means the NVM image
        # sits at a clean iteration boundary).  For (b) and (c), probe the
        # full candidate set and let the Fig. 5 verification + greedy
        # refinement decide empirically.
        failure_rate = 1.0 - baseline.recomputability()
        all_candidates = tuple(o.name for o in factory.make(None).ws.heap.candidates())
        adopted = False
        if failure_rate > 0.1 and all_candidates:
            probe_cfg = CampaignConfig(
                n_tests=config.n_tests,
                seed=config.seed,
                hierarchy=config.hierarchy,
                plan=PersistencePlan.at_loop_end(list(all_candidates)),
            )
            probe = run_campaign(factory, probe_cfg)
            if (
                probe.recomputability()
                > baseline.recomputability() + config.selection_verification_gap
            ):
                selection = SelectionResult(
                    all_candidates, selection.correlations, selection.alpha
                )
                adopted = True
        if not adopted:
            return EasyCrashPlanReport(
                app=factory.name,
                baseline_campaign=baseline,
                selection=selection,
                max_campaign=None,
                loop_campaign=None,
                region_selection=None,
                plan=PersistencePlan.none(),
            )

    # Step 3a: campaign persisting critical objects at every code region.
    max_cfg = CampaignConfig(
        n_tests=config.n_tests,
        seed=config.seed,
        hierarchy=config.hierarchy,
        plan=PersistencePlan.every_region(list(selection.critical), list(factory.regions)),
    )
    maximal = run_campaign(factory, max_cfg)

    # Step 3b: campaign persisting them at the end of each iteration (the
    # Fig. 2a pattern, jointly with the loop iterator).
    loop_cfg = CampaignConfig(
        n_tests=config.n_tests,
        seed=config.seed,
        hierarchy=config.hierarchy,
        plan=PersistencePlan.at_loop_end(list(selection.critical)),
    )
    loop_max = run_campaign(factory, loop_cfg)

    # Selection verification (paper Fig. 5): compare against persisting
    # *all* candidate data objects.  When correlation-based selection
    # misses a load-bearing object (possible when an object's inconsistent
    # rate barely varies, so its correlation is unreadable), upgrade the
    # critical set to the full candidate set.
    all_candidates = tuple(
        o.name for o in factory.make(None).ws.heap.candidates()
    )
    if set(all_candidates) != set(selection.critical):
        all_cfg = CampaignConfig(
            n_tests=config.n_tests,
            seed=config.seed,
            hierarchy=config.hierarchy,
            plan=PersistencePlan.at_loop_end(list(all_candidates)),
        )
        all_loop = run_campaign(factory, all_cfg)
        if (
            all_loop.recomputability()
            > loop_max.recomputability() + config.selection_verification_gap
        ):
            selection = SelectionResult(
                all_candidates, selection.correlations, selection.alpha
            )
            loop_max = all_loop

    # Greedy refinement: large objects that do not contribute to
    # recomputability only consume flush budget (e.g. objects that are
    # fully overwritten before any use on replay); drop them.
    app = factory.make(None)
    trials = config.max_refinement_trials
    if trials > 0 and len(selection.critical) > 1:
        by_size = sorted(
            selection.critical,
            key=lambda n: app.ws.heap.objects[n].nblocks,
            reverse=True,
        )
        current = list(selection.critical)
        current_r = loop_max.recomputability()
        for victim in by_size[:trials]:
            if len(current) <= 1:
                break
            reduced = [n for n in current if n != victim]
            trial_cfg = CampaignConfig(
                n_tests=config.refinement_tests,
                seed=config.seed,
                hierarchy=config.hierarchy,
                plan=PersistencePlan.at_loop_end(reduced),
            )
            trial = run_campaign(factory, trial_cfg)
            if trial.recomputability() >= current_r - config.selection_verification_gap:
                current = reduced
                loop_max = trial
                current_r = max(current_r, trial.recomputability())
        if tuple(current) != selection.critical:
            selection = SelectionResult(
                tuple(current), selection.correlations, selection.alpha
            )

    critical_blocks = sum(
        app.ws.heap.objects[name].nblocks for name in selection.critical
    )
    executions = {
        k: p.executions
        for k, p in baseline.run_stats.region_profile.items()
        if not k.startswith("__")
    }
    base_time = config.cost_model.run_cost(
        baseline.run_stats.memory, compute_scale=factory.compute_intensity
    ).total
    events = loop_max.run_stats.persist_events
    measured_flush = None
    if events:
        measured_flush = float(
            np.mean(
                [
                    config.cost_model.flush_event_cost(
                        e.blocks_issued, e.dirty_written, e.clean_resident
                    )
                    for e in events
                ]
            )
        )
    region_sel = select_code_regions(
        baseline.region_time_shares(),
        baseline.per_region_recomputability(),
        maximal.per_region_recomputability(),
        loop_max.per_region_recomputability(),
        executions,
        baseline.golden_iterations,
        critical_blocks,
        base_time,
        cost_model=config.cost_model,
        ts=config.ts,
        tau=config.tau,
        freq_options=config.freq_options,
        measured_flush_once=measured_flush,
    )

    # Step 4: the production plan — validated before adoption.  The
    # region model inherits the paper's no-propagation approximation, and
    # mid-iteration flushes can actively poison iteration-granular
    # restarts, so the planned configuration is measured and compared
    # against cheaper alternatives; the best measured plan wins, and if
    # nothing beats the baseline EasyCrash degenerates to iterator-only.
    loop_x = region_sel.loop_frequency
    plan = PersistencePlan.per_region(
        list(selection.critical),
        region_sel.frequencies,
        at_iteration_end=loop_x is not None,
        iteration_frequency=loop_x or 1,
    )
    candidates_measured: list[tuple[PersistencePlan, float]] = []
    if plan.is_active:
        val_cfg = CampaignConfig(
            n_tests=config.refinement_tests,
            seed=config.seed + 7,
            hierarchy=config.hierarchy,
            plan=plan,
        )
        candidates_measured.append((plan, run_campaign(factory, val_cfg).recomputability()))
        if region_sel.frequencies and loop_x is not None:
            # Alternative: drop the region flushes, keep the boundary flush.
            loop_only = PersistencePlan.at_loop_end(list(selection.critical), frequency=loop_x)
            alt_cfg = CampaignConfig(
                n_tests=config.refinement_tests,
                seed=config.seed + 7,
                hierarchy=config.hierarchy,
                plan=loop_only,
            )
            candidates_measured.append(
                (loop_only, run_campaign(factory, alt_cfg).recomputability())
            )
    if candidates_measured:
        best_plan, best_r = max(candidates_measured, key=lambda t: t[1])
        if best_r > baseline.recomputability() + config.selection_verification_gap:
            plan = best_plan
        else:
            plan = PersistencePlan.none()
    return EasyCrashPlanReport(
        app=factory.name,
        baseline_campaign=baseline,
        selection=selection,
        max_campaign=maximal,
        loop_campaign=loop_max,
        region_selection=region_sel,
        plan=plan,
    )

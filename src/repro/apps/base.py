"""Application base class and factory.

An application is a main computation loop over *iterations*, each composed
of first-level *code regions* (the paper's persistence granularity).  The
same application code runs in three modes:

* **plain** (``runtime=None``) — fast NumPy execution, used for golden
  reference runs and for crash *restarts*;
* **counting** (``CountingRuntime``) — access counting only, used to
  profile the crash window;
* **instrumented** (``Runtime``) — full cache/NVM simulation with crash
  snapshots and plan-driven flushing.

The restart protocol follows the paper (Fig. 2b): re-run the application's
initialization, overwrite every candidate data object with its NVM image,
then resume the main loop at the iteration recorded by the always-persisted
loop iterator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nvct.managed import ManagedScalar, Workspace
from repro.nvct.runtime import CountingRuntime, Runtime

__all__ = ["RunResult", "Application", "AppFactory"]


@dataclass
class RunResult:
    """Outcome of a (partial or full) main-loop run."""

    iterations: int  # total iterations completed (including pre-restart ones)
    converged: bool
    metrics: dict[str, float] = field(default_factory=dict)


class Application(abc.ABC):
    """Base class for all mini-apps.

    Subclasses define ``NAME``, ``REGIONS`` (region ids in execution
    order), allocation (:meth:`_allocate`), initialization
    (:meth:`_initialize`), one main-loop iteration (:meth:`_iterate`), and
    acceptance verification (:meth:`verify`).
    """

    NAME: str = "?"
    REGIONS: tuple[str, ...] = ()
    #: 1.0 for fixed-iteration apps; >1 allows convergence apps extra room.
    DEFAULT_MAX_FACTOR: float = 2.0
    #: Arithmetic intensity: flop-time per block access relative to a
    #: streaming stencil kernel (dense-block kernels are much higher).
    COMPUTE_INTENSITY: float = 1.0

    def __init__(self, runtime: CountingRuntime | None = None, **params: object):
        self.ws = Workspace(runtime)
        self.params = params
        self.golden: dict[str, float] | None = None
        self.it_scalar: ManagedScalar | None = None
        self._setup_done = False

    # -- subclass contract ----------------------------------------------------

    @abc.abstractmethod
    def _allocate(self) -> None:
        """Allocate all managed data objects (sets ``self.it_scalar``)."""

    @abc.abstractmethod
    def _initialize(self) -> None:
        """Fill initial values (re-executed on every restart)."""

    @abc.abstractmethod
    def _iterate(self, it: int) -> bool:
        """Run main-loop iteration ``it``; return True when converged/done."""

    @abc.abstractmethod
    def verify(self) -> bool:
        """Application-level acceptance verification of the final outcome."""

    @abc.abstractmethod
    def reference_outcome(self) -> dict[str, float]:
        """Outcome metrics of the current state (used to build goldens)."""

    def nominal_iterations(self) -> int:
        """The iteration budget of an unperturbed run."""
        return int(self.params["nit"])  # type: ignore[index]

    def _post_restore(self) -> None:
        """Hook: recompute derived state after candidates were restored."""

    # -- lifecycle ---------------------------------------------------------------

    def setup(self) -> None:
        if self._setup_done:
            raise RuntimeError("setup() called twice")
        self._allocate()
        if self.it_scalar is None:
            self.it_scalar = self.ws.iterator("it", init=-1)
        self._initialize()
        self._setup_done = True

    def run(self, start_iter: int = 0, max_iterations: int | None = None) -> RunResult:
        """Execute the main loop from ``start_iter``.

        ``max_iterations`` caps total iterations (the campaign allows up to
        2x the original count before declaring verification failure, per
        the paper's response taxonomy).
        """
        if not self._setup_done:
            raise RuntimeError("run() before setup()")
        limit = max_iterations if max_iterations is not None else self.nominal_iterations()
        ws = self.ws
        ws.main_loop_begin()
        it = start_iter
        converged = False
        while it < limit:
            ws.begin_iteration(it)
            converged = self._iterate(it)
            assert self.it_scalar is not None
            self.it_scalar.set(it)
            ws.end_iteration()
            it += 1
            if converged:
                break
        ws.main_loop_end()
        if isinstance(ws.runtime, Runtime):
            ws.runtime.finalize()
        return RunResult(iterations=it, converged=converged, metrics=self.reference_outcome())

    # -- restart ----------------------------------------------------------------------

    def restore(self, state: dict[str, np.ndarray]) -> int:
        """Overwrite candidates (and the iterator) from an NVM snapshot;
        return the iteration to resume from."""
        if not self._setup_done:
            raise RuntimeError("restore() before setup()")
        heap = self.ws.heap
        for name, payload in state.items():
            obj = heap.objects.get(name)
            if obj is None or not (obj.candidate or obj.role == "iterator"):
                continue
            obj.data_bytes[:] = payload[: obj.nbytes]
        self._post_restore()
        it_obj = heap.iterator_object()
        last_completed = int(it_obj.data[0]) if it_obj is not None else -1
        return last_completed + 1


class AppFactory:
    """Binds an application class to a parameter set; caches the golden run.

    The golden run (plain, unperturbed) provides the reference outcome for
    acceptance verification and the nominal iteration count for the
    "no extra iterations" requirement.
    """

    def __init__(self, app_cls: type[Application], **params: object):
        self.app_cls = app_cls
        self.params = params
        self._golden: tuple[RunResult, dict[str, float]] | None = None

    @property
    def name(self) -> str:
        return self.app_cls.NAME

    @property
    def regions(self) -> tuple[str, ...]:
        return self.app_cls.REGIONS

    @property
    def compute_intensity(self) -> float:
        return self.app_cls.COMPUTE_INTENSITY

    def golden(self) -> tuple[RunResult, dict[str, float]]:
        """Run (once) the unperturbed plain execution; return its result
        and outcome metrics."""
        if self._golden is None:
            app = self.app_cls(runtime=None, **self.params)
            app.setup()
            result = app.run()
            metrics = app.reference_outcome()
            app.golden = metrics
            if not app.verify():
                raise RuntimeError(f"{self.name}: golden run fails its own verification")
            self._golden = (result, metrics)
        return self._golden

    def make(self, runtime: CountingRuntime | None = None) -> Application:
        """Create a set-up application instance with the golden injected."""
        _, metrics = self.golden()
        app = self.app_cls(runtime=runtime, **self.params)
        app.golden = metrics
        app.setup()
        return app

    def with_params(self, **overrides: object) -> "AppFactory":
        params = dict(self.params)
        params.update(overrides)
        return AppFactory(self.app_cls, **params)

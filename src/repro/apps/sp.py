"""SP: scalar pentadiagonal ADI solver (NPB SP analogue).

Like BT, SP marches a 3D diffusion system to steady state with an ADI
factorization, but each direction uses a *pentadiagonal* operator (a
fourth-order artificial-dissipation stencil), factored as two sequential
tridiagonal sweeps per direction.  That yields the paper's 16 first-level
code regions for SP (Table 1): RHS accumulation (3), per direction a
form / first sweep / second sweep / update quadruple (12), plus the final
``add`` region.

As in the paper — where SP has the *highest* intrinsic recomputability
(88%) — the destructive update of ``u`` is a single short region at the
end of the iteration, and the relaxation is strongly contracting, so most
crashes replay exactly from naturally persisted state.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.apps.bt import _thomas_batched
from repro.util.rng import derive_rng

__all__ = ["SP"]


class SP(Application):
    NAME = "SP"
    REGIONS = (
        "rhs_x", "rhs_y", "rhs_z",
        "x_form", "x_sweep1", "x_sweep2", "x_update",
        "y_form", "y_sweep1", "y_sweep2", "y_update",
        "z_form", "z_sweep1", "z_sweep2", "z_update",
        "add",
    )
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, n: int = 40, nit: int = 40, dt: float = 0.8, seed: int = 2020, **kw):
        super().__init__(runtime, n=n, nit=nit, dt=dt, seed=seed, **kw)
        self.n = n
        self.nit = nit
        self.dt = dt
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-8))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        shape = (self.n, self.n, self.n)
        self.u = self.ws.array("u", shape, candidate=True)
        self.rhs = self.ws.array("rhs", shape, candidate=True)
        self.forcing = self.ws.array("forcing", shape, candidate=False, readonly=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "sp-forcing")
        n = self.n
        x = np.linspace(0, 1, n)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        self.forcing.np[...] = (
            np.cos(np.pi * X) * np.sin(2 * np.pi * Y) * np.sin(np.pi * Z)
            + 0.05 * rng.standard_normal((n, n, n))
        )
        self.u.np[...] = 0.0
        self.rhs.np[...] = 0.0
        self._h2 = 1.0 / (n - 1) ** 2

    def _lap(self, u: np.ndarray) -> np.ndarray:
        out = -6.0 * u
        out[1:, :, :] += u[:-1, :, :]
        out[:-1, :, :] += u[1:, :, :]
        out[:, 1:, :] += u[:, :-1, :]
        out[:, :-1, :] += u[:, 1:, :]
        out[:, :, 1:] += u[:, :, :-1]
        out[:, :, :-1] += u[:, :, 1:]
        return out / self._h2

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        dt = self.dt * self._h2
        lam = self.dt / 3.0
        du = None
        for rid, frac in (("rhs_x", 1 / 3), ("rhs_y", 1 / 3), ("rhs_z", 1 / 3)):
            with ws.region(rid):
                u = self.u.read()
                f = self.forcing.read()
                part = dt * frac * (self._lap(u) + f)
                if rid == "rhs_x":
                    self.rhs.write(slice(None), part)
                else:
                    self.rhs.update(slice(None), lambda r: np.add(r, part, out=r))
        for axis, base in enumerate(("x", "y", "z")):
            with ws.region(f"{base}_form"):
                rhs = self.rhs.read()
                d = np.moveaxis(rhs if du is None else du, axis, 0).copy()
            with ws.region(f"{base}_sweep1"):
                # Pentadiagonal operator factored as two tridiagonal sweeps.
                s1 = _thomas_batched(-lam / 2, 1.0 + lam, -lam / 2, d)
            with ws.region(f"{base}_sweep2"):
                s2 = _thomas_batched(-lam / 2, 1.0 + lam, -lam / 2, s1)
            with ws.region(f"{base}_update"):
                du = np.moveaxis(s2, 0, axis).copy()
                self.rhs.write(slice(None), du)
        with ws.region("add"):
            self.u.update(slice(None), lambda x: np.add(x, du, out=x))
        return False

    def reference_outcome(self) -> dict[str, float]:
        u = self.u.np
        res = float(np.linalg.norm(self._lap(u) + self.forcing.np))
        return {"residual": res, "unorm": float(np.linalg.norm(u))}

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        for key in ("residual", "unorm"):
            ref = self.golden[key]
            if abs(out[key] - ref) > self.verify_rtol * max(abs(ref), 1e-30):
                return False
        return True

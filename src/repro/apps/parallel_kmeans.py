"""Data-parallel kmeans over the multi-core runtime (extension).

The assignment sweep is partitioned statically across the simulated
cores (each core streams its shard of the point set through its private
L1); the centroid reduction runs on core 0, pulling the freshly written
per-shard assignment ranges through the coherence protocol.

The paper evaluates multi-threaded configurations and reports the same
conclusions as single-threaded runs; the multicore campaign benchmark
checks exactly that on this application.
"""

from __future__ import annotations

import numpy as np

from repro.apps.kmeans import KMeans
from repro.nvct.multicore_runtime import MulticoreRuntime

__all__ = ["ParallelKMeans"]


class ParallelKMeans(KMeans):
    NAME = "kmeans-mt"

    def _iterate(self, it: int) -> bool:
        rt = self.ws.runtime
        if not isinstance(rt, MulticoreRuntime):
            return super()._iterate(it)
        ws = self.ws
        with ws.region("R1"):
            cent = self.centroids.read().copy()
            cnorm = np.einsum("ij,ij->i", cent, cent)
            old_assign = self.assign.read().copy()
            # Fork: each core assigns its shard of the points.
            for core, shard in rt.parallel_chunks(self.n_points):
                with rt.on_core(core):
                    pts = self.points.read((shard, slice(None)))
                    d2 = -2.0 * (pts @ cent.T) + cnorm[None, :]
                    self.assign.write(shard, np.argmin(d2, axis=1).astype(np.int32))
            # Join: core 0 reduces the centroids from all shards.
            with rt.on_core(0):
                new_assign = self.assign.read().copy()
                pts = self.points.read()
                counts = np.bincount(new_assign, minlength=self.k).astype(float)
                new_cent = np.empty_like(cent)
                for f in range(self.n_features):
                    sums = np.bincount(new_assign, weights=pts[:, f], minlength=self.k)
                    new_cent[:, f] = np.where(
                        counts > 0, sums / np.maximum(counts, 1.0), cent[:, f]
                    )
                self.centroids.write(slice(None), new_cent)
                diff = pts - new_cent[new_assign]
                self.inertia.set(float(np.einsum("ij,ij->", diff, diff)))
            changed = int(np.count_nonzero(new_assign != old_assign))
        return changed == 0 and it > 0

"""LULESH: 1D Lagrangian shock hydrodynamics (Sedov blast analogue).

A staggered-grid Lagrangian hydro code: node positions/velocities and
cell energies/masses evolve through a leapfrog step with an ideal-gas
EOS and artificial viscosity, driven by an initial energy deposition at
the origin (the Sedov problem LULESH models).  Hydrodynamics is
hyperbolic — perturbations advect rather than decay — so, unlike the
iterative solvers, a restart only verifies when the restored state is an
exact step boundary.

Regions (Table 1 lists 4 for LULESH): ``force`` (pressure + viscosity +
nodal forces; read-heavy, writes only the scratch force array), ``motion``
(velocity/position update — destructive), ``energy`` (volume work + EOS —
destructive), ``dtcourant`` (time-step control and monitoring).

Candidates: positions ``x``, velocities ``v``, energies ``e`` and the
time scalar; cell masses are read-only.  Verification compares the final
origin energy and total energy against the golden run, NPB-style.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["LULESH"]


class LULESH(Application):
    NAME = "LULESH"
    REGIONS = ("force", "motion", "energy", "dtcourant")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, n_cells: int = 16384, nit: int = 200, seed: int = 2020, **kw):
        super().__init__(runtime, n_cells=n_cells, nit=nit, seed=seed, **kw)
        self.n_cells = n_cells
        self.nit = nit
        self.seed = seed
        self.gamma = 1.4
        self.verify_rtol = float(kw.get("verify_rtol", 1e-9))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        nc = self.n_cells
        self.x = self.ws.array("x", (nc + 1,), candidate=True)
        self.v = self.ws.array("v", (nc + 1,), candidate=True)
        self.e = self.ws.array("e", (nc,), candidate=True)
        self.mass = self.ws.array("mass", (nc,), candidate=False, readonly=True)
        self.force = self.ws.array("force", (nc + 1,), candidate=True)
        self.tnow = self.ws.scalar("tnow", 0.0, np.float64, candidate=True)

    def _initialize(self) -> None:
        nc = self.n_cells
        self.x.np[...] = np.linspace(0.0, 1.0, nc + 1)
        self.v.np[...] = 0.0
        rng = derive_rng(self.seed, "lulesh-rho")
        rho0 = 1.0 + 0.01 * rng.standard_normal(nc)
        dx0 = np.diff(self.x.np)
        self.mass.np[...] = rho0 * dx0
        e0 = np.full(nc, 1e-6)
        # Sedov-style energy deposition in the first few cells.
        e0[: max(2, nc // 2048)] = 1.0
        self.e.np[...] = e0
        self.tnow.arr.np[0] = 0.0
        self._dt = 0.1 / nc  # CFL-safe fixed step for this setup

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        dt = self._dt
        with ws.region("force"):
            x = self.x.read()
            v = self.v.read()
            e = self.e.read()
            mass = self.mass.read()
            dx = np.maximum(np.diff(x), 1e-12)
            rho = mass / dx
            p = (self.gamma - 1.0) * rho * np.maximum(e, 0.0)
            # Artificial viscosity on compressing cells.
            dv = v[1:] - v[:-1]
            q = np.where(dv < 0.0, 2.0 * rho * dv * dv, 0.0)
            ptot = p + q
            f = np.zeros(self.n_cells + 1)
            f[1:-1] = ptot[:-1] - ptot[1:]
            f[0] = -ptot[0] * 0.0  # reflecting wall at the origin
            self.force.write(slice(None), f)
        with ws.region("motion"):
            f = self.force.read()
            mass = self.mass.read()
            nodal_mass = np.zeros(self.n_cells + 1)
            nodal_mass[:-1] += 0.5 * mass
            nodal_mass[1:] += 0.5 * mass
            self.v.update(slice(None), lambda vv: np.add(vv, dt * f / nodal_mass, out=vv))
            v_new = self.v.read()
            self.x.update(slice(None), lambda xx: np.add(xx, dt * v_new, out=xx))
        with ws.region("energy"):
            x = self.x.read()
            v = self.v.read()
            e = self.e.read()
            mass = self.mass.read()
            dx = np.maximum(np.diff(x), 1e-12)
            rho = mass / dx
            p = (self.gamma - 1.0) * rho * np.maximum(e, 0.0)
            dv = v[1:] - v[:-1]
            q = np.where(dv < 0.0, 2.0 * rho * dv * dv, 0.0)
            work = (p + q) * dv * dt / mass
            self.e.update(slice(None), lambda ee: np.subtract(ee, work, out=ee))
        with ws.region("dtcourant"):
            e = self.e.read()
            v = self.v.read()
            self.tnow.set(float(self.tnow.peek()) + dt)
            _ = float(np.abs(v).max()) + float(e.max())  # courant monitor
        return False

    def reference_outcome(self) -> dict[str, float]:
        ke = 0.5 * float(((self.v.np[:-1] + self.v.np[1:]) * 0.5) ** 2 @ self.mass.np)
        ie = float(self.e.np @ self.mass.np)
        return {
            "origin_energy": float(self.e.np[0]),
            "total_energy": ke + ie,
            "shock_front": float(np.argmax(self.e.np[10:] > 1e-4) if np.any(self.e.np[10:] > 1e-4) else 0),
        }

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        for key in ("origin_energy", "total_energy"):
            ref = self.golden[key]
            if abs(out[key] - ref) > self.verify_rtol * max(abs(ref), 1e-30):
                return False
        return True

"""HPC mini-application substrate.

Pure-NumPy reimplementations of the paper's 11 benchmarks (NPB CG, MG,
FT, IS, BT, LU, SP, EP; SPEC-OMP botsspar; LULESH; Rodinia kmeans) with
the same iterative structure, the paper's per-benchmark number of
first-level code regions (Table 1), genuine numerics, application-level
acceptance verification, and restart support.  All accesses to persistent
data objects flow through :mod:`repro.nvct.managed` so NVCT can observe
them at cache-block granularity.
"""

from repro.apps.base import AppFactory, Application, RunResult
from repro.apps.registry import all_factories, get_factory

__all__ = ["AppFactory", "Application", "RunResult", "all_factories", "get_factory"]

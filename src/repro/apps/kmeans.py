"""kmeans: Lloyd's algorithm (Rodinia kmeans analogue).

A single first-level code region per iteration (Table 1 lists 1 region
for kmeans): assign every point to its nearest centroid, then recompute
centroids as cluster means.  The loop terminates when no assignment
changes.  Lloyd's iteration is a fixed point: restarting from a mixture
of old/new centroids still converges to the same local optimum, but may
take extra iterations — which is exactly the paper's kmeans signature
(18.2 extra iterations on average, near-zero strict recomputability
without EasyCrash, the largest improvement with it).

Candidates: ``centroids`` and ``assign``; the point set is read-only.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["KMeans"]


class KMeans(Application):
    NAME = "kmeans"
    REGIONS = ("R1",)
    DEFAULT_MAX_FACTOR = 2.0

    def __init__(
        self,
        runtime=None,
        n_points: int = 16384,
        n_features: int = 8,
        k: int = 12,
        max_iter: int = 80,
        seed: int = 2020,
        **kw,
    ):
        super().__init__(
            runtime,
            n_points=n_points,
            n_features=n_features,
            k=k,
            max_iter=max_iter,
            seed=seed,
            **kw,
        )
        self.n_points = n_points
        self.n_features = n_features
        self.k = k
        self.max_iter = max_iter
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-9))

    def nominal_iterations(self) -> int:
        return self.max_iter

    def _allocate(self) -> None:
        self.points = self.ws.array(
            "points", (self.n_points, self.n_features), candidate=False, readonly=True
        )
        self.centroids = self.ws.array("centroids", (self.k, self.n_features), candidate=True)
        self.assign = self.ws.array("assign", (self.n_points,), np.int32, candidate=True)
        self.inertia = self.ws.scalar("inertia", 0.0, np.float64, candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "kmeans-data")
        # Clustered blobs with overlap, so Lloyd's needs a few dozen sweeps.
        true_centers = rng.normal(scale=3.0, size=(self.k, self.n_features))
        labels = rng.integers(self.k, size=self.n_points)
        self.points.np[...] = true_centers[labels] + rng.normal(
            scale=2.0, size=(self.n_points, self.n_features)
        )
        # Deterministic bad-ish init: first k points.
        self.centroids.np[...] = self.points.np[: self.k]
        self.assign.np[...] = -1
        self.inertia.arr.np[0] = np.inf

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        with ws.region("R1"):
            pts = self.points.read()
            cent = self.centroids.read()
            # Distances via ||p||^2 - 2 p·c + ||c||^2 (the ||p||^2 term is
            # constant across centroids and can be dropped for argmin).
            cross = pts @ cent.T
            d2 = -2.0 * cross + np.einsum("ij,ij->i", cent, cent)[None, :]
            new_assign = np.argmin(d2, axis=1).astype(np.int32)
            old_assign = self.assign.read().copy()
            self.assign.write(slice(None), new_assign)
            new_cent = np.empty_like(cent)
            counts = np.bincount(new_assign, minlength=self.k).astype(float)
            for f in range(self.n_features):
                sums = np.bincount(new_assign, weights=pts[:, f], minlength=self.k)
                new_cent[:, f] = np.where(counts > 0, sums / np.maximum(counts, 1.0), cent[:, f])
            self.centroids.write(slice(None), new_cent)
            diff = pts - new_cent[new_assign]
            self.inertia.set(float(np.einsum("ij,ij->", diff, diff)))
            changed = int(np.count_nonzero(new_assign != old_assign))
        return changed == 0 and it > 0

    def reference_outcome(self) -> dict[str, float]:
        return {"inertia": float(self.inertia.arr.np[0])}

    def verify(self) -> bool:
        if self.golden is None:
            return True
        ref = self.golden["inertia"]
        val = float(self.inertia.arr.np[0])
        return abs(val - ref) <= self.verify_rtol * abs(ref)

"""SGDNet: mini-batch SGD training of a two-layer network (extension).

The paper's introduction names machine-learning training (kmeans, CNN
training) among the workloads with natural error resilience: stochastic
gradient descent is a noisy fixed-point-seeking iteration, so restarting
from stale or mixed weights merely perturbs the trajectory toward the
same loss basin.  This extension app demonstrates that claim inside the
crash-test framework with a softmax MLP on synthetic blobs.

Regions: ``fwd`` (forward pass, read-heavy), ``grad`` (backpropagation),
``update`` (the destructive weight update), ``eval`` (epoch loss/accuracy
monitoring).  Candidates: the weight matrices, biases and the metric
history; the dataset is read-only.

Verification is fidelity-based, as ML acceptance tests are: the final
training accuracy must reach the golden run's accuracy minus a small
slack — not a bitwise trajectory match.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["SGDNet"]


class SGDNet(Application):
    NAME = "sgdnet"
    REGIONS = ("fwd", "grad", "update", "eval")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(
        self,
        runtime=None,
        n_samples: int = 4096,
        n_features: int = 16,
        n_hidden: int = 32,
        n_classes: int = 6,
        epochs: int = 30,
        batch: int = 512,
        lr: float = 0.15,
        seed: int = 2020,
        **kw,
    ):
        super().__init__(
            runtime,
            n_samples=n_samples,
            n_features=n_features,
            n_hidden=n_hidden,
            n_classes=n_classes,
            epochs=epochs,
            batch=batch,
            lr=lr,
            seed=seed,
            **kw,
        )
        self.n_samples = n_samples
        self.n_features = n_features
        self.n_hidden = n_hidden
        self.n_classes = n_classes
        self.epochs = epochs
        self.batch = batch
        self.lr = lr
        self.seed = seed
        self.accuracy_slack = float(kw.get("accuracy_slack", 0.02))

    def nominal_iterations(self) -> int:
        return self.epochs

    def _allocate(self) -> None:
        f, h, c = self.n_features, self.n_hidden, self.n_classes
        self.x = self.ws.array("X", (self.n_samples, f), candidate=False, readonly=True)
        self.labels = self.ws.array("y", (self.n_samples,), np.int32, candidate=False, readonly=True)
        self.w1 = self.ws.array("W1", (f, h), candidate=True)
        self.b1 = self.ws.array("b1", (h,), candidate=True)
        self.w2 = self.ws.array("W2", (h, c), candidate=True)
        self.b2 = self.ws.array("b2", (c,), candidate=True)
        self.history = self.ws.array("history", (self.epochs, 2), candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "sgdnet-data")
        centers = rng.normal(scale=2.5, size=(self.n_classes, self.n_features))
        labels = rng.integers(self.n_classes, size=self.n_samples).astype(np.int32)
        self.x.np[...] = centers[labels] + rng.normal(scale=1.6, size=(self.n_samples, self.n_features))
        self.labels.np[...] = labels
        wrng = derive_rng(self.seed, "sgdnet-init")
        self.w1.np[...] = 0.3 * wrng.standard_normal((self.n_features, self.n_hidden))
        self.b1.np[...] = 0.0
        self.w2.np[...] = 0.3 * wrng.standard_normal((self.n_hidden, self.n_classes))
        self.b2.np[...] = 0.0
        self.history.np[...] = 0.0

    # -- network -------------------------------------------------------------

    def _forward(self, xb: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # The weight loads are recorded once per epoch in the "fwd"
        # region; per-batch re-reads here are intentionally unrecorded
        # (the views stay architecturally current).
        hidden = np.maximum(xb @ self.w1.np + self.b1.np, 0.0)  # analysis: allow(raw-np-escape)
        logits = hidden @ self.w2.np + self.b2.np  # analysis: allow(raw-np-escape)
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        return hidden, probs

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        rng = derive_rng(self.seed, "sgdnet-epoch", it)
        order = rng.permutation(self.n_samples)
        grads: list[tuple[np.ndarray, ...]] = []
        with ws.region("fwd"):
            xb_all = self.x.read()
            yb_all = self.labels.read()
            self.w1.read()
            self.w2.read()
        with ws.region("grad"):
            for start in range(0, self.n_samples, self.batch):
                sel = order[start : start + self.batch]
                xb = xb_all[sel]
                yb = yb_all[sel]
                hidden, probs = self._forward(xb)
                delta = probs
                delta[np.arange(sel.size), yb] -= 1.0
                delta /= sel.size
                dW2 = hidden.T @ delta
                db2 = delta.sum(axis=0)
                dh = (delta @ self.w2.np.T) * (hidden > 0)  # analysis: allow(raw-np-escape)
                dW1 = xb.T @ dh
                db1 = dh.sum(axis=0)
                grads.append((dW1, db1, dW2, db2))
        with ws.region("update"):
            lr = self.lr
            for dW1, db1, dW2, db2 in grads:
                self.w1.update(slice(None), lambda w, g=dW1: np.subtract(w, lr * g, out=w))
                self.b1.update(slice(None), lambda b, g=db1: np.subtract(b, lr * g, out=b))
                self.w2.update(slice(None), lambda w, g=dW2: np.subtract(w, lr * g, out=w))
                self.b2.update(slice(None), lambda b, g=db2: np.subtract(b, lr * g, out=b))
        with ws.region("eval"):
            _, probs = self._forward(self.x.read())
            pred = probs.argmax(axis=1)
            y = self.labels.read()
            acc = float(np.mean(pred == y))
            loss = float(-np.log(np.maximum(probs[np.arange(self.n_samples), y], 1e-12)).mean())
            self.history.write((it, slice(None)), np.array([loss, acc]))
        return False

    # -- verification -------------------------------------------------------------

    def reference_outcome(self) -> dict[str, float]:
        return {
            "accuracy": float(self.history.np[self.epochs - 1, 1]),
            "loss": float(self.history.np[self.epochs - 1, 0]),
        }

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        # Fidelity threshold: final accuracy within slack of the golden
        # run (ML acceptance is statistical, not bitwise).
        return out["accuracy"] >= self.golden["accuracy"] - self.accuracy_slack

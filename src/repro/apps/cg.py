"""CG: sparse eigenvalue estimation by inverse power iteration (NPB CG).

Like NPB CG, the main loop is an *outer* power iteration: each iteration
solves ``A z = x`` with a fixed number of inner conjugate-gradient steps,
normalizes ``x = z/||z||`` and updates the eigenvalue estimate
``zeta = shift + 1/(x·z)``.  The loop terminates when ``zeta`` stabilizes
(convergence-driven, so restarts may need *extra* iterations — the
response the paper observes for CG, Table 1: 9.1 extra iterations).

Six first-level code regions (Table 1):

* ``R1`` — solver setup: z = 0, r = p = x (writes z);
* ``R2`` — the inner CG loop (matrix-vector products against the CSR
  matrix; updates z; inner vectors are plain temporaries recomputed on
  restart);
* ``R3`` — true-residual norm ||x - A z||;
* ``R4`` — normalization x = z/||z|| (the destructive update of x);
* ``R5`` — eigenvalue update and convergence test;
* ``R6`` — solution monitoring (reads x).

Candidates: ``x``, ``z`` and the zeta scalar; the CSR matrix (the bulk of
the footprint, as in the paper where CG's candidates are 5.7 MB of a
947 MB footprint) is read-only.  Inconsistent ``x`` perturbs the power
iteration, which re-converges to the same eigenpair at the cost of extra
iterations: S2-heavy behaviour without EasyCrash.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["CG"]


def _poisson2d_shifted(n: int, shift: float) -> scipy.sparse.csr_matrix:
    """(-∇² + shift·I) on an n×n grid, 5-point stencil, CSR."""
    main = np.full(n * n, 4.0 + shift)
    side = np.full(n * n - 1, -1.0)
    side[np.arange(1, n * n) % n == 0] = 0.0
    updown = np.full(n * n - n, -1.0)
    a = scipy.sparse.diags(
        [main, side, side, updown, updown], [0, 1, -1, n, -n], format="csr"
    )
    a.sort_indices()
    return a


class CG(Application):
    NAME = "CG"
    REGIONS = ("R1", "R2", "R3", "R4", "R5", "R6")
    DEFAULT_MAX_FACTOR = 2.0  # convergence-driven: extra iterations allowed

    def __init__(
        self,
        runtime=None,
        n: int = 96,
        inner_steps: int = 15,
        shift: float = 0.05,
        conv_tol: float = 1e-11,
        max_outer: int = 160,
        seed: int = 2020,
        **kw,
    ):
        super().__init__(
            runtime,
            n=n,
            inner_steps=inner_steps,
            shift=shift,
            conv_tol=conv_tol,
            max_outer=max_outer,
            seed=seed,
            **kw,
        )
        self.n = n
        self.inner_steps = inner_steps
        self.shift = shift
        self.conv_tol = conv_tol
        self.max_outer = max_outer
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-8))

    def nominal_iterations(self) -> int:
        return self.max_outer

    # -- setup ---------------------------------------------------------------

    def _allocate(self) -> None:
        nn = self.n * self.n
        a = _poisson2d_shifted(self.n, self.shift)
        self.a_data = self.ws.array("A.data", a.data.shape, np.float64, candidate=False, readonly=True)
        self.a_indices = self.ws.array("A.indices", a.indices.shape, np.int32, candidate=False, readonly=True)
        self.a_indptr = self.ws.array("A.indptr", a.indptr.shape, np.int32, candidate=False, readonly=True)
        self._a_template = a
        self.x = self.ws.array("x", (nn,), candidate=True)
        self.z = self.ws.array("z", (nn,), candidate=True)
        self.zeta = self.ws.scalar("zeta", 0.0, np.float64, candidate=True)
        self.zeta_prev = self.ws.scalar("zeta_prev", 0.0, np.float64, candidate=True)

    def _initialize(self) -> None:
        a = self._a_template
        self.a_data.np[...] = a.data
        self.a_indices.np[...] = a.indices
        self.a_indptr.np[...] = a.indptr
        # Shared-buffer CSR view over the managed arrays (no copy).
        self._A = scipy.sparse.csr_matrix(
            (self.a_data.np, self.a_indices.np, self.a_indptr.np),
            shape=a.shape,
        )
        rng = derive_rng(self.seed, "cg-x0")
        x0 = rng.random(self.n * self.n)
        self.x.np[...] = x0 / np.linalg.norm(x0)
        self.z.np[...] = 0.0
        self.zeta.arr.np[0] = 0.0
        self.zeta_prev.arr.np[0] = np.inf

    def _post_restore(self) -> None:
        pass  # the CSR matrix shares buffers with the managed arrays

    # -- main loop --------------------------------------------------------------

    def _read_matrix(self) -> None:
        """Record one streaming pass over the CSR arrays."""
        self.a_data.read()
        self.a_indices.read()
        self.a_indptr.read()

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        A = self._A
        with ws.region("R1"):
            x = self.x.read().copy()
            self.z.write(slice(None), 0.0)
            r = x.copy()
            p = r.copy()
            rho = float(r @ r)
        with ws.region("R2"):
            z_acc = np.zeros_like(x)
            for _ in range(self.inner_steps):
                self._read_matrix()
                q = A @ p
                alpha = rho / float(p @ q)
                z_acc += alpha * p
                r -= alpha * q
                rho_new = float(r @ r)
                beta = rho_new / rho
                rho = rho_new
                p = r + beta * p
            self.z.write(slice(None), z_acc)
        with ws.region("R3"):
            self._read_matrix()
            z = self.z.read()
            rnorm = float(np.linalg.norm(self.x.read() - A @ z))
        with ws.region("R4"):
            z = self.z.read()
            znorm = float(np.linalg.norm(z))
            self.x.write(slice(None), z / znorm)
        with ws.region("R5"):
            x = self.x.read()
            z = self.z.read()
            zeta = self.shift + 1.0 / float(x @ z)
            prev = float(self.zeta.peek())
            self.zeta_prev.set(prev)
            self.zeta.set(zeta)
            converged = it > 2 and abs(zeta - prev) <= self.conv_tol * abs(zeta)
        with ws.region("R6"):
            self.x.read()
            _ = rnorm  # monitoring only
        return converged

    # -- verification --------------------------------------------------------------

    def reference_outcome(self) -> dict[str, float]:
        return {"zeta": float(self.zeta.arr.np[0])}

    def verify(self) -> bool:
        if self.golden is None:
            return True
        ref = self.golden["zeta"]
        zeta = float(self.zeta.arr.np[0])
        return abs(zeta - ref) <= self.verify_rtol * abs(ref)

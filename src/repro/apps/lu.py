"""LU: SSOR-based implicit solver (NPB LU analogue).

Each pseudo-time step applies a Symmetric Successive Over-Relaxation
sweep pair to the field ``u``: a lower (forward, red/black ordered)
triangular sweep followed by an upper (backward) sweep, both *in place*.
The paper's 4 first-level code regions for LU: ``rhs`` (right-hand side),
``lower`` (forward sweep), ``upper`` (backward sweep), ``norm``.

Unlike BT/SP, the destructive in-place sweeps dominate the iteration, so
almost every crash leaves ``u`` as a mid-sweep mixture; the replayed
iteration then deviates from the reference trajectory and the NPB-style
verification fails — the paper's Table 1 marks LU's restart overhead
"N/A (the verification fails)".  EasyCrash recovers the crashes that land
in the non-destructive regions.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["LU"]


class LU(Application):
    NAME = "LU"
    REGIONS = ("rhs", "lower", "upper", "norm")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, n: int = 40, nit: int = 40, omega: float = 1.2, seed: int = 2020, **kw):
        super().__init__(runtime, n=n, nit=nit, omega=omega, seed=seed, **kw)
        self.n = n
        self.nit = nit
        self.omega = omega
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-8))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        shape = (self.n, self.n, self.n)
        self.u = self.ws.array("u", shape, candidate=True)
        self.rhs = self.ws.array("rhs", shape, candidate=True)
        self.norms = self.ws.array("norms", (self.nit,), candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "lu-forcing")
        n = self.n
        x = np.linspace(0, 1, n)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        # Forcing is analytic (recomputed, not a heap object), like NPB LU's
        # exact-solution-derived RHS terms.
        self._forcing = (
            np.sin(2 * np.pi * X) * np.cos(np.pi * Y) * np.sin(np.pi * Z)
            + 0.05 * rng.standard_normal((n, n, n))
        )
        self.u.np[...] = 0.0
        self.rhs.np[...] = 0.0
        self.norms.np[...] = 0.0
        self._h2 = 1.0 / (n - 1) ** 2
        # Red/black interior masks for vectorized Gauss-Seidel ordering.
        idx = np.indices((n, n, n)).sum(axis=0)
        self._red = (idx % 2 == 0)
        self._black = ~self._red

    def _gs_color(self, u: np.ndarray, rhs: np.ndarray, mask: np.ndarray) -> None:
        """One in-place Gauss-Seidel relaxation over one color."""
        nb = np.zeros_like(u)
        nb[1:, :, :] += u[:-1, :, :]
        nb[:-1, :, :] += u[1:, :, :]
        nb[:, 1:, :] += u[:, :-1, :]
        nb[:, :-1, :] += u[:, 1:, :]
        nb[:, :, 1:] += u[:, :, :-1]
        nb[:, :, :-1] += u[:, :, 1:]
        gs = (nb + self._h2 * rhs) / 6.0
        u[mask] = (1 - self.omega) * u[mask] + self.omega * gs[mask]
        u[0, :, :] = u[-1, :, :] = 0.0
        u[:, 0, :] = u[:, -1, :] = 0.0
        u[:, :, 0] = u[:, :, -1] = 0.0

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        with ws.region("rhs"):
            u = self.u.read()
            self.rhs.write(slice(None), self._forcing)
        with ws.region("lower"):
            rhs = self.rhs.read()
            self.u.update(slice(None), lambda u: self._gs_color(u, rhs, self._red))
            self.u.update(slice(None), lambda u: self._gs_color(u, rhs, self._black))
        with ws.region("upper"):
            rhs = self.rhs.read()
            self.u.update(slice(None), lambda u: self._gs_color(u, rhs, self._black))
            self.u.update(slice(None), lambda u: self._gs_color(u, rhs, self._red))
        with ws.region("norm"):
            u = self.u.read((slice(0, 8), slice(None), slice(None)))
            self.norms.write(it % self.nit, float(np.linalg.norm(u)))
        return False

    def reference_outcome(self) -> dict[str, float]:
        u = self.u.np
        lap = -6.0 * u.copy()
        lap[1:, :, :] += u[:-1, :, :]
        lap[:-1, :, :] += u[1:, :, :]
        lap[:, 1:, :] += u[:, :-1, :]
        lap[:, :-1, :] += u[:, 1:, :]
        lap[:, :, 1:] += u[:, :, :-1]
        lap[:, :, :-1] += u[:, :, 1:]
        res = float(
            np.linalg.norm(
                lap[1:-1, 1:-1, 1:-1] / self._h2 + self._forcing[1:-1, 1:-1, 1:-1]
            )
        )
        return {"unorm": float(np.linalg.norm(u)), "final_res": res}

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        for key in ("unorm", "final_res"):
            ref = self.golden[key]
            if abs(out[key] - ref) > self.verify_rtol * max(abs(ref), 1e-30):
                return False
        return True

"""XSBench-style Monte Carlo cross-section lookup (extension).

The paper cites XSBench (Tramm et al.) as a Monte Carlo workload with
intrinsic fault tolerance.  This extension app reproduces its shape: per
iteration, a batch of particle histories samples energies and materials,
binary-searches a unionized energy grid, gathers per-nuclide cross
sections from a large read-only table, and accumulates macroscopic-XS
tallies.

The instructive contrast with EP: XSBench-style codes seed each batch
independently (embarrassingly parallel lookups), so a restarted
iteration replays *exactly* — the tally accumulators are recoverable by
flushing, and EasyCrash helps, whereas EP's sequential RNG stream is
stack state the failure model cannot restore.  Application structure,
not "Monte Carlo-ness", decides recomputability.

Regions: ``sample`` (energy/material sampling), ``lookup`` (grid search
and gather — scattered reads over the table), ``tally`` (accumulation).
Candidates: the tally vector and lookup-count scalar; the energy grid
and cross-section table are read-only.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["XSBench"]


class XSBench(Application):
    NAME = "xsbench"
    REGIONS = ("sample", "lookup", "tally")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(
        self,
        runtime=None,
        n_grid: int = 4096,
        n_nuclides: int = 32,
        n_materials: int = 8,
        batch: int = 8192,
        nit: int = 40,
        seed: int = 2020,
        **kw,
    ):
        super().__init__(
            runtime,
            n_grid=n_grid,
            n_nuclides=n_nuclides,
            n_materials=n_materials,
            batch=batch,
            nit=nit,
            seed=seed,
            **kw,
        )
        self.n_grid = n_grid
        self.n_nuclides = n_nuclides
        self.n_materials = n_materials
        self.batch = batch
        self.nit = nit
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-12))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        self.grid = self.ws.array(
            "grid", (self.n_grid,), candidate=False, readonly=True
        )
        self.xs_table = self.ws.array(
            "xs_table", (self.n_grid, self.n_nuclides), candidate=False, readonly=True
        )
        self.mat_comp = self.ws.array(
            "mat_comp", (self.n_materials, self.n_nuclides), candidate=False, readonly=True
        )
        self.tallies = self.ws.array("tallies", (self.n_materials,), candidate=True)
        self.lookups = self.ws.scalar("lookups", 0, np.int64, candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "xs-tables")
        # Unionized energy grid on a log scale, like real XS data.
        self.grid.np[...] = np.sort(10.0 ** rng.uniform(-5, 1, self.n_grid))
        self.xs_table.np[...] = rng.gamma(2.0, 1.0, (self.n_grid, self.n_nuclides))
        comp = rng.dirichlet(np.ones(self.n_nuclides), size=self.n_materials)
        self.mat_comp.np[...] = comp
        self.tallies.np[...] = 0.0
        self.lookups.arr.np[0] = 0

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        # Per-batch seeding: histories are reproducible per iteration,
        # exactly like XSBench's independent lookups.
        rng = derive_rng(self.seed, "xs-batch", it)
        with ws.region("sample"):
            energies = 10.0 ** rng.uniform(-5, 1, self.batch)
            materials = rng.integers(0, self.n_materials, self.batch)
            grid_vals = self.grid.read()
        with ws.region("lookup"):
            idx = np.minimum(
                np.searchsorted(grid_vals, energies), self.n_grid - 1
            ).astype(np.int64)
            # Gather the full nuclide rows at the hit grid points: the
            # scattered, table-walking access pattern XSBench stresses.
            flat = (idx[:, None] * self.n_nuclides + np.arange(self.n_nuclides)).ravel()
            rows = self.xs_table.read_at(flat).reshape(self.batch, self.n_nuclides)
            comp = self.mat_comp.read()
            macro_xs = np.einsum("ij,ij->i", rows, comp[materials])
        with ws.region("tally"):
            sums = np.bincount(materials, weights=macro_xs, minlength=self.n_materials)
            self.tallies.update(slice(None), lambda t: np.add(t, sums, out=t))
            self.lookups.set(int(self.lookups.peek()) + self.batch)
        return False

    def reference_outcome(self) -> dict[str, float]:
        out = {f"t{m}": float(self.tallies.np[m]) for m in range(self.n_materials)}
        out["lookups"] = float(self.lookups.arr.np[0])
        return out

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        if out["lookups"] != self.golden["lookups"]:
            return False
        for m in range(self.n_materials):
            ref = self.golden[f"t{m}"]
            if abs(out[f"t{m}"] - ref) > self.verify_rtol * max(abs(ref), 1e-30):
                return False
        return True

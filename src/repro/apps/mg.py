"""MG: 3D multigrid V-cycle Poisson solver (NPB MG analogue).

Solves -∇²u = v on the unit cube (zero Dirichlet boundary) with V(1,1)
cycles.  Structure mirrors the paper's running example (Fig. 2): a main
computation loop of ``nit`` V-cycles, four first-level code regions
(Table 1 lists 4 for MG):

* ``R1`` — residual: r = v - Au (overwrites r);
* ``R2`` — restriction + coarse-grid recursion (reads r, plain
  temporaries; the coarse hierarchy is derived state, recomputed each
  cycle and on restart);
* ``R3`` — prolongation, correction (u += e) and post-smoothing: *all*
  destructive updates of u.  Persisting u right after R3 yields the
  largest recomputability gain, mirroring the paper's Fig. 4b;
* ``R4`` — solution monitoring: recomputes the residual norm of the
  updated u (read-heavy, writes only a small monitor record).

Candidates: ``u`` and ``r``; the RHS ``v`` is read-only.  Because the
V-cycle is a convergent fixed-point iteration, re-executing an iteration
from a partially persisted ``u`` still converges — the paper's intrinsic
fault tolerance — but late crashes leave too few cycles to recover the
verification threshold, so recomputability is position-sensitive.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["MG"]


def _laplacian(u: np.ndarray, h2: float) -> np.ndarray:
    """7-point -∇² with zero Dirichlet boundary (interior only)."""
    out = np.zeros_like(u)
    out[1:-1, 1:-1, 1:-1] = (
        6.0 * u[1:-1, 1:-1, 1:-1]
        - u[2:, 1:-1, 1:-1]
        - u[:-2, 1:-1, 1:-1]
        - u[1:-1, 2:, 1:-1]
        - u[1:-1, :-2, 1:-1]
        - u[1:-1, 1:-1, 2:]
        - u[1:-1, 1:-1, :-2]
    ) / h2
    return out


def _jacobi(u: np.ndarray, f: np.ndarray, h2: float, sweeps: int, omega: float = 0.8) -> np.ndarray:
    """Weighted-Jacobi relaxation; returns the updated array (new object)."""
    for _ in range(sweeps):
        r = f - _laplacian(u, h2)
        u = u + omega * (h2 / 6.0) * r
        u[0, :, :] = u[-1, :, :] = 0.0
        u[:, 0, :] = u[:, -1, :] = 0.0
        u[:, :, 0] = u[:, :, -1] = 0.0
    return u


def _smooth_axis(a: np.ndarray, axis: int) -> np.ndarray:
    """1-D [1/4, 1/2, 1/4] filter along one axis (zero beyond boundary)."""
    out = 0.5 * a
    sl_lo = [slice(None)] * 3
    sl_hi = [slice(None)] * 3
    sl_in = [slice(None)] * 3
    sl_lo[axis] = slice(0, -1)
    sl_hi[axis] = slice(1, None)
    out[tuple(sl_lo)] += 0.25 * a[tuple(sl_hi)]
    out[tuple(sl_hi)] += 0.25 * a[tuple(sl_lo)]
    del sl_in
    return out


def _restrict(r: np.ndarray) -> np.ndarray:
    """Full-weighting (27-point, separable) restriction to the coarser grid."""
    w = _smooth_axis(_smooth_axis(_smooth_axis(r, 0), 1), 2)
    rc = w[::2, ::2, ::2].copy()
    rc[0, :, :] = rc[-1, :, :] = 0.0
    rc[:, 0, :] = rc[:, -1, :] = 0.0
    rc[:, :, 0] = rc[:, :, -1] = 0.0
    return rc


def _prolong(e: np.ndarray, n_fine: int) -> np.ndarray:
    """Trilinear interpolation to the next finer grid."""
    ef = np.zeros((n_fine, n_fine, n_fine))
    ef[::2, ::2, ::2] = e
    ef[1::2, ::2, ::2] = 0.5 * (e[:-1, :, :] + e[1:, :, :])
    ef[:, 1::2, ::2] = 0.5 * (ef[:, :-2:2, ::2] + ef[:, 2::2, ::2])
    ef[:, :, 1::2] = 0.5 * (ef[:, :, :-2:2] + ef[:, :, 2::2])
    return ef


def _vcycle(f: np.ndarray, h: float, pre: int = 2, post: int = 2) -> np.ndarray:
    """One V-cycle solving -∇²e = f from a zero initial guess; returns e."""
    n = f.shape[0]
    h2 = h * h
    if n <= 5:
        e = np.zeros_like(f)
        e = _jacobi(e, f, h2, sweeps=40)
        return e
    e = _jacobi(np.zeros_like(f), f, h2, sweeps=pre)
    r = f - _laplacian(e, h2)
    rc = _restrict(r)
    ec = _vcycle(rc, 2.0 * h, pre, post)
    e = e + _prolong(ec, n)
    if post:
        e = _jacobi(e, f, h2, sweeps=post)
    return e


class MG(Application):
    NAME = "MG"
    REGIONS = ("R1", "R2", "R3", "R4")
    DEFAULT_MAX_FACTOR = 1.0  # fixed iteration count

    def __init__(self, runtime=None, n: int = 33, nit: int = 20, seed: int = 2020, **kw):
        super().__init__(runtime, n=n, nit=nit, seed=seed, **kw)
        self.n = n
        self.nit = nit
        self.seed = seed
        self.h = 1.0 / (n - 1)
        # NPB-style acceptance verification: the final residual norm must
        # match the reference (golden) value within this relative tolerance.
        self.verify_rtol = float(kw.get("verify_rtol", 1e-6))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        shape = (self.n, self.n, self.n)
        self.u = self.ws.array("u", shape, candidate=True)
        self.r = self.ws.array("r", shape, candidate=True)
        self.v = self.ws.array("v", shape, candidate=False, readonly=True)
        self.monitor = self.ws.array("monitor", (self.nit,), candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "mg-rhs")
        v = np.zeros((self.n, self.n, self.n))
        # Sparse ±1 sources in the interior, like NPB MG's charge setup.
        k = max(8, self.n // 2)
        idx = rng.choice((self.n - 2) ** 3, size=2 * k, replace=False)
        ii, jj, kk = np.unravel_index(idx, ((self.n - 2), (self.n - 2), (self.n - 2)))
        v[ii[:k] + 1, jj[:k] + 1, kk[:k] + 1] = 1.0
        v[ii[k:] + 1, jj[k:] + 1, kk[k:] + 1] = -1.0
        self.v.np[...] = v
        self.u.np[...] = 0.0
        self.r.np[...] = 0.0
        self._vnorm = float(np.linalg.norm(v))

    def _post_restore(self) -> None:
        # v is read-only (re-initialized); u, r come from NVM.
        pass

    def _iterate(self, it: int) -> bool:
        h2 = self.h * self.h
        ws = self.ws
        with ws.region("R1"):
            u = self.u.read()
            v = self.v.read()
            self.r.write(slice(None), v - _laplacian(u, h2))
        with ws.region("R2"):
            r = self.r.read()
            e = _vcycle(r.copy(), self.h)
        with ws.region("R3"):
            self.u.update(slice(None), lambda x: np.add(x, e, out=x))
        with ws.region("R4"):
            u = self.u.read()
            v = self.v.read()
            norm = float(np.linalg.norm(v - _laplacian(u, h2)))
            self.monitor.write(it % self.monitor.size, norm)
        return False

    def _residual_rel(self) -> float:
        res = self.v.np - _laplacian(self.u.np, self.h * self.h)
        return float(np.linalg.norm(res)) / self._vnorm

    def reference_outcome(self) -> dict[str, float]:
        return {"residual_rel": self._residual_rel()}

    def verify(self) -> bool:
        if self.golden is None:
            return True  # golden bootstrap run
        ref = self.golden["residual_rel"]
        return abs(self._residual_rel() - ref) <= self.verify_rtol * ref

"""IS: incremental integer bucket sort (NPB IS analogue).

Each iteration generates a deterministic batch of keys and inserts it
into per-bucket regions of a sorted store using a persistent
``offsets`` array (next free slot per bucket).  The scatter positions
are fully determined by ``offsets``, so replaying an iteration whose
inserts were partially persisted is idempotent — *except* for the
offsets themselves:

Space in each bucket is *reserved* (``offsets += counts``) before the
scatter fills it — a standard reserve-then-fill sorting idiom.  Under a
crash this is exactly what makes IS fragile:

* stale offsets make the replay overwrite earlier batches → the final
  verification (counts + per-bucket membership) fails (S4);
* offsets already written back when the crash fires make the replay
  *double-reserve*, leaving unwritten holes and eventually running past a
  bucket's capacity → an out-of-bounds index, the analogue of the paper's
  IS segfault (S3).

With EasyCrash persisting the tiny critical objects (``offsets`` and
``hist`` — the paper reports a 4 KB critical data object for IS) together
with the loop iterator, the replay is exact: the scatter itself is
idempotent given consistent offsets.

Regions (Table 1 lists 8): R1 key generation, R2 bucket mapping,
R3 histogram update, R4 reservation (position computation + offsets
advance), R5 scatter into the store, R6 partial verification,
R7 digest sampling, R8 monitoring.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.errors import RestartInterrupted
from repro.util.rng import derive_rng

__all__ = ["IS"]


class IS(Application):
    NAME = "IS"
    REGIONS = ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(
        self,
        runtime=None,
        n_keys: int = 1 << 16,
        n_buckets: int = 512,
        nit: int = 10,
        seed: int = 2020,
        **kw,
    ):
        super().__init__(
            runtime, n_keys=n_keys, n_buckets=n_buckets, nit=nit, seed=seed, **kw
        )
        self.n_keys = n_keys  # keys per iteration batch
        self.n_buckets = n_buckets
        self.nit = nit
        self.seed = seed
        self.key_max = n_buckets * 256
        # Per-bucket capacity with slack over the expected fill.
        expected = nit * n_keys / n_buckets
        self.bucket_cap = int(expected * 1.35)

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        self.keys = self.ws.array("keys", (self.n_keys,), np.int64, candidate=True)
        self.store = self.ws.array(
            "store", (self.n_buckets * self.bucket_cap,), np.int64, candidate=True
        )
        self.offsets = self.ws.array("offsets", (self.n_buckets,), np.int64, candidate=True)
        self.hist = self.ws.array("hist", (self.n_buckets,), np.int64, candidate=True)

    def _initialize(self) -> None:
        self.keys.np[...] = 0
        self.store.np[...] = -1
        self.offsets.np[...] = np.arange(self.n_buckets, dtype=np.int64) * self.bucket_cap
        self.hist.np[...] = 0

    def _batch_keys(self, it: int) -> np.ndarray:
        rng = derive_rng(self.seed, "is-batch", it)
        return rng.integers(0, self.key_max, size=self.n_keys, dtype=np.int64)

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        with ws.region("R1"):
            batch = self._batch_keys(it)
            self.keys.write(slice(None), batch)
        with ws.region("R2"):
            keys = self.keys.read()
            buckets = (keys * self.n_buckets // self.key_max).astype(np.int64)
        with ws.region("R3"):
            counts = np.bincount(buckets, minlength=self.n_buckets).astype(np.int64)
            self.hist.update(slice(None), lambda h: np.add(h, counts, out=h))
        with ws.region("R4"):
            # Reserve per-bucket space, then fill: positions derive from the
            # pre-advance offsets.
            order = np.argsort(buckets, kind="stable")
            sorted_buckets = buckets[order]
            offs = self.offsets.read().copy()
            group_start = np.searchsorted(sorted_buckets, np.arange(self.n_buckets))
            within = np.arange(self.n_keys) - group_start[sorted_buckets]
            pos = offs[sorted_buckets] + within
            self.offsets.update(slice(None), lambda o: np.add(o, counts, out=o))
        with ws.region("R5"):
            limit = (sorted_buckets + 1) * self.bucket_cap
            if np.any(pos >= limit) or np.any(pos < 0):
                # Buffer overrun: the segfault analogue (paper: IS crashes
                # with inconsistent bucket pointers cannot even restart).
                raise IndexError("IS bucket overflow: inconsistent offsets")
            # Streaming (non-temporal) scatter, as real sorting kernels use
            # for write-once output buffers: the store bypasses the cache,
            # so the sorted store is always consistent in NVM and only the
            # tiny reservation state (offsets/hist) is crash-critical —
            # matching the paper's 4 KB critical data object for IS.
            self.store.write_at(pos, keys[order], nontemporal=True)
        with ws.region("R6"):
            # Partial verification: spot-check bucket fill levels so far.
            offs_now = self.offsets.read()
            fill = offs_now - np.arange(self.n_buckets) * self.bucket_cap
            if np.any(fill < 0) or np.any(fill > self.bucket_cap):
                raise RestartInterrupted("IS partial verification: bad fill levels")
        with ws.region("R7"):
            sample = self.store.read((slice(0, 4 * self.bucket_cap),))
            _ = int(sample[:: max(1, sample.size // 512)].sum())
        with ws.region("R8"):
            self.keys.read()
        return False

    # -- verification -------------------------------------------------------------

    def _final_state(self) -> tuple[np.ndarray, np.ndarray]:
        offs = self.offsets.np
        fill = offs - np.arange(self.n_buckets) * self.bucket_cap
        return fill, self.store.np

    def reference_outcome(self) -> dict[str, float]:
        fill, store = self._final_state()
        total = int(fill.sum())
        # Order-sensitive digest over the stored keys (exact sort check).
        digest = 0
        for b in range(self.n_buckets):
            lo = b * self.bucket_cap
            seg = np.sort(store[lo : lo + max(int(fill[b]), 0)])
            digest = (digest * 1000003 + int(seg.sum()) + int((seg * np.arange(1, seg.size + 1)).sum())) % (1 << 61)
        return {"total": float(total), "digest": float(digest)}

    def verify(self) -> bool:
        if self.golden is None:
            return True
        fill, store = self._final_state()
        if np.any(fill < 0) or np.any(fill > self.bucket_cap):
            return False
        # The running histogram must agree with the actual fill levels.
        if not np.array_equal(self.hist.np, fill):
            return False
        # Keys must land in the right buckets (sortedness across buckets).
        for b in range(0, self.n_buckets, max(1, self.n_buckets // 64)):
            lo = b * self.bucket_cap
            seg = store[lo : lo + int(fill[b])]
            if seg.size and (
                np.any(seg * self.n_buckets // self.key_max != b)
            ):
                return False
        out = self.reference_outcome()
        return out["total"] == self.golden["total"] and out["digest"] == self.golden["digest"]

"""EP: embarrassingly parallel Monte Carlo Gaussian-pair counting (NPB EP).

Each iteration draws a batch of uniform pairs from a *sequential* linear
congruential generator, applies the Box-Muller acceptance test, and
accumulates the sums ``sx``, ``sy`` and the annulus counts ``q[0..9]``
(the paper's 80-byte candidate set).

The LCG state is a local (stack-like) variable advanced across batches.
The paper's scope persists only heap/global data objects — stack state is
lost at a crash, and this EP (like the paper's) has no jump-ahead, so a
restart cannot reconstruct the stream position.  The replayed batches
draw the wrong numbers, the exact-match verification fails, and EP's
recomputability is 0 with or without EasyCrash — which is why the paper
excludes EP from the EasyCrash evaluation.

Regions (Table 1 lists 2): ``R1`` generation, ``R2`` accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application

__all__ = ["EP"]

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK = (1 << 64) - 1


class EP(Application):
    NAME = "EP"
    REGIONS = ("R1", "R2")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(
        self, runtime=None, batches: int = 256, batch_size: int = 4096, seed: int = 2020, **kw
    ):
        super().__init__(runtime, batches=batches, batch_size=batch_size, seed=seed, **kw)
        self.batches = batches
        self.batch_size = batch_size
        self.seed = seed

    def nominal_iterations(self) -> int:
        return self.batches

    def _allocate(self) -> None:
        self.q = self.ws.array("q", (10,), np.float64, candidate=True)
        self.sx = self.ws.scalar("sx", 0.0, np.float64, candidate=True)
        self.sy = self.ws.scalar("sy", 0.0, np.float64, candidate=True)
        # Scratch pair buffer: heap object, but temporary (not a candidate).
        self.pairs = self.ws.array("pairs", (self.batch_size, 2), candidate=False, readonly=False)

    def _initialize(self) -> None:
        self.q.np[...] = 0.0
        self.sx.arr.np[0] = 0.0
        self.sy.arr.np[0] = 0.0
        self.pairs.np[...] = 0.0
        # Sequential generator state: a plain Python attribute — the
        # "stack" state the paper's failure model does not persist.
        self._lcg_state = self.seed & _MASK
        # Per-batch LCG trajectory coefficients: s_i = A^i s_0 + C_i, so a
        # whole batch vectorizes (modulo-2^64 via uint64 wraparound).
        count = 2 * self.batch_size
        apow = np.empty(count, dtype=np.uint64)
        cpre = np.empty(count, dtype=np.uint64)
        a, c = 1, 0
        for i in range(count):
            a = (a * _LCG_A) & _MASK
            c = (c * _LCG_A + _LCG_C) & _MASK
            apow[i] = a
            cpre[i] = c
        self._apow = apow
        self._cpre = cpre

    def _lcg_batch(self, count: int) -> np.ndarray:
        """Draw ``count`` uniforms in [0,1) advancing the sequential state."""
        assert count == self._apow.size
        with np.errstate(over="ignore"):
            states = self._apow * np.uint64(self._lcg_state) + self._cpre
        self._lcg_state = int(states[-1])
        return states / float(1 << 64)

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        with ws.region("R1"):
            u = self._lcg_batch(2 * self.batch_size)
            xy = 2.0 * u.reshape(self.batch_size, 2) - 1.0
            self.pairs.write(slice(None), xy)
        with ws.region("R2"):
            xy = self.pairs.read()
            t = xy[:, 0] ** 2 + xy[:, 1] ** 2
            acc = (t <= 1.0) & (t > 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                f = np.sqrt(-2.0 * np.log(t) / t)
            gx = xy[acc, 0] * f[acc]
            gy = xy[acc, 1] * f[acc]
            m = np.maximum(np.abs(gx), np.abs(gy))
            counts = np.bincount(np.minimum(m, 9.999).astype(int), minlength=10)[:10]
            self.q.update(slice(None), lambda q: np.add(q, counts, out=q))
            self.sx.set(float(self.sx.peek()) + float(gx.sum()))
            self.sy.set(float(self.sy.peek()) + float(gy.sum()))
        return False

    def reference_outcome(self) -> dict[str, float]:
        out = {f"q{i}": float(self.q.np[i]) for i in range(10)}
        out["sx"] = float(self.sx.arr.np[0])
        out["sy"] = float(self.sy.arr.np[0])
        return out

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        # NPB EP verification is exact: counts must match and the Gaussian
        # sums must agree to full precision.
        for i in range(10):
            if out[f"q{i}"] != self.golden[f"q{i}"]:
                return False
        return (
            abs(out["sx"] - self.golden["sx"]) <= 1e-12 * max(1.0, abs(self.golden["sx"]))
            and abs(out["sy"] - self.golden["sy"]) <= 1e-12 * max(1.0, abs(self.golden["sy"]))
        )

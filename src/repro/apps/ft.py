"""FT: spectral PDE evolution with per-iteration checksums (NPB FT).

Solves a 3D diffusion-like PDE in spectral space.  The evolved spectrum
``w`` is multiplied *cumulatively* by per-mode phase/decay factors each
iteration (``w *= twiddle``), an inverse FFT materializes the solution,
and a checksum over a fixed index set is recorded per iteration; the
final acceptance verification compares *every* iteration's checksum
against the reference, NPB-style.

Cumulative multiplicative evolution is not a fixed point: any block of
``w`` whose NVM copy is stale (old value) or ahead (written back mid-
iteration and then re-multiplied on replay) corrupts the checksum
trajectory irrecoverably.  The checksum history itself is tiny and
cache-hot, so without flushing it is lost at a crash.  This combination
gives FT a near-zero intrinsic recomputability and the *lowest*
EasyCrash recomputability of the tolerant apps (crashes inside the
evolve region remain fatal), matching the paper.

Regions (Table 1 lists 4): ``R1`` evolve (destructive), ``R2`` inverse
FFT into the output buffer, ``R3`` checksum, ``R4`` partial verification.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["FT"]


class FT(Application):
    NAME = "FT"
    REGIONS = ("R1", "R2", "R3", "R4")
    DEFAULT_MAX_FACTOR = 1.0  # fixed iteration count

    def __init__(self, runtime=None, n: int = 32, nit: int = 20, seed: int = 2020, **kw):
        super().__init__(runtime, n=n, nit=nit, seed=seed, **kw)
        self.n = n
        self.nit = nit
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-9))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        shape = (self.n, self.n, self.n)
        self.w = self.ws.array("w", shape, np.complex128, candidate=True)
        self.twiddle = self.ws.array("twiddle", shape, np.complex128, candidate=False, readonly=True)
        self.xout = self.ws.array("xout", shape, np.complex128, candidate=True)
        self.sums = self.ws.array("sums", (self.nit, 2), np.float64, candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "ft-u0")
        n = self.n
        u0 = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal((n, n, n))
        self.w.np[...] = u0
        k = np.fft.fftfreq(n) * n
        kx, ky, kz = np.meshgrid(k, k, k, indexing="ij")
        k2 = kx**2 + ky**2 + kz**2
        alpha = 1e-6
        # Mild decay plus rotation: |twiddle| <= 1, so the trajectory stays
        # bounded over nit cumulative applications.
        self.twiddle.np[...] = np.exp(-4.0 * np.pi**2 * alpha * k2) * np.exp(
            1j * 2.0 * np.pi * k2 / (n * n * 8.0)
        )
        self.xout.np[...] = 0.0
        self.sums.np[...] = 0.0
        # Fixed checksum gather indices, NPB-style.
        self._cs_idx = (np.arange(1, 1025) * 31) % (n * n * n)

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        with ws.region("R1"):
            tw = self.twiddle.read()
            self.w.update(slice(None), lambda v: np.multiply(v, tw, out=v))
        with ws.region("R2"):
            w = self.w.read()
            self.xout.write(slice(None), np.fft.ifftn(w))
        with ws.region("R3"):
            vals = self.xout.read_at(self._cs_idx)
            chk = vals.sum() / vals.size
            self.sums.write((it, slice(None)), np.array([chk.real, chk.imag]))
        with ws.region("R4"):
            # Partial verification pass: re-read the recorded checksums so
            # far (read traffic; mirrors NPB's per-iteration print/check).
            self.sums.read((slice(0, it + 1), slice(None)))
            self.xout.read()
        return False

    def reference_outcome(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for i in range(self.nit):
            out[f"re{i}"] = float(self.sums.np[i, 0])
            out[f"im{i}"] = float(self.sums.np[i, 1])
        return out

    def verify(self) -> bool:
        if self.golden is None:
            return True
        scale = max(abs(v) for v in self.golden.values())
        for i in range(self.nit):
            if (
                abs(self.sums.np[i, 0] - self.golden[f"re{i}"]) > self.verify_rtol * scale
                or abs(self.sums.np[i, 1] - self.golden[f"im{i}"]) > self.verify_rtol * scale
            ):
                return False
        return True

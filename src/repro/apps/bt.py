"""BT: ADI solver with tridiagonal line solves (NPB BT analogue).

Implicit time stepping of a 3D diffusion system toward steady state via
Alternating-Direction-Implicit factorization: each iteration computes the
right-hand side, then performs a batched Thomas (tridiagonal) solve along
each of the three axes, applies the increment to the field ``u``, and
monitors the residual.  This decomposes into the paper's 15 first-level
code regions for BT (Table 1):

``rhs_x/rhs_y/rhs_z`` (RHS accumulation), ``{x,y,z}_form / {x,y,z}_solve /
{x,y,z}_update`` (per-direction factorization), ``add`` (the single
destructive update of u), ``norm`` and ``monitor``.

The destructive update of ``u`` is confined to the short ``add`` region,
so BT shows good intrinsic recomputability — the paper observes the same
for BT — and EasyCrash pushes it close to 1 by persisting ``u`` after
``add``.  Verification is NPB-style: the final residual must match the
golden trajectory value.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["BT"]


def _thomas_batched(lower: float, diag: float, upper: float, d: np.ndarray) -> np.ndarray:
    """Solve constant-coefficient tridiagonal systems along the first axis
    of ``d`` (shape [n, ...]), one independent system per trailing index."""
    n = d.shape[0]
    cp = np.empty(n)
    x = d.astype(float).copy()
    beta = diag
    cp[0] = upper / beta
    x[0] = x[0] / beta
    for i in range(1, n):
        beta = diag - lower * cp[i - 1]
        cp[i] = upper / beta
        x[i] = (x[i] - lower * x[i - 1]) / beta
    for i in range(n - 2, -1, -1):
        x[i] -= cp[i] * x[i + 1]
    return x


class BT(Application):
    NAME = "BT"
    REGIONS = (
        "rhs_x", "rhs_y", "rhs_z",
        "x_form", "x_solve", "x_update",
        "y_form", "y_solve", "y_update",
        "z_form", "z_solve", "z_update",
        "add", "norm", "monitor",
    )
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, n: int = 40, nit: int = 40, dt: float = 0.4, seed: int = 2020, **kw):
        super().__init__(runtime, n=n, nit=nit, dt=dt, seed=seed, **kw)
        self.n = n
        self.nit = nit
        self.dt = dt
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-8))

    def nominal_iterations(self) -> int:
        return self.nit

    def _allocate(self) -> None:
        shape = (self.n, self.n, self.n)
        self.u = self.ws.array("u", shape, candidate=True)
        self.rhs = self.ws.array("rhs", shape, candidate=True)
        self.forcing = self.ws.array("forcing", shape, candidate=False, readonly=True)
        self.resid = self.ws.array("resid_hist", (self.nit,), candidate=True)

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "bt-forcing")
        n = self.n
        x = np.linspace(0, 1, n)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        self.forcing.np[...] = (
            np.sin(np.pi * X) * np.sin(np.pi * Y) * np.sin(np.pi * Z)
            + 0.1 * rng.standard_normal((n, n, n))
        )
        self.u.np[...] = 0.0
        self.rhs.np[...] = 0.0
        self.resid.np[...] = 0.0
        self._h2 = 1.0 / (n - 1) ** 2

    def _lap(self, u: np.ndarray) -> np.ndarray:
        out = -6.0 * u
        out[1:, :, :] += u[:-1, :, :]
        out[:-1, :, :] += u[1:, :, :]
        out[:, 1:, :] += u[:, :-1, :]
        out[:, :-1, :] += u[:, 1:, :]
        out[:, :, 1:] += u[:, :, :-1]
        out[:, :, :-1] += u[:, :, 1:]
        return out / self._h2

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        dt = self.dt * self._h2  # scaled step
        lam = dt / self._h2 / 3.0
        with ws.region("rhs_x"):
            u = self.u.read()
            f = self.forcing.read()
            part = dt * (self._lap(u) / 3.0 + f / 3.0)
            self.rhs.write(slice(None), part)
        with ws.region("rhs_y"):
            u = self.u.read()
            f = self.forcing.read()
            self.rhs.update(slice(None), lambda r: np.add(r, dt * (self._lap(u) / 3.0 + f / 3.0), out=r))
        with ws.region("rhs_z"):
            u = self.u.read()
            f = self.forcing.read()
            self.rhs.update(slice(None), lambda r: np.add(r, dt * (self._lap(u) / 3.0 + f / 3.0), out=r))
        du = None
        for axis, (rform, rsolve, rupdate) in enumerate(
            (("x_form", "x_solve", "x_update"), ("y_form", "y_solve", "y_update"), ("z_form", "z_solve", "z_update"))
        ):
            with ws.region(rform):
                rhs = self.rhs.read()
                d = np.moveaxis(rhs if du is None else du, axis, 0).copy()
            with ws.region(rsolve):
                sol = _thomas_batched(-lam, 1.0 + 2.0 * lam, -lam, d)
            with ws.region(rupdate):
                du = np.moveaxis(sol, 0, axis).copy()
                self.rhs.write(slice(None), du)
        with ws.region("add"):
            self.u.update(slice(None), lambda x: np.add(x, du, out=x))
        with ws.region("norm"):
            u = self.u.read()
            f = self.forcing.read()
            res = float(np.linalg.norm(self._lap(u) + f))
        with ws.region("monitor"):
            self.resid.write(it % self.nit, res)
        return False

    def reference_outcome(self) -> dict[str, float]:
        u = self.u.np
        res = float(np.linalg.norm(self._lap(u) + self.forcing.np))
        return {"residual": res, "unorm": float(np.linalg.norm(u))}

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        for key in ("residual", "unorm"):
            ref = self.golden[key]
            if abs(out[key] - ref) > self.verify_rtol * max(abs(ref), 1e-30):
                return False
        return True

"""Registry of benchmark factories at their default (scaled) problem sizes.

Problem sizes are chosen so each application's memory footprint exceeds
the default simulated LLC (128 KB) by a similar factor as the paper's
class-C footprints exceed a 19.25 MB L3 — the regime the paper selects —
while keeping a full plain run fast enough for thousand-test campaigns.
"""

from __future__ import annotations

from repro.apps.base import AppFactory

__all__ = ["all_factories", "get_factory", "APP_NAMES"]

APP_NAMES = (
    "CG",
    "MG",
    "FT",
    "IS",
    "BT",
    "LU",
    "SP",
    "EP",
    "botsspar",
    "LULESH",
    "kmeans",
)

_cache: dict[str, AppFactory] = {}


def _build(name: str) -> AppFactory:
    if name == "MG":
        from repro.apps.mg import MG

        return AppFactory(MG, n=33, nit=20, seed=2020, verify_rtol=1e-6)
    if name == "CG":
        from repro.apps.cg import CG

        return AppFactory(CG, n=96, seed=2020)
    if name == "kmeans":
        from repro.apps.kmeans import KMeans

        return AppFactory(KMeans, n_points=8192, n_features=8, k=12, seed=2020)
    if name == "FT":
        from repro.apps.ft import FT

        return AppFactory(FT, n=32, nit=20, seed=2020)
    if name == "IS":
        from repro.apps.is_ import IS

        return AppFactory(IS, n_keys=1 << 16, n_buckets=512, nit=10, seed=2020)
    if name == "EP":
        from repro.apps.ep import EP

        return AppFactory(EP, batches=256, batch_size=4096, seed=2020)
    if name == "BT":
        from repro.apps.bt import BT

        return AppFactory(BT, n=40, nit=40, seed=2020)
    if name == "SP":
        from repro.apps.sp import SP

        return AppFactory(SP, n=40, nit=40, seed=2020)
    if name == "LU":
        from repro.apps.lu import LU

        return AppFactory(LU, n=40, nit=40, seed=2020)
    if name == "botsspar":
        from repro.apps.botsspar import BotsSpar

        return AppFactory(BotsSpar, blocks=16, block_size=32, bandwidth=5, fill=0.7, seed=2020)
    if name == "LULESH":
        from repro.apps.lulesh import LULESH

        return AppFactory(LULESH, n_cells=16384, nit=200, seed=2020)
    if name == "sgdnet":  # extension: ML training (not part of Table 1)
        from repro.apps.sgdnet import SGDNet

        return AppFactory(SGDNet, n_samples=4096, n_features=16, seed=2020)
    if name == "xsbench":  # extension: Monte Carlo XS lookups (paper cites XSBench)
        from repro.apps.xsbench import XSBench

        return AppFactory(XSBench, seed=2020)
    if name == "kmeans-mt":  # extension: data-parallel kmeans (multicore)
        from repro.apps.parallel_kmeans import ParallelKMeans

        return AppFactory(ParallelKMeans, n_points=8192, n_features=8, k=12, seed=2020)
    raise KeyError(f"unknown application {name!r}")


def get_factory(name: str) -> AppFactory:
    """Factory for one benchmark at its default scaled problem size."""
    if name not in _cache:
        _cache[name] = _build(name)
    return _cache[name]


def all_factories() -> dict[str, AppFactory]:
    """Factories for all 11 benchmarks (Table 1 order)."""
    return {name: get_factory(name) for name in APP_NAMES}

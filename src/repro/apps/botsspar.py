"""botsspar: blocked sparse LU factorization (BOTS sparselu analogue).

The matrix is a B×B grid of dense bs×bs blocks with a sparse occupancy
pattern (dense first row/column and diagonal plus random fill, as in the
BOTS generator).  The main loop iterates over the diagonal: at step k,

* ``lu0``  — factor the diagonal block A[k][k] in place (no pivoting);
* ``fwd``  — transform row-panel blocks A[k][j] ← L(A[k][k])⁻¹ A[k][j];
* ``bdiv`` — transform column-panel blocks A[i][k] ← A[i][k] U(A[k][k])⁻¹;
* ``bmod`` — trailing update A[i][j] -= A[i][k] · A[k][j].

These are exactly the four kernels (= 4 code regions, Table 1) of the
BOTS benchmark.  Sparse LU is a *direct* method: the trailing subtraction
is not a fixed point, so any block whose NVM copy is stale by one or more
factorization steps corrupts the factorization irrecoverably — intrinsic
recomputability is near zero.  With EasyCrash persisting the matrix at
every outer step, the per-step working set (a sparse panel pair plus the
touched trailing blocks) is small enough to stay cached, so replaying the
interrupted step is exact — the paper's 77% improvement for botsspar.

Verification: the factored matrix must match the golden factorization
(Frobenius digest + sampled entries) to tight relative tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.util.rng import derive_rng

__all__ = ["BotsSpar"]


class BotsSpar(Application):
    NAME = "botsspar"
    REGIONS = ("lu0", "fwd", "bdiv", "bmod")
    DEFAULT_MAX_FACTOR = 1.0
    # Dense bs x bs block kernels: O(bs^3) flops on O(bs^2) bytes — at the
    # default bs=32, ~170 flops per cache block (~10x a streaming stencil).
    COMPUTE_INTENSITY = 10.0

    def __init__(self, runtime=None, blocks: int = 16, block_size: int = 32, bandwidth: int = 5, fill: float = 0.7, seed: int = 2020, **kw):
        super().__init__(runtime, blocks=blocks, block_size=block_size, bandwidth=bandwidth, fill=fill, seed=seed, **kw)
        self.nb = blocks
        self.bs = block_size
        self.bandwidth = bandwidth
        self.fill = fill
        self.seed = seed
        self.verify_rtol = float(kw.get("verify_rtol", 1e-9))

    def nominal_iterations(self) -> int:
        return self.nb

    def _allocate(self) -> None:
        nb, bs = self.nb, self.bs
        occ = self._make_occupancy()
        self._occ = occ
        # Block->slot index map: derived metadata, rebuilt deterministically
        # by _allocate on every restart, so it needs no NVM image.
        self._slot = np.full((nb, nb), -1, dtype=np.int64)  # analysis: allow(unregistered-object)
        self._slot[occ] = np.arange(int(occ.sum()))
        # Like BOTS sparselu, only occupied blocks are allocated (one
        # compact array of per-block storage).
        self.m = self.ws.array("M", (int(occ.sum()), bs, bs), candidate=True)
        self.occupancy = self.ws.array("occupancy", (nb, nb), np.int8, candidate=False, readonly=True)

    def _make_occupancy(self) -> np.ndarray:
        rng = derive_rng(self.seed, "botsspar-matrix")
        nb = self.nb
        i, j = np.indices((nb, nb))
        band = np.abs(i - j) <= self.bandwidth
        occ = band & (rng.random((nb, nb)) < self.fill)
        np.fill_diagonal(occ, True)
        occ[np.abs(i - j) == 1] = True  # keep the band connected
        # Symbolic factorization: fold in every fill-in block up front.
        for k in range(nb):
            occ[k + 1 :, k + 1 :] |= np.outer(occ[k + 1 :, k], occ[k, k + 1 :])
        return occ

    def _initialize(self) -> None:
        rng = derive_rng(self.seed, "botsspar-values")
        nb, bs = self.nb, self.bs
        occ = self._occ
        self.occupancy.np[...] = occ
        vals = rng.standard_normal((int(occ.sum()), bs, bs))
        # Diagonal dominance keeps the pivoting-free factorization stable.
        for k in range(nb):
            vals[self._slot[k, k]] += np.eye(bs) * (4.0 * bs)
        self.m.np[...] = vals

    def _block(self, i: int, j: int) -> tuple[object, ...]:
        slot = self._slot[i, j]
        assert slot >= 0, f"block ({i},{j}) not allocated"
        return (int(slot), slice(None), slice(None))

    def dense(self) -> np.ndarray:
        """Dense reconstruction of the block matrix (tests/verification)."""
        nb, bs = self.nb, self.bs
        out = np.zeros((nb * bs, nb * bs))
        for i in range(nb):
            for j in range(nb):
                if self._occ[i, j]:
                    out[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] = self.m.np[
                        self._slot[i, j]
                    ]
        return out

    def _iterate(self, it: int) -> bool:
        ws = self.ws
        k = it
        occ = self._occ
        with ws.region("lu0"):
            diag = self.m.read(self._block(k, k)).copy()
            bs = self.bs
            for c in range(bs - 1):
                diag[c + 1 :, c] /= diag[c, c]
                diag[c + 1 :, c + 1 :] -= np.outer(diag[c + 1 :, c], diag[c, c + 1 :])
            self.m.write(self._block(k, k), diag)
        lower = np.tril(diag, -1) + np.eye(self.bs)
        upper = np.triu(diag)
        with ws.region("fwd"):
            for j in range(k + 1, self.nb):
                if occ[k, j]:
                    blk = self.m.read(self._block(k, j)).copy()
                    # Solve L x = blk (forward substitution).
                    x = np.linalg.solve(lower, blk)
                    self.m.write(self._block(k, j), x)
        with ws.region("bdiv"):
            for i in range(k + 1, self.nb):
                if occ[i, k]:
                    blk = self.m.read(self._block(i, k)).copy()
                    # Solve x U = blk.
                    x = np.linalg.solve(upper.T, blk.T).T
                    self.m.write(self._block(i, k), x)
        with ws.region("bmod"):
            for i in range(k + 1, self.nb):
                if not occ[i, k]:
                    continue
                a_ik = self.m.read(self._block(i, k))
                for j in range(k + 1, self.nb):
                    if not occ[k, j]:
                        continue
                    a_kj = self.m.read(self._block(k, j))
                    prod = a_ik @ a_kj
                    self.m.update(self._block(i, j), lambda b, p=prod: np.subtract(b, p, out=b))
        return False

    # -- verification ----------------------------------------------------------

    def reference_outcome(self) -> dict[str, float]:
        m = self.m.np
        out = {"fro": float(np.sqrt(np.einsum("ikl,ikl->", m, m)))}
        rng = derive_rng(self.seed, "botsspar-samples")
        idx = rng.integers(0, int(self._occ.sum()), size=16)
        for s, slot in enumerate(idx):
            out[f"s{s}"] = float(m[slot].sum())
        return out

    def verify(self) -> bool:
        if self.golden is None:
            return True
        out = self.reference_outcome()
        for key, ref in self.golden.items():
            if abs(out[key] - ref) > self.verify_rtol * max(abs(ref), 1.0):
                return False
        return True

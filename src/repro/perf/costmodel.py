"""Event-count execution-time model.

The simulator emits exact event counts (block accesses, demand fills,
dirty write-backs, flush instructions issued, dirty flush write-backs);
the cost model converts them to time with per-event latencies and an NVM
configuration's multipliers.  Absolute numbers are arbitrary-units; every
reported result is *normalized* to the same application without
persistence operations, exactly as in the paper's Table 4 / Figs. 7-8.

The planner's flush-cost estimator deliberately overestimates, as the
paper does: every cache block of a critical object is priced as a dirty
flush, doubled to account for the CLFLUSH/CLFLUSHOPT invalidation-reload
penalty ("we double our estimation on the overhead of flushing cache
blocks").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.stats import MemoryStats
from repro.perf.nvmconfigs import DRAM, NVMConfig

__all__ = ["CostModel", "RunCost"]


@dataclass(frozen=True)
class RunCost:
    """Time decomposition of one run (arbitrary units ≈ ns)."""

    compute: float
    fills: float
    writebacks: float
    flushes: float

    @property
    def total(self) -> float:
        return self.compute + self.fills + self.writebacks + self.flushes


@dataclass(frozen=True)
class CostModel:
    """Per-event costs (per 64 B cache block, DRAM-relative units ≈ ns)."""

    t_block_cpu: float = 6.0  # compute + cache-hit cost per block access
    t_fill: float = 30.0  # demand fill from memory (effective, MLP-hidden)
    t_writeback: float = 8.0  # background dirty write-back
    t_flush_issue: float = 0.6  # flush instruction, resident line
    t_flush_absent: float = 0.1  # flush instruction for a non-resident line
    # Full cost of the write a dirty-line flush performs (a flush waits
    # for write completion, hence t_writeback-like on DRAM and *latency*
    # scaled on NVM).  Used when costing measured runs.
    t_flush_dirty: float = 8.0
    # Marginal surcharge of flushing a dirty line when planning: the
    # write-back would mostly happen at eviction anyway, so the flush only
    # moves it earlier.  Used by the planner's overhead estimator.
    t_flush_marginal: float = 2.0
    invalidate_reload_penalty: float = 2.0  # paper's x2 CLFLUSH estimate

    # -- measured-run costing -------------------------------------------------

    def run_cost(
        self,
        stats: MemoryStats,
        nvm: NVMConfig = DRAM,
        invalidate: bool = False,
        compute_scale: float = 1.0,
    ) -> RunCost:
        """Time of a run whose events are in ``stats``, on device ``nvm``.

        ``compute_scale`` is the application's arithmetic intensity in
        flop-time per block access relative to a streaming kernel (dense
        block kernels like blocked LU do O(b³) flops on O(b²) bytes).
        """
        first = next(iter(stats.per_level.values()))
        llc = list(stats.per_level.values())[-1]
        accesses = first.read_accesses + first.write_accesses + stats.nvm_writes_from_nt
        compute = accesses * self.t_block_cpu * compute_scale
        fills = stats.nvm_fills * self.t_fill * nvm.fill_mult
        wb = (
            (
                stats.nvm_writes_from_evictions
                + stats.nvm_writes_from_drain
                + stats.nvm_writes_from_nt
            )
            * self.t_writeback
            * nvm.writeback_mult
        )
        flush = (
            llc.flush_issued * self.t_flush_issue
            + stats.nvm_writes_from_flushes * self.t_flush_dirty * nvm.flush_mult
        )
        if invalidate:
            flush *= self.invalidate_reload_penalty
        return RunCost(compute, fills, wb, flush)

    def normalized_time(
        self,
        stats: MemoryStats,
        baseline: MemoryStats,
        nvm: NVMConfig = DRAM,
        invalidate: bool = False,
        compute_scale: float = 1.0,
    ) -> float:
        """Execution time of ``stats`` normalized to ``baseline`` (a run of
        the same application without persistence operations)."""
        t = self.run_cost(stats, nvm, invalidate, compute_scale).total
        t0 = self.run_cost(baseline, nvm, compute_scale=compute_scale).total
        return t / t0

    def flush_event_cost(
        self,
        blocks_issued: int,
        dirty_written: int,
        clean_resident: int = 0,
        nvm: NVMConfig = DRAM,
        invalidate: bool = False,
    ) -> float:
        """Cost of one *measured* persistence operation (the paper bases
        its estimate on measuring the overhead of flushing cache blocks).

        Three tiers: flushes of non-resident lines retire nearly for free
        (``t_flush_absent``); resident-clean lines pay the issue cost;
        dirty lines additionally pay their marginal (early-write-back)
        cost.
        """
        absent = max(0, blocks_issued - dirty_written - clean_resident)
        resident = dirty_written + clean_resident
        cost = (
            absent * self.t_flush_absent
            + resident * self.t_flush_issue
            + dirty_written * self.t_flush_marginal * nvm.flush_mult
        )
        if invalidate:
            cost *= self.invalidate_reload_penalty
        return cost

    # -- planner-side estimation ---------------------------------------------------

    def estimate_flush_once(
        self, nblocks: int, nvm: NVMConfig = DRAM, invalidate: bool = False
    ) -> float:
        """Conservative cost of one persistence operation over ``nblocks``
        cache blocks: every block priced as dirty; for invalidating flush
        instructions (CLFLUSH/CLFLUSHOPT) the estimate is doubled to cover
        line reloads (paper Sec. 5.2, "Discussions").  CLWB retains the
        line, so no doubling applies."""
        cost = nblocks * (self.t_flush_issue + self.t_flush_dirty * nvm.flush_mult)
        if invalidate:
            cost *= self.invalidate_reload_penalty
        return cost

    def estimate_base_time(self, total_accesses: int, nvm: NVMConfig = DRAM) -> float:
        """Crude application base time used to turn flush costs into
        overhead *shares* for the knapsack weights."""
        # Streaming HPC kernels: roughly one fill per few accesses.
        return total_accesses * (self.t_block_cpu + 0.4 * self.t_fill * nvm.fill_mult)

"""Performance modeling: NVM device configurations and the event-count
cost model that converts simulator statistics into (normalized) execution
times — the substitute for the paper's Quartz-based NVM emulation and
Optane DC PMM measurements (Table 4, Figs. 7-8)."""

from repro.perf.nvmconfigs import NVMConfig, NVM_CONFIGS
from repro.perf.costmodel import CostModel, RunCost

__all__ = ["NVMConfig", "NVM_CONFIGS", "CostModel", "RunCost"]

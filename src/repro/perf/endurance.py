"""NVM write-endurance analysis (extension).

The paper's motivation for minimizing NVM writes is device endurance:
PCM-class cells tolerate ~1e8 writes, seven orders of magnitude fewer
than DRAM.  Aggregate write counts (Fig. 9) hide *where* the writes land;
lifetime is governed by the hottest line unless wear leveling spreads it.
This module analyzes the per-block write histogram collected by the
persistent heap and estimates device lifetime with and without ideal wear
leveling (Start-Gap-style, as in Qureshi et al., cited by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nvct.heap import PersistentHeap

__all__ = ["WearProfile", "analyze_wear"]

PCM_CELL_ENDURANCE = 1e8  # writes per cell, PCM-class (paper Sec. 1)


@dataclass(frozen=True)
class WearProfile:
    """Per-block wear statistics of one run."""

    total_writes: int
    blocks_written: int
    total_blocks: int
    max_block_writes: int
    mean_block_writes: float
    hotspot_ratio: float  # max / mean over written blocks
    gini: float  # wear imbalance in [0, 1)

    def lifetime_scale(self, cell_endurance: float = PCM_CELL_ENDURANCE) -> float:
        """Device lifetime in units of 'this run repeated N times', limited
        by the hottest block (no wear leveling)."""
        if self.max_block_writes == 0:
            return float("inf")
        return cell_endurance / self.max_block_writes

    def lifetime_scale_leveled(self, cell_endurance: float = PCM_CELL_ENDURANCE) -> float:
        """Lifetime with ideal wear leveling (writes spread uniformly over
        the whole device range)."""
        if self.total_writes == 0:
            return float("inf")
        return cell_endurance * self.total_blocks / self.total_writes

    def leveling_gain(self) -> float:
        """How much ideal wear leveling extends lifetime for this pattern."""
        if self.max_block_writes == 0:
            return 1.0
        return self.lifetime_scale_leveled() / self.lifetime_scale()


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of the write distribution over written blocks."""
    if counts.size == 0:
        return 0.0
    sorted_counts = np.sort(counts.astype(float))
    n = sorted_counts.size
    total = sorted_counts.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def analyze_wear(heap: PersistentHeap) -> WearProfile:
    """Analyze the heap's per-block write counters (requires a heap
    created with ``track_write_counts=True``)."""
    counts = heap.write_counts()
    written = counts[counts > 0]
    total = int(counts.sum())
    return WearProfile(
        total_writes=total,
        blocks_written=int(written.size),
        total_blocks=int(counts.size),
        max_block_writes=int(counts.max()) if counts.size else 0,
        mean_block_writes=float(written.mean()) if written.size else 0.0,
        hotspot_ratio=float(counts.max() / written.mean()) if written.size else 0.0,
        gini=_gini(written),
    )

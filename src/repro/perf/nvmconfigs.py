"""NVM device configurations (the paper's Quartz emulation points).

Each configuration scales three per-block costs relative to DRAM:

* ``fill_mult`` — demand fills (read latency-bound);
* ``writeback_mult`` — background dirty write-backs (bandwidth-bound);
* ``flush_mult`` — synchronous cache-line flushes, which wait for write
  completion and are therefore *latency*-bound.  This is why the paper's
  persist-everything baseline suffers most on the 4x/8x-latency points
  (48%/62% overhead) and less on the bandwidth-limited ones (21%/22%).

The latency points model 4x/8x DRAM latency; the bandwidth points model
1/6 and 1/8 DRAM bandwidth; OPTANE approximates Intel Optane DC PMM
(~3x read latency, ~1/6 write bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NVMConfig", "NVM_CONFIGS"]


@dataclass(frozen=True)
class NVMConfig:
    """Cost multipliers of an NVM device relative to DRAM."""

    name: str
    fill_mult: float
    writeback_mult: float
    flush_mult: float

    def __post_init__(self) -> None:
        if min(self.fill_mult, self.writeback_mult, self.flush_mult) <= 0:
            raise ValueError("multipliers must be positive")


# Consistency constraint: a dirty-line flush performs the same write a
# later eviction would, plus synchronous latency exposure — so flush_mult
# >= writeback_mult on every configuration (otherwise the model would
# reward flushing as a cost optimization, which real hardware does not).
DRAM = NVMConfig("DRAM", 1.0, 1.0, 1.0)
LAT4X = NVMConfig("4x latency", 4.0, 1.2, 4.0)
LAT8X = NVMConfig("8x latency", 8.0, 1.4, 8.0)
BW1_6 = NVMConfig("1/6 bandwidth", 2.5, 2.5, 2.5)
BW1_8 = NVMConfig("1/8 bandwidth", 3.2, 3.2, 3.2)
OPTANE = NVMConfig("Optane DC PMM", 3.0, 2.5, 3.5)

NVM_CONFIGS: dict[str, NVMConfig] = {
    c.name: c for c in (DRAM, LAT4X, LAT8X, BW1_6, BW1_8, OPTANE)
}

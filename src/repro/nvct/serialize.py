"""Campaign (de)serialization.

NVCT's postmortem workflow dumps analysis data to files; this module
round-trips :class:`~repro.nvct.campaign.CampaignResult` through JSON so
campaigns can be archived, diffed across runs, and analyzed offline
(``python -m repro campaign APP --save results.json``).

The same dict round-trips back the persistent artifact cache
(:mod:`repro.harness.cache`) and the parallel campaign engine
(:mod:`repro.nvct.parallel`), which ships snapshots to classification
workers as packed payloads (:func:`pack_snapshot` / :func:`unpack_snapshot`).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import SnapshotCorruptError
from repro.memsim.stats import CacheStats, MemoryStats
from repro.nvct.campaign import CampaignResult, CrashTestRecord, Response, RunStats
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import ObjectProfile, PersistEvent, RegionProfile, Snapshot

__all__ = [
    "save_campaign",
    "save_cluster_result",
    "load_campaign",
    "plan_to_dict",
    "plan_from_dict",
    "record_to_dict",
    "record_from_dict",
    "run_stats_to_dict",
    "run_stats_from_dict",
    "campaign_to_dict",
    "campaign_from_dict",
    "pack_snapshot",
    "unpack_snapshot",
]

FORMAT_VERSION = 1


def _plan_to_dict(plan: PersistencePlan) -> dict:
    return {
        "objects": list(plan.objects),
        "region_frequency": dict(plan.region_frequency),
        "at_iteration_end": plan.at_iteration_end,
        "iteration_frequency": plan.iteration_frequency,
        "persist_iterator": plan.persist_iterator,
        "invalidate": plan.invalidate,
    }


def _plan_from_dict(d: dict) -> PersistencePlan:
    return PersistencePlan(
        objects=tuple(d["objects"]),
        region_frequency={k: int(v) for k, v in d["region_frequency"].items()},
        at_iteration_end=bool(d["at_iteration_end"]),
        iteration_frequency=int(d.get("iteration_frequency", 1)),
        persist_iterator=bool(d["persist_iterator"]),
        invalidate=bool(d["invalidate"]),
    )


def _memory_to_dict(m: MemoryStats) -> dict:
    return {
        "nvm_writes": m.nvm_writes,
        "nvm_writes_from_evictions": m.nvm_writes_from_evictions,
        "nvm_writes_from_flushes": m.nvm_writes_from_flushes,
        "nvm_writes_from_drain": m.nvm_writes_from_drain,
        "nvm_writes_from_nt": m.nvm_writes_from_nt,
        "nvm_fills": m.nvm_fills,
        "nvm_writeback_events": m.nvm_writeback_events,
        "per_level": {name: cs.as_dict() for name, cs in m.per_level.items()},
    }


def _memory_from_dict(d: dict) -> MemoryStats:
    m = MemoryStats(
        nvm_writes=int(d["nvm_writes"]),
        nvm_writes_from_evictions=int(d["nvm_writes_from_evictions"]),
        nvm_writes_from_flushes=int(d["nvm_writes_from_flushes"]),
        nvm_writes_from_drain=int(d.get("nvm_writes_from_drain", 0)),
        nvm_writes_from_nt=int(d.get("nvm_writes_from_nt", 0)),
        nvm_fills=int(d["nvm_fills"]),
        nvm_writeback_events=int(d.get("nvm_writeback_events", 0)),
    )
    m.per_level = {name: CacheStats(**cs) for name, cs in d["per_level"].items()}
    return m


def run_stats_to_dict(stats: RunStats) -> dict:
    return {
        "memory": _memory_to_dict(stats.memory),
        "region_profile": {
            k: {"accesses": p.accesses, "executions": p.executions}
            for k, p in stats.region_profile.items()
        },
        "persist_events": [asdict(e) for e in stats.persist_events],
        "total_accesses": stats.total_accesses,
        "window_begin": stats.window_begin,
        "iterations": stats.iterations,
    }


def run_stats_from_dict(rs: dict) -> RunStats:
    return RunStats(
        memory=_memory_from_dict(rs["memory"]),
        region_profile={
            k: RegionProfile(accesses=int(p["accesses"]), executions=int(p["executions"]))
            for k, p in rs["region_profile"].items()
        },
        persist_events=[PersistEvent(**e) for e in rs["persist_events"]],
        total_accesses=int(rs["total_accesses"]),
        window_begin=int(rs["window_begin"]),
        iterations=int(rs["iterations"]),
    )


def record_to_dict(r: CrashTestRecord) -> dict:
    """JSON-compatible dict of one crash-test record (file + journal format)."""
    doc = {
        "counter": r.counter,
        "iteration": r.iteration,
        "region": r.region,
        "rates": {k: float(v) for k, v in r.rates.items()},
        "response": r.response.name,
        "extra_iterations": r.extra_iterations,
    }
    if r.weight != 1:
        # Only collapsed duplicates carry a weight; the common case keeps
        # the historical document shape byte for byte.
        doc["weight"] = r.weight
    if r.error:
        doc["error"] = r.error
    return doc


def record_from_dict(r: dict) -> CrashTestRecord:
    return CrashTestRecord(
        counter=int(r["counter"]),
        iteration=int(r["iteration"]),
        region=r["region"],
        rates={k: float(v) for k, v in r["rates"].items()},
        response=Response[r["response"]],
        extra_iterations=int(r["extra_iterations"]),
        weight=int(r.get("weight", 1)),
        error=str(r.get("error", "")),
    )


def campaign_to_dict(result: CampaignResult) -> dict:
    """JSON-compatible dict of a full campaign (the file format)."""
    doc = {
        "format": FORMAT_VERSION,
        "app": result.app,
        "golden_iterations": result.golden_iterations,
        "plan": _plan_to_dict(result.plan),
        "records": [record_to_dict(r) for r in result.records],
        "run_stats": run_stats_to_dict(result.run_stats),
    }
    # Omit-if-default, like record weights: campaigns under the paper's
    # whole-cache-loss model keep the historical document shape byte for
    # byte.
    if result.crash_model != "whole-cache-loss":
        doc["crash_model"] = result.crash_model
    return doc


def campaign_from_dict(doc: dict) -> CampaignResult:
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported campaign format: {doc.get('format')!r}")
    records = [record_from_dict(r) for r in doc["records"]]
    return CampaignResult(
        app=doc["app"],
        plan=_plan_from_dict(doc["plan"]),
        records=records,
        run_stats=run_stats_from_dict(doc["run_stats"]),
        golden_iterations=int(doc["golden_iterations"]),
        crash_model=str(doc.get("crash_model", "whole-cache-loss")),
    )


def save_campaign(result: CampaignResult, path: str | Path) -> Path:
    """Serialize a campaign to a JSON file; returns the path written.

    Goes through the repository's atomic artifact writer, so a crash
    mid-save can never leave a torn campaign file behind.
    """
    from repro.obs.export import write_text

    return write_text(path, json.dumps(campaign_to_dict(result), indent=1))


def save_cluster_result(result, path: str | Path) -> Path:
    """Serialize a multi-node cluster campaign
    (:class:`~repro.cluster.emulator.ClusterResult`) to a JSON file.

    Same atomic-writer discipline as :func:`save_campaign`; the document
    carries ``"kind": "cluster-campaign"`` plus the burst schedule,
    per-node records and the recovery-decision log.  Keys are sorted so
    the file is byte-stable across journal-resumed reruns (a resumed
    record's ``rates`` dict reloads in canonical order).
    """
    from repro.obs.export import write_text

    return write_text(path, json.dumps(result.to_dict(), indent=1, sort_keys=True))


def load_campaign(path: str | Path) -> CampaignResult:
    """Load a campaign previously written by :func:`save_campaign`.

    A truncated or garbage file raises the typed
    :class:`~repro.errors.SnapshotCorruptError` (a ``ValueError``
    subclass); an unsupported-but-parseable format stays a plain
    ``ValueError``.
    """
    raw = Path(path).read_bytes()
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotCorruptError(f"{path}: not a campaign file ({exc})") from exc
    try:
        return campaign_from_dict(doc)
    except (KeyError, TypeError, AttributeError) as exc:
        raise SnapshotCorruptError(f"{path}: malformed campaign document ({exc!r})") from exc


# Public aliases of the plan round-trip (the artifact cache fingerprints
# plans through the exact dict the file format uses).
def plan_to_dict(plan: PersistencePlan) -> dict:
    return _plan_to_dict(plan)


def plan_from_dict(d: dict) -> PersistencePlan:
    return _plan_from_dict(d)


# -- snapshot transport (parallel classification workers) ---------------------


def _pack_array(a: np.ndarray) -> dict:
    from repro.harness.store import crc32
    from repro.obs import registry

    data = a.tobytes()
    if (reg := registry()) is not None:
        # Transport copies (IPC payloads are flattened by necessity); the
        # zero-copy regression test asserts this stays 0 on the in-process
        # golden path, where snapshots are consumed as borrowed views.
        reg.counter("serialize.bytes_copied", unit="bytes").inc(len(data))
    # The CRC covers the *intended* bytes: it is computed before the
    # chaos hook below, so injected damage is caught by the checksum
    # exactly like real in-flight corruption would be.
    checksum = crc32(data)
    # Chaos hook: a truncated payload here reaches the classification
    # worker, whose unpack raises SnapshotCorruptError — exercising the
    # chunk-retry/serial-fallback recovery path end to end.
    from repro.harness.chaos import injector

    if (ch := injector()) is not None:
        data = ch.truncate("serialize.pack", data)
        data = ch.bitflip("serialize.pack", data)
        data = ch.torn_writeback("serialize.pack", data)
    return {"dtype": str(a.dtype), "shape": list(a.shape), "data": data, "crc32": checksum}


def _unpack_array(d: dict) -> np.ndarray:
    from repro.harness.store import crc32

    data = d["data"]
    # v0 payloads (packed before the checksum era) carry no "crc32" key
    # and pass through unverified — the shape/dtype checks below are
    # their only guard, as before this change.
    if "crc32" in d and crc32(data) != d["crc32"]:
        raise SnapshotCorruptError(
            f"snapshot array failed its checksum ({len(data)} bytes, dtype {d['dtype']})"
        )
    # Zero-copy: a read-only view over the payload buffer.  Restart only
    # ever *reads* restored state (Application.restore copies it into the
    # app's own arrays), so nothing downstream needs a writable array.
    return np.frombuffer(data, dtype=d["dtype"]).reshape(d["shape"])


def pack_snapshot(snap: Snapshot) -> dict:
    """Flatten a snapshot into plain bytes/dicts for cheap IPC pickling.

    Accepts read-only array views (the golden engine's copy-on-write
    snapshots) — packing only reads, and the one unavoidable copy
    (``tobytes`` for the wire) is accounted in ``serialize.bytes_copied``.
    """
    return {
        "index": snap.index,
        "counter": snap.counter,
        "iteration": snap.iteration,
        "region": snap.region,
        "nvm_state": {k: _pack_array(v) for k, v in snap.nvm_state.items()},
        "rates": {k: float(v) for k, v in snap.rates.items()},
        "consistent_state": (
            None
            if snap.consistent_state is None
            else {k: _pack_array(v) for k, v in snap.consistent_state.items()}
        ),
    }


def unpack_snapshot(d: dict) -> Snapshot:
    """Rebuild a snapshot from :func:`pack_snapshot`'s payload.

    Truncated buffers or missing keys raise the typed
    :class:`~repro.errors.SnapshotCorruptError` so the transport layer
    can tell payload corruption (recoverable by re-shipping or falling
    back to the parent's pristine snapshot) from application failures.
    """
    try:
        return Snapshot(
            index=int(d["index"]),
            counter=int(d["counter"]),
            iteration=int(d["iteration"]),
            region=d["region"],
            nvm_state={k: _unpack_array(v) for k, v in d["nvm_state"].items()},
            rates=d["rates"],
            consistent_state=(
                None
                if d["consistent_state"] is None
                else {k: _unpack_array(v) for k, v in d["consistent_state"].items()}
            ),
        )
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        raise SnapshotCorruptError(f"corrupt snapshot payload: {exc!r}") from exc

"""Campaign (de)serialization.

NVCT's postmortem workflow dumps analysis data to files; this module
round-trips :class:`~repro.nvct.campaign.CampaignResult` through JSON so
campaigns can be archived, diffed across runs, and analyzed offline
(``python -m repro campaign APP --save results.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.memsim.stats import CacheStats, MemoryStats
from repro.nvct.campaign import CampaignResult, CrashTestRecord, Response, RunStats
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import ObjectProfile, PersistEvent, RegionProfile

__all__ = ["save_campaign", "load_campaign"]

FORMAT_VERSION = 1


def _plan_to_dict(plan: PersistencePlan) -> dict:
    return {
        "objects": list(plan.objects),
        "region_frequency": dict(plan.region_frequency),
        "at_iteration_end": plan.at_iteration_end,
        "iteration_frequency": plan.iteration_frequency,
        "persist_iterator": plan.persist_iterator,
        "invalidate": plan.invalidate,
    }


def _plan_from_dict(d: dict) -> PersistencePlan:
    return PersistencePlan(
        objects=tuple(d["objects"]),
        region_frequency={k: int(v) for k, v in d["region_frequency"].items()},
        at_iteration_end=bool(d["at_iteration_end"]),
        iteration_frequency=int(d.get("iteration_frequency", 1)),
        persist_iterator=bool(d["persist_iterator"]),
        invalidate=bool(d["invalidate"]),
    )


def _memory_to_dict(m: MemoryStats) -> dict:
    return {
        "nvm_writes": m.nvm_writes,
        "nvm_writes_from_evictions": m.nvm_writes_from_evictions,
        "nvm_writes_from_flushes": m.nvm_writes_from_flushes,
        "nvm_writes_from_drain": m.nvm_writes_from_drain,
        "nvm_writes_from_nt": m.nvm_writes_from_nt,
        "nvm_fills": m.nvm_fills,
        "per_level": {name: cs.as_dict() for name, cs in m.per_level.items()},
    }


def _memory_from_dict(d: dict) -> MemoryStats:
    m = MemoryStats(
        nvm_writes=int(d["nvm_writes"]),
        nvm_writes_from_evictions=int(d["nvm_writes_from_evictions"]),
        nvm_writes_from_flushes=int(d["nvm_writes_from_flushes"]),
        nvm_writes_from_drain=int(d.get("nvm_writes_from_drain", 0)),
        nvm_writes_from_nt=int(d.get("nvm_writes_from_nt", 0)),
        nvm_fills=int(d["nvm_fills"]),
    )
    m.per_level = {name: CacheStats(**cs) for name, cs in d["per_level"].items()}
    return m


def save_campaign(result: CampaignResult, path: str | Path) -> Path:
    """Serialize a campaign to a JSON file; returns the path written."""
    doc = {
        "format": FORMAT_VERSION,
        "app": result.app,
        "golden_iterations": result.golden_iterations,
        "plan": _plan_to_dict(result.plan),
        "records": [
            {
                "counter": r.counter,
                "iteration": r.iteration,
                "region": r.region,
                "rates": {k: float(v) for k, v in r.rates.items()},
                "response": r.response.name,
                "extra_iterations": r.extra_iterations,
            }
            for r in result.records
        ],
        "run_stats": {
            "memory": _memory_to_dict(result.run_stats.memory),
            "region_profile": {
                k: {"accesses": p.accesses, "executions": p.executions}
                for k, p in result.run_stats.region_profile.items()
            },
            "persist_events": [asdict(e) for e in result.run_stats.persist_events],
            "total_accesses": result.run_stats.total_accesses,
            "window_begin": result.run_stats.window_begin,
            "iterations": result.run_stats.iterations,
        },
    }
    target = Path(path)
    target.write_text(json.dumps(doc, indent=1))
    return target


def load_campaign(path: str | Path) -> CampaignResult:
    """Load a campaign previously written by :func:`save_campaign`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported campaign format: {doc.get('format')!r}")
    records = [
        CrashTestRecord(
            counter=int(r["counter"]),
            iteration=int(r["iteration"]),
            region=r["region"],
            rates={k: float(v) for k, v in r["rates"].items()},
            response=Response[r["response"]],
            extra_iterations=int(r["extra_iterations"]),
        )
        for r in doc["records"]
    ]
    rs = doc["run_stats"]
    run_stats = RunStats(
        memory=_memory_from_dict(rs["memory"]),
        region_profile={
            k: RegionProfile(accesses=int(p["accesses"]), executions=int(p["executions"]))
            for k, p in rs["region_profile"].items()
        },
        persist_events=[PersistEvent(**e) for e in rs["persist_events"]],
        total_accesses=int(rs["total_accesses"]),
        window_begin=int(rs["window_begin"]),
        iterations=int(rs["iterations"]),
    )
    return CampaignResult(
        app=doc["app"],
        plan=_plan_from_dict(doc["plan"]),
        records=records,
        run_stats=run_stats,
        golden_iterations=int(doc["golden_iterations"]),
    )

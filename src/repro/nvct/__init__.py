"""NVCT: the Non-Volatile memory Crash Tester.

Python reimplementation of the paper's PIN-based tool.  It couples the
value-aware cache simulation (:mod:`repro.memsim`) with:

* a :class:`~repro.nvct.heap.PersistentHeap` that lays out data objects in
  a block-aligned address space and maintains each object's *NVM image*
  (the bytes that would survive a crash) next to its architectural state;
* :class:`~repro.nvct.managed.ManagedArray` / ``ManagedScalar`` wrappers
  through which applications issue loads/stores, so every access drives
  the cache simulation at block granularity;
* a deterministic random crash generator and snapshotting runtime
  (:mod:`repro.nvct.runtime`) that captures the exact NVM image at each
  crash point of a campaign in a single simulated execution;
* campaign orchestration, restart, and response classification
  (:mod:`repro.nvct.campaign`), reproducing the paper's S1-S4 taxonomy.
"""

from repro.nvct.heap import DataObject, PersistentHeap
from repro.nvct.managed import ManagedArray, ManagedScalar
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import Runtime, CountingRuntime, Snapshot
from repro.nvct.characterize import AppCharacter, characterize
from repro.nvct.adaptive import (
    StableCampaign,
    recomputability_interval,
    run_campaign_until_stable,
)
from repro.nvct.campaign import (
    CampaignConfig,
    CampaignResult,
    CrashTestRecord,
    Response,
    run_campaign,
)
from repro.nvct.parallel import classify_snapshots, resolve_jobs, run_campaigns

__all__ = [
    "DataObject",
    "PersistentHeap",
    "ManagedArray",
    "ManagedScalar",
    "PersistencePlan",
    "Runtime",
    "CountingRuntime",
    "Snapshot",
    "AppCharacter",
    "characterize",
    "StableCampaign",
    "recomputability_interval",
    "run_campaign_until_stable",
    "CampaignConfig",
    "CampaignResult",
    "CrashTestRecord",
    "Response",
    "run_campaign",
    "classify_snapshots",
    "resolve_jobs",
    "run_campaigns",
]

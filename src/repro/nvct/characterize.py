"""Application characterization (the paper's Sec. 2.2 / Table 1 survey).

Profiles an application's data objects — sizes, read/write ratios,
regions touched, candidacy — from a fast counting run.  This is the
object-level view the paper's survey of 51 HPC applications relies on
("major memory footprint and most important data objects are heap and
global ones") and the source of Table 1's per-benchmark columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.nvct.runtime import CountingRuntime
from repro.util.tables import render_table

if TYPE_CHECKING:  # avoid a circular import (apps depend on nvct)
    from repro.apps.base import AppFactory

__all__ = ["ObjectCharacter", "AppCharacter", "characterize"]


@dataclass(frozen=True)
class ObjectCharacter:
    """One data object's profile."""

    name: str
    nbytes: int
    candidate: bool
    readonly: bool
    reads: int
    writes: int
    regions: tuple[str, ...]

    @property
    def rw_ratio(self) -> float:
        return self.reads / max(1, self.writes)


@dataclass
class AppCharacter:
    """A whole application's profile."""

    app: str
    footprint_bytes: int
    candidate_bytes: int
    total_accesses: int
    regions: tuple[str, ...]
    objects: tuple[ObjectCharacter, ...]
    iterations: int

    @property
    def rw_ratio(self) -> float:
        reads = sum(o.reads for o in self.objects)
        writes = sum(o.writes for o in self.objects)
        return reads / max(1, writes)

    def render(self) -> str:
        rows = []
        for o in sorted(self.objects, key=lambda x: -x.nbytes):
            kind = "read-only" if o.readonly else ("candidate" if o.candidate else "temp")
            rows.append(
                [
                    o.name,
                    f"{o.nbytes / 1024:.1f}KB",
                    kind,
                    o.reads,
                    o.writes,
                    f"{o.rw_ratio:.1f}:1",
                    ",".join(r for r in o.regions if not r.startswith("__")) or "-",
                ]
            )
        table = render_table(
            ["Object", "Size", "Kind", "Read blocks", "Write blocks", "R/W", "Regions"],
            rows,
            title=(
                f"{self.app}: footprint {self.footprint_bytes / 1024:.0f}KB, "
                f"{len(self.regions)} regions, {self.iterations} iterations, "
                f"R/W {self.rw_ratio:.1f}:1"
            ),
        )
        return table


def characterize(factory: AppFactory) -> AppCharacter:
    """Profile one application with a counting run (no cache simulation)."""
    rt = CountingRuntime()
    app = factory.make(runtime=rt)
    result = app.run()
    objects = []
    for obj in app.ws.heap.objects.values():
        prof = rt.object_profile.get(obj.name)
        objects.append(
            ObjectCharacter(
                name=obj.name,
                nbytes=obj.nbytes,
                candidate=obj.candidate,
                readonly=obj.readonly,
                reads=prof.reads if prof else 0,
                writes=prof.writes if prof else 0,
                regions=tuple(sorted(prof.regions)) if prof else (),
            )
        )
    return AppCharacter(
        app=factory.name,
        footprint_bytes=app.ws.heap.footprint_bytes(),
        candidate_bytes=app.ws.heap.candidate_bytes(),
        total_accesses=rt.counter,
        regions=factory.regions,
        objects=tuple(objects),
        iterations=result.iterations,
    )

"""Managed data objects: the application-facing instrumentation API.

Applications allocate their heap/global data objects through a
:class:`Workspace` and perform every read/write of those objects through
:class:`ManagedArray` / :class:`ManagedScalar`.  With an attached runtime,
each operation drives the cache simulation at block granularity; without
one (plain runs, restarts) the operations are thin NumPy passthroughs, so
the same application code serves both modes.

This substitutes for the paper's PIN instrumentation of native binaries:
what the study needs is the block-granular stream of loads and stores to
the persistent data objects, which these wrappers deliver exactly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.memsim.blocks import BLOCK_SIZE
from repro.nvct.heap import DataObject, PersistentHeap
from repro.nvct.runtime import CountingRuntime

__all__ = ["ManagedArray", "ManagedScalar", "Workspace"]

try:  # NumPy >= 2.0
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - NumPy 1.x
    from numpy import byte_bounds as _byte_bounds  # type: ignore[attr-defined]


class ManagedArray:
    """NumPy-array-like handle whose accesses are (optionally) simulated."""

    __slots__ = ("obj", "_rt", "_base_ptr")

    def __init__(self, obj: DataObject, runtime: CountingRuntime | None):
        self.obj = obj
        self._rt = runtime
        self._base_ptr = _byte_bounds(obj.data)[0]

    # -- plain views ----------------------------------------------------------

    @property
    def np(self) -> np.ndarray:
        """Raw architectural array (reads through it are *not* recorded)."""
        return self.obj.data

    @property
    def shape(self) -> tuple[int, ...]:
        return self.obj.shape

    @property
    def dtype(self) -> np.dtype:
        return self.obj.dtype

    @property
    def size(self) -> int:
        return self.obj.data.size

    @property
    def name(self) -> str:
        return self.obj.name

    # -- span computation ----------------------------------------------------------

    def _span(self, view: np.ndarray) -> tuple[int, int, bool]:
        lo, hi = _byte_bounds(view)
        byte_lo = lo - self._base_ptr
        byte_hi = hi - self._base_ptr
        contiguous = bool(view.flags["C_CONTIGUOUS"]) and (hi - lo == view.nbytes)
        return byte_lo, byte_hi, contiguous

    # -- recorded operations ----------------------------------------------------------

    def read(self, key: object = slice(None)) -> np.ndarray:
        """Load the selected region (records read accesses), return a view.

        For strided selections the recorded span covers the bounding byte
        range — the realistic behaviour for sub-block strides, a mild
        overcount for block-skipping strides.
        """
        view = self.obj.data[key]
        if self._rt is not None and isinstance(view, np.ndarray):
            byte_lo, byte_hi, _ = self._span(view)
            self._rt.load_range(self.obj, byte_lo, byte_hi)
        elif self._rt is not None:
            # Scalar element read: one block.
            flat = int(np.ravel_multi_index(key, self.obj.shape)) if isinstance(key, tuple) else int(key)
            b = flat * self.obj.dtype.itemsize
            self._rt.load_range(self.obj, b, b + self.obj.dtype.itemsize)
        return view

    def write(self, key: object, value: object) -> None:
        """Store ``value`` into the selected region (records write accesses).

        Contiguous stores split exactly at crash points; non-contiguous
        stores are atomic with respect to crashes.
        """
        if self._rt is None:
            self.obj.data[key] = value
            return
        view = self.obj.data[key]
        if not isinstance(view, np.ndarray) or view.ndim == 0:
            # Single-element store: one (sub-)block contiguous store.
            byte_lo, byte_hi, _ = self._elem_span(key)

            def elem_assign() -> None:
                self.obj.data[key] = value

            def elem_src() -> np.ndarray:
                out = np.empty((1,), dtype=self.obj.dtype)
                out[0] = value
                return out.view(np.uint8)

            self._rt.store_range(self.obj, byte_lo, byte_hi, elem_assign, elem_src)
            return
        byte_lo, byte_hi, contiguous = self._span(view)

        def fast_assign() -> None:
            self.obj.data[key] = value

        if contiguous:

            def make_src() -> np.ndarray:
                out = np.empty(view.shape, dtype=self.obj.dtype)
                out[...] = value
                return out.reshape(-1).view(np.uint8)

            self._rt.store_range(self.obj, byte_lo, byte_hi, fast_assign, make_src)
        else:
            self._rt.store_range(self.obj, byte_lo, byte_hi, fast_assign, None)

    def _elem_span(self, key: object) -> tuple[int, int, bool]:
        flat = int(np.ravel_multi_index(key, self.obj.shape)) if isinstance(key, tuple) else int(key)
        b = flat * self.obj.dtype.itemsize
        return b, b + self.obj.dtype.itemsize, True

    def update(self, key: object, fn: Callable[[np.ndarray], None]) -> None:
        """Apply an in-place operation ``fn(view)`` to the selected region,
        recording it as a store (read-modify-write kernels: ``+=`` etc.)."""
        view = self.obj.data[key]
        if self._rt is None:
            fn(view)
            return
        byte_lo, byte_hi, contiguous = self._span(view)

        def fast_assign() -> None:
            fn(view)

        if contiguous:

            def make_src() -> np.ndarray:
                tmp = view.copy()
                fn(tmp)
                return tmp.reshape(-1).view(np.uint8)

            self._rt.store_range(self.obj, byte_lo, byte_hi, fast_assign, make_src)
        else:
            self._rt.store_range(self.obj, byte_lo, byte_hi, fast_assign, None)

    # -- gather / scatter ----------------------------------------------------------

    def _blocks_of_flat(self, flat_idx: np.ndarray) -> np.ndarray:
        byte_off = flat_idx.astype(np.int64) * self.obj.dtype.itemsize
        return self.obj.base_block + byte_off // BLOCK_SIZE

    def read_at(self, flat_idx: np.ndarray) -> np.ndarray:
        """Gather elements by flat index (records one access per element's
        block; atomic wrt crash points)."""
        idx = np.asarray(flat_idx, dtype=np.int64)
        if self._rt is not None:
            self._rt.access_scattered(self.obj, self._blocks_of_flat(idx), write=False)
        return self.obj.data.reshape(-1)[idx]

    def write_at(
        self, flat_idx: np.ndarray, values: np.ndarray, nontemporal: bool = False
    ) -> None:
        """Scatter elements by flat index (atomic wrt crash points).

        With ``nontemporal=True`` the stores bypass the cache and land
        directly in NVM, like x86 streaming stores (MOVNT).
        """
        idx = np.asarray(flat_idx, dtype=np.int64)
        flat = self.obj.data.reshape(-1)
        if self._rt is None:
            flat[idx] = values
            return
        self._rt.access_scattered(
            self.obj,
            self._blocks_of_flat(idx),
            write=True,
            apply_op=lambda: flat.__setitem__(idx, values),
            nontemporal=nontemporal,
        )

    # -- persistence ----------------------------------------------------------

    def persist(self) -> None:
        """Flush every cache block of this object (manual persistence op)."""
        if self._rt is not None:
            self._rt.persist_object(self.obj)


class ManagedScalar:
    """A single managed value (loop iterators, counters, tiny state)."""

    __slots__ = ("arr",)

    def __init__(self, obj: DataObject, runtime: CountingRuntime | None):
        self.arr = ManagedArray(obj, runtime)

    @property
    def name(self) -> str:
        return self.arr.name

    def peek(self) -> object:
        """Unrecorded read (architectural value)."""
        return self.arr.np[0]

    def get(self) -> object:
        return self.arr.read(slice(0, 1))[0]

    def set(self, value: object) -> None:
        self.arr.write(slice(0, 1), value)

    def persist(self) -> None:
        self.arr.persist()


class Workspace:
    """Application-side facade over the heap, runtime and structure hooks.

    All hooks degrade to no-ops without a runtime, so application code is
    identical in instrumented, profiling and plain (restart) runs.
    """

    def __init__(self, runtime: CountingRuntime | None = None):
        self.heap = PersistentHeap(
            track_write_counts=bool(getattr(runtime, "track_write_counts", False))
        )
        self.runtime = runtime
        if runtime is not None:
            runtime.attach_heap(self.heap)

    # -- allocation ----------------------------------------------------------

    def array(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        *,
        candidate: bool = True,
        readonly: bool = False,
    ) -> ManagedArray:
        obj = self.heap.allocate(
            name, shape, dtype, candidate=candidate, readonly=readonly
        )
        return ManagedArray(obj, self.runtime)

    def scalar(
        self,
        name: str,
        init: object = 0,
        dtype: np.dtype | type = np.int64,
        *,
        candidate: bool = True,
        role: str = "data",
    ) -> ManagedScalar:
        obj = self.heap.allocate(
            name, (1,), dtype, candidate=candidate and role == "data", role=role
        )
        obj.data[0] = init
        return ManagedScalar(obj, self.runtime)

    def iterator(self, name: str = "it", init: int = 0) -> ManagedScalar:
        """The always-persisted loop iterator (paper footnote 3)."""
        return self.scalar(name, init=init, role="iterator", candidate=False)

    # -- structure hooks ----------------------------------------------------------

    def main_loop_begin(self) -> None:
        if self.runtime is not None:
            self.runtime.main_loop_begin()

    def main_loop_end(self) -> None:
        if self.runtime is not None:
            self.runtime.main_loop_end()

    def begin_iteration(self, it: int) -> None:
        if self.runtime is not None:
            self.runtime.begin_iteration(it)

    def end_iteration(self) -> None:
        if self.runtime is not None:
            self.runtime.end_iteration()

    @contextmanager
    def region(self, rid: str) -> Iterator[None]:
        if self.runtime is not None:
            self.runtime.region_begin(rid)
        try:
            yield
        finally:
            if self.runtime is not None:
                self.runtime.region_end(rid)

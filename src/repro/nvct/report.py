"""Plain-text postmortem reports for crash campaigns.

NVCT's analysis side: summarize a campaign's response mix, per-region
breakdown, and per-object inconsistency statistics the way the paper's
Sec. 4 characterization tables do.
"""

from __future__ import annotations

import numpy as np

from repro.nvct.campaign import CampaignResult, Response
from repro.util.tables import render_table

__all__ = ["campaign_summary", "region_breakdown", "object_inconsistency_table"]


def campaign_summary(result: CampaignResult) -> str:
    """One-paragraph summary: recomputability and response fractions."""
    fr = result.response_fractions()
    lines = [
        f"Campaign: {result.app} ({result.n_tests} crash tests, "
        f"plan active: {result.plan.is_active})",
        f"  recomputability (S1): {result.recomputability():.1%}",
    ]
    for resp in Response:
        if resp is Response.FAILED and fr[resp] == 0.0:
            continue  # harness quarantine: only worth a line when nonzero
        lines.append(f"  {resp.name} {resp.value}: {fr[resp]:.1%}")
    extra = result.mean_extra_iterations()
    if not np.isnan(extra):
        lines.append(f"  mean extra iterations among S2: {extra:.1f}")
    return "\n".join(lines)


def region_breakdown(result: CampaignResult) -> str:
    """Per-region table: time share, crash count, recomputability."""
    shares = result.region_time_shares()
    per_region = result.per_region_recomputability()
    counts: dict[str, int] = {}
    for rec in result.records:
        counts[rec.region] = counts.get(rec.region, 0) + 1
    rows = []
    for region in sorted(set(shares) | set(per_region)):
        if region.startswith("__") and shares.get(region, 0.0) == 0.0:
            continue
        rows.append(
            [
                region,
                shares.get(region, 0.0),
                counts.get(region, 0),
                per_region.get(region, float("nan")),
            ]
        )
    return render_table(
        ["Region", "Time share (a_k)", "Crashes", "Recomputability (c_k)"],
        rows,
        title=f"{result.app}: per-region breakdown",
    )


def object_inconsistency_table(result: CampaignResult) -> str:
    """Per-object inconsistent-rate statistics across the campaign."""
    rows = []
    success = result.success_vector().astype(bool)
    for name, rates in sorted(result.object_rate_vectors().items()):
        ok = rates[success] if success.any() else np.array([np.nan])
        bad = rates[~success] if (~success).any() else np.array([np.nan])
        rows.append(
            [name, float(np.mean(rates)), float(np.median(rates)),
             float(np.mean(ok)), float(np.mean(bad))]
        )
    return render_table(
        ["Object", "Mean rate", "Median rate", "Mean | success", "Mean | failure"],
        rows,
        title=f"{result.app}: data inconsistent rates",
    )

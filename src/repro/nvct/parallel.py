"""Parallel campaign execution: fan classification out over worker processes.

A campaign's cost splits into one instrumented execution (inherently
serial: the access counter is a single global clock) and ``n_tests``
restart-and-classify runs that are embarrassingly parallel — each test
restarts a fresh plain-mode application from one snapshot and never
touches shared state.  This module exploits that shape at two levels:

* :func:`classify_snapshots` — fan the classification phase of one
  campaign out over ``jobs`` worker processes.  Snapshots are shipped as
  packed payloads (:mod:`repro.nvct.serialize`) in deterministic,
  crash-point-ordered chunks and the per-chunk records are merged back in
  chunk order, so a parallel campaign is *bit-identical* to a serial one
  under the same seed.
* :func:`run_campaigns` — an application-level parallel map running whole
  independent ``(factory, config)`` campaigns in separate workers (the 11
  benchmark workloads of a harness session are independent).

Workers are plain ``multiprocessing.Pool`` processes with
``maxtasksperchild`` recycling (long campaigns keep worker memory flat).
Every pool-level failure — a worker crash, an unpicklable factory, a
chunk exceeding ``chunk_timeout`` — degrades gracefully: the remaining
work is computed serially in the parent, so parallelism is strictly an
optimization and never changes results or raises new errors.

``REPRO_JOBS`` (or ``--jobs`` on the CLI) selects the worker count;
``0`` means one worker per CPU, unset/``1`` means serial.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs import registry

__all__ = [
    "resolve_jobs",
    "chunk_indices",
    "SnapshotSource",
    "as_snapshot_source",
    "classify_snapshots",
    "run_campaigns",
    "DEFAULT_CHUNK_TIMEOUT",
]

if TYPE_CHECKING:  # avoid import cycles at runtime
    from repro.apps.base import AppFactory
    from repro.harness.resilience import RetryPolicy
    from repro.nvct.campaign import CampaignConfig, CampaignResult, CrashTestRecord
    from repro.nvct.runtime import Snapshot

#: Seconds one chunk (or one whole campaign, in :func:`run_campaigns`) may
#: take before the engine abandons the pool and falls back to serial.
DEFAULT_CHUNK_TIMEOUT = 600.0

#: Tasks a worker serves before being replaced (bounds leaked memory).
MAX_TASKS_PER_CHILD = 32

#: Snapshots materialized per batch when the parent classifies serially
#: from a lazy source (bounds peak memory to a few images).
_SERIAL_BATCH = 64


class SnapshotSource:
    """List-backed snapshot provider (the snapshot-source protocol).

    The classification engine only ever asks for contiguous ascending
    ranges via ``get(lo, hi)`` plus ``len()``.  Lazy providers — the
    golden-pass :class:`~repro.memsim.golden.GoldenSnapshotSource`, which
    materializes crash images from write-back deltas on demand — implement
    the same two methods instead of holding N full images in memory.
    """

    def __init__(self, snapshots: Sequence["Snapshot"]) -> None:
        self._snaps = list(snapshots)

    def __len__(self) -> int:
        return len(self._snaps)

    def get(self, lo: int, hi: int) -> list["Snapshot"]:
        return self._snaps[lo:hi]


def as_snapshot_source(snapshots) -> "SnapshotSource":
    """Wrap a plain sequence; pass lazy sources (``get``/``len``) through."""
    if hasattr(snapshots, "get") and hasattr(snapshots, "__len__") and not isinstance(
        snapshots, (list, tuple)
    ):
        return snapshots
    return SnapshotSource(snapshots)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else serial.

    ``0`` (argument or environment) means "all CPUs"; anything below
    zero or unparsable degrades to serial.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def chunk_indices(n_items: int, jobs: int) -> list[tuple[int, int]]:
    """Deterministic contiguous ``[lo, hi)`` chunks covering ``n_items``.

    Chunks are sized so each worker gets ~4 of them (cheap dynamic load
    balancing) while staying purely a function of ``(n_items, jobs)`` —
    the merge order, and therefore the record order, never depends on
    scheduling.
    """
    if n_items <= 0:
        return []
    chunk = max(1, math.ceil(n_items / (jobs * 4)))
    return [(lo, min(lo + chunk, n_items)) for lo in range(0, n_items, chunk)]


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (cheap, inherits the warmed golden-run cache) when available;
    # the platform default otherwise.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# -- classification fan-out ---------------------------------------------------
#
# Worker state is installed once per worker by the pool initializer; chunk
# tasks then only carry packed snapshots.

_worker_state: dict | None = None


def _classify_worker_init(factory, golden_iterations, cfg) -> None:
    global _worker_state
    _worker_state = {
        "factory": factory,
        "golden_iterations": golden_iterations,
        "cfg": cfg,
    }


def _classify_chunk(task: tuple[int, list[dict]]):
    from repro.harness.chaos import injector as chaos_injector
    from repro.nvct.campaign import _classify_trial
    from repro.nvct.serialize import unpack_snapshot

    assert _worker_state is not None
    index, packed = task
    if (ch := chaos_injector()) is not None:
        ch.maybe_kill("parallel.worker")
    st = _worker_state
    records = []
    for p in packed:
        # unpack outside the quarantine: a corrupt *payload*
        # (SnapshotCorruptError) must fail the whole chunk so the parent
        # retries / reclassifies from its pristine snapshot, while a
        # poison *trial* is quarantined as a FAILED record right here.
        snap = unpack_snapshot(p)
        records.append(
            _classify_trial(st["factory"], snap, st["golden_iterations"], st["cfg"])
        )
    return index, records


def classify_snapshots(
    factory: "AppFactory",
    snapshots: "Sequence[Snapshot] | SnapshotSource",
    golden_iterations: int,
    cfg: "CampaignConfig",
    jobs: int | None = None,
    chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT,
    retry: "RetryPolicy | None" = None,
    record_sink: "Callable[[int, CrashTestRecord], None] | None" = None,
) -> list["CrashTestRecord"]:
    """Classify every snapshot, fanning out over ``jobs`` processes.

    ``snapshots`` is a plain sequence or any snapshot source
    (``get``/``len`` protocol, see :class:`SnapshotSource`) — the golden
    engine passes a lazy source that reconstructs crash images from
    write-back deltas per requested range, both for chunk payload packing
    and for the pristine serial fallback.

    Bit-identical to the serial ``[_classify(...) for snap in snapshots]``
    under any job count: classification is pure (plain-mode restart, no
    shared state, no RNG) and records are merged in crash-point order.

    Failure handling is layered: a failed or timed-out chunk is
    resubmitted under ``retry`` (exponential backoff, seeded jitter); a
    :class:`~repro.harness.resilience.CircuitBreaker` trips after
    repeated consecutive failures and degrades the rest of the fan-out to
    serial execution in the parent; any chunk still missing at the end is
    classified in-process.  Parallelism stays strictly an optimization —
    it never changes results or raises new errors.

    ``record_sink(index, record)`` is invoked for every record as soon as
    its chunk lands (journaling hook); indices are positions in
    ``snapshots``.
    """
    import time

    from repro.harness.chaos import WORKER_DEATH_TIMEOUT
    from repro.harness.chaos import injector as chaos_injector
    from repro.harness.resilience import CircuitBreaker, RetryPolicy
    from repro.nvct.campaign import _classify_trial
    from repro.nvct.serialize import pack_snapshot

    jobs = resolve_jobs(jobs)
    source = as_snapshot_source(snapshots)
    n_snaps = len(source)

    def classify_serial(lo: int, hi: int) -> list:
        out = []
        for start in range(lo, hi, _SERIAL_BATCH):
            stop = min(start + _SERIAL_BATCH, hi)
            for offset, snap in enumerate(source.get(start, stop)):
                rec = _classify_trial(factory, snap, golden_iterations, cfg)
                if record_sink is not None:
                    record_sink(start + offset, rec)
                out.append(rec)
        return out

    if jobs <= 1 or n_snaps < 2:
        return classify_serial(0, n_snaps)

    if retry is None:
        retry = RetryPolicy()
    breaker = CircuitBreaker()
    if (ch := chaos_injector()) is not None and "worker_death" in ch.kinds:
        # A killed worker never posts its result; the chunk timeout is the
        # detection latency, so clamp it to keep fault-injection runs fast.
        chunk_timeout = min(chunk_timeout, WORKER_DEATH_TIMEOUT)

    factory.golden()  # warm before fork so workers inherit it
    chunks = chunk_indices(n_snaps, jobs)
    payloads = [
        (ci, [pack_snapshot(s) for s in source.get(lo, hi)])
        for ci, (lo, hi) in enumerate(chunks)
    ]
    done: dict[int, list] = {}
    retries = 0
    try:
        with _pool_context().Pool(
            processes=min(jobs, len(chunks)),
            initializer=_classify_worker_init,
            initargs=(factory, golden_iterations, cfg),
            maxtasksperchild=MAX_TASKS_PER_CHILD,
        ) as pool:
            pending = {
                ci: pool.apply_async(_classify_chunk, (payloads[ci],))
                for ci in range(len(chunks))
            }
            for ci in range(len(chunks)):
                if not breaker.allow():
                    break  # degraded to serial: the parent finishes the rest
                attempt = 0
                while True:
                    try:
                        index, records = pending[ci].get(timeout=chunk_timeout)
                    except Exception:
                        tripped = breaker.record_failure()
                        if tripped or attempt >= retry.max_retries:
                            break
                        retries += 1
                        if (reg := registry()) is not None:
                            reg.counter("resilience.retries", unit="retries").inc()
                        time.sleep(retry.delay(f"chunk-{ci}", attempt))
                        attempt += 1
                        pending[ci] = pool.apply_async(_classify_chunk, (payloads[ci],))
                        continue
                    done[index] = records
                    breaker.record_success()
                    if record_sink is not None:
                        lo, _hi = chunks[index]
                        for offset, rec in enumerate(records):
                            record_sink(lo + offset, rec)
                    break
    except Exception:
        pass  # pool-level failure: serial recovery below fills the gaps
    out: list = []
    for ci, (lo, hi) in enumerate(chunks):
        if ci in done:
            out.extend(done[ci])
        else:
            out.extend(classify_serial(lo, hi))
    if (reg := registry()) is not None:
        # Pool utilisation: how much of the fan-out actually ran in
        # workers vs. fell back to serial recovery in the parent.
        reg.gauge("parallel.jobs", unit="workers").set(jobs)
        reg.counter("parallel.chunks_total", unit="chunks").inc(len(chunks))
        reg.counter("parallel.chunks_parallel", unit="chunks").inc(len(done))
        reg.counter("parallel.chunks_serial_fallback", unit="chunks").inc(
            len(chunks) - len(done)
        )
        reg.counter("parallel.chunk_retries", unit="retries").inc(retries)
        if chunks:
            reg.gauge("parallel.pool_utilization", unit="ratio").set(
                len(done) / len(chunks)
            )
    return out


# -- application-level campaign map -------------------------------------------


def _campaign_task(task):
    from repro.nvct.campaign import run_campaign

    index, factory, cfg = task
    # jobs=1: pool workers are daemonic and must not nest their own pools.
    return index, run_campaign(factory, cfg, jobs=1)


def run_campaigns(
    specs: Sequence[tuple["AppFactory", "CampaignConfig"]],
    jobs: int | None = None,
    timeout: float = DEFAULT_CHUNK_TIMEOUT,
) -> list["CampaignResult"]:
    """Run independent campaigns concurrently; results in ``specs`` order.

    Each worker runs one whole campaign (instrumented execution +
    serial classification) — the right granularity when a session needs
    campaigns for many applications.  Campaigns that fail to come back
    from the pool (timeout, unpicklable factory, worker crash) are rerun
    serially in the parent.
    """
    from repro.nvct.campaign import run_campaign

    jobs = resolve_jobs(jobs)
    specs = list(specs)
    if jobs <= 1 or len(specs) < 2:
        return [run_campaign(f, c) for f, c in specs]

    for factory, _ in specs:
        factory.golden()
    done: dict[int, "CampaignResult"] = {}
    try:
        with _pool_context().Pool(
            processes=min(jobs, len(specs)),
            maxtasksperchild=MAX_TASKS_PER_CHILD,
        ) as pool:
            pending = [
                pool.apply_async(_campaign_task, ((i, f, c),))
                for i, (f, c) in enumerate(specs)
            ]
            for res in pending:
                # Per-campaign isolation: one failed/timed-out campaign is
                # rerun serially below without discarding the others.
                try:
                    index, result = res.get(timeout=timeout)
                except Exception:
                    continue
                done[index] = result
    except Exception:
        pass
    if (reg := registry()) is not None:
        reg.gauge("parallel.jobs", unit="workers").set(jobs)
        reg.counter("parallel.campaigns_total", unit="campaigns").inc(len(specs))
        reg.counter("parallel.campaigns_parallel", unit="campaigns").inc(len(done))
        reg.counter("parallel.campaigns_serial_fallback", unit="campaigns").inc(
            len(specs) - len(done)
        )
    return [
        done[i] if i in done else run_campaign(f, c)
        for i, (f, c) in enumerate(specs)
    ]

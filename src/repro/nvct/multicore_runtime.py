"""Multi-core instrumented runtime (extension).

The paper evaluates single- and multi-threaded configurations and reports
the same conclusions.  This runtime routes managed-array accesses through
a :class:`~repro.memsim.multicore.MulticoreHierarchy` (per-core L1s over a
shared LLC with MESI-lite coherence).  Applications express data
parallelism with :meth:`on_core` / :meth:`parallel_chunks`: work inside
the scope is attributed to one simulated core, so per-core private caches
see only that core's shard of the traffic.

The simulation serializes the cores' accesses in program order (a legal
interleaving of a fork-join data-parallel execution); the crash-point
counter spans all cores, so a crash can strike any core's shard mid-way —
and, as on real hardware, loses *every* core's unflushed dirty lines.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.memsim.config import CacheLevelConfig
from repro.memsim.multicore import MulticoreHierarchy
from repro.nvct.heap import PersistentHeap
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import Runtime

__all__ = ["MulticoreRuntime"]


class MulticoreRuntime(Runtime):
    """Runtime over a coherent multi-core cache model."""

    def __init__(
        self,
        n_cores: int = 4,
        l1: CacheLevelConfig | None = None,
        llc: CacheLevelConfig | None = None,
        plan: PersistencePlan | None = None,
        crash_points: np.ndarray | list[int] | None = None,
        capture_consistent: bool = False,
    ) -> None:
        super().__init__(
            hierarchy=None,
            plan=plan,
            crash_points=crash_points,
            capture_consistent=capture_consistent,
        )
        if n_cores < 1:
            raise ConfigError("need at least one core")
        self.n_cores = n_cores
        self._l1_cfg = l1 or CacheLevelConfig("L1", 32 * 1024, 8)
        self._llc_cfg = llc or CacheLevelConfig("LLC", 640 * 1024, 10)
        self.current_core = 0

    # -- wiring -----------------------------------------------------------------

    def attach_heap(self, heap: PersistentHeap) -> None:
        self.heap = heap
        self.hierarchy = MulticoreHierarchy(  # type: ignore[assignment]
            self.n_cores, self._l1_cfg, self._llc_cfg, writeback_sink=heap.writeback_blocks
        )

    # -- core scoping -------------------------------------------------------------

    @contextmanager
    def on_core(self, core: int) -> Iterator[None]:
        """Attribute accesses inside the scope to ``core``."""
        if not 0 <= core < self.n_cores:
            raise ConfigError(f"core {core} out of range")
        prev = self.current_core
        self.current_core = core
        try:
            yield
        finally:
            self.current_core = prev

    def parallel_chunks(self, n_items: int) -> list[tuple[int, slice]]:
        """Static (OpenMP-style) partition of ``n_items`` across cores:
        returns ``(core, slice)`` pairs in execution order."""
        bounds = np.linspace(0, n_items, self.n_cores + 1).astype(int)
        return [
            (c, slice(int(bounds[c]), int(bounds[c + 1])))
            for c in range(self.n_cores)
            if bounds[c + 1] > bounds[c]
        ]

    # -- access primitives ---------------------------------------------------------

    def _do_access(self, b0: int, b1: int, write: bool) -> None:
        self.hierarchy.access(self.current_core, b0, b1, write)

    def _do_access_blocks(self, blocks: np.ndarray, write: bool) -> None:
        self.hierarchy.access_blocks(self.current_core, blocks, write)

    def _do_nt_store(self, blocks: np.ndarray) -> None:
        self.hierarchy.store_nontemporal(blocks)

    def _do_flush(self, b0: int, b1: int, invalidate: bool) -> tuple[int, int]:
        return self.hierarchy.flush(b0, b1, invalidate=invalidate)

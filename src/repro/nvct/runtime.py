"""Instrumented runtime: access counting, crash snapshots, plan execution.

The runtime is the glue between applications (issuing loads/stores via
managed arrays), the cache hierarchy, and the crash-test campaign:

* every load/store advances a global *access counter* (one tick per cache
  block touched), which is the axis along which crash points are drawn —
  the paper's "stop after a randomly selected instruction" with a uniform
  distribution;
* when the counter crosses a scheduled crash point *inside* a bulk store,
  the store is split at the exact block boundary: only the prefix is
  applied to architectural state and simulated, then the NVM image is
  snapshotted, then the remainder proceeds — so a snapshot is exactly the
  machine state after a prefix of the access stream;
* persistence plans are executed at region/iteration boundaries by
  flushing the critical objects' cache blocks (CLWB/CLFLUSHOPT semantics).

A single simulated execution therefore yields every crash test of a
campaign (snapshots at all sorted crash points) plus the no-crash event
counts used by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.obs.metrics import MetricRegistry

from repro.memsim.blocks import BLOCK_SIZE
from repro.memsim.config import HierarchyConfig
from repro.memsim.hierarchy import CacheHierarchy
from repro.nvct.heap import DataObject, PersistentHeap
from repro.nvct.plan import PersistencePlan

__all__ = ["Snapshot", "PersistEvent", "RuntimeEvent", "Runtime", "CountingRuntime"]

INIT_REGION = "__init__"
MAIN_REGION = "__main__"  # main-loop code not inside an explicit region


@dataclass
class Snapshot:
    """State captured at one crash point."""

    index: int
    counter: int
    iteration: int
    region: str
    nvm_state: dict[str, np.ndarray]
    rates: dict[str, float]
    consistent_state: dict[str, np.ndarray] | None = None


@dataclass
class PersistEvent:
    """One persistence operation (a group of cache-block flushes)."""

    region: str
    iteration: int
    blocks_issued: int
    dirty_written: int
    clean_resident: int = 0  # flushed lines that were cached but clean


@dataclass(frozen=True)
class RuntimeEvent:
    """One entry of the runtime's observable event stream.

    The stream is consumed by external validators (``repro.analysis``);
    emission is skipped entirely unless a listener is attached, so the
    hook surface costs nothing in campaigns.

    Kinds: ``store`` (a recorded write, block granularity), ``region_end``
    (with its 1-based execution count, emitted *before* any plan flush at
    that boundary), ``iteration_end`` (likewise before the plan flush),
    and ``persist`` (one object's commit-point flush; ``scheduled`` marks
    plan-driven flushes vs. manual/iterator persists).
    """

    kind: str
    region: str
    iteration: int
    obj: str | None = None
    blocks: int = 0  # store: blocks written; persist: flushes issued
    dirty: int = 0  # persist: dirty blocks written back
    remaining_dirty: int = 0  # persist: object blocks still dirty after it
    exec_count: int = 0  # region_end: 1-based execution count
    scheduled: bool = False  # persist: part of a plan flush group


@dataclass
class RegionProfile:
    """Per-region accounting collected during an instrumented run."""

    accesses: int = 0
    executions: int = 0


@dataclass
class ObjectProfile:
    """Per-data-object access accounting (block granularity)."""

    reads: int = 0
    writes: int = 0
    regions: set[str] = field(default_factory=set)

    @property
    def rw_ratio(self) -> float:
        return self.reads / max(1, self.writes)


class CountingRuntime:
    """Minimal runtime: advances the access counter without cache
    simulation.  Used for the fast profiling pass that measures the total
    access count and the main-loop crash window."""

    simulate = False
    #: When set before the application allocates, the heap keeps per-block
    #: NVM write counters for endurance analysis (repro.perf.endurance).
    track_write_counts = False

    def __init__(self) -> None:
        self.counter = 0
        self.window_begin: int | None = None
        self.plan = PersistencePlan.none()
        self.current_region = INIT_REGION
        self.iteration = 0
        self.region_profile: dict[str, RegionProfile] = {}
        self.object_profile: dict[str, ObjectProfile] = {}
        self._iterations_seen = 0
        self._listeners: list[Callable[[RuntimeEvent], None]] = []

    # -- event hook surface ------------------------------------------------------

    def add_listener(self, listener: Callable[[RuntimeEvent], None]) -> None:
        """Subscribe to the runtime's event stream (see RuntimeEvent)."""
        self._listeners.append(listener)

    def _emit(self, event: RuntimeEvent) -> None:
        for listener in self._listeners:
            listener(event)

    def publish_metrics(self, reg: "MetricRegistry") -> None:
        """Fold this run's aggregate accounting into the telemetry
        registry (``repro.obs``).  Called once at the end of a run by the
        campaign layer when telemetry is enabled — the access hot path is
        never touched."""
        reg.counter("runtime.accesses", unit="blocks").inc(self.counter)
        reg.counter("runtime.iterations", unit="iterations").inc(self._iterations_seen)
        region_hist = reg.histogram("runtime.region_accesses", unit="blocks")
        for rid, prof in self.region_profile.items():
            if not rid.startswith("__"):
                region_hist.observe(prof.accesses)

    def _tick_object(self, obj: DataObject, nblocks: int, write: bool) -> None:
        prof = self.object_profile.setdefault(obj.name, ObjectProfile())
        if write:
            prof.writes += nblocks
        else:
            prof.reads += nblocks
        prof.regions.add(self.current_region)
        if write and self._listeners:
            self._emit(
                RuntimeEvent(
                    "store", self.current_region, self.iteration,
                    obj=obj.name, blocks=nblocks,
                )
            )

    # -- structure hooks -------------------------------------------------------

    def attach_heap(self, heap: PersistentHeap) -> None:
        self.heap = heap

    def main_loop_begin(self) -> None:
        if self.window_begin is None:
            self.window_begin = self.counter
        self.current_region = MAIN_REGION

    def main_loop_end(self) -> None:
        self.current_region = INIT_REGION

    def begin_iteration(self, it: int) -> None:
        self.iteration = it

    def end_iteration(self) -> None:
        self._iterations_seen += 1
        if self._listeners:
            self._emit(
                RuntimeEvent(
                    "iteration_end", self.current_region, self.iteration,
                    exec_count=self._iterations_seen,
                )
            )

    def region_begin(self, rid: str) -> None:
        self.current_region = rid

    def region_end(self, rid: str) -> None:
        prof = self.region_profile.setdefault(rid, RegionProfile())
        prof.executions += 1
        if self._listeners:
            self._emit(
                RuntimeEvent(
                    "region_end", rid, self.iteration, exec_count=prof.executions
                )
            )
        self.current_region = MAIN_REGION

    # -- access hooks ------------------------------------------------------------

    def _tick(self, nblocks: int) -> None:
        self.counter += nblocks
        prof = self.region_profile.setdefault(self.current_region, RegionProfile())
        prof.accesses += nblocks

    def load_range(self, obj: DataObject, byte_lo: int, byte_hi: int) -> None:
        b0, b1 = obj.block_range_of_bytes(byte_lo, byte_hi)
        self._tick(b1 - b0)
        self._tick_object(obj, b1 - b0, write=False)

    def store_range(
        self,
        obj: DataObject,
        byte_lo: int,
        byte_hi: int,
        fast_assign: Callable[[], None],
        make_src: Callable[[], np.ndarray] | None,
    ) -> None:
        fast_assign()
        b0, b1 = obj.block_range_of_bytes(byte_lo, byte_hi)
        self._tick(b1 - b0)
        self._tick_object(obj, b1 - b0, write=True)

    def access_scattered(
        self,
        obj: DataObject,
        blocks: np.ndarray,
        write: bool,
        apply_op: Callable[[], None] | None = None,
        nontemporal: bool = False,
    ) -> None:
        if apply_op is not None:
            apply_op()
        self._tick(int(blocks.size))
        self._tick_object(obj, int(blocks.size), write=write)

    def persist_object(self, obj: DataObject) -> None:
        pass


class Runtime(CountingRuntime):
    """Full instrumented runtime with cache simulation and crash snapshots."""

    simulate = True

    def __init__(
        self,
        hierarchy: HierarchyConfig | None = None,
        plan: PersistencePlan | None = None,
        crash_points: np.ndarray | list[int] | None = None,
        capture_consistent: bool = False,
        golden: bool = False,
        crash_model: "str | None" = None,
        crash_seed: int = 0,
    ) -> None:
        super().__init__()
        self.hierarchy_config = hierarchy or HierarchyConfig.scaled_llc()
        self.plan = plan or PersistencePlan.none()
        pts = np.unique(np.asarray(crash_points if crash_points is not None else [], dtype=np.int64))
        self.crash_points = pts
        self._cp_i = 0
        self.capture_consistent = capture_consistent
        # Crash model (repro.memsim.crashmodel): None / the default keeps
        # the legacy whole-cache-loss path bit-identical and free — store
        # sequence numbers are only tracked for a non-default model with
        # crash points scheduled.
        self.crash_seed = int(crash_seed)
        self._crash_model = None
        if crash_model is not None and pts.size > 0:
            from repro.memsim.crashmodel import get_model

            model = get_model(crash_model)
            if not model.is_default:
                self._crash_model = model
        self._store_seq_arr: np.ndarray | None = None
        self._store_seq = 0
        # Golden mode: record write-back deltas instead of materializing a
        # full snapshot at every crash point (repro.memsim.golden).  The
        # verified methodology needs crash-time *architectural* copies,
        # which only full snapshots provide.
        self.golden = bool(golden) and pts.size > 0 and not capture_consistent
        self._golden_recorder = None
        self.snapshots: list[Snapshot] = []
        self.persist_events: list[PersistEvent] = []
        self.heap: PersistentHeap | None = None
        self.hierarchy: CacheHierarchy | None = None
        self._in_window = False

    # -- wiring ---------------------------------------------------------------

    def attach_heap(self, heap: PersistentHeap) -> None:
        self.heap = heap
        self.hierarchy = CacheHierarchy(self.hierarchy_config, writeback_sink=heap.writeback_blocks)
        if self.golden:
            from repro.memsim.golden import GoldenRecorder

            self._golden_recorder = GoldenRecorder(heap, n_images=int(self.crash_points.size))
            heap.set_delta_sink(self._golden_recorder.on_writeback)

    def _require(self) -> tuple[PersistentHeap, CacheHierarchy]:
        if self.heap is None or self.hierarchy is None:
            raise RuntimeError("runtime has no attached heap (allocate via Workspace)")
        return self.heap, self.hierarchy

    # -- access primitives (overridden by MulticoreRuntime) -------------------

    def _do_access(self, b0: int, b1: int, write: bool) -> None:
        self.hierarchy.access(b0, b1, write)

    def _do_access_blocks(self, blocks: np.ndarray, write: bool) -> None:
        self.hierarchy.access_blocks(blocks, write)

    def _do_nt_store(self, blocks: np.ndarray) -> None:
        self.hierarchy.store_nontemporal(blocks)

    def _do_flush(self, b0: int, b1: int, invalidate: bool) -> tuple[int, int]:
        return self.hierarchy.flush(b0, b1, invalidate=invalidate)

    # -- structure hooks --------------------------------------------------------

    def main_loop_begin(self) -> None:
        heap, _ = self._require()
        if self.window_begin is None:
            # Initialization data counts as persistent: a restart re-runs the
            # init phase anyway before loading candidates from NVM.
            for obj in heap.objects.values():
                obj.sync_nvm()
            self.window_begin = self.counter
            if self._golden_recorder is not None:
                self._golden_recorder.mark_base()
        self._in_window = True
        self.current_region = MAIN_REGION

    def main_loop_end(self) -> None:
        self._in_window = False
        self.current_region = INIT_REGION

    def end_iteration(self) -> None:
        """Called after the iterator store at the end of each main-loop
        iteration; executes iteration-granularity plan flushes."""
        heap, _ = self._require()
        self._iterations_seen += 1
        if self._listeners:
            self._emit(
                RuntimeEvent(
                    "iteration_end", self.current_region, self.iteration,
                    exec_count=self._iterations_seen,
                )
            )
        if (
            self.plan.at_iteration_end
            and self.plan.objects
            and self._iterations_seen % self.plan.iteration_frequency == 0
        ):
            self._persist_named(self.plan.objects)
        if self.plan.persist_iterator:
            it_obj = heap.iterator_object()
            if it_obj is not None:
                self.persist_object(it_obj)

    def region_end(self, rid: str) -> None:
        prof = self.region_profile.setdefault(rid, RegionProfile())
        prof.executions += 1
        if self._listeners:
            self._emit(
                RuntimeEvent(
                    "region_end", rid, self.iteration, exec_count=prof.executions
                )
            )
        if self.plan.flushes_at(rid, prof.executions) and self.plan.objects:
            self._persist_named(self.plan.objects)
        self.current_region = MAIN_REGION

    # -- persistence --------------------------------------------------------------

    def _persist_named(self, names: tuple[str, ...]) -> None:
        heap, hier = self._require()
        issued = 0
        dirty = 0
        clean_before = hier.llc.stats.flush_clean_hits
        for name in names:
            obj = heap.objects[name]
            i, d = self._do_flush(obj.base_block, obj.end_block, self.plan.invalidate)
            issued += i
            dirty += d
            if self._listeners:
                self._emit_persist(obj, i, d, scheduled=True)
        clean = hier.llc.stats.flush_clean_hits - clean_before
        self.persist_events.append(
            PersistEvent(self.current_region, self.iteration, issued, dirty, clean)
        )

    def persist_object(self, obj: DataObject) -> None:
        _, hier = self._require()
        i, d = self._do_flush(obj.base_block, obj.end_block, self.plan.invalidate)
        if self._listeners:
            self._emit_persist(obj, i, d, scheduled=False)

    def _emit_persist(self, obj: DataObject, issued: int, dirty: int, scheduled: bool) -> None:
        _, hier = self._require()
        resident = hier.resident_dirty_blocks()
        remaining = int(
            np.count_nonzero((resident >= obj.base_block) & (resident < obj.end_block))
        )
        self._emit(
            RuntimeEvent(
                "persist", self.current_region, self.iteration,
                obj=obj.name, blocks=issued, dirty=dirty,
                remaining_dirty=remaining, scheduled=scheduled,
            )
        )

    # -- crash machinery -------------------------------------------------------------

    def _next_cp(self) -> int | None:
        if self._cp_i < self.crash_points.size:
            return int(self.crash_points[self._cp_i])
        return None

    def _mark_stored(self, b0: int, b1: int) -> None:
        """Stamp a contiguous stored block range with fresh sequence
        numbers (crash-model WPQ / in-flight tracking; no-op without an
        active model)."""
        if self._crash_model is None or b1 <= b0:
            return
        arr = self._seq_array(b1)
        n = b1 - b0
        arr[b0:b1] = np.arange(self._store_seq + 1, self._store_seq + 1 + n)
        self._store_seq += n

    def _mark_stored_blocks(self, blocks: np.ndarray) -> None:
        if self._crash_model is None or blocks.size == 0:
            return
        arr = self._seq_array(int(blocks.max()) + 1)
        n = int(blocks.size)
        # Fancy assignment: the last occurrence of a duplicate block wins,
        # matching store order.
        arr[blocks] = np.arange(self._store_seq + 1, self._store_seq + 1 + n)
        self._store_seq += n

    def _seq_array(self, needed: int) -> np.ndarray:
        arr = self._store_seq_arr
        heap = self.heap
        size = max(needed, heap.total_blocks() if heap is not None else 0)
        if arr is None or arr.size < size:
            grown = np.zeros(size, dtype=np.int64)
            if arr is not None:
                grown[: arr.size] = arr
            self._store_seq_arr = arr = grown
        return arr

    def _model_survivors(self) -> dict[str, tuple[np.ndarray, np.ndarray, int]] | None:
        """Survivor overlays of the active crash model at the current
        crash point: ``{name: (byte_idx, values, fixed)}`` where ``fixed``
        counts overlay bytes that differ from the NVM image (i.e. bytes
        the model repairs, for exact rate adjustment)."""
        model = self._crash_model
        if model is None:
            return None
        from repro.util.rng import derive_rng

        heap, hier = self._require()
        rng = derive_rng(self.crash_seed, "crash-model", model.spec, self.counter)
        seq = self._seq_array(heap.total_blocks())
        out: dict[str, tuple[np.ndarray, np.ndarray, int]] = {}
        for name, (idx, vals) in model.survivor_overlays(heap, hier, seq, rng).items():
            obj = heap.objects[name]
            fixed = int(np.count_nonzero(vals != obj.nvm_bytes[idx]))
            out[name] = (idx, vals, fixed)
        return out

    def _take_snapshot(self) -> None:
        heap, _ = self._require()
        extras = self._model_survivors()
        if self._golden_recorder is not None:
            # Golden pass: metadata + incrementally maintained rates only;
            # the NVM image is reconstructed later from write-back deltas
            # (plus the crash model's survivor overlay, if any).
            self._golden_recorder.take(
                self.counter, self.iteration, self.current_region, extras=extras
            )
            self._cp_i += 1
            return
        nvm_state = heap.snapshot_nvm()
        if extras is not None:
            for name, (idx, vals, _fixed) in extras.items():
                state = nvm_state.get(name)
                if state is not None:
                    state[idx] = vals
            rates = {
                o.name: (
                    float(np.count_nonzero(o.data_bytes != nvm_state[o.name]) / o.nbytes)
                    if o.nbytes
                    else 0.0
                )
                for o in heap.candidates()
            }
        else:
            rates = heap.inconsistent_rates()
        snap = Snapshot(
            index=len(self.snapshots),
            counter=self.counter,
            iteration=self.iteration,
            region=self.current_region,
            nvm_state=nvm_state,
            rates=rates,
            consistent_state=heap.snapshot_consistent() if self.capture_consistent else None,
        )
        self.snapshots.append(snap)
        self._cp_i += 1

    def _tick_region(self, nblocks: int) -> None:
        prof = self.region_profile.setdefault(self.current_region, RegionProfile())
        prof.accesses += nblocks

    # -- access hooks -------------------------------------------------------------

    def load_range(self, obj: DataObject, byte_lo: int, byte_hi: int) -> None:
        _, hier = self._require()
        b0, b1 = obj.block_range_of_bytes(byte_lo, byte_hi)
        self._tick_region(b1 - b0)
        self._tick_object(obj, b1 - b0, write=False)
        while b0 < b1:
            cp = self._next_cp()
            if cp is None or cp > self.counter + (b1 - b0):
                self._do_access(b0, b1, write=False)
                self.counter += b1 - b0
                return
            k = cp - self.counter
            self._do_access(b0, b0 + k, write=False)
            self.counter = cp
            b0 += k
            self._take_snapshot()

    def store_range(
        self,
        obj: DataObject,
        byte_lo: int,
        byte_hi: int,
        fast_assign: Callable[[], None],
        make_src: Callable[[], np.ndarray] | None,
    ) -> None:
        """Bulk store of a contiguous byte range of one object.

        ``fast_assign`` performs the whole assignment; ``make_src``
        materializes the stored bytes so the store can be applied
        *incrementally* when a crash point splits it (keeping the invariant
        that architectural state never contains values from stores that did
        not execute).  ``make_src=None`` marks a non-contiguous store that
        must be treated atomically: a crash inside it fires just before it.
        """
        _, hier = self._require()
        b0, b1 = obj.block_range_of_bytes(byte_lo, byte_hi)
        n = b1 - b0
        self._tick_region(n)
        self._tick_object(obj, n, write=True)
        cp = self._next_cp()
        if cp is None or cp > self.counter + n:
            fast_assign()
            if n and (rec := self._golden_recorder) is not None:
                rec.on_store(obj, byte_lo, byte_hi)
            self._mark_stored(b0, b1)
            if n:
                self._do_access(b0, b1, write=True)
            self.counter += n
            return
        if make_src is None:
            # Atomic store: crash lands at the op boundary (before it).
            end = self.counter + n
            while (cp := self._next_cp()) is not None and cp <= end:
                self.counter = cp  # clamp to the point for bookkeeping
                self._take_snapshot()
            fast_assign()
            if n and (rec := self._golden_recorder) is not None:
                rec.on_store(obj, byte_lo, byte_hi)
            self._mark_stored(b0, b1)
            if n:
                self._do_access(b0, b1, write=True)
            self.counter = end
            return
        src = np.asarray(make_src(), dtype=np.uint8)
        base_byte = obj.base_byte
        pos = byte_lo  # object-relative byte cursor
        while pos < byte_hi:
            cp = self._next_cp()
            remaining_blocks = obj.block_range_of_bytes(pos, byte_hi)
            rb0, rb1 = remaining_blocks
            if cp is None or cp > self.counter + (rb1 - rb0):
                cut = byte_hi
                blocks_done = rb1 - rb0
            else:
                k = cp - self.counter
                # Byte boundary of the k-th touched block (object-relative).
                cut = min(byte_hi, (rb0 + k) * BLOCK_SIZE - base_byte)
                blocks_done = k
            obj.data_bytes[pos:cut] = src[pos - byte_lo : cut - byte_lo]
            if cut > pos and (rec := self._golden_recorder) is not None:
                rec.on_store(obj, pos, cut)
            if cut > pos:
                self._mark_stored(*obj.block_range_of_bytes(pos, cut))
            if blocks_done:
                self._do_access(rb0, rb0 + blocks_done, write=True)
            self.counter += blocks_done
            pos = cut
            if cp is not None and self.counter == cp:
                self._take_snapshot()

    def access_scattered(
        self,
        obj: DataObject,
        blocks: np.ndarray,
        write: bool,
        apply_op: Callable[[], None] | None = None,
        nontemporal: bool = False,
    ) -> None:
        """Gather/scatter access over arbitrary blocks (atomic wrt crashes:
        a crash point inside the op fires just before the op's effects).

        ``nontemporal`` stores bypass the cache and land directly in NVM
        (MOVNT semantics) — only meaningful with ``write=True``.
        """
        _, hier = self._require()
        n = int(blocks.size)
        self._tick_region(n)
        self._tick_object(obj, n, write=write)
        end = self.counter + n
        while (cp := self._next_cp()) is not None and cp <= end:
            self.counter = cp
            self._take_snapshot()
        if apply_op is not None:
            apply_op()
            if write and n and (rec := self._golden_recorder) is not None:
                rec.on_store_blocks(obj, blocks)
        if write and n and not nontemporal:
            self._mark_stored_blocks(np.asarray(blocks, dtype=np.int64))
        if n:
            if nontemporal and write:
                self._do_nt_store(blocks)
            else:
                self._do_access_blocks(blocks, write)
        self.counter = end

    # -- end-of-run ---------------------------------------------------------------

    def publish_metrics(self, reg: "MetricRegistry") -> None:
        """Counting-runtime metrics plus cache-level counters, persist
        accounting and end-of-run dirty-line residency."""
        super().publish_metrics(reg)
        if self.hierarchy is not None:
            self.hierarchy.stats.publish(reg, "memsim")
            reg.gauge("runtime.dirty_resident_blocks", unit="blocks").set(
                int(self.hierarchy.resident_dirty_blocks().size)
            )
        reg.counter("persist.ops", unit="ops").inc(len(self.persist_events))
        dirty_hist = reg.histogram("persist.dirty_per_op", unit="blocks")
        for ev in self.persist_events:
            reg.counter("persist.blocks_issued", unit="blocks").inc(ev.blocks_issued)
            reg.counter("persist.dirty_written", unit="blocks").inc(ev.dirty_written)
            reg.counter("persist.clean_resident", unit="blocks").inc(ev.clean_resident)
            dirty_hist.observe(ev.dirty_written)
        if (grec := self._golden_recorder) is not None:
            reg.counter("golden.deltas_recorded", unit="events").inc(grec.deltas_recorded)
            reg.counter("golden.delta_bytes", unit="bytes").inc(grec.delta_bytes)
            reg.counter("runtime.snapshots", unit="snapshots").inc(grec.n_taken)
        else:
            reg.counter("runtime.snapshots", unit="snapshots").inc(len(self.snapshots))

    def golden_store(self):
        """Freeze the golden-pass delta log into a replayable
        :class:`~repro.memsim.golden.GoldenStore` (after the run)."""
        if self._golden_recorder is None:
            raise RuntimeError("runtime was not created with golden=True")
        return self._golden_recorder.build_store()

    def finalize(self) -> None:
        """Called after a completed run; remaining scheduled crash points
        (if any) fire at the final counter value."""
        while self._next_cp() is not None:
            self._take_snapshot()

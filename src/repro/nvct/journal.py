"""Write-ahead journal for crash-test campaigns (``--resume``).

A paper-scale campaign is hours of classification work; dying at trial
1,900 of 2,000 must not discard the first 1,899.  This module gives the
campaign engine the same property the paper demands of applications —
recomputability under failures — by journaling every completed trial to
an append-only JSONL file with fsync'd writes:

* line 1 is a **header** carrying the campaign's content key (the same
  SHA-256 the artifact cache uses, covering app + factory parameters +
  full config + plan + package version), so a journal can never be
  resumed against a different campaign;
* every following line is one completed ``{"kind": "trial", "index": i,
  "record": {...}, "crc": ...}`` entry, flushed and ``fsync``'d before
  the engine moves on — the write-ahead discipline: a trial is either
  durably in the journal or will be re-run.

Every line (header included) carries a CRC-32 over its canonical JSON
body (:func:`repro.harness.store.seal_line`), so recovery tolerates both
kinds of damage persistent state can suffer: a torn final line (the
append a SIGKILL caught in flight) *and* a silently bit-rotted record.
Either one ends the journal at the last intact line; the invalid tail is
**quarantined** next to the journal (never silently discarded) and
truncated away, and the missing trials are simply re-run — resuming
still produces a report **bit-identical** to an uninterrupted run.
Journals written before the CRC era (format 1, no ``crc`` fields) are
read through the legacy shim rather than rejected.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import JournalError, SnapshotCorruptError
from repro.obs import registry as obs_registry

if TYPE_CHECKING:
    from repro.apps.base import AppFactory
    from repro.nvct.campaign import CampaignConfig, CrashTestRecord

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "CampaignJournal",
    "campaign_header",
    "scan_journal",
    "load_journal",
]

JOURNAL_FORMAT_VERSION = 2  # 2 = per-line CRCs; 1 (pre-CRC) still readable


def campaign_header(factory: "AppFactory", cfg: "CampaignConfig") -> dict:
    """The header line identifying one campaign's journal."""
    from repro.harness.cache import campaign_key  # lazy: avoids a package cycle
    from repro.harness.store import created_at, store_git_sha
    from repro.memsim.crashmodel import get_model

    header = {
        "kind": "header",
        "format": JOURNAL_FORMAT_VERSION,
        "app": factory.name,
        "key": campaign_key(factory, cfg),
        "n_tests": cfg.n_tests,
        "seed": cfg.seed,
        "git_sha": store_git_sha(),
        "created_at": created_at(),
    }
    model = get_model(cfg.crash_model)
    if not model.is_default:
        # Informational (the key above already pins the model); omitted at
        # the default so historical journals stay resumable byte for byte.
        header["crash_model"] = model.spec
    from repro.cluster.topology import topology_fingerprint  # lazy: package cycle

    topology = topology_fingerprint(cfg)
    if topology is not None:
        # Pins the shard layout (nodes/correlation/burst window/shard
        # index/crash model) so a resume under a different topology is
        # refused with a topology-specific error instead of the generic
        # key mismatch.  Omitted for the single-node default, keeping
        # pre-cluster journals resumable byte for byte.
        header["topology"] = topology
    return header


def scan_journal(raw: bytes) -> tuple[dict | None, list[tuple[dict, int]], int]:
    """Verify journal bytes line by line: ``(header, lines, valid_length)``.

    ``lines`` holds every intact line as ``(doc, end_offset)`` — header
    first, CRC fields still attached (the doctor's fsck inspects them).
    Scanning stops at the first line that fails to decode *or* fails its
    CRC; ``valid_length`` is the byte length of the intact prefix.
    ``header`` is ``None`` when even the first line is unusable.
    """
    from repro.harness.store import open_line

    header: dict | None = None
    lines: list[tuple[dict, int]] = []
    valid = 0
    offset = 0
    while True:
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # unterminated tail = the append that was in flight
        line = raw[offset:newline]
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                break
            open_line(doc)  # CRC check (legacy lines without one pass through)
            if header is None:
                if doc.get("kind") != "header":
                    break
                header = doc
        except (ValueError, KeyError, TypeError, SnapshotCorruptError):
            break  # torn or corrupt line: the journal ends here
        offset = newline + 1
        valid = offset
        lines.append((doc, valid))
    return header, lines, valid


def load_journal(path: str | Path) -> tuple[dict | None, dict[int, "CrashTestRecord"], int]:
    """Read a journal: ``(header, {index: record}, valid_byte_length)``.

    The returned header has its transport ``crc`` field stripped;
    ``valid_byte_length`` covers every line that decoded, passed its CRC,
    and (for trials) produced a well-formed record.
    """
    from repro.nvct.serialize import record_from_dict

    raw = Path(path).read_bytes()
    header, lines, _ = scan_journal(raw)
    records: dict[int, "CrashTestRecord"] = {}
    valid = 0
    for doc, end in lines:
        if doc.get("kind") == "trial":
            try:
                records[int(doc["index"])] = record_from_dict(doc["record"])
            except (ValueError, KeyError, TypeError):
                break  # malformed (legacy, unchecksummed) record: ends here
        valid = end
    if header is not None:
        header = {k: v for k, v in header.items() if k != "crc"}
    return header, records, valid


class CampaignJournal:
    """Append-only fsync'd trial journal for one campaign."""

    def __init__(self, path: str | Path, header: dict):
        self.path = Path(path)
        self.header = header
        self.appended = 0
        self._fh = None  # type: ignore[assignment]

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, header: dict) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous file)."""
        journal = cls(path, header)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "wb")
        journal._write_line(header)
        return journal

    @classmethod
    def open_or_resume(
        cls, path: str | Path, header: dict
    ) -> tuple["CampaignJournal", dict[int, "CrashTestRecord"]]:
        """Resume ``path`` if it journals this campaign, else start fresh.

        Missing or empty file → fresh journal, no completed trials.  An
        existing journal for a *different* campaign raises
        :class:`~repro.errors.JournalError` instead of silently
        discarding its contents.  An invalid tail — a torn in-flight
        append or a record that fails its CRC — is quarantined beside
        the journal and truncated away so subsequent appends stay
        line-aligned; the affected trials re-run.
        """
        from repro.harness.store import quarantine_bytes

        path = Path(path)
        if not path.exists() or path.stat().st_size == 0:
            return cls.create(path, header), {}
        found, records, valid = load_journal(path)
        if found is None:
            raise JournalError(
                f"{path}: not a campaign journal (delete it or pick another path)"
            )
        if found.get("topology") != header.get("topology"):
            # Checked before the key so the operator sees the real cause:
            # same campaign, replayed under a different cluster topology
            # (--nodes/--correlation/crash model), would interleave shard
            # records that belong to different burst schedules.
            raise JournalError(
                f"{path}: journal was recorded under a different cluster topology "
                f"(found {found.get('topology')!r}, campaign has "
                f"{header.get('topology')!r}); refusing to resume"
            )
        if found.get("key") != header.get("key"):
            raise JournalError(
                f"{path}: journal belongs to a different campaign "
                f"(app {found.get('app')!r}, key {str(found.get('key'))[:12]}…); "
                "refusing to resume"
            )
        tail = path.read_bytes()[valid:]
        if tail:
            quarantine_bytes(tail, path.parent, path.name + ".tail")
        journal = cls(path, found)
        journal._fh = open(path, "r+b")
        journal._fh.truncate(valid)  # drop the quarantined tail from the live file
        journal._fh.seek(valid)
        if (reg := obs_registry()) is not None:
            reg.counter("journal.resumes", unit="resumes").inc()
            reg.counter("journal.replayed", unit="trials").inc(len(records))
        return journal, records

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the write-ahead append ----------------------------------------------

    def _write_line(self, doc: dict) -> None:
        from repro.harness.chaos import injector as chaos_injector
        from repro.harness.store import seal_line

        assert self._fh is not None, "journal is closed"
        line = json.dumps(seal_line(doc), sort_keys=True).encode("utf-8") + b"\n"
        if (ch := chaos_injector()) is not None:
            ch.maybe_sleep("journal.append")
            ch.check_io("journal.append")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    #: Write attempts per append before giving up.  Transient faults can
    #: arrive back to back (the chaos schedule at seed 7 proves it), so a
    #: single absorbed failure is not enough; three bounded attempts ride
    #: out a double fault while a persistently unwritable journal — which
    #: has lost its crash-safety guarantee — still fails loudly.
    APPEND_ATTEMPTS = 3

    def append(self, index: int, record: "CrashTestRecord") -> None:
        """Durably journal one completed trial (fsync before returning).

        Transient I/O failures are absorbed by reopening the file and
        retrying, at most :attr:`APPEND_ATTEMPTS` times in total; after
        that the failure propagates.
        """
        from repro.nvct.serialize import record_to_dict

        doc = {"kind": "trial", "index": index, "record": record_to_dict(record)}
        for attempt in range(self.APPEND_ATTEMPTS):
            try:
                self._write_line(doc)
                break
            except OSError:
                if attempt == self.APPEND_ATTEMPTS - 1:
                    raise
                self._fh = open(self.path, "ab")
        self.appended += 1
        if (reg := obs_registry()) is not None:
            reg.counter("journal.appends", unit="trials").inc()

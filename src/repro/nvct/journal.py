"""Write-ahead journal for crash-test campaigns (``--resume``).

A paper-scale campaign is hours of classification work; dying at trial
1,900 of 2,000 must not discard the first 1,899.  This module gives the
campaign engine the same property the paper demands of applications —
recomputability under failures — by journaling every completed trial to
an append-only JSONL file with fsync'd writes:

* line 1 is a **header** carrying the campaign's content key (the same
  SHA-256 the artifact cache uses, covering app + factory parameters +
  full config + plan + package version), so a journal can never be
  resumed against a different campaign;
* every following line is one completed ``{"kind": "trial", "index": i,
  "record": {...}}`` entry, flushed and ``fsync``'d before the engine
  moves on — the write-ahead discipline: a trial is either durably in
  the journal or will be re-run.

Recovery tolerates exactly the damage a SIGKILL can cause: a torn final
line (the append that was in flight) is detected and truncated away on
resume; everything before it is replayed.  Resuming an interrupted
campaign re-runs the cheap deterministic phases (golden, profile,
instrumented run — they regenerate the snapshots) and skips every
journaled classification trial, producing a report **bit-identical** to
an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import JournalError
from repro.obs import registry as obs_registry

if TYPE_CHECKING:
    from repro.apps.base import AppFactory
    from repro.nvct.campaign import CampaignConfig, CrashTestRecord

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "CampaignJournal",
    "campaign_header",
    "load_journal",
]

JOURNAL_FORMAT_VERSION = 1


def campaign_header(factory: "AppFactory", cfg: "CampaignConfig") -> dict:
    """The header line identifying one campaign's journal."""
    from repro.harness.cache import campaign_key  # lazy: avoids a package cycle

    return {
        "kind": "header",
        "format": JOURNAL_FORMAT_VERSION,
        "app": factory.name,
        "key": campaign_key(factory, cfg),
        "n_tests": cfg.n_tests,
        "seed": cfg.seed,
    }


def load_journal(path: str | Path) -> tuple[dict | None, dict[int, "CrashTestRecord"], int]:
    """Read a journal: ``(header, {index: record}, valid_byte_length)``.

    The write-ahead contract makes recovery simple: scan lines in order,
    stop at the first one that does not decode (a torn in-flight append
    — everything after it is garbage by construction).  ``header`` is
    ``None`` when even the first line is unusable.
    """
    from repro.nvct.serialize import record_from_dict

    raw = Path(path).read_bytes()
    header: dict | None = None
    records: dict[int, "CrashTestRecord"] = {}
    valid = 0
    offset = 0
    while True:
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # unterminated tail = the append that was in flight
        line = raw[offset:newline]
        try:
            doc = json.loads(line)
            if header is None:
                if doc.get("kind") != "header":
                    break
                header = doc
            elif doc.get("kind") == "trial":
                records[int(doc["index"])] = record_from_dict(doc["record"])
        except (ValueError, KeyError, TypeError):
            break  # garbage line: the journal ends here
        offset = newline + 1
        valid = offset
    return header, records, valid


class CampaignJournal:
    """Append-only fsync'd trial journal for one campaign."""

    def __init__(self, path: str | Path, header: dict):
        self.path = Path(path)
        self.header = header
        self.appended = 0
        self._fh = None  # type: ignore[assignment]

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, header: dict) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous file)."""
        journal = cls(path, header)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "wb")
        journal._write_line(header)
        return journal

    @classmethod
    def open_or_resume(
        cls, path: str | Path, header: dict
    ) -> tuple["CampaignJournal", dict[int, "CrashTestRecord"]]:
        """Resume ``path`` if it journals this campaign, else start fresh.

        Missing or empty file → fresh journal, no completed trials.  An
        existing journal for a *different* campaign raises
        :class:`~repro.errors.JournalError` instead of silently
        discarding its contents.  A torn final line is truncated away so
        subsequent appends stay line-aligned.
        """
        path = Path(path)
        if not path.exists() or path.stat().st_size == 0:
            return cls.create(path, header), {}
        found, records, valid = load_journal(path)
        if found is None:
            raise JournalError(
                f"{path}: not a campaign journal (delete it or pick another path)"
            )
        if found.get("key") != header.get("key"):
            raise JournalError(
                f"{path}: journal belongs to a different campaign "
                f"(app {found.get('app')!r}, key {str(found.get('key'))[:12]}…); "
                "refusing to resume"
            )
        journal = cls(path, found)
        journal._fh = open(path, "r+b")
        journal._fh.truncate(valid)  # drop a torn in-flight append, if any
        journal._fh.seek(valid)
        if (reg := obs_registry()) is not None:
            reg.counter("journal.resumes", unit="resumes").inc()
            reg.counter("journal.replayed", unit="trials").inc(len(records))
        return journal, records

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the write-ahead append ----------------------------------------------

    def _write_line(self, doc: dict) -> None:
        from repro.harness.chaos import injector as chaos_injector

        assert self._fh is not None, "journal is closed"
        line = json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n"
        if (ch := chaos_injector()) is not None:
            ch.maybe_sleep("journal.append")
            ch.check_io("journal.append")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, index: int, record: "CrashTestRecord") -> None:
        """Durably journal one completed trial (fsync before returning).

        One transient I/O failure is absorbed by reopening the file and
        retrying; a second failure propagates — a journal that cannot be
        written has lost its crash-safety guarantee and must be loud.
        """
        from repro.nvct.serialize import record_to_dict

        doc = {"kind": "trial", "index": index, "record": record_to_dict(record)}
        try:
            self._write_line(doc)
        except OSError:
            self._fh = open(self.path, "ab")
            self._write_line(doc)
        self.appended += 1
        if (reg := obs_registry()) is not None:
            reg.counter("journal.appends", unit="trials").inc()

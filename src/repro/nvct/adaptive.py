"""Adaptive campaign sizing (the paper's statistical stopping rule).

Sec. 4.1: "for each benchmark, we run a sufficient number of crash and
recomputation tests (usually 1000-2000), such that further increasing the
number of tests does not cause big variation (less than 5%) in the
evaluation results."

:func:`run_campaign_until_stable` implements exactly that: grow the
campaign in rounds and stop when the recomputability estimate moves by
less than the tolerance between consecutive rounds (and the binomial
half-width confirms the precision).  :func:`recomputability_interval`
provides bootstrap confidence intervals for any finished campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.nvct.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # avoid a circular import (apps depend on nvct)
    from repro.apps.base import AppFactory

__all__ = [
    "StableCampaign",
    "run_campaign_until_stable",
    "recomputability_interval",
]


@dataclass
class StableCampaign:
    """A campaign grown until its headline estimate stabilized."""

    result: CampaignResult
    history: tuple[float, ...]  # recomputability after each round
    rounds: int
    stable: bool  # False when max_tests was hit before stabilizing

    @property
    def recomputability(self) -> float:
        return self.result.recomputability()


def _merged(base: CampaignResult, extra: CampaignResult) -> CampaignResult:
    """Concatenate two campaigns of the same app/plan (disjoint seeds)."""
    return CampaignResult(
        app=base.app,
        plan=base.plan,
        records=base.records + extra.records,
        run_stats=base.run_stats,
        golden_iterations=base.golden_iterations,
    )


def run_campaign_until_stable(
    factory: "AppFactory",
    config: CampaignConfig,
    tolerance: float = 0.05,
    min_tests: int = 100,
    max_tests: int = 2000,
    round_size: int | None = None,
) -> StableCampaign:
    """Grow a campaign round by round until the recomputability estimate
    changes by less than ``tolerance`` between rounds.

    Each round draws fresh crash points (a distinct seed), so rounds are
    independent samples of the same crash distribution; the merged record
    set is the final campaign.  ``max_tests`` bounds the paper's
    1000-2000-test ceiling.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    step = round_size or max(min_tests, config.n_tests)
    rounds = 0
    merged: CampaignResult | None = None
    history: list[float] = []
    while True:
        round_cfg = CampaignConfig(
            n_tests=step,
            seed=config.seed + rounds,
            hierarchy=config.hierarchy,
            plan=config.plan,
            verified_mode=config.verified_mode,
            max_iter_factor=config.max_iter_factor,
            distribution=config.distribution,
            n_cores=config.n_cores,
        )
        result = run_campaign(factory, round_cfg)
        merged = result if merged is None else _merged(merged, result)
        rounds += 1
        history.append(merged.recomputability())
        if len(history) >= 2 and merged.n_tests >= min_tests:
            if abs(history[-1] - history[-2]) < tolerance:
                return StableCampaign(merged, tuple(history), rounds, True)
        if merged.n_tests >= max_tests:
            return StableCampaign(merged, tuple(history), rounds, False)


def recomputability_interval(
    result: CampaignResult,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap percentile confidence interval for the recomputability
    (S1 rate) of a finished campaign."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    successes = result.success_vector()
    n = successes.size
    if n == 0:
        return (float("nan"), float("nan"))
    rng = derive_rng(seed, "bootstrap", result.app, n)
    draws = rng.integers(0, n, size=(n_boot, n))
    means = successes[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(lo), float(hi))

"""Persistent heap: block-aligned object layout plus the NVM value image.

Each :class:`DataObject` owns two byte stores:

* ``data`` — the architectural state, i.e. what the CPU would observe
  (registers/caches/memory combined).  Applications compute directly on
  this NumPy array.
* ``nvm`` — the bytes actually persistent in NVM.  It is updated *only*
  when the cache simulation writes a dirty block back (eviction, flush,
  drain), so after a crash ``nvm`` is exactly what the paper's restart
  sees: a mixture of written-back new values and stale old values.

The heap also implements the paper's postmortem analysis: the per-object
*data inconsistent rate*, the fraction of bytes whose cached (architectural)
value differs from the NVM image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError
from repro.memsim.blocks import BLOCK_SIZE, align_up

__all__ = ["DataObject", "PersistentHeap"]

_OBJECT_GAP_BLOCKS = 1  # guard block between objects (never shared lines)


@dataclass
class DataObject:
    """A heap- or global-scope data object registered with NVCT."""

    name: str
    base_block: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: np.dtype
    candidate: bool
    readonly: bool
    role: str  # "data" | "iterator"
    data: np.ndarray = field(repr=False)
    data_bytes: np.ndarray = field(repr=False)
    nvm_bytes: np.ndarray = field(repr=False)

    @property
    def nblocks(self) -> int:
        return align_up(self.nbytes) // BLOCK_SIZE

    @property
    def base_byte(self) -> int:
        return self.base_block * BLOCK_SIZE

    @property
    def end_block(self) -> int:
        return self.base_block + self.nblocks

    def nvm_view(self) -> np.ndarray:
        """The NVM image reinterpreted with the object's dtype and shape."""
        return self.nvm_bytes[: self.nbytes].view(self.dtype).reshape(self.shape)

    def inconsistent_rate(self) -> float:
        """Fraction of the object's bytes differing between the
        architectural state and the NVM image."""
        if self.nbytes == 0:
            return 0.0
        diff = self.data_bytes != self.nvm_bytes[: self.nbytes]
        return float(diff.mean())

    def sync_nvm(self) -> None:
        """Force the NVM image identical to the architectural state (used
        at initialization: the paper's apps write initial data before the
        main loop, and initialization re-runs on restart anyway)."""
        self.nvm_bytes[: self.nbytes] = self.data_bytes

    def block_range_of_bytes(self, byte_lo: int, byte_hi: int) -> tuple[int, int]:
        """Absolute block range covering object-relative byte range."""
        if byte_hi <= byte_lo:
            return (self.base_block, self.base_block)
        b0 = self.base_block + byte_lo // BLOCK_SIZE
        b1 = self.base_block + (byte_hi - 1) // BLOCK_SIZE + 1
        return (b0, b1)


class PersistentHeap:
    """Address-space layout and NVM image bookkeeping for data objects."""

    def __init__(self, track_write_counts: bool = False) -> None:
        self.objects: dict[str, DataObject] = {}
        self._order: list[DataObject] = []
        self._next_block = 0
        # Parallel arrays for fast block -> object routing.
        self._bases = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)
        # Optional per-block NVM write counters (endurance analysis).
        self._track_writes = track_write_counts
        self._write_counts = np.zeros(0, dtype=np.int64)
        # Optional write-back observer (golden-pass delta recording).
        self._delta_sink = None

    # -- allocation ---------------------------------------------------------

    def allocate(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        *,
        candidate: bool = True,
        readonly: bool = False,
        role: str = "data",
    ) -> DataObject:
        """Allocate a block-aligned data object and its NVM image.

        ``candidate`` marks objects eligible for critical-object selection
        (paper Sec. 5.1: lifetime spans the main loop and not read-only);
        read-only objects are registered for traffic accounting but are
        restored by re-initialization, never from NVM.
        """
        if name in self.objects:
            raise AllocationError(f"object {name!r} already allocated")
        if candidate and readonly:
            raise AllocationError(f"object {name!r}: read-only objects are not candidates")
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        if nbytes <= 0:
            raise AllocationError(f"object {name!r}: empty allocation")
        padded = align_up(nbytes)
        data = np.zeros(shape, dtype=dt)
        obj = DataObject(
            name=name,
            base_block=self._next_block,
            nbytes=nbytes,
            shape=tuple(shape),
            dtype=dt,
            candidate=candidate,
            readonly=readonly,
            role=role,
            data=data,
            data_bytes=data.reshape(-1).view(np.uint8),
            nvm_bytes=np.zeros(padded, dtype=np.uint8),
        )
        self._next_block += obj.nblocks + _OBJECT_GAP_BLOCKS
        self.objects[name] = obj
        self._order.append(obj)
        self._bases = np.append(self._bases, obj.base_block)
        self._ends = np.append(self._ends, obj.end_block)
        return obj

    # -- cache write-back sink ------------------------------------------------

    def writeback_blocks(self, blocks: np.ndarray) -> None:
        """Copy the architectural bytes of the given absolute blocks into
        the NVM image.  Installed as the cache hierarchy's write-back sink,
        so the NVM image always reflects exactly what has been persisted."""
        if blocks.size == 0:
            return
        if self._track_writes:
            # Count every NVM write, including ones beyond the data-object
            # area (e.g. a checkpoint region); grow the counters on demand.
            needed = max(self._next_block, int(blocks.max()) + 1)
            if self._write_counts.size < needed:
                grown = np.zeros(needed, dtype=np.int64)
                grown[: self._write_counts.size] = self._write_counts
                self._write_counts = grown
            np.add.at(self._write_counts, blocks, 1)
        idx = np.searchsorted(self._bases, blocks, side="right") - 1
        valid = (idx >= 0) & (blocks < self._ends[np.maximum(idx, 0)])
        sink = self._delta_sink
        for oi in np.unique(idx[valid]):
            obj = self._order[int(oi)]
            rel_blocks = blocks[valid][idx[valid] == oi] - obj.base_block
            byte_idx = (rel_blocks[:, None] * BLOCK_SIZE + np.arange(BLOCK_SIZE, dtype=np.int64)).ravel()
            # The final (padded) block may extend past nbytes.
            byte_idx = byte_idx[byte_idx < obj.nbytes]
            vals = obj.data_bytes[byte_idx]
            obj.nvm_bytes[byte_idx] = vals
            if sink is not None:
                sink(obj, rel_blocks, byte_idx, vals)

    def set_delta_sink(self, sink) -> None:
        """Install an observer called after every NVM write-back with
        ``(obj, rel_blocks, byte_idx, values)`` — the object, its written
        block ids (object-relative), and the exact persisted bytes.  The
        golden-pass recorder (:mod:`repro.memsim.golden`) uses this to log
        per-segment deltas instead of copying whole NVM images."""
        self._delta_sink = sink

    # -- analysis / snapshots ---------------------------------------------------

    def candidates(self) -> list[DataObject]:
        return [o for o in self._order if o.candidate and o.role == "data"]

    def iterator_object(self) -> DataObject | None:
        for o in self._order:
            if o.role == "iterator":
                return o
        return None

    def candidate_bytes(self) -> int:
        return sum(o.nbytes for o in self.candidates())

    def footprint_bytes(self) -> int:
        return sum(o.nbytes for o in self._order)

    def inconsistent_rates(self) -> dict[str, float]:
        return {o.name: o.inconsistent_rate() for o in self.candidates()}

    def snapshot_nvm(self) -> dict[str, np.ndarray]:
        """Copy the NVM image of every restart-relevant object (candidates
        plus the loop iterator)."""
        out: dict[str, np.ndarray] = {}
        for o in self._order:
            if o.candidate or o.role == "iterator":
                out[o.name] = o.nvm_bytes[: o.nbytes].copy()
        return out

    def snapshot_consistent(self) -> dict[str, np.ndarray]:
        """Copy the *architectural* bytes instead (the paper's physical-
        machine "Verified" methodology forces full consistency)."""
        out: dict[str, np.ndarray] = {}
        for o in self._order:
            if o.candidate or o.role == "iterator":
                out[o.name] = o.data_bytes.copy()
        return out

    def total_blocks(self) -> int:
        return self._next_block

    def write_counts(self) -> np.ndarray:
        """Per-block NVM write counters (requires ``track_write_counts``).

        Covers at least the data-object area; longer when writes landed
        beyond it (e.g. checkpoint copies)."""
        if not self._track_writes:
            raise RuntimeError("heap was created without track_write_counts=True")
        size = max(self._next_block, self._write_counts.size)
        out = np.zeros(size, dtype=np.int64)
        out[: self._write_counts.size] = self._write_counts
        return out

"""Persistence plans: which objects to flush, where, and how often.

A plan is the output of EasyCrash's offline analysis and the input to a
production (or campaign) run.  The paper's strategies map to:

* ``PersistencePlan.none()`` — no flushing beyond the loop iterator
  (the paper always persists the iterator, footnote 3);
* ``PersistencePlan.at_loop_end(objs)`` — flush the selected objects at
  the end of every main-loop iteration ("selecting data objects");
* ``PersistencePlan.per_region(objs, {region: freq})`` — flush at the end
  of selected code regions, every ``freq``-th execution ("selecting code
  regions", the full EasyCrash);
* ``PersistencePlan.every_region(objs, regions)`` — flush at the end of
  every region ("best recomputability", costly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PersistencePlan"]


@dataclass(frozen=True)
class PersistencePlan:
    """Immutable description of when and what to persist."""

    objects: tuple[str, ...] = ()
    region_frequency: dict[str, int] = field(default_factory=dict)
    at_iteration_end: bool = False
    iteration_frequency: int = 1  # flush every x-th main-loop iteration
    persist_iterator: bool = True
    invalidate: bool = False  # CLFLUSH/CLFLUSHOPT (True) vs CLWB (False)

    def __post_init__(self) -> None:
        for rid, freq in self.region_frequency.items():
            if freq < 1:
                raise ValueError(f"region {rid!r}: frequency must be >= 1")
        if self.iteration_frequency < 1:
            raise ValueError("iteration_frequency must be >= 1")

    @property
    def is_active(self) -> bool:
        return bool(self.objects) and (bool(self.region_frequency) or self.at_iteration_end)

    def flushes_at(self, region: str, execution_count: int) -> bool:
        """Whether this plan flushes at the end of the given region
        execution (1-based execution count)."""
        freq = self.region_frequency.get(region)
        return freq is not None and execution_count % freq == 0

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def none(persist_iterator: bool = True) -> "PersistencePlan":
        return PersistencePlan(persist_iterator=persist_iterator)

    @staticmethod
    def at_loop_end(
        objects: tuple[str, ...] | list[str], frequency: int = 1
    ) -> "PersistencePlan":
        return PersistencePlan(
            objects=tuple(objects),
            at_iteration_end=True,
            iteration_frequency=frequency,
        )

    @staticmethod
    def per_region(
        objects: tuple[str, ...] | list[str],
        region_frequency: dict[str, int],
        at_iteration_end: bool = False,
        iteration_frequency: int = 1,
    ) -> "PersistencePlan":
        return PersistencePlan(
            objects=tuple(objects),
            region_frequency=dict(region_frequency),
            at_iteration_end=at_iteration_end,
            iteration_frequency=iteration_frequency,
        )

    @staticmethod
    def every_region(
        objects: tuple[str, ...] | list[str], regions: list[str]
    ) -> "PersistencePlan":
        return PersistencePlan(
            objects=tuple(objects),
            region_frequency={r: 1 for r in regions},
        )

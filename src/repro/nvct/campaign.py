"""Crash-test campaigns: sampling, snapshotting, restart, classification.

A campaign reproduces the paper's methodology (Sec. 4.1): many tests, each
stopping the application after a uniformly random access (within the main
computation loop), restarting it from the data objects remaining in NVM,
and classifying the outcome:

* **S1** — successful recomputation, no extra iterations (the paper's
  definition of *recomputability*);
* **S2** — successful recomputation, but extra iterations were needed;
* **S3** — interruption (the restarted run raises, e.g. an out-of-bounds
  index — the analogue of a segfault);
* **S4** — verification fails even within 2x the original iterations.

One instrumented execution provides every test of a campaign: snapshots
of the NVM image are taken at all (sorted) crash points, then each
snapshot is restarted in fast plain mode.  This is statistically identical
to independent crashes under the uniform crash distribution and makes
thousand-test campaigns tractable.

By default the snapshots themselves come from the *golden pass*
(:mod:`repro.memsim.golden`): the single instrumented run records NVM
write-back deltas per crash-point segment, and all N crash images are
reconstructed afterwards by vectorized delta replay — ``O(heap +
writeback_traffic)`` instead of the legacy ``O(N x heap)`` copy-and-diff
per point.  The legacy path (``REPRO_GOLDEN=0`` / ``--no-golden`` /
``run_campaign(..., golden=False)``) is retained as the bit-identical
oracle and still serves verified-mode and multi-core campaigns.
"""

from __future__ import annotations

import enum
import math
import os
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.memsim.config import HierarchyConfig
from repro.memsim.stats import MemoryStats
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import CountingRuntime, PersistEvent, RegionProfile, Runtime, Snapshot
from repro.obs import RuntimeSpanListener, maybe_span, registry
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # avoid a circular import (apps depend on nvct)
    from pathlib import Path

    from repro.apps.base import AppFactory
    from repro.harness.resilience import RetryPolicy

__all__ = [
    "Response",
    "CrashTestRecord",
    "CampaignConfig",
    "CampaignResult",
    "campaign_points",
    "run_campaign",
    "measure_run",
]


class Response(enum.Enum):
    """The paper's four post-crash application responses (Fig. 3), plus
    ``FAILED`` for trials the *harness* could not complete (quarantined
    by the resilience layer: a poison trial, a trial-deadline timeout)."""

    S1 = "success"
    S2 = "success_extra_iterations"
    S3 = "interruption"
    S4 = "verification_fails"
    FAILED = "harness_failure"


@dataclass
class CrashTestRecord:
    """Outcome of one crash test.

    ``error`` is empty except for quarantined (``FAILED``) trials, where
    it carries the harness exception that poisoned the trial.  ``weight``
    is the number of sampled crash points this record stands for: crash
    points are deduplicated before the trial fan-out (re-measuring the
    same point re-derives the identical deterministic record), so a
    collapsed duplicate becomes weight on the single trial instead of a
    burned re-execution.  Uniform sampling is without replacement and
    always yields weight 1; skewed (beta) distributions may collapse.
    """

    counter: int
    iteration: int
    region: str
    rates: dict[str, float]
    response: Response
    extra_iterations: int = 0
    weight: int = 1
    error: str = ""


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign parameters."""

    n_tests: int = 200
    seed: int = 0
    hierarchy: HierarchyConfig | None = None
    plan: PersistencePlan = field(default_factory=PersistencePlan.none)
    verified_mode: bool = False  # restart from consistent copies (Fig. 6 "VFY")
    max_iter_factor: float = 2.0  # iteration allowance before declaring S4
    # Crash-time distribution over the main-loop window: "uniform" (the
    # paper's discrete uniform), or Beta-skewed toward the "early"/"late"
    # part of the execution (ablation).
    distribution: str = "uniform"
    # Simulated cores: 1 uses the standard hierarchy; >1 uses the MESI-lite
    # multi-core model (applications may shard work with on_core()).
    n_cores: int = 1
    # Crash model (repro.memsim.crashmodel spec string): what survives a
    # failure besides the NVM image.  The default is the paper's
    # whole-cache-loss; "adr", "eadr" and "torn" model residual-energy
    # persistence domains and torn multi-word stores.
    crash_model: str = "whole-cache-loss"
    # Cluster topology (repro.cluster): number of emulated nodes the
    # campaign shards across, the burst correlation of the failure
    # process, and the burst window grouping correlated arrivals.  A
    # topology other than the single uncorrelated node must run through
    # repro.cluster.run_cluster_campaign, which fans out one shard
    # campaign per node; all four fields are dropped from content keys
    # at their defaults (repro.harness.cache.campaign_config_doc), so
    # single-node keys stay byte-identical to the pre-cluster era.
    nodes: int = 1
    correlation: float = 0.0
    burst_window_s: float = 600.0
    # Which shard this config executes.  Set by the cluster emulator;
    # node 0 samples crash points with the historical single-node key,
    # so a one-node cluster is record-for-record identical to a plain
    # campaign.
    node: int = 0


@dataclass
class RunStats:
    """Event counts of the instrumented (no-crash-perturbation) execution,
    consumed by the performance model."""

    memory: MemoryStats
    region_profile: dict[str, RegionProfile]
    persist_events: list[PersistEvent]
    total_accesses: int
    window_begin: int
    iterations: int

    @property
    def persist_op_count(self) -> int:
        return len(self.persist_events)


@dataclass
class CampaignResult:
    """All records of a campaign plus the instrumented run's statistics."""

    app: str
    plan: PersistencePlan
    records: list[CrashTestRecord]
    run_stats: RunStats
    golden_iterations: int
    #: restarts actually executed.  Equals ``len(records)`` for a naive
    #: campaign; under a pruned crash plan (``run_campaign(plan=...)``)
    #: only class representatives and purity tails run, so this is the
    #: denominator of the pruning factor.  ``None`` when unknown (e.g. a
    #: campaign loaded from disk — the field is an execution statistic,
    #: not part of the result's content).
    executed_trials: int | None = None
    #: canonical crash-model spec the campaign ran under (default:
    #: the paper's whole-cache-loss).
    crash_model: str = "whole-cache-loss"

    # -- headline metrics ---------------------------------------------------
    #
    # All aggregates are weight-aware: a record of weight w counts as w
    # sampled crash points (duplicates collapsed before the fan-out).  The
    # integer-sum formulations below are bit-identical to the historical
    # unweighted ``np.mean`` versions whenever every weight is 1.

    @property
    def n_tests(self) -> int:
        """Number of sampled crash points (collapsed duplicates included)."""
        return int(sum(r.weight for r in self.records))

    def recomputability(self) -> float:
        """Fraction of tests with response S1 (the paper's definition)."""
        total = sum(r.weight for r in self.records)
        if not total:
            return float("nan")
        return sum(r.weight for r in self.records if r.response is Response.S1) / total

    def response_fractions(self) -> dict[Response, float]:
        out = {resp: 0.0 for resp in Response}
        total = sum(r.weight for r in self.records)
        if not total:
            return out
        for r in self.records:
            out[r.response] += r.weight
        return {k: v / total for k, v in out.items()}

    def mean_extra_iterations(self) -> float:
        """Average extra iterations among S2 tests (Table 1 restart
        overhead); NaN when no test needed extra iterations."""
        s2 = [r for r in self.records if r.response is Response.S2]
        if not s2:
            return float("nan")
        return float(sum(r.extra_iterations * r.weight for r in s2) / sum(r.weight for r in s2))

    # -- per-region views -----------------------------------------------------

    def per_region_recomputability(self) -> dict[str, float]:
        """c_k: S1 rate among tests whose crash fell in region k."""
        hits: dict[str, int] = {}
        totals: dict[str, int] = {}
        for r in self.records:
            totals[r.region] = totals.get(r.region, 0) + r.weight
            if r.response is Response.S1:
                hits[r.region] = hits.get(r.region, 0) + r.weight
        return {k: hits.get(k, 0) / v for k, v in totals.items()}

    def region_time_shares(self) -> dict[str, float]:
        """a_k: region access-count share of the main-loop window (a proxy
        for execution-time share in memory-bound HPC kernels)."""
        prof = self.run_stats.region_profile
        total = sum(p.accesses for k, p in prof.items() if not k.startswith("__init"))
        if total == 0:
            return {}
        return {
            k: p.accesses / total
            for k, p in prof.items()
            if not k.startswith("__init")
        }

    # -- selection inputs ---------------------------------------------------------

    def object_rate_vectors(self) -> dict[str, np.ndarray]:
        """Per-candidate inconsistent-rate vectors across tests."""
        if not self.records:
            return {}
        names = sorted(self.records[0].rates)
        return {
            n: np.array([r.rates.get(n, 0.0) for r in self.records]) for n in names
        }

    def success_vector(self) -> np.ndarray:
        return np.array([1.0 if r.response is Response.S1 else 0.0 for r in self.records])

    def weights_vector(self) -> np.ndarray:
        """Per-record crash-point multiplicities, aligned with
        :meth:`success_vector` / :meth:`object_rate_vectors` for weighted
        selection models."""
        return np.array([float(r.weight) for r in self.records])

    def weighted_object_rates(self) -> dict[str, float]:
        """Weight-aware mean inconsistent rate per candidate object.

        Summation is ``math.fsum`` over each record's rate repeated
        ``weight`` times: ``fsum`` returns the correctly rounded sum of
        its inputs regardless of order or grouping, so any weight
        redistribution that preserves the underlying rate multiset — in
        particular a pruned crash plan replacing w identical trials by
        one representative of weight w — yields the bit-identical double.
        """
        if not self.records:
            return {}
        import itertools

        total = sum(r.weight for r in self.records)
        names = sorted(self.records[0].rates)
        return {
            n: math.fsum(
                x
                for r in self.records
                for x in itertools.repeat(r.rates.get(n, 0.0), r.weight)
            ) / total
            for n in names
        }


def _sample_crash_points(
    window: tuple[int, int],
    n_tests: int,
    seed: int,
    key: str,
    distribution: str = "uniform",
) -> np.ndarray:
    lo, hi = window
    if hi <= lo:
        raise ValueError("empty crash window: application issued no main-loop accesses")
    rng = derive_rng(seed, "crash-points", key)
    span = hi - lo
    n = min(n_tests, span)
    if distribution == "uniform":
        points = rng.choice(span, size=n, replace=False).astype(np.int64)
    elif distribution in ("early", "late"):
        a, b = (1.0, 3.0) if distribution == "early" else (3.0, 1.0)
        raw = np.unique((rng.beta(a, b, size=4 * n) * span).astype(np.int64))
        rng.shuffle(raw)
        points = raw[:n]
        if points.size < n:
            # The beta draw collapses duplicates under np.unique and can
            # undersample; top up uniformly from the untouched remainder so
            # the campaign honors the requested test count.
            pool = np.setdiff1d(np.arange(span, dtype=np.int64), points)
            extra = rng.choice(pool.size, size=n - points.size, replace=False)
            points = np.concatenate([points, pool[extra]])
    else:
        raise ValueError(f"unknown crash distribution {distribution!r}")
    return np.sort(points + lo + 1)


def _dedupe_crash_points(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate crash points into ``(unique_points, weights)``.

    Classification is deterministic, so re-running a trial at the same
    counter value can only reproduce the same record; duplicates would
    burn a whole restart re-measuring a known outcome.  The campaign
    classifies each distinct point once and carries the multiplicity as
    :attr:`CrashTestRecord.weight` instead.  ``unique_points`` come back
    sorted — the order the instrumented run snapshots them in."""
    pts = np.asarray(points, dtype=np.int64)
    return np.unique(pts, return_counts=True)


def _golden_default() -> bool:
    """Golden-pass batching is on unless ``REPRO_GOLDEN`` disables it."""
    return os.environ.get("REPRO_GOLDEN", "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def _classify(
    factory: AppFactory,
    snap: Snapshot,
    golden_iterations: int,
    cfg: CampaignConfig,
) -> CrashTestRecord:
    from repro.errors import TrialTimeout

    app = factory.make(runtime=None)
    state = snap.consistent_state if cfg.verified_mode else snap.nvm_state
    assert state is not None
    # Fixed-iteration apps (DEFAULT_MAX_FACTOR == 1) always stop at their
    # nominal count; convergence-driven apps get the paper's 2x allowance.
    factor = min(cfg.max_iter_factor, app.DEFAULT_MAX_FACTOR)
    limit = max(golden_iterations, int(math.ceil(golden_iterations * factor)))
    try:
        with np.errstate(all="ignore"):
            # A failing restore (e.g. a truncated NVM payload) is itself
            # an interruption: the restart cannot even begin.
            start_iter = app.restore(state)
            result = app.run(start_iter=start_iter, max_iterations=limit)
            ok = app.verify()
    except TrialTimeout:
        raise  # a harness deadline, not an application response
    except Exception:
        return CrashTestRecord(
            snap.counter, snap.iteration, snap.region, snap.rates, Response.S3
        )
    if not ok:
        resp = Response.S4
        extra = 0
    elif result.iterations > golden_iterations:
        resp = Response.S2
        extra = result.iterations - golden_iterations
    else:
        resp = Response.S1
        extra = 0
    return CrashTestRecord(
        snap.counter, snap.iteration, snap.region, snap.rates, resp, extra
    )


def _classify_trial(
    factory: AppFactory,
    snap: Snapshot,
    golden_iterations: int,
    cfg: CampaignConfig,
    trial_timeout: float | None = None,
) -> CrashTestRecord:
    """Quarantined classification: a poison trial becomes a ``FAILED``
    record carrying its exception instead of hanging or killing the
    campaign.  ``trial_timeout`` bounds one trial's wall time (Unix main
    thread; elsewhere the parallel engine's chunk timeout is the backstop).
    """
    from repro.harness.resilience import call_with_deadline

    try:
        return call_with_deadline(
            lambda: _classify(factory, snap, golden_iterations, cfg), trial_timeout
        )
    except Exception as exc:
        if (reg := registry()) is not None:
            reg.counter("campaign.quarantined", unit="tests").inc()
        return CrashTestRecord(
            snap.counter,
            snap.iteration,
            snap.region,
            snap.rates,
            Response.FAILED,
            error=f"{type(exc).__name__}: {exc}",
        )


def _instrumented_run(
    factory: AppFactory,
    cfg: CampaignConfig,
    crash_points: np.ndarray | None,
    golden: bool = False,
) -> tuple[Runtime, int]:
    if cfg.n_cores > 1:
        from repro.nvct.multicore_runtime import MulticoreRuntime

        rt: Runtime = MulticoreRuntime(
            n_cores=cfg.n_cores,
            plan=cfg.plan,
            crash_points=crash_points,
            capture_consistent=cfg.verified_mode,
        )
    else:
        rt = Runtime(
            hierarchy=cfg.hierarchy,
            plan=cfg.plan,
            crash_points=crash_points,
            capture_consistent=cfg.verified_mode,
            golden=golden,
            crash_model=cfg.crash_model,
            crash_seed=cfg.seed,
        )
    reg = registry()
    listener = None
    if reg is not None:
        # Span telemetry rides the PR 2 event-listener hooks: nothing is
        # attached (and the runtime emits nothing) unless obs is enabled.
        listener = RuntimeSpanListener(reg.tracer)
        rt.add_listener(listener)
    app = factory.make(runtime=rt)
    with np.errstate(all="ignore"):
        result = app.run()
    if listener is not None:
        listener.close()
    return rt, result.iterations


def _run_stats(rt: Runtime, iterations: int) -> RunStats:
    assert rt.hierarchy is not None
    return RunStats(
        memory=rt.hierarchy.stats,
        region_profile=rt.region_profile,
        persist_events=rt.persist_events,
        total_accesses=rt.counter,
        window_begin=rt.window_begin or 0,
        iterations=iterations,
    )


def measure_run(factory: AppFactory, cfg: CampaignConfig) -> RunStats:
    """Instrumented execution without crash points: the event counts of a
    production run under ``cfg.plan`` (performance / write-traffic model)."""
    reg = registry()
    with maybe_span(reg.tracer if reg else None, "measure", app=factory.name):
        rt, iterations = _instrumented_run(factory, cfg, None)
    if reg is not None:
        rt.publish_metrics(reg)
        reg.counter("campaign.measure_runs", unit="runs").inc()
    return _run_stats(rt, iterations)


def _broadcast_plan_records(
    crash_plan, records: list[CrashTestRecord | None], store
) -> None:
    """Fill non-executed records from their class representative.

    Tail members were classified independently; a disagreement with the
    representative falsifies the equivalence relation (identical NVM
    images must classify identically) and aborts loudly rather than
    publishing wrong science.  Broadcast members take response and extra
    iterations from the representative and their own coordinates
    (counter, iteration, region, rates) from the golden metadata — the
    resulting record list is bit-identical to the full campaign's.
    """
    for c, rep in enumerate(crash_plan.reps):
        rep_rec = records[rep]
        assert rep_rec is not None
        for t in crash_plan.tails[c]:
            tail_rec = records[t]
            if tail_rec is None:
                continue
            if (
                tail_rec.response is not rep_rec.response
                or tail_rec.extra_iterations != rep_rec.extra_iterations
            ):
                raise RuntimeError(
                    f"crash-plan purity violation in class {c}: tail point "
                    f"{t} classified {tail_rec.response.name} "
                    f"(+{tail_rec.extra_iterations}) but representative {rep} "
                    f"classified {rep_rec.response.name} "
                    f"(+{rep_rec.extra_iterations}) — the equivalence "
                    "partition does not hold; re-emit the plan and report "
                    "this as an analyzer bug"
                )
    for i, rec in enumerate(records):
        if rec is not None:
            continue
        rep_rec = records[crash_plan.reps[crash_plan.class_ids[i]]]
        assert rep_rec is not None
        counter, iteration, region, rates = store.image_meta(i)
        records[i] = CrashTestRecord(
            counter, iteration, region, rates,
            rep_rec.response, rep_rec.extra_iterations,
        )


def campaign_points(
    factory: AppFactory, cfg: CampaignConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Profile one application and sample its campaign's crash points.

    Returns ``(points, weights)``: the sorted deduplicated crash counters
    the instrumented run will snapshot, and the multiplicity each point
    carries (:attr:`CrashTestRecord.weight`).  This is *the* sampling
    function — :func:`run_campaign`, the orchestration service's
    scheduler, and its stateless workers all call it, which is what lets
    a worker re-derive a chunk's snapshots from nothing but the campaign
    config and still produce records bit-identical to a serial run.
    """
    reg = registry()
    tracer = reg.tracer if reg is not None else None
    with maybe_span(tracer, "profile", app=factory.name):
        counting = CountingRuntime()
        profiling_app = factory.make(runtime=counting)
        profiling_app.run()
    window = (counting.window_begin or 0, counting.counter)

    # Node 0 keeps the historical sampling key; higher shards fold
    # their node index in — real SPMD ranks crash a burst at the same
    # wall clock but different instruction counters, and this is what
    # makes an N=1 cluster bit-identical to the plain campaign.
    sample_key = factory.name if cfg.node == 0 else f"{factory.name}#node{cfg.node}"
    points = _sample_crash_points(
        window, cfg.n_tests, cfg.seed, sample_key, cfg.distribution
    )
    return _dedupe_crash_points(points)


def run_campaign(
    factory: AppFactory,
    cfg: CampaignConfig,
    jobs: int | None = None,
    chunk_timeout: float | None = None,
    journal: "str | Path | None" = None,
    retry: "RetryPolicy | None" = None,
    trial_timeout: float | None = None,
    golden: bool | None = None,
    plan: "object | str | Path | None" = None,
    _shard: bool = False,
) -> CampaignResult:
    """Run a full crash-test campaign for one application and plan.

    ``jobs`` fans the classification phase out over worker processes
    (default: ``REPRO_JOBS``, else serial); the record sequence is
    bit-identical at any job count.  ``chunk_timeout`` bounds one chunk's
    wall time before the engine falls back to serial classification.

    ``journal`` points at a write-ahead JSONL journal
    (:mod:`repro.nvct.journal`): completed trials are fsync'd as they
    finish, and a rerun against the same journal skips them — an
    interrupted campaign resumed this way is bit-identical to an
    uninterrupted one.  ``retry`` tunes chunk retries/backoff in the
    parallel engine; ``trial_timeout`` quarantines any single trial that
    exceeds its deadline as a ``FAILED`` record (wall-clock dependent, so
    off by default).

    ``golden`` selects the golden-pass batched snapshot engine
    (:mod:`repro.memsim.golden`): the instrumented run records write-back
    deltas and all N crash images are reconstructed by vectorized replay
    instead of N full heap copies + diffs.  Default: on, unless
    ``REPRO_GOLDEN=0`` (the CLI's ``--no-golden``) selects the legacy
    serial snapshot path — retained as the bit-identical oracle.  It is
    an execution strategy, not a campaign parameter: results, journal
    headers and artifact-cache content keys are unchanged either way.
    Verified mode and multi-core simulation always use the legacy path.

    ``plan`` is a pruned crash plan (a :class:`repro.analysis.equiv_pass.
    CrashPlan` or a path to one emitted by ``repro analyze --emit-plan``):
    only one representative crash point per NVM-image equivalence class —
    plus each class's purity tail — is actually classified, and the
    representative's response is broadcast to the rest of its class.
    Records and every aggregate stay bit-identical to the full campaign
    (same sampled points, same coordinates, deterministically identical
    responses); the plan must have been emitted for exactly this campaign
    (app, params, config, versions) or a :class:`~repro.errors.UsageError`
    is raised.  Requires the golden-pass engine.
    """
    if cfg.nodes > 1 and not _shard:
        from repro.errors import UsageError

        raise UsageError(
            f"config asks for a {cfg.nodes}-node cluster: run it through "
            "repro.cluster.run_cluster_campaign (CLI: `repro campaign "
            "--nodes`), which shards the campaign and orchestrates recovery"
        )
    crash_plan = None
    if plan is not None:
        from repro.analysis.equiv_pass import CrashPlan

        crash_plan = plan if isinstance(plan, CrashPlan) else CrashPlan.load(plan)
        crash_plan.validate_for(factory, cfg)
        if cfg.n_cores > 1 or cfg.verified_mode or golden is False:
            from repro.errors import UsageError

            raise UsageError(
                "a pruned crash plan requires the golden-pass engine: "
                "single-core, non-verified, and not --no-golden"
            )
    from repro.memsim.crashmodel import get_model

    crash_model = get_model(cfg.crash_model)
    if not crash_model.is_default and (cfg.n_cores > 1 or cfg.verified_mode):
        from repro.errors import UsageError

        raise UsageError(
            f"crash model {crash_model.spec!r} requires a single-core, "
            "non-verified campaign (whole-cache-loss is the only model the "
            "multi-core and verified paths support)"
        )
    reg = registry()
    tracer = reg.tracer if reg is not None else None
    with maybe_span(tracer, "campaign", app=factory.name, tests=cfg.n_tests):
        with maybe_span(tracer, "golden", app=factory.name):
            golden_result, _ = factory.golden()

        # Profile pass: total access count and the main-loop crash window,
        # then sample + dedupe the crash points (shared with the
        # orchestration service, which re-derives the same points).
        points, weights = campaign_points(factory, cfg)
        if crash_plan is not None and (
            crash_plan.points != [int(p) for p in points]
            or crash_plan.weights != [int(w) for w in weights]
        ):
            from repro.errors import UsageError

            raise UsageError(
                "crash plan's sampled points disagree with this campaign's "
                "sampling — the plan is stale; re-emit with "
                "`repro analyze --emit-plan`"
            )
        use_golden = crash_plan is not None or (
            (golden if golden is not None else _golden_default())
            and cfg.n_cores == 1
            and not cfg.verified_mode
            and points.size > 0
        )
        with maybe_span(tracer, "instrumented_run", app=factory.name):
            rt, iterations = _instrumented_run(factory, cfg, points, golden=use_golden)
        store = rt.golden_store() if use_golden else None
        n_snaps = store.n_images if store is not None else len(rt.snapshots)
        if n_snaps != points.size:
            raise RuntimeError(
                f"{factory.name}: {points.size} crash points but {n_snaps} snapshots"
            )
        if crash_plan is not None:
            from repro.analysis.equiv_pass import partition_signatures

            assert store is not None
            if partition_signatures(store.image_signatures()) != crash_plan.class_ids:
                raise RuntimeError(
                    "crash plan is stale: the recorded write-back partition "
                    "differs from the plan's equivalence classes — re-emit "
                    "with `repro analyze --emit-plan`"
                )

        from repro.nvct.parallel import DEFAULT_CHUNK_TIMEOUT, classify_snapshots, resolve_jobs

        journal_obj = None
        completed: dict[int, CrashTestRecord] = {}
        if journal is not None:
            from repro.nvct.journal import CampaignJournal, campaign_header

            journal_obj, completed = CampaignJournal.open_or_resume(
                journal, campaign_header(factory, cfg)
            )

        n_jobs = resolve_jobs(jobs)
        records: list[CrashTestRecord | None] = [None] * n_snaps
        for i, rec in completed.items():
            if 0 <= i < n_snaps:
                records[i] = rec
        to_run = (
            crash_plan.executed_indices()
            if crash_plan is not None
            else range(n_snaps)
        )
        missing = [i for i in to_run if records[i] is None]
        try:
            with maybe_span(
                tracer, "classify", app=factory.name, tests=n_snaps,
                replayed=n_snaps - len(missing),
            ):
                if n_jobs > 1 and len(missing) > 1:

                    def _sink(local: int, rec: CrashTestRecord) -> None:
                        if journal_obj is not None:
                            journal_obj.append(missing[local], rec)

                    if store is not None:
                        from repro.memsim.golden import GoldenSnapshotSource

                        batch: "object" = GoldenSnapshotSource(store, missing)
                    else:
                        batch = [rt.snapshots[i] for i in missing]
                    fanned = classify_snapshots(
                        factory,
                        batch,
                        golden_result.iterations,
                        cfg,
                        jobs=n_jobs,
                        chunk_timeout=chunk_timeout or DEFAULT_CHUNK_TIMEOUT,
                        retry=retry,
                        record_sink=_sink if journal_obj is not None else None,
                    )
                    for i, rec in zip(missing, fanned):
                        records[i] = rec
                else:
                    # In-process streaming: golden snapshots are *borrowed*
                    # zero-copy views, consumed one trial at a time.
                    snaps = (
                        store.snapshots(missing)
                        if store is not None
                        else (rt.snapshots[i] for i in missing)
                    )
                    for i, snap in zip(missing, snaps):
                        rec = _classify_trial(
                            factory, snap, golden_result.iterations,
                            cfg, trial_timeout,
                        )
                        records[i] = rec
                        if journal_obj is not None:
                            journal_obj.append(i, rec)
        finally:
            if journal_obj is not None:
                journal_obj.close()
        if crash_plan is not None:
            _broadcast_plan_records(crash_plan, records, store)
        assert all(r is not None for r in records)
        # Weights derive deterministically from the seed, so re-applying
        # them on a journal resume reproduces the uninterrupted result.
        for rec, w in zip(records, weights):
            rec.weight = int(w)  # type: ignore[union-attr]
        if reg is not None:
            rt.publish_metrics(reg)
            reg.counter("campaign.runs", unit="campaigns").inc()
            reg.counter("campaign.tests", unit="tests").inc(len(records))
            for rec in records:  # type: ignore[assignment]
                reg.counter(
                    f"campaign.response.{rec.response.name}", unit="tests"
                ).inc()
    return CampaignResult(
        app=factory.name,
        plan=cfg.plan,
        records=records,  # type: ignore[arg-type]
        run_stats=_run_stats(rt, iterations),
        golden_iterations=golden_result.iterations,
        executed_trials=len(list(to_run)),
        crash_model=crash_model.spec,
    )

"""Shared experiment state: factories, plans, campaigns, measurements.

The paper's experiments reuse the same campaigns across tables and
figures (the EasyCrash plan feeds Fig. 6, Table 4, Figs. 7-11).  The
context caches every expensive artifact at two levels:

* **in process** — keyed by ``(app, label, content fingerprint)``, so a
  figure driver asking twice pays once, and two different plans under
  the same label can never collide;
* **on disk** (optional) — the content-addressed
  :class:`~repro.harness.cache.ArtifactCache`, enabled by pointing
  ``REPRO_CACHE_DIR`` at a directory.  A warm second session then
  recomputes nothing: every campaign, measurement, and planning report
  is loaded from disk (see :meth:`ExperimentContext.cache_stats` and the
  ``campaign_computations`` counter).

``REPRO_BENCH_SCALE`` (environment) scales the campaign sizes: ``quick``
(CI-sized), ``default``, or ``paper`` (closer to the paper's 1000-2000
tests; slow).  ``REPRO_JOBS`` sets the worker count of the parallel
campaign engine (:mod:`repro.nvct.parallel`): classification fans out
within each campaign, and :meth:`ExperimentContext.prefetch_campaigns`
runs independent per-application campaigns concurrently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppFactory
from repro.apps.registry import APP_NAMES, get_factory
from repro.core.planner import EasyCrashConfig, EasyCrashPlanReport, plan_easycrash
from repro.harness.cache import (
    ArtifactCache,
    campaign_key,
    measure_key,
    plan_report_key,
)
from repro.nvct.campaign import (
    CampaignConfig,
    CampaignResult,
    RunStats,
    measure_run,
    run_campaign,
)
from repro.nvct.parallel import resolve_jobs, run_campaigns
from repro.nvct.plan import PersistencePlan
from repro.perf.costmodel import CostModel

__all__ = ["ExperimentSettings", "ExperimentContext", "get_context"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Campaign sizes and shared configuration for the harness."""

    n_tests: int = 120  # validation campaigns
    planner_tests: int = 200  # planning campaigns (steps 1-3)
    refinement_tests: int = 100
    seed: int = 2020
    ts: float = 0.03

    @staticmethod
    def from_env() -> "ExperimentSettings":
        scale = os.environ.get("REPRO_BENCH_SCALE", "default")
        if scale == "quick":
            return ExperimentSettings(n_tests=40, planner_tests=80, refinement_tests=40)
        if scale == "paper":
            return ExperimentSettings(
                n_tests=400, planner_tests=1000, refinement_tests=300
            )
        return ExperimentSettings()


class ExperimentContext:
    """Lazily computed, cached per-application experiment artifacts.

    ``cache`` overrides the disk cache (default: ``REPRO_CACHE_DIR``,
    else none); ``jobs`` overrides the parallel-engine worker count
    (default: ``REPRO_JOBS``, else serial).
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        cache: ArtifactCache | None = None,
        jobs: int | None = None,
    ):
        self.settings = settings or ExperimentSettings.from_env()
        self.cost_model = CostModel()
        self.disk_cache = cache if cache is not None else ArtifactCache.from_env()
        self.jobs = resolve_jobs(jobs)
        self._plans: dict[tuple[str, str], EasyCrashPlanReport] = {}
        self._campaigns: dict[tuple[str, str, str], CampaignResult] = {}
        self._measures: dict[tuple[str, str, str], RunStats] = {}
        # Number of artifacts actually recomputed (not served by any
        # cache) — a warm-disk-cache session keeps all three at zero.
        self.campaign_computations = 0
        self.measure_computations = 0
        self.plan_computations = 0

    def cache_stats(self) -> dict[str, int]:
        """Disk-cache counters plus this session's recomputation counts."""
        out = self.disk_cache.stats() if self.disk_cache else {
            "hits": 0, "misses": 0, "errors": 0, "stores": 0
        }
        out["campaign_computations"] = self.campaign_computations
        out["measure_computations"] = self.measure_computations
        out["plan_computations"] = self.plan_computations
        return out

    # -- primitives -----------------------------------------------------------

    def factory(self, name: str) -> AppFactory:
        return get_factory(name)

    def app_names(self) -> tuple[str, ...]:
        return APP_NAMES

    def _planner_config(self) -> EasyCrashConfig:
        return EasyCrashConfig(
            n_tests=self.settings.planner_tests,
            seed=self.settings.seed,
            ts=self.settings.ts,
            refinement_tests=self.settings.refinement_tests,
        )

    def plan_report(self, name: str) -> EasyCrashPlanReport:
        """The EasyCrash planning workflow output for one application."""
        cfg = self._planner_config()
        key = (name, plan_report_key(self.factory(name), cfg))
        if key not in self._plans:
            report = self.disk_cache.get_plan_report(key[1]) if self.disk_cache else None
            if report is None:
                report = plan_easycrash(self.factory(name), cfg)
                self.plan_computations += 1
                if self.disk_cache:
                    self.disk_cache.put_plan_report(key[1], report)
            self._plans[key] = report
        return self._plans[key]

    def _campaign_config(
        self,
        plan: PersistencePlan,
        verified: bool = False,
        n_tests: int | None = None,
    ) -> CampaignConfig:
        return CampaignConfig(
            n_tests=n_tests or self.settings.n_tests,
            seed=self.settings.seed + 1,  # independent of planning seed
            plan=plan,
            verified_mode=verified,
        )

    def campaign(
        self,
        name: str,
        plan: PersistencePlan,
        label: str,
        verified: bool = False,
        n_tests: int | None = None,
    ) -> CampaignResult:
        """A crash campaign for (application, plan).

        The cache key is the campaign's *content* (plan fingerprint and
        full configuration), so equal labels with different plans are
        distinct entries; ``label`` only aids debugging/reporting.
        """
        cfg = self._campaign_config(plan, verified, n_tests)
        key = (name, label, campaign_key(self.factory(name), cfg))
        if key not in self._campaigns:
            result = self.disk_cache.get_campaign(key[2]) if self.disk_cache else None
            if result is None:
                result = run_campaign(self.factory(name), cfg, jobs=self.jobs)
                self.campaign_computations += 1
                if self.disk_cache:
                    self.disk_cache.put_campaign(key[2], result)
            self._campaigns[key] = result
        return self._campaigns[key]

    def prefetch_campaigns(
        self,
        requests: list[tuple[str, PersistencePlan, str]],
        verified: bool = False,
        n_tests: int | None = None,
    ) -> list[CampaignResult]:
        """Compute many independent ``(name, plan, label)`` campaigns at
        once, fanning whole campaigns out over ``self.jobs`` workers
        (application-level parallelism), and fill both cache levels.
        Returns the campaigns in request order."""
        missing: list[tuple[tuple[str, str, str], AppFactory, CampaignConfig]] = []
        keys = []
        for name, plan, label in requests:
            cfg = self._campaign_config(plan, verified, n_tests)
            key = (name, label, campaign_key(self.factory(name), cfg))
            keys.append(key)
            if key in self._campaigns or any(k == key for k, _, _ in missing):
                continue
            cached = self.disk_cache.get_campaign(key[2]) if self.disk_cache else None
            if cached is not None:
                self._campaigns[key] = cached
            else:
                missing.append((key, self.factory(name), cfg))
        if missing:
            results = run_campaigns([(f, c) for _, f, c in missing], jobs=self.jobs)
            for (key, _, _), result in zip(missing, results):
                self.campaign_computations += 1
                if self.disk_cache:
                    self.disk_cache.put_campaign(key[2], result)
                self._campaigns[key] = result
        return [self._campaigns[k] for k in keys]

    def measure(self, name: str, plan: PersistencePlan, label: str) -> RunStats:
        """Event counts of an instrumented production run under ``plan``."""
        cfg = CampaignConfig(plan=plan)
        key = (name, label, measure_key(self.factory(name), cfg))
        if key not in self._measures:
            stats = self.disk_cache.get_stats(key[2]) if self.disk_cache else None
            if stats is None:
                stats = measure_run(self.factory(name), cfg)
                self.measure_computations += 1
                if self.disk_cache:
                    self.disk_cache.put_stats(key[2], stats)
            self._measures[key] = stats
        return self._measures[key]

    # -- derived plans -----------------------------------------------------------

    def candidates(self, name: str) -> tuple[str, ...]:
        app = self.factory(name).make(None)
        return tuple(o.name for o in app.ws.heap.candidates())

    def plan_none(self) -> PersistencePlan:
        return PersistencePlan.none()

    def plan_baseline_no_iterator(self) -> PersistencePlan:
        return PersistencePlan.none(persist_iterator=False)

    def plan_easycrash(self, name: str) -> PersistencePlan:
        return self.plan_report(name).plan

    def plan_selected_at_loop(self, name: str) -> PersistencePlan:
        """Flush the selected critical objects at every iteration end
        (the "selecting data objects" stage of Fig. 6)."""
        crit = self.plan_report(name).critical_objects
        if not crit:
            return PersistencePlan.none()
        return PersistencePlan.at_loop_end(list(crit))

    def plan_all_candidates_at_loop(self, name: str) -> PersistencePlan:
        """Flush all candidate objects every iteration (the no-selection
        baseline of Fig. 5 / Table 4 / Fig. 7)."""
        return PersistencePlan.at_loop_end(list(self.candidates(name)))

    def plan_best(self, name: str) -> PersistencePlan:
        """The paper's costly "best recomputability" configuration:
        critical objects persisted at every code region and at every
        iteration end."""
        crit = self.plan_report(name).critical_objects
        if not crit:
            crit = self.candidates(name)
        return PersistencePlan.per_region(
            list(crit),
            {r: 1 for r in self.factory(name).regions},
            at_iteration_end=True,
        )

    # -- aggregates -------------------------------------------------------------

    def easycrash_recomputability(self, name: str) -> float:
        return self.campaign(name, self.plan_easycrash(name), "easycrash").recomputability()

    def average_easycrash_recomputability(self, apps: tuple[str, ...] | None = None) -> float:
        """Average EasyCrash recomputability over the evaluated apps; the
        paper excludes EP (recomputability ~0, cannot clear τ)."""
        names = [a for a in (apps or self.app_names()) if a != "EP"]
        return float(np.mean([self.easycrash_recomputability(n) for n in names]))


_context: ExperimentContext | None = None


def get_context() -> ExperimentContext:
    """Process-wide shared context (one per benchmark session)."""
    global _context
    if _context is None:
        _context = ExperimentContext()
    return _context

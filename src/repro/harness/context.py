"""Shared experiment state: factories, plans, campaigns, measurements.

The paper's experiments reuse the same campaigns across tables and
figures (the EasyCrash plan feeds Fig. 6, Table 4, Figs. 7-11).  The
context caches every expensive artifact by application so a full
benchmark session pays for each campaign once.

``REPRO_BENCH_SCALE`` (environment) scales the campaign sizes: ``quick``
(CI-sized), ``default``, or ``paper`` (closer to the paper's 1000-2000
tests; slow).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import AppFactory
from repro.apps.registry import APP_NAMES, get_factory
from repro.core.planner import EasyCrashConfig, EasyCrashPlanReport, plan_easycrash
from repro.memsim.config import HierarchyConfig
from repro.nvct.campaign import (
    CampaignConfig,
    CampaignResult,
    RunStats,
    measure_run,
    run_campaign,
)
from repro.nvct.plan import PersistencePlan
from repro.perf.costmodel import CostModel

__all__ = ["ExperimentSettings", "ExperimentContext", "get_context"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Campaign sizes and shared configuration for the harness."""

    n_tests: int = 120  # validation campaigns
    planner_tests: int = 200  # planning campaigns (steps 1-3)
    refinement_tests: int = 100
    seed: int = 2020
    ts: float = 0.03

    @staticmethod
    def from_env() -> "ExperimentSettings":
        scale = os.environ.get("REPRO_BENCH_SCALE", "default")
        if scale == "quick":
            return ExperimentSettings(n_tests=40, planner_tests=80, refinement_tests=40)
        if scale == "paper":
            return ExperimentSettings(
                n_tests=400, planner_tests=1000, refinement_tests=300
            )
        return ExperimentSettings()


class ExperimentContext:
    """Lazily computed, cached per-application experiment artifacts."""

    def __init__(self, settings: ExperimentSettings | None = None):
        self.settings = settings or ExperimentSettings.from_env()
        self.cost_model = CostModel()
        self._plans: dict[str, EasyCrashPlanReport] = {}
        self._campaigns: dict[tuple[str, str], CampaignResult] = {}
        self._measures: dict[tuple[str, str], RunStats] = {}

    # -- primitives -----------------------------------------------------------

    def factory(self, name: str) -> AppFactory:
        return get_factory(name)

    def app_names(self) -> tuple[str, ...]:
        return APP_NAMES

    def plan_report(self, name: str) -> EasyCrashPlanReport:
        """The EasyCrash planning workflow output for one application."""
        if name not in self._plans:
            cfg = EasyCrashConfig(
                n_tests=self.settings.planner_tests,
                seed=self.settings.seed,
                ts=self.settings.ts,
                refinement_tests=self.settings.refinement_tests,
            )
            self._plans[name] = plan_easycrash(self.factory(name), cfg)
        return self._plans[name]

    def campaign(
        self,
        name: str,
        plan: PersistencePlan,
        label: str,
        verified: bool = False,
        n_tests: int | None = None,
    ) -> CampaignResult:
        """A crash campaign for (application, plan), cached by label."""
        key = (name, label)
        if key not in self._campaigns:
            cfg = CampaignConfig(
                n_tests=n_tests or self.settings.n_tests,
                seed=self.settings.seed + 1,  # independent of planning seed
                plan=plan,
                verified_mode=verified,
            )
            self._campaigns[key] = run_campaign(self.factory(name), cfg)
        return self._campaigns[key]

    def measure(self, name: str, plan: PersistencePlan, label: str) -> RunStats:
        """Event counts of an instrumented production run under ``plan``."""
        key = (name, label)
        if key not in self._measures:
            cfg = CampaignConfig(plan=plan)
            self._measures[key] = measure_run(self.factory(name), cfg)
        return self._measures[key]

    # -- derived plans -----------------------------------------------------------

    def candidates(self, name: str) -> tuple[str, ...]:
        app = self.factory(name).make(None)
        return tuple(o.name for o in app.ws.heap.candidates())

    def plan_none(self) -> PersistencePlan:
        return PersistencePlan.none()

    def plan_baseline_no_iterator(self) -> PersistencePlan:
        return PersistencePlan.none(persist_iterator=False)

    def plan_easycrash(self, name: str) -> PersistencePlan:
        return self.plan_report(name).plan

    def plan_selected_at_loop(self, name: str) -> PersistencePlan:
        """Flush the selected critical objects at every iteration end
        (the "selecting data objects" stage of Fig. 6)."""
        crit = self.plan_report(name).critical_objects
        if not crit:
            return PersistencePlan.none()
        return PersistencePlan.at_loop_end(list(crit))

    def plan_all_candidates_at_loop(self, name: str) -> PersistencePlan:
        """Flush all candidate objects every iteration (the no-selection
        baseline of Fig. 5 / Table 4 / Fig. 7)."""
        return PersistencePlan.at_loop_end(list(self.candidates(name)))

    def plan_best(self, name: str) -> PersistencePlan:
        """The paper's costly "best recomputability" configuration:
        critical objects persisted at every code region and at every
        iteration end."""
        crit = self.plan_report(name).critical_objects
        if not crit:
            crit = self.candidates(name)
        return PersistencePlan.per_region(
            list(crit),
            {r: 1 for r in self.factory(name).regions},
            at_iteration_end=True,
        )

    # -- aggregates -------------------------------------------------------------

    def easycrash_recomputability(self, name: str) -> float:
        return self.campaign(name, self.plan_easycrash(name), "easycrash").recomputability()

    def average_easycrash_recomputability(self, apps: tuple[str, ...] | None = None) -> float:
        """Average EasyCrash recomputability over the evaluated apps; the
        paper excludes EP (recomputability ~0, cannot clear τ)."""
        names = [a for a in (apps or self.app_names()) if a != "EP"]
        return float(np.mean([self.easycrash_recomputability(n) for n in names]))


_context: ExperimentContext | None = None


def get_context() -> ExperimentContext:
    """Process-wide shared context (one per benchmark session)."""
    global _context
    if _context is None:
        _context = ExperimentContext()
    return _context

"""Per-table / per-figure experiment drivers.

Each function regenerates one table or figure of the paper's evaluation
as rows of an ASCII table (the same rows/series the paper plots), using
the shared :class:`~repro.harness.context.ExperimentContext`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.harness.context import ExperimentContext
from repro.nvct.campaign import Response
from repro.nvct.plan import PersistencePlan
from repro.perf.nvmconfigs import BW1_6, BW1_8, DRAM, LAT4X, LAT8X, OPTANE
from repro.system.efficiency import (
    SystemParams,
    efficiency_baseline,
    efficiency_easycrash,
    recomputability_threshold,
)
from repro.system.mtbf import HOUR, mtbf_for_nodes
from repro.util.tables import render_table

__all__ = [
    "ExperimentReport",
    "table1_characteristics",
    "fig3_responses",
    "fig4_mg_objects",
    "fig4_mg_regions",
    "fig5_selection_strategies",
    "fig6_easycrash",
    "table4_overhead",
    "fig7_nvm_sensitivity",
    "fig8_optane",
    "fig9_nvm_writes",
    "fig10_system_efficiency",
    "fig11_scaling",
    "headline_claims",
]


@dataclass
class ExperimentReport:
    """A regenerated table/figure, ready to print or persist."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[list[object]]
    notes: str = ""

    def render(self, float_fmt: str = "{:.3f}") -> str:
        out = render_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}",
                           float_fmt=float_fmt)
        if self.notes:
            out += f"\n({self.notes})"
        return out

    @property
    def stem(self) -> str:
        """Artifact file stem shared by the text report and its JSON twin."""
        return self.experiment_id.lower().replace(" ", "_")

    def to_dict(self) -> dict[str, object]:
        """JSON-safe machine-readable twin of the rendered table."""

        def cell(v: object) -> object:
            if isinstance(v, (np.integer,)):
                return int(v)
            if isinstance(v, (np.floating,)):
                return float(v)
            if isinstance(v, (str, int, float, bool)) or v is None:
                return v
            return str(v)

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": [str(h) for h in self.headers],
            "rows": [[cell(c) for c in row] for row in self.rows],
            "notes": self.notes,
        }

    def save(self, directory: str | Path) -> Path:
        from repro.obs.export import write_text

        return write_text(Path(directory) / f"{self.stem}.txt", self.render())

    def save_json(self, directory: str | Path, **extra: object) -> Path:
        from repro.obs.export import git_sha, write_json

        doc = self.to_dict()
        doc.setdefault("git_sha", git_sha())
        doc.update(extra)
        return write_json(Path(directory) / f"{self.stem}.json", doc)


def _fmt_bytes(n: int) -> str:
    for unit, div in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return f"{n}B"


# -- Table 1 ---------------------------------------------------------------------


def table1_characteristics(ctx: ExperimentContext) -> ExperimentReport:
    """Benchmark information for the crash experiments."""
    rows: list[list[object]] = []
    for name in ctx.app_names():
        fac = ctx.factory(name)
        report = ctx.plan_report(name)
        base = report.baseline_campaign
        app = fac.make(None)
        heap = app.ws.heap
        crit_bytes = sum(heap.objects[n].nbytes for n in report.critical_objects)
        mem = base.run_stats.memory
        first = next(iter(mem.per_level.values()))
        rw = first.read_accesses / max(1, first.write_accesses + mem.nvm_writes_from_nt)
        extra = base.mean_extra_iterations()
        fractions = base.response_fractions()
        if fractions[Response.S3] > max(fractions[Response.S2], 0.2):
            extra_s = "N/A (segfault)"
        elif fractions[Response.S4] > 0.6 and math.isnan(extra):
            extra_s = "N/A (verification fails)"
        elif math.isnan(extra):
            extra_s = "0"
        else:
            extra_s = f"{extra:.1f}"
        golden_iters, _ = fac.golden()
        rows.append(
            [
                name,
                len(fac.regions),
                f"{rw:.1f}:1",
                _fmt_bytes(heap.footprint_bytes()),
                _fmt_bytes(heap.candidate_bytes()),
                _fmt_bytes(crit_bytes),
                extra_s,
                golden_iters.iterations,
            ]
        )
    return ExperimentReport(
        "Table 1",
        "Benchmark information for crash experiments",
        ["Benchmark", "#regions", "R/W", "Footprint", "Candidate DO", "Critical DO",
         "Extra iters to restart", "Total iters"],
        rows,
    )


# -- Figure 3 ---------------------------------------------------------------------


def fig3_responses(ctx: ExperimentContext) -> ExperimentReport:
    """Application responses after crash and restart (no persistence)."""
    rows = []
    for name in ctx.app_names():
        base = ctx.plan_report(name).baseline_campaign
        fr = base.response_fractions()
        rows.append(
            [name, fr[Response.S1], fr[Response.S2], fr[Response.S3], fr[Response.S4]]
        )
    avg = [float(np.mean([r[i] for r in rows])) for i in range(1, 5)]
    rows.append(["Average", *avg])
    return ExperimentReport(
        "Figure 3",
        "Responses after crash+restart: S1 ok, S2 extra iters, S3 interruption, S4 verify fails",
        ["Benchmark", "S1", "S2", "S3", "S4"],
        rows,
    )


# -- Figure 4 ---------------------------------------------------------------------


def fig4_mg_objects(ctx: ExperimentContext) -> ExperimentReport:
    """MG recomputability persisting individual data objects (Fig. 4a)."""
    rows: list[list[object]] = []
    base = ctx.campaign("MG", ctx.plan_none(), "fig4-none")
    rows.append(["none (iterator only)", base.recomputability()])
    for obj in ("u", "r", "monitor"):
        camp = ctx.campaign(
            "MG", PersistencePlan.at_loop_end([obj]), f"fig4-obj-{obj}"
        )
        rows.append([f"persist {obj}", camp.recomputability()])
    return ExperimentReport(
        "Figure 4a",
        "MG recomputability persisting different data objects (each iteration)",
        ["Strategy", "Recomputability"],
        rows,
        notes="paper: persisting u helps most (27% -> 63%); r barely helps",
    )


def fig4_mg_regions(ctx: ExperimentContext) -> ExperimentReport:
    """MG recomputability persisting u at different code regions (Fig. 4b)."""
    rows: list[list[object]] = []
    base = ctx.campaign("MG", ctx.plan_none(), "fig4-none")
    rows.append(["none", base.recomputability()])
    for region in ctx.factory("MG").regions:
        camp = ctx.campaign(
            "MG",
            PersistencePlan.per_region(["u"], {region: 1}),
            f"fig4-region-{region}",
        )
        rows.append([f"persist u at {region}", camp.recomputability()])
    camp = ctx.campaign("MG", PersistencePlan.at_loop_end(["u"]), "fig4-obj-u")
    rows.append(["persist u at iteration end", camp.recomputability()])
    return ExperimentReport(
        "Figure 4b",
        "MG recomputability persisting u at different code regions",
        ["Strategy", "Recomputability"],
        rows,
        notes="paper: one region (R3) stands out; others improve little",
    )


# -- Figure 5 ---------------------------------------------------------------------


def fig5_selection_strategies(ctx: ExperimentContext) -> ExperimentReport:
    """No persistence vs selected objects vs all candidates (Fig. 5)."""
    rows = []
    for name in ctx.app_names():
        base = ctx.plan_report(name).baseline_campaign
        selected = ctx.campaign(name, ctx.plan_selected_at_loop(name), "fig5-selected")
        allcand = ctx.campaign(name, ctx.plan_all_candidates_at_loop(name), "fig5-all")
        rows.append(
            [name, base.recomputability(), selected.recomputability(), allcand.recomputability()]
        )
    return ExperimentReport(
        "Figure 5",
        "Recomputability under three persistence strategies",
        ["Benchmark", "No DO", "Selected DO", "All candidate DO"],
        rows,
        notes="paper: selected vs all differ by < 3%",
    )


# -- Figure 6 ---------------------------------------------------------------------


def fig6_easycrash(ctx: ExperimentContext) -> ExperimentReport:
    """Recomputability: baseline -> +object selection -> +region selection,
    vs best and verified (Fig. 6).  EP is excluded as in the paper."""
    rows = []
    apps = [a for a in ctx.app_names() if a != "EP"]
    for name in apps:
        report = ctx.plan_report(name)
        base = report.baseline_campaign.recomputability()
        sel = ctx.campaign(name, ctx.plan_selected_at_loop(name), "fig5-selected").recomputability()
        ec = ctx.campaign(name, ctx.plan_easycrash(name), "easycrash").recomputability()
        exhaustive = ctx.campaign(name, ctx.plan_best(name), "fig6-best").recomputability()
        # The paper's "best" is the envelope of the costly configurations.
        # Under iteration-granular restart, mid-iteration region flushes
        # can *hurt* idempotency-fragile apps, so the envelope includes the
        # loop-boundary variant.
        best = max(exhaustive, sel, ec)
        vfy = ctx.campaign(
            name, ctx.plan_easycrash(name), "fig6-vfy", verified=True
        ).recomputability()
        rows.append([name, base, sel, ec, best, vfy])
    avg = [float(np.mean([r[i] for r in rows])) for i in range(1, 6)]
    rows.append(["Average", *avg])
    return ExperimentReport(
        "Figure 6",
        "Recomputability with different methods (EC = EasyCrash, VFY = verified)",
        ["Benchmark", "w/o EC", "+obj selection", "EasyCrash", "best", "VFY"],
        rows,
        notes="paper: avg 28% -> 82% with EasyCrash; EC within 5% of best except CG",
    )


# -- Table 4 ---------------------------------------------------------------------


def table4_overhead(ctx: ExperimentContext) -> ExperimentReport:
    """Normalized execution time of persistence (Table 4)."""
    rows = []
    cm = ctx.cost_model
    apps = [a for a in ctx.app_names() if a != "EP"]
    for name in apps:
        baseline = ctx.measure(name, ctx.plan_baseline_no_iterator(), "t4-baseline")
        ec = ctx.measure(name, ctx.plan_easycrash(name), "t4-ec")
        allc = ctx.measure(name, ctx.plan_all_candidates_at_loop(name), "t4-all")
        best = ctx.measure(name, ctx.plan_best(name), "t4-best")
        n_ops = ec.persist_op_count
        flush_time = cm.run_cost(ec.memory).flushes
        persist_once = flush_time / max(1, n_ops)
        scale = ctx.factory(name).compute_intensity
        rows.append(
            [
                name,
                persist_once,
                n_ops,
                cm.normalized_time(ec.memory, baseline.memory, compute_scale=scale),
                cm.normalized_time(allc.memory, baseline.memory, compute_scale=scale),
                cm.normalized_time(best.memory, baseline.memory, compute_scale=scale),
            ]
        )
    avg = [float(np.mean([r[i] for r in rows])) for i in range(1, 6)]
    rows.append(["Average", *avg])
    return ExperimentReport(
        "Table 4",
        "Normalized execution time (model units; EC vs no selection vs best)",
        ["Benchmark", "Persist-once cost", "#persist ops", "Norm. time EC",
         "Norm. time persist-all", "Norm. time best"],
        rows,
        notes="paper: EC 1.5% avg overhead; persist-all 19%; best 35%",
    )


# -- Figures 7 & 8 ---------------------------------------------------------------------


def _nvm_rows(ctx: ExperimentContext, configs) -> list[list[object]]:
    rows = []
    apps = [a for a in ctx.app_names() if a != "EP"]
    for name in apps:
        baseline = ctx.measure(name, ctx.plan_baseline_no_iterator(), "t4-baseline")
        ec = ctx.measure(name, ctx.plan_easycrash(name), "t4-ec")
        allc = ctx.measure(name, ctx.plan_all_candidates_at_loop(name), "t4-all")
        scale = ctx.factory(name).compute_intensity
        row: list[object] = [name]
        for cfg in configs:
            row.append(ctx.cost_model.normalized_time(ec.memory, baseline.memory, cfg, compute_scale=scale))
            row.append(ctx.cost_model.normalized_time(allc.memory, baseline.memory, cfg, compute_scale=scale))
        rows.append(row)
    avg = [float(np.mean([r[i] for r in rows])) for i in range(1, 1 + 2 * len(configs))]
    rows.append(["Average", *avg])
    return rows


def fig7_nvm_sensitivity(ctx: ExperimentContext) -> ExperimentReport:
    """Normalized time with/without EasyCrash on emulated NVM (Fig. 7)."""
    configs = (LAT4X, LAT8X, BW1_6, BW1_8)
    headers = ["Benchmark"]
    for cfg in configs:
        headers += [f"EC {cfg.name}", f"no-EC {cfg.name}"]
    return ExperimentReport(
        "Figure 7",
        "Normalized execution time on emulated NVM (Quartz-style configs)",
        headers,
        _nvm_rows(ctx, configs),
        notes="paper: EC <9% (2.3% avg); no-EC 48%/62%/21%/22% for the four configs",
    )


def fig8_optane(ctx: ExperimentContext) -> ExperimentReport:
    """Normalized time on the Optane DC PMM preset (Fig. 8)."""
    return ExperimentReport(
        "Figure 8",
        "Normalized execution time on Optane DC PMM",
        ["Benchmark", "EC Optane DC PMM", "no-EC Optane DC PMM"],
        _nvm_rows(ctx, (OPTANE,)),
        notes="paper: EC 6% avg overhead; no-EC 50%",
    )


# -- Figure 9 ---------------------------------------------------------------------


def fig9_nvm_writes(ctx: ExperimentContext) -> ExperimentReport:
    """Normalized number of NVM writes: EasyCrash vs C/R (Fig. 9)."""
    from repro.checkpoint.cr import checkpoint_write_experiment

    rows = []
    apps = [a for a in ctx.app_names() if a != "EP"]
    for name in apps:
        report = ctx.plan_report(name)
        res = checkpoint_write_experiment(
            ctx.factory(name),
            list(report.critical_objects) or list(ctx.candidates(name)),
            ctx.plan_easycrash(name),
        )
        rows.append(
            [
                name,
                res["easycrash"].normalized,
                res["cr_critical"].normalized,
                res["cr_all"].normalized,
            ]
        )
    avg = [float(np.mean([r[i] for r in rows])) for i in range(1, 4)]
    rows.append(["Average", *avg])
    return ExperimentReport(
        "Figure 9",
        "NVM writes normalized to the run without persistence or checkpoints",
        ["Benchmark", "EasyCrash", "C/R critical DO", "C/R all DO"],
        rows,
        notes="paper: EC +16% writes vs C/R +38%/+50% (44% avg reduction)",
    )


# -- Figures 10 & 11 ---------------------------------------------------------------------


def _ec_inputs(ctx: ExperimentContext, name: str) -> tuple[float, float]:
    """(recomputability, measured ts) for the system model.

    A finite campaign cannot certify R = 1 (and the paper's model divides
    by 1-R), so the point estimate is Laplace-smoothed: with n tests and
    s successes, R = (s + 0.5) / (n + 1).
    """
    camp = ctx.campaign(name, ctx.plan_easycrash(name), "easycrash")
    n = camp.n_tests
    s = camp.recomputability() * n
    r = (s + 0.5) / (n + 1)
    baseline = ctx.measure(name, ctx.plan_baseline_no_iterator(), "t4-baseline")
    ec = ctx.measure(name, ctx.plan_easycrash(name), "t4-ec")
    scale = ctx.factory(name).compute_intensity
    ts = max(
        0.0,
        ctx.cost_model.normalized_time(ec.memory, baseline.memory, compute_scale=scale) - 1.0,
    )
    return r, min(ts, 0.2)


def fig10_system_efficiency(ctx: ExperimentContext) -> ExperimentReport:
    """System efficiency with/without EasyCrash, MTBF 12 h (Fig. 10)."""
    apps = [a for a in ctx.app_names() if a != "EP"]
    per_app = {name: _ec_inputs(ctx, name) for name in apps}
    avg_r = float(np.mean([v[0] for v in per_app.values()]))
    avg_ts = float(np.mean([v[1] for v in per_app.values()]))
    ec_vals = {n: v[0] for n, v in per_app.items()}
    lowest = min(ec_vals, key=ec_vals.get)
    highest = max(ec_vals, key=ec_vals.get)
    rows = []
    for t_chk in (32.0, 320.0, 3200.0):
        p = SystemParams(mtbf_s=12 * HOUR, t_chk_s=t_chk)
        base_eff = efficiency_baseline(p)
        row: list[object] = [f"T_chk={int(t_chk)}s", base_eff]
        for label, (r, ts) in (
            (lowest, per_app[lowest]),
            (highest, per_app[highest]),
            ("avg", (avg_r, avg_ts)),
        ):
            row.append(efficiency_easycrash(p, r, ts))
        row.append(recomputability_threshold(p, avg_ts))
        rows.append(row)
    return ExperimentReport(
        "Figure 10",
        f"System efficiency, MTBF 12h (lowest={lowest}, highest={highest})",
        ["Scenario", "no EC", f"EC {lowest}", f"EC {highest}", "EC avg", "tau"],
        rows,
        notes="paper: EC improves efficiency by 2%/3%/15% at 32/320/3200 s",
    )


def fig11_scaling(ctx: ExperimentContext) -> ExperimentReport:
    """CG system efficiency vs machine scale (Fig. 11)."""
    r, ts = _ec_inputs(ctx, "CG")
    rows = []
    for t_chk in (32.0, 3200.0):
        for nodes in (100_000, 200_000, 400_000):
            p = SystemParams(mtbf_s=mtbf_for_nodes(nodes), t_chk_s=t_chk)
            rows.append(
                [
                    f"T_chk={int(t_chk)}s, {nodes // 1000}k nodes",
                    efficiency_baseline(p),
                    efficiency_easycrash(p, r, ts),
                ]
            )
    return ExperimentReport(
        "Figure 11",
        "CG system efficiency scaling with machine size",
        ["Scenario", "no EC", "with EC"],
        rows,
        notes="paper: the EC advantage grows as the system scales",
    )


# -- Headline ---------------------------------------------------------------------


def headline_claims(ctx: ExperimentContext) -> ExperimentReport:
    """The paper's summary numbers, recomputed end to end."""
    apps = [a for a in ctx.app_names() if a != "EP"]
    base_rs = [ctx.plan_report(n).baseline_campaign.recomputability() for n in apps]
    ec_rs = [ctx.easycrash_recomputability(n) for n in apps]
    base_avg = float(np.mean(base_rs))
    ec_avg = float(np.mean(ec_rs))
    transformed = (ec_avg - base_avg) / max(1e-9, 1.0 - base_avg)

    overheads = []
    writes_ec, writes_cr = [], []
    for name in apps:
        baseline = ctx.measure(name, ctx.plan_baseline_no_iterator(), "t4-baseline")
        ec = ctx.measure(name, ctx.plan_easycrash(name), "t4-ec")
        scale = ctx.factory(name).compute_intensity
        overheads.append(
            max(
                0.0,
                ctx.cost_model.normalized_time(
                    ec.memory, baseline.memory, compute_scale=scale
                )
                - 1.0,
            )
        )
    from repro.checkpoint.cr import checkpoint_write_experiment

    for name in apps:
        report = ctx.plan_report(name)
        res = checkpoint_write_experiment(
            ctx.factory(name),
            list(report.critical_objects) or list(ctx.candidates(name)),
            ctx.plan_easycrash(name),
        )
        writes_ec.append(max(0.0, res["easycrash"].normalized - 1.0))
        writes_cr.append(max(0.0, res["cr_all"].normalized - 1.0))
    # Reduction in *extra* writes vs traditional C/R (Fig. 9 aggregation).
    write_reduction = 1.0 - float(np.mean(writes_ec)) / max(1e-9, float(np.mean(writes_cr)))

    p = SystemParams(mtbf_s=12 * HOUR, t_chk_s=3200.0)
    gain = efficiency_easycrash(p, ec_avg, float(np.mean(overheads))) - efficiency_baseline(p)

    rows = [
        ["avg recomputability w/o EasyCrash (paper: 28%)", base_avg],
        ["avg recomputability with EasyCrash (paper: 82%)", ec_avg],
        ["failing crashes transformed (paper: 54%)", transformed],
        ["avg runtime overhead (paper: 1.5%)", float(np.mean(overheads))],
        ["extra-NVM-write reduction vs C/R (paper: 44%)", write_reduction],
        ["efficiency gain @ T_chk=3200s (paper: up to 24%)", gain],
    ]
    return ExperimentReport(
        "Headline",
        "End-to-end summary claims",
        ["Claim", "Measured"],
        rows,
    )

"""Deterministic fault injection for the campaign engine (``REPRO_CHAOS``).

WITCHER-style validation applied to our own harness: the resilience layer
(:mod:`repro.harness.resilience`, :mod:`repro.nvct.journal`) claims that
campaigns survive worker deaths, torn cache entries, truncated snapshot
payloads, and flaky I/O — so those faults must be injectable on demand,
reproducibly, in CI.  This module is the injector: a seed-driven gate
consulted at *named sites* threaded through the engine:

===================== =====================================================
site                  faults it can fire
===================== =====================================================
``parallel.worker``   ``worker_death`` — the classification worker calls
                      ``os._exit`` mid-chunk (the pool's chunk timeout and
                      the circuit breaker must recover)
``serialize.pack``    ``truncate`` — a packed snapshot array loses its
                      tail, so the worker's unpack raises
                      :class:`~repro.errors.SnapshotCorruptError`;
                      ``bitflip``; ``torn_writeback`` — a multi-word
                      store tears at sub-block granularity (the crash-
                      model hazard of :mod:`repro.memsim.crashmodel`,
                      applied to a transport payload: the suffix of one
                      64-byte line is zeroed, the CRC must catch it)
``cache.read``        ``corrupt_read`` (bit-flipped bytes → decode fails →
                      counted miss), ``os_error``, ``slow_io``
``cache.write``       ``os_error`` (the store is abandoned *before*
                      ``os.replace`` publishes it — atomicity means no
                      torn entry can remain), ``slow_io``
``journal.append``    ``os_error``, ``slow_io``
``store.read``        ``bitflip`` (one flipped bit in the raw record
                      bytes — the envelope CRC must catch it and the
                      entry must be quarantined, not crash the
                      campaign), ``stale_version`` (the record reads as
                      a foreign schema version — the migration-shim
                      rejection path)
``cluster.node``      ``node_death`` — an emulated node dies before its
                      shard completes; the node's lease retries it and
                      the shared circuit breaker bounds the damage
                      (:mod:`repro.cluster.emulator`)
``cluster.rollback``  ``straggler_node`` — one peer is slow to join a
                      coordinated rollback barrier; recovery *timing*
                      stretches but results must stay bit-identical
                      (:mod:`repro.cluster.recovery`)
``service.record``    ``msg_drop`` (a streamed trial record never reaches
                      the scheduler — the commit-time completeness check
                      must ask for it again), ``msg_duplicate`` (the
                      record arrives twice — the scheduler's exactly-once
                      ledger must journal it once)
``service.heartbeat`` ``msg_drop`` / ``msg_duplicate`` on the wire, and
                      ``heartbeat_delay`` — the worker sits out one
                      heartbeat as if the message were delayed past the
                      deadline, so the reaper can expire a live worker's
                      lease (its late commit must then be fenced)
``service.lease``     ``lease_steal`` — the scheduler invalidates a lease
                      right after granting it, as if a reaper on another
                      node had already re-issued the chunk; the original
                      holder becomes a zombie whose commit is rejected by
                      its stale fencing token (:mod:`repro.service`)
``service.worker``    ``worker_death`` — the ``repro work`` process calls
                      ``os._exit`` between two trials of a chunk; the
                      missed heartbeats expire the lease and another
                      worker re-runs the chunk
===================== =====================================================

Determinism: whether call *n* at a site fires is a pure function of
``(seed, site, kind, n)`` via :func:`repro.util.rng.derive_seed` — a fixed
seed replays the exact same fault schedule, which is what lets the chaos
CI job pin its expectations.  Like :mod:`repro.obs`, the injector is
**off by default and free when off**: every call site guards on
:func:`injector` returning ``None``.

Enable with ``REPRO_CHAOS=<seed>:<rate>`` (e.g. ``7:0.05`` for a 5% rate
at every site) or ``<seed>:<rate>:<kind,kind,...>`` to restrict the fault
mix, or programmatically via :func:`enable`.
"""

from __future__ import annotations

import os
import time
from typing import Iterable

from repro.obs import registry as obs_registry
from repro.util.rng import derive_seed

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "WORKER_DEATH_TIMEOUT",
    "InjectedFault",
    "NodeDeath",
    "ChaosInjector",
    "injector",
    "enable",
    "disable",
    "reset",
]

ENV_VAR = "REPRO_CHAOS"

#: Every fault kind the injector knows how to fire.
FAULT_KINDS = (
    "worker_death",
    "truncate",
    "corrupt_read",
    "os_error",
    "slow_io",
    "bitflip",
    "stale_version",
    "torn_writeback",
    "node_death",
    "straggler_node",
    "msg_drop",
    "msg_duplicate",
    "lease_steal",
    "heartbeat_delay",
)

#: Seconds a parallel chunk may take when worker-death chaos is active.
#: A killed worker never posts its result, so the chunk timeout *is* the
#: detection latency; the engine clamps its timeout to this under chaos
#: so fault-injection runs stay fast.
WORKER_DEATH_TIMEOUT = 15.0

#: Injected slow-I/O pause (small: chaos soaks run whole test suites).
SLOW_IO_SECONDS = 0.002

_EXIT_CODE = 17  # distinctive worker-death exit status (debuggability)


class InjectedFault(OSError):
    """A transient I/O error fired by the chaos layer.

    Subclasses ``OSError`` so production retry paths treat it exactly
    like the real flaky-filesystem errors it stands in for.
    """


class NodeDeath(InjectedFault):
    """An emulated cluster node died mid-shard (``node_death``).

    Distinct from :class:`InjectedFault` so the cluster lease can retry
    node deaths specifically while letting genuine I/O errors surface.
    """


class ChaosInjector:
    """Seed-driven fault gate with per-``(site, kind)`` call counters."""

    def __init__(self, seed: int, rate: float, kinds: Iterable[str] | None = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {rate}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = frozenset(kinds) if kinds is not None else frozenset(FAULT_KINDS)
        unknown = self.kinds - frozenset(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown chaos fault kind(s): {', '.join(sorted(unknown))}")
        self._counts: dict[tuple[str, str], int] = {}
        self.injected: dict[str, int] = {}

    def fires(self, site: str, kind: str) -> bool:
        """Deterministically decide whether this call injects ``kind``."""
        if kind not in self.kinds or self.rate <= 0.0:
            return False
        key = (site, kind)
        n = self._counts.get(key, 0)
        self._counts[key] = n + 1
        u = (derive_seed(self.seed, "chaos", site, kind, n) % 2**53) / 2**53
        if u >= self.rate:
            return False
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if (reg := obs_registry()) is not None:
            reg.counter(f"chaos.injected.{kind}", unit="faults").inc()
        return True

    # -- fault helpers (one per kind) -----------------------------------------

    def maybe_kill(self, site: str) -> None:
        """Fire ``worker_death``: the process exits without cleanup."""
        if self.fires(site, "worker_death"):
            os._exit(_EXIT_CODE)

    def maybe_sleep(self, site: str) -> None:
        """Fire ``slow_io``: a short injected stall."""
        if self.fires(site, "slow_io"):
            time.sleep(SLOW_IO_SECONDS)

    def check_io(self, site: str) -> None:
        """Fire ``os_error``: raise a transient :class:`InjectedFault`."""
        if self.fires(site, "os_error"):
            raise InjectedFault(f"chaos: injected I/O error at {site}")

    def maybe_node_death(self, site: str) -> None:
        """Fire ``node_death``: raise :class:`NodeDeath` for this node."""
        if self.fires(site, "node_death"):
            raise NodeDeath(f"chaos: injected node death at {site}")

    def maybe_straggle(self, site: str) -> bool:
        """Fire ``straggler_node``: stall briefly; returns whether it fired.

        Unlike ``slow_io`` the caller cares *that* it fired (a straggler
        stretches the modelled coordinated-rollback time), so the decision
        is returned.  The injected sleep keeps wall-clock effects real but
        small; results must never depend on it.
        """
        if not self.fires(site, "straggler_node"):
            return False
        time.sleep(SLOW_IO_SECONDS)
        return True

    def drops(self, site: str) -> bool:
        """Fire ``msg_drop``: the caller should not send this message."""
        return self.fires(site, "msg_drop")

    def duplicates(self, site: str) -> bool:
        """Fire ``msg_duplicate``: the caller should send the message twice."""
        return self.fires(site, "msg_duplicate")

    def steals(self, site: str) -> bool:
        """Fire ``lease_steal``: the just-granted lease is invalidated.

        The scheduler marks the lease for immediate expiry, so the next
        reaper tick re-enqueues the chunk and re-grants it under a higher
        fencing token — the original holder keeps working as a zombie and
        its eventual commit must be rejected.
        """
        return self.fires(site, "lease_steal")

    def delays_heartbeat(self, site: str) -> bool:
        """Fire ``heartbeat_delay``: the worker sits out one heartbeat.

        Pure in ``(seed, site, kind, call#)`` like every kind — the
        worker simply skips the send, which is indistinguishable (to the
        scheduler) from the message being delayed past the deadline.
        """
        return self.fires(site, "heartbeat_delay")

    def corrupt(self, site: str, data: bytes) -> bytes:
        """Fire ``corrupt_read``: return ``data`` with deterministic damage."""
        if not data or not self.fires(site, "corrupt_read"):
            return data
        pos = derive_seed(self.seed, "chaos-pos", site, len(data)) % len(data)
        return data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1 :]

    def truncate(self, site: str, data: bytes) -> bytes:
        """Fire ``truncate``: return a torn prefix of ``data``."""
        if not data or not self.fires(site, "truncate"):
            return data
        return data[: len(data) // 2]

    def bitflip(self, site: str, data: bytes) -> bytes:
        """Fire ``bitflip``: return ``data`` with one deterministic bit flipped.

        The single-bit analogue of media rot — unlike ``corrupt_read``'s
        whole-byte XOR this is the minimal damage a checksum must catch.
        """
        if not data or not self.fires(site, "bitflip"):
            return data
        bit = derive_seed(self.seed, "chaos-bit", site, len(data)) % (len(data) * 8)
        byte, offset = divmod(bit, 8)
        return data[:byte] + bytes([data[byte] ^ (1 << offset)]) + data[byte + 1 :]

    def torn_writeback(self, site: str, data: bytes, granularity: int = 8) -> bytes:
        """Fire ``torn_writeback``: one 64-byte line of ``data`` tears.

        A deterministic ``granularity``-aligned prefix of the chosen line
        persists; the rest of the line is zeroed (length is preserved —
        the tear is *within* the write, unlike ``truncate``).  Mirrors
        the ``torn`` crash model's in-flight-store hazard on a transport
        payload.
        """
        if not data or not self.fires(site, "torn_writeback"):
            return data
        n_lines = (len(data) + 63) // 64
        line = derive_seed(self.seed, "chaos-torn", site, len(data)) % n_lines
        lo = line * 64
        hi = min(lo + 64, len(data))
        n_granules = max(1, (hi - lo) // granularity)
        cut = lo + (
            derive_seed(self.seed, "chaos-torn-cut", site, len(data)) % n_granules
        ) * granularity
        return data[:cut] + b"\x00" * (hi - cut) + data[hi:]


# -- process-wide gate (mirrors repro.obs.metrics) ----------------------------

_injector: ChaosInjector | None = None
_resolved = False


def _parse_spec(spec: str) -> ChaosInjector | None:
    """``<seed>:<rate>[:<kind,kind,...>]`` → injector, or None when unusable."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        return None
    try:
        seed = int(parts[0])
        rate = float(parts[1])
        kinds = None
        if len(parts) == 3 and parts[2].strip():
            kinds = [k.strip() for k in parts[2].split(",") if k.strip()]
        return ChaosInjector(seed, rate, kinds)
    except ValueError:
        return None


def injector() -> ChaosInjector | None:
    """The process injector, or ``None`` while chaos is disabled.

    ``REPRO_CHAOS`` is consulted once, lazily; :func:`enable`,
    :func:`disable` and :func:`reset` override it.
    """
    global _injector, _resolved
    if not _resolved:
        _resolved = True
        spec = os.environ.get(ENV_VAR, "").strip()
        if spec:
            _injector = _parse_spec(spec)
    return _injector


def enable(seed: int, rate: float, kinds: Iterable[str] | None = None) -> ChaosInjector:
    """Force chaos on with a fresh injector (returned)."""
    global _injector, _resolved
    _injector = ChaosInjector(seed, rate, kinds)
    _resolved = True
    return _injector


def disable() -> None:
    """Force chaos off (:func:`injector` returns ``None``)."""
    global _injector, _resolved
    _injector = None
    _resolved = True


def reset() -> None:
    """Forget any override; the next :func:`injector` re-reads ``REPRO_CHAOS``."""
    global _injector, _resolved
    _injector = None
    _resolved = False

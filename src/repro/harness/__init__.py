"""Experiment harness: one driver per table/figure of the paper's
evaluation, sharing a cached :class:`~repro.harness.context.ExperimentContext`
so the expensive planning campaigns run once per session."""

from repro.harness.cache import ArtifactCache
from repro.harness.context import ExperimentContext, ExperimentSettings, get_context
from repro.harness import experiments

__all__ = [
    "ArtifactCache",
    "ExperimentContext",
    "ExperimentSettings",
    "get_context",
    "experiments",
]

"""Persistent, content-addressed cache for expensive experiment artifacts.

A full benchmark session recomputes every campaign, measurement, and
EasyCrash planning workflow from scratch; at ``REPRO_BENCH_SCALE=paper``
that is hours of simulation that produce exactly the same artifacts on
every run (the whole pipeline is seed-deterministic).  This cache keeps
those artifacts on disk, keyed by *content*: the key is a SHA-256 over
the application identity (name + factory parameters), the full campaign
or planner configuration (including the persistence-plan dict exactly as
the file format serializes it), and the package version.  Any change to
any input yields a different key, so stale hits are impossible and no
invalidation logic is needed.

Formats: campaigns and run statistics round-trip through the JSON dicts
of :mod:`repro.nvct.serialize`; planning reports (deeply nested result
objects) are pickled.  A corrupted or unreadable entry is counted and
treated as a miss — the artifact is recomputed and rewritten, never
raised to the caller.

Enable by pointing ``REPRO_CACHE_DIR`` at a directory (created on
demand); :class:`~repro.harness.context.ExperimentContext` then consults
the cache before computing anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import __version__
from repro.obs import registry as obs_registry
from repro.nvct.serialize import (
    FORMAT_VERSION,
    campaign_from_dict,
    campaign_to_dict,
    plan_to_dict,
    run_stats_from_dict,
    run_stats_to_dict,
)

if TYPE_CHECKING:
    from repro.apps.base import AppFactory
    from repro.core.planner import EasyCrashConfig, EasyCrashPlanReport
    from repro.nvct.campaign import CampaignConfig, CampaignResult, RunStats

__all__ = [
    "ArtifactCache",
    "fingerprint",
    "plan_fingerprint",
    "campaign_key",
    "measure_key",
    "plan_report_key",
]

ENV_VAR = "REPRO_CACHE_DIR"


def _canon(obj: Any) -> Any:
    """JSON-compatible canonical form of a key ingredient."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return _canon(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    text = json.dumps(_canon(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def plan_fingerprint(plan) -> str:
    """Stable fingerprint of one persistence plan (via its file-format dict)."""
    return fingerprint(plan_to_dict(plan))


def _versions() -> list:
    return [__version__, FORMAT_VERSION]


def campaign_key(factory: "AppFactory", cfg: "CampaignConfig") -> str:
    """Content key of ``run_campaign(factory, cfg)``."""
    return fingerprint(
        {
            "kind": "campaign",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "plan": plan_to_dict(cfg.plan),
            "config": cfg,
        }
    )


def measure_key(factory: "AppFactory", cfg: "CampaignConfig") -> str:
    """Content key of ``measure_run(factory, cfg)``."""
    return fingerprint(
        {
            "kind": "measure",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "plan": plan_to_dict(cfg.plan),
            "config": cfg,
        }
    )


def plan_report_key(factory: "AppFactory", cfg: "EasyCrashConfig") -> str:
    """Content key of ``plan_easycrash(factory, cfg)``."""
    return fingerprint(
        {
            "kind": "plan-report",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "config": cfg,
        }
    )


class ArtifactCache:
    """On-disk artifact store with hit/miss/error accounting.

    Layout: ``root/<kind>/<key[:2]>/<key>.{json,pkl}``.  Writes go
    through a same-directory temp file + ``os.replace`` so concurrent
    sessions (or a crash mid-write) can at worst leave an entry that
    reads as corrupted — which is a counted miss, not an error.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.errors = 0  # corrupted/unreadable entries (also counted as misses)
        self.stores = 0

    @staticmethod
    def from_env() -> "ArtifactCache | None":
        """The cache configured by ``REPRO_CACHE_DIR``, or None."""
        root = os.environ.get(ENV_VAR, "").strip()
        return ArtifactCache(root) if root else None

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "stores": self.stores,
        }

    def _count(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        if (reg := obs_registry()) is not None:
            reg.counter(f"artifact_cache.{outcome}", unit="ops").inc()
            lookups = self.hits + self.misses
            if lookups:
                reg.gauge("artifact_cache.hit_ratio", unit="ratio").set(
                    self.hits / lookups
                )

    # -- plumbing -------------------------------------------------------------

    def _path(self, kind: str, key: str, ext: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.{ext}"

    def _read(self, kind: str, key: str, ext: str, decode) -> Any | None:
        path = self._path(kind, key, ext)
        if not path.exists():
            self._count("misses")
            return None
        try:
            artifact = decode(path)
        except Exception:
            self._count("errors")
            self._count("misses")
            return None
        self._count("hits")
        return artifact

    def _write(self, kind: str, key: str, ext: str, encode) -> None:
        path = self._path(kind, key, ext)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                encode(fh)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("stores")

    # -- campaigns ------------------------------------------------------------

    def get_campaign(self, key: str) -> "CampaignResult | None":
        return self._read(
            "campaign", key, "json",
            lambda p: campaign_from_dict(json.loads(p.read_text())),
        )

    def put_campaign(self, key: str, result: "CampaignResult") -> None:
        doc = json.dumps(campaign_to_dict(result), indent=1)
        self._write("campaign", key, "json", lambda fh: fh.write(doc.encode()))

    # -- run statistics --------------------------------------------------------

    def get_stats(self, key: str) -> "RunStats | None":
        return self._read(
            "stats", key, "json",
            lambda p: run_stats_from_dict(json.loads(p.read_text())),
        )

    def put_stats(self, key: str, stats: "RunStats") -> None:
        doc = json.dumps(run_stats_to_dict(stats), indent=1)
        self._write("stats", key, "json", lambda fh: fh.write(doc.encode()))

    # -- planning reports -------------------------------------------------------

    def get_plan_report(self, key: str) -> "EasyCrashPlanReport | None":
        from repro.core.planner import EasyCrashPlanReport

        def decode(p: Path) -> "EasyCrashPlanReport":
            report = pickle.loads(p.read_bytes())
            if not isinstance(report, EasyCrashPlanReport):
                # Wrong type counts as corruption, not a hit.
                raise TypeError(f"plan entry holds {type(report).__name__}")
            return report

        return self._read("plan", key, "pkl", decode)

    def put_plan_report(self, key: str, report: "EasyCrashPlanReport") -> None:
        self._write(
            "plan", key, "pkl",
            lambda fh: pickle.dump(report, fh, protocol=pickle.HIGHEST_PROTOCOL),
        )

"""Persistent, content-addressed cache for expensive experiment artifacts.

A full benchmark session recomputes every campaign, measurement, and
EasyCrash planning workflow from scratch; at ``REPRO_BENCH_SCALE=paper``
that is hours of simulation that produce exactly the same artifacts on
every run (the whole pipeline is seed-deterministic).  This cache keeps
those artifacts on disk, keyed by *content*: the key is a SHA-256 over
the application identity (name + factory parameters), the full campaign
or planner configuration (including the persistence-plan dict exactly as
the file format serializes it), and the package version.  Any change to
any input yields a different key, so stale hits are impossible and no
invalidation logic is needed.

Formats: campaigns and run statistics round-trip through the JSON dicts
of :mod:`repro.nvct.serialize`; planning reports (deeply nested result
objects) are pickled.  Every entry is wrapped in the integrity envelope
of :mod:`repro.harness.store` (schema version + payload CRC-32 + git
sha), verified on every read.  A corrupted or unreadable entry is
**quarantined** (moved under ``quarantine/``, never silently deleted),
counted, and treated as a miss — the artifact is recomputed and
rewritten, never raised to the caller.  Pre-envelope (v0) entries are
still readable through the store's migration shim.

Enable by pointing ``REPRO_CACHE_DIR`` at a directory (created on
demand); :class:`~repro.harness.context.ExperimentContext` then consults
the cache before computing anything.  ``REPRO_CACHE_QUOTA`` (bytes, or
``500m``/``2g``) bounds the store's disk footprint: after every write
the least-recently-used entries are evicted until the store fits (see
:meth:`ArtifactCache.gc`), so unattended multi-week campaigns cannot
fill the disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import __version__
from repro.errors import SnapshotCorruptError
from repro.harness import store as store_mod
from repro.harness.store import GCReport, LRUIndex, parse_quota
from repro.obs import registry as obs_registry
from repro.nvct.serialize import (
    FORMAT_VERSION,
    campaign_from_dict,
    campaign_to_dict,
    plan_to_dict,
    run_stats_from_dict,
    run_stats_to_dict,
)

if TYPE_CHECKING:
    from repro.apps.base import AppFactory
    from repro.core.planner import EasyCrashConfig, EasyCrashPlanReport
    from repro.nvct.campaign import CampaignConfig, CampaignResult, RunStats

__all__ = [
    "ArtifactCache",
    "fingerprint",
    "plan_fingerprint",
    "campaign_config_doc",
    "campaign_key",
    "measure_key",
    "plan_report_key",
]

ENV_VAR = "REPRO_CACHE_DIR"
QUOTA_ENV_VAR = store_mod.QUOTA_ENV_VAR


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync (durability of the rename itself)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _canon(obj: Any) -> Any:
    """JSON-compatible canonical form of a key ingredient."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return _canon(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    text = json.dumps(_canon(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def plan_fingerprint(plan) -> str:
    """Stable fingerprint of one persistence plan (via its file-format dict)."""
    return fingerprint(plan_to_dict(plan))


def _versions() -> list:
    return [__version__, FORMAT_VERSION]


def campaign_config_doc(cfg: "CampaignConfig") -> dict:
    """Canonical ``config`` ingredient for content keys.

    The crash model is dropped at its default (keys stay byte-identical
    to the pre-crash-model era) and replaced by the *parsed* model's
    fingerprint otherwise — so keys change iff the model changes, not
    when its spelling does (``"adr"`` == ``"adr:wpq=64"``).  The cluster
    topology fields (``nodes``/``correlation``/``burst_window_s``/
    ``node``) follow the same discipline: dropped at their single-node
    defaults so pre-cluster keys are unchanged, kept otherwise so every
    shard of every topology gets its own key.
    """
    doc = asdict(cfg)
    spec = doc.pop("crash_model", None)
    if spec is not None:
        from repro.memsim.crashmodel import get_model

        model = get_model(spec)
        if not model.is_default:
            doc["crash_model"] = model.fingerprint()
    for name, default in (
        ("nodes", 1),
        ("correlation", 0.0),
        ("burst_window_s", 600.0),
        ("node", 0),
    ):
        if doc.get(name) == default:
            doc.pop(name, None)
    return doc


def campaign_key(factory: "AppFactory", cfg: "CampaignConfig") -> str:
    """Content key of ``run_campaign(factory, cfg)``."""
    return fingerprint(
        {
            "kind": "campaign",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "plan": plan_to_dict(cfg.plan),
            "config": campaign_config_doc(cfg),
        }
    )


def measure_key(factory: "AppFactory", cfg: "CampaignConfig") -> str:
    """Content key of ``measure_run(factory, cfg)``."""
    return fingerprint(
        {
            "kind": "measure",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "plan": plan_to_dict(cfg.plan),
            "config": campaign_config_doc(cfg),
        }
    )


def plan_report_key(factory: "AppFactory", cfg: "EasyCrashConfig") -> str:
    """Content key of ``plan_easycrash(factory, cfg)``."""
    return fingerprint(
        {
            "kind": "plan-report",
            "versions": _versions(),
            "app": factory.name,
            "params": factory.params,
            "config": cfg,
        }
    )


class ArtifactCache:
    """On-disk artifact store with hit/miss/error accounting.

    Layout: ``root/<kind>/<key[:2]>/<key>.{json,pkl}``, each entry in
    the :mod:`repro.harness.store` integrity envelope.  Writes are
    atomic and durable: the payload is fsync'd to a same-directory temp
    file and published with ``os.replace`` (the directory is fsync'd
    too), so a crash or concurrent session can at worst lose a store —
    never leave a torn entry.  A failed store is counted
    (``store_errors``) and swallowed: the cache is an accelerator, and a
    flaky disk must not take the campaign down with it.  Reads whose
    envelope fails verification or that decode to garbage are
    quarantined, counted as errors *and* misses — the artifact is
    recomputed and rewritten, never raised to the caller.

    ``quota`` (default: ``REPRO_CACHE_QUOTA``) bounds the on-disk bytes;
    after every store, least-recently-used entries (tracked by the
    logical-clock :class:`~repro.harness.store.LRUIndex` at the root)
    are evicted until the store fits.
    """

    def __init__(self, root: str | Path, quota: int | str | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quota = parse_quota(
            quota if quota is not None else os.environ.get(QUOTA_ENV_VAR)
        )
        self.index = LRUIndex(self.root)
        self.hits = 0
        self.misses = 0
        self.errors = 0  # corrupted/unreadable entries (also counted as misses)
        self.stores = 0
        self.store_errors = 0  # failed writes (entry simply not cached)
        self.quarantined = 0  # corrupt entries moved aside (subset of errors)
        self.evictions = 0  # entries removed by quota GC

    @staticmethod
    def from_env() -> "ArtifactCache | None":
        """The cache configured by ``REPRO_CACHE_DIR``, or None."""
        root = os.environ.get(ENV_VAR, "").strip()
        return ArtifactCache(root) if root else None

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "stores": self.stores,
            "store_errors": self.store_errors,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
        }

    def _count(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        if (reg := obs_registry()) is not None:
            reg.counter(f"artifact_cache.{outcome}", unit="ops").inc()
            lookups = self.hits + self.misses
            if lookups:
                reg.gauge("artifact_cache.hit_ratio", unit="ratio").set(
                    self.hits / lookups
                )

    # -- plumbing -------------------------------------------------------------

    def _path(self, kind: str, key: str, ext: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.{ext}"

    def _rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (self-healing: recompute replaces it)."""
        if store_mod.quarantine_file(path, self.root) is not None:
            self.quarantined += 1
            if (reg := obs_registry()) is not None:
                reg.counter("artifact_cache.quarantined", unit="entries").inc()
        self.index.forget(self._rel(path))

    def _read(self, kind: str, key: str, ext: str, decode) -> Any | None:
        from repro.harness.chaos import injector as chaos_injector

        path = self._path(kind, key, ext)
        if not path.exists():
            self._count("misses")
            return None
        try:
            data = path.read_bytes()
            if (ch := chaos_injector()) is not None:
                ch.maybe_sleep("cache.read")
                ch.check_io("cache.read")
                data = ch.corrupt("cache.read", data)
        except Exception:
            # Transient I/O failure: the entry itself may be fine — miss,
            # but leave it in place.
            self._count("errors")
            self._count("misses")
            return None
        try:
            payload = store_mod.read_payload(data, site="store.read")
            artifact = decode(payload)
        except Exception:
            # Envelope/CRC failure or undecodable payload: the bytes on
            # disk are bad.  Quarantine the entry and fall through to a
            # recompute — one flipped bit costs one recomputation.
            self._quarantine(path)
            self._count("errors")
            self._count("misses")
            return None
        self.index.touch(self._rel(path))
        self._count("hits")
        return artifact

    def _write(self, kind: str, key: str, ext: str, payload: bytes) -> bool:
        """Atomically publish one enveloped entry; returns whether it landed.

        Ordering matters for crash safety: payload fsync'd → ``os.replace``
        → directory fsync.  A failure at any point (including an injected
        one) unlinks the temp file and is *counted*, not raised — the
        caller's artifact is already computed and the campaign goes on.
        A successful store updates the LRU index and, when a quota is
        configured, immediately enforces it.
        """
        from repro.harness.chaos import injector as chaos_injector

        path = self._path(kind, key, ext)
        record = store_mod.pack_record(payload)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            self._count("store_errors")
            return False
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(record)
                fh.flush()
                os.fsync(fh.fileno())
            if (ch := chaos_injector()) is not None:
                ch.maybe_sleep("cache.write")
                ch.check_io("cache.write")  # simulated crash before publish
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._count("store_errors")
            return False
        self.index.touch(self._rel(path))
        self._count("stores")
        if self.quota is not None:
            self.gc()
        return True

    # -- disk governance -------------------------------------------------------

    def gc(self, quota: int | None = None) -> GCReport:
        """Evict least-recently-used entries until the store fits the quota.

        ``quota`` defaults to the configured one; with neither set this
        is a no-op report.  Quarantined records never count against the
        quota and are never evicted (they are postmortem evidence, not
        cache state).
        """
        limit = quota if quota is not None else self.quota
        if limit is None:
            entries = store_mod.collect_entries(self.root)
            total = sum(size for _, size in entries)
            return GCReport(quota=0, total_before=total, total_after=total)
        report = store_mod.run_gc(self.root, limit, self.index)
        self.evictions += len(report.evicted)
        if report.evicted and (reg := obs_registry()) is not None:
            reg.counter("artifact_cache.evictions", unit="entries").inc(
                len(report.evicted)
            )
        return report

    def disk_usage(self) -> int:
        """Total bytes of live entries (quarantine and index excluded)."""
        return sum(size for _, size in store_mod.collect_entries(self.root))

    # -- campaigns ------------------------------------------------------------

    def get_campaign(self, key: str) -> "CampaignResult | None":
        return self._read(
            "campaign", key, "json",
            lambda data: campaign_from_dict(json.loads(data.decode("utf-8"))),
        )

    def put_campaign(self, key: str, result: "CampaignResult") -> None:
        doc = json.dumps(campaign_to_dict(result), indent=1)
        self._write("campaign", key, "json", doc.encode())

    # -- run statistics --------------------------------------------------------

    def get_stats(self, key: str) -> "RunStats | None":
        return self._read(
            "stats", key, "json",
            lambda data: run_stats_from_dict(json.loads(data.decode("utf-8"))),
        )

    def put_stats(self, key: str, stats: "RunStats") -> None:
        doc = json.dumps(run_stats_to_dict(stats), indent=1)
        self._write("stats", key, "json", doc.encode())

    # -- planning reports -------------------------------------------------------

    def get_plan_report(self, key: str) -> "EasyCrashPlanReport | None":
        from repro.core.planner import EasyCrashPlanReport

        def decode(data: bytes) -> "EasyCrashPlanReport":
            report = pickle.loads(data)
            if not isinstance(report, EasyCrashPlanReport):
                # Wrong type counts as corruption, not a hit.
                raise TypeError(f"plan entry holds {type(report).__name__}")
            return report

        return self._read("plan", key, "pkl", decode)

    def put_plan_report(self, key: str, report: "EasyCrashPlanReport") -> None:
        self._write(
            "plan", key, "pkl",
            pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- pruned crash plans (analysis equivalence pass) ------------------------

    def get_crash_plan(self, key: str):
        from repro.analysis.equiv_pass import CrashPlan
        from repro.errors import UsageError

        def decode(data: bytes) -> "CrashPlan":
            try:
                return CrashPlan.from_dict(json.loads(data.decode("utf-8")))
            except UsageError as exc:
                # A malformed cached plan counts as corruption, not a hit.
                raise ValueError(str(exc)) from exc

        return self._read("crash-plan", key, "json", decode)

    def put_crash_plan(self, key: str, plan) -> None:
        doc = json.dumps(plan.to_dict(), indent=1)
        self._write("crash-plan", key, "json", doc.encode())

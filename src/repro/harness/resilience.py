"""Reusable failure policies for long-running campaigns.

Three small primitives, composed by :mod:`repro.nvct.parallel` and
:mod:`repro.nvct.campaign` into the crash-safe campaign engine:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *seeded* jitter: the delay for ``(key, attempt)`` is a pure function of
  the policy seed, so retry schedules replay exactly under a fixed seed
  (the same property the crash-point sampler has).
* :class:`CircuitBreaker` — after ``threshold`` consecutive failures the
  breaker opens and the caller degrades (the parallel engine drops its
  worker pool and finishes serially in the parent, which never fails).
* :func:`call_with_deadline` — a per-trial wall-clock deadline via
  ``SIGALRM`` where available (Unix main thread), raising
  :class:`~repro.errors.TrialTimeout`; elsewhere the call runs
  unbounded rather than silently misbehaving.

Every retry and breaker trip publishes to the :mod:`repro.obs` registry
when telemetry is on, and costs nothing when it is off.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import TrialTimeout
from repro.obs import registry as obs_registry
from repro.util.rng import derive_seed

__all__ = ["RetryPolicy", "CircuitBreaker", "call_with_deadline"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and an optional per-attempt
    deadline.

    ``max_retries`` counts *re*-tries: an operation runs at most
    ``max_retries + 1`` times.  ``attempt_deadline`` bounds one attempt's
    wall time (enforced by the caller — e.g. the parallel engine uses it
    as the per-chunk pool timeout).
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    attempt_deadline: float | None = None
    #: Total elapsed-time budget across *all* attempts and backoffs of one
    #: :meth:`run`.  Retrying stops — the last failure propagates — as soon
    #: as the next backoff would overrun the budget, so a retry loop can
    #: never stretch a campaign past its wall-clock allowance even when
    #: ``max_retries`` alone would permit it.
    max_elapsed_s: float | None = None
    seed: int = 0

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based) of operation ``key``.

        Deterministic: ``min(max_delay, base_delay·2^attempt)`` scaled by
        a seeded jitter factor in ``[0.5, 1.0]`` — jitter decorrelates
        concurrent retriers without sacrificing replayability.
        """
        cap = min(self.max_delay, self.base_delay * (2.0**attempt))
        u = (derive_seed(self.seed, "retry", key, attempt) % 2**53) / 2**53
        return cap * (0.5 + 0.5 * u)

    def run(
        self,
        fn: Callable[[], T],
        key: str,
        retryable: tuple[type[BaseException], ...] = (OSError, TimeoutError),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> T:
        """Call ``fn`` under this policy; re-raise the last failure.

        Only ``retryable`` exception types are retried — anything else
        propagates immediately (a deterministic bug does not become less
        deterministic by running it three times).  When ``max_elapsed_s``
        is set, the loop also gives up — re-raising the last failure —
        once the elapsed time plus the next backoff would exceed the
        budget.  ``clock`` exists so tests can drive a fake monotonic
        clock alongside a fake ``sleep``.
        """
        attempt = 0
        start = clock()
        while True:
            try:
                return fn()
            except retryable as exc:
                if attempt >= self.max_retries:
                    raise
                delay = self.delay(key, attempt)
                if (
                    self.max_elapsed_s is not None
                    and (clock() - start) + delay > self.max_elapsed_s
                ):
                    if (reg := obs_registry()) is not None:
                        reg.counter(
                            "resilience.budget_exhausted", unit="ops"
                        ).inc()
                    raise
                if (reg := obs_registry()) is not None:
                    reg.counter("resilience.retries", unit="retries").inc()
                sleep(delay)
                attempt += 1
                last = exc  # noqa: F841  (kept for debugger visibility)


class CircuitBreaker:
    """Consecutive-failure trip wire.

    ``record_failure`` returns ``True`` the moment the breaker opens;
    once open it stays open (the degraded mode — serial classification —
    is always correct, so there is nothing to probe half-open for within
    one campaign).
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.total_failures = 0
        self.tripped = False

    def allow(self) -> bool:
        return not self.tripped

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        self.total_failures += 1
        self.consecutive_failures += 1
        if not self.tripped and self.consecutive_failures >= self.threshold:
            self.tripped = True
            if (reg := obs_registry()) is not None:
                reg.counter("resilience.breaker_trips", unit="trips").inc()
        return self.tripped


def call_with_deadline(fn: Callable[[], T], deadline: float | None) -> T:
    """Run ``fn`` with a wall-clock deadline, raising :class:`TrialTimeout`.

    Uses ``SIGALRM``/``setitimer``, which only works on Unix in the main
    thread; anywhere else (Windows, worker threads) the deadline is not
    enforceable this way and the call simply runs unbounded — the
    parallel engine's chunk timeout is the backstop there.
    """
    if not deadline or deadline <= 0:
        return fn()
    if threading.current_thread() is not threading.main_thread() or not hasattr(
        signal, "setitimer"
    ):
        return fn()

    def _alarm(signum: int, frame: Any) -> None:
        raise TrialTimeout(f"trial exceeded its {deadline:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, deadline)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

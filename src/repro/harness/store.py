"""Self-healing integrity layer for every durable artifact.

The paper's premise is that persisted state survives failures *only if
you can trust what you read back*: EasyCrash verifies recomputed results
at the application level, and WITCHER-style testing shows how silently
corrupt persistent state escapes naive checks.  Our own durable
artifacts — :class:`~repro.harness.cache.ArtifactCache` entries, the
campaign journal, bench.json documents, packed snapshot payloads — are
atomically *written* but were historically never integrity-checked on
*read*.  This module closes that gap with one envelope shared by all of
them:

* **Record envelope** (:func:`pack_record` / :func:`unpack_record`): a
  magic prefix, one JSON header line ``{schema_version, payload_crc32,
  git_sha, created_at}``, then the raw payload bytes.  The CRC is
  verified on every read; a mismatch or an unreadable header raises the
  typed :class:`~repro.errors.SnapshotCorruptError`.
* **Migration shims** (:data:`UPGRADERS`): artifacts written before the
  envelope existed (*v0*: bare payload, no magic) are read through an
  upgrader instead of being rejected, so a pre-existing cache or journal
  keeps working across the format change.  Unknown (newer/foreign)
  schema versions are refused as corrupt — a downgraded reader must
  never guess at a format it does not understand.
* **Quarantine** (:func:`quarantine_file`, :func:`quarantine_bytes`): a
  record that fails its checksum is *moved* into a ``quarantine/``
  subdirectory — never silently deleted — and the ``store.quarantined``
  / ``store.crc_failures`` counters fire, so a flipped bit costs one
  recomputation and leaves the evidence behind for postmortems.
* **Disk governance** (:func:`parse_quota`, :class:`LRUIndex`): the
  artifact cache tracks access recency in a logical-clock index and
  evicts least-recently-used entries once ``REPRO_CACHE_QUOTA`` is
  exceeded, so multi-week campaigns cannot fill the disk.
* **Doctor** (:func:`preflight`, :func:`fsck_cache`, :func:`fsck_journal`,
  :func:`repair_cache`): the ``repro doctor`` CLI — environment
  preflight plus an fsck that classifies every stored entry as ``ok`` /
  ``legacy-v0`` / ``corrupt`` / ``foreign-version`` / ``orphaned-tmp``
  and, with ``--repair``, quarantines the bad ones and rebuilds the LRU
  index.

Chaos sites: :func:`read_payload` consults the fault injector at
``store.read`` for the ``bitflip`` (single flipped bit in the raw bytes)
and ``stale_version`` (header reports an unknown schema) kinds, so the
whole self-healing path is exercisable deterministically under
``REPRO_CHAOS``.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import SnapshotCorruptError
from repro.obs.metrics import bump

__all__ = [
    "MAGIC",
    "STORE_SCHEMA_VERSION",
    "QUOTA_ENV_VAR",
    "QUARANTINE_DIRNAME",
    "UPGRADERS",
    "crc32",
    "created_at",
    "store_git_sha",
    "pack_record",
    "is_enveloped",
    "unpack_record",
    "read_payload",
    "seal_json_doc",
    "open_json_doc",
    "seal_line",
    "open_line",
    "atomic_write_bytes",
    "quarantine_file",
    "quarantine_bytes",
    "parse_quota",
    "LRUIndex",
    "GCReport",
    "collect_entries",
    "run_gc",
    "Verdict",
    "CheckResult",
    "fsck_cache",
    "fsck_journal",
    "repair_cache",
    "repair_journal",
    "preflight",
]

#: Envelope magic: every enveloped artifact starts with these bytes.
MAGIC = b"%REPRO-STORE%"

#: Current envelope schema version.  Bump when the header or payload
#: framing changes, and register an upgrader for the old version.
STORE_SCHEMA_VERSION = 1

#: Cache disk quota in bytes (optional ``k``/``m``/``g`` suffix).
QUOTA_ENV_VAR = "REPRO_CACHE_QUOTA"

#: Subdirectory (of a store root) holding quarantined records.
QUARANTINE_DIRNAME = "quarantine"

#: Name of the LRU index file at a cache root.
INDEX_NAME = "index.json"

_HEADER_LIMIT = 4096  # an envelope header line never legitimately exceeds this


def crc32(data: bytes) -> int:
    """Unsigned CRC-32 of ``data`` (the envelope checksum)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def created_at() -> str:
    """UTC timestamp for envelope headers (ISO-8601, second precision)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


_git_sha_cache: str | None = None


def store_git_sha() -> str:
    """The repository's short commit id, resolved once per process."""
    global _git_sha_cache
    if _git_sha_cache is None:
        from repro.obs.export import git_sha

        _git_sha_cache = git_sha()
    return _git_sha_cache


# -- the record envelope -------------------------------------------------------


def _header(payload: bytes, schema_version: int) -> dict:
    return {
        "schema_version": schema_version,
        "payload_crc32": crc32(payload),
        "git_sha": store_git_sha(),
        "created_at": created_at(),
    }


def pack_record(payload: bytes, schema_version: int = STORE_SCHEMA_VERSION) -> bytes:
    """Wrap ``payload`` in the store envelope (header line + raw bytes)."""
    header = json.dumps(_header(payload, schema_version), sort_keys=True)
    return MAGIC + header.encode("utf-8") + b"\n" + payload


def is_enveloped(data: bytes) -> bool:
    return data.startswith(MAGIC)


#: Schema-version migration shims.  ``UPGRADERS[v]`` turns a version-``v``
#: payload into the current format.  ``0`` is the pre-envelope era: the
#: whole file *is* the payload, unchecked — readable, but carrying no
#: integrity guarantee (``store.legacy_reads`` counts these).
UPGRADERS: dict[int, Callable[[bytes], bytes]] = {
    0: lambda payload: payload,
}


def unpack_record(data: bytes) -> tuple[dict, bytes]:
    """Split and verify an enveloped record: ``(header, payload)``.

    Raises :class:`SnapshotCorruptError` on a malformed header, an
    unknown (foreign) schema version, or a CRC mismatch — and fires the
    ``store.crc_failures`` counter for the checksum case.
    """
    if not is_enveloped(data):
        raise SnapshotCorruptError("store record lacks the envelope magic")
    newline = data.find(b"\n", len(MAGIC))
    if newline < 0 or newline > _HEADER_LIMIT:
        raise SnapshotCorruptError("store record header is unterminated")
    try:
        header = json.loads(data[len(MAGIC):newline])
        version = int(header["schema_version"])
        expected = int(header["payload_crc32"])
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotCorruptError(f"store record header is unreadable ({exc!r})") from exc
    payload = data[newline + 1:]
    if version != STORE_SCHEMA_VERSION and version not in UPGRADERS:
        raise SnapshotCorruptError(
            f"store record has foreign schema_version {version} "
            f"(this build reads <= {STORE_SCHEMA_VERSION})"
        )
    if crc32(payload) != expected:
        bump("store.crc_failures", unit="records")
        raise SnapshotCorruptError(
            f"store record failed its checksum (crc32 {crc32(payload)} != {expected})"
        )
    if version != STORE_SCHEMA_VERSION:
        payload = UPGRADERS[version](payload)
    return header, payload


def read_payload(data: bytes, site: str = "store.read") -> bytes:
    """Envelope-aware read: verified payload of ``data``.

    v0 (pre-envelope) artifacts pass through the identity upgrader and
    fire ``store.legacy_reads``.  The chaos injector is consulted at
    ``site`` for the ``bitflip`` and ``stale_version`` kinds, so the
    corruption-recovery path is testable deterministically.
    """
    from repro.harness.chaos import injector as chaos_injector

    if (ch := chaos_injector()) is not None:
        data = ch.bitflip(site, data)
        if ch.fires(site, "stale_version"):
            raise SnapshotCorruptError(
                "chaos: injected stale/foreign schema_version at " + site
            )
    if not is_enveloped(data):
        bump("store.legacy_reads", unit="records")
        return UPGRADERS[0](data)
    _, payload = unpack_record(data)
    return payload


# -- JSON-document envelope (bench.json stays a valid JSON file) ---------------

JSON_ENVELOPE_KEY = "__repro_store__"


def _canonical_json(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def seal_json_doc(payload: object) -> dict:
    """Wrap a JSON-serializable payload in an in-document envelope.

    Unlike :func:`pack_record` this keeps the artifact a plain JSON file
    (external tooling can still parse it); the CRC covers the canonical
    compact dump of the payload, so pretty-printing does not matter.
    """
    return {
        JSON_ENVELOPE_KEY: _header(_canonical_json(payload), STORE_SCHEMA_VERSION),
        "payload": payload,
    }


def open_json_doc(doc: object) -> object:
    """Verify and unwrap :func:`seal_json_doc`'s envelope (v0 passes through)."""
    if not isinstance(doc, dict) or JSON_ENVELOPE_KEY not in doc:
        bump("store.legacy_reads", unit="records")
        return doc
    header = doc[JSON_ENVELOPE_KEY]
    try:
        version = int(header["schema_version"])
        expected = int(header["payload_crc32"])
        payload = doc["payload"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptError(f"store document header is unreadable ({exc!r})") from exc
    if version != STORE_SCHEMA_VERSION and version not in UPGRADERS:
        raise SnapshotCorruptError(
            f"store document has foreign schema_version {version}"
        )
    if crc32(_canonical_json(payload)) != expected:
        bump("store.crc_failures", unit="records")
        raise SnapshotCorruptError("store document failed its checksum")
    return payload


# -- JSONL line envelope (the campaign journal) --------------------------------


def seal_line(doc: dict) -> dict:
    """Add a per-record CRC field covering the canonical dump of ``doc``."""
    return {**doc, "crc": crc32(_canonical_json(doc))}


def open_line(doc: dict) -> dict:
    """Verify and strip a line CRC; a v0 line (no ``crc``) passes through.

    Raises :class:`SnapshotCorruptError` (and fires ``store.crc_failures``)
    when the CRC does not match — the caller treats the journal as ending
    at the previous line, exactly like a torn tail.
    """
    if "crc" not in doc:
        return doc
    body = {k: v for k, v in doc.items() if k != "crc"}
    if crc32(_canonical_json(body)) != doc["crc"]:
        bump("store.crc_failures", unit="records")
        raise SnapshotCorruptError("journal line failed its checksum")
    return body


# -- atomic durable writes -----------------------------------------------------


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomic, durable publish: same-dir temp file + fsync + ``os.replace``.

    The single write primitive behind :func:`repro.obs.export.write_text`,
    the quarantine mover's fallback, and the LRU index — a crash mid-write
    leaves either the old file or the new one, never a torn hybrid.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# -- quarantine ----------------------------------------------------------------


def _quarantine_target(root: Path, name: str) -> Path:
    qdir = root / QUARANTINE_DIRNAME
    qdir.mkdir(parents=True, exist_ok=True)
    target = qdir / name
    n = 0
    while target.exists():
        n += 1
        target = qdir / f"{name}.{n}"
    return target


def quarantine_file(path: str | Path, root: str | Path | None = None) -> Path | None:
    """Move a corrupt record into ``<root>/quarantine/`` (never delete).

    ``root`` defaults to the record's own directory's store root — for a
    cache entry laid out ``root/<kind>/<aa>/<key>.json``, pass the cache
    root so the quarantine name keeps the ``<kind>.<key>`` identity.
    Returns the quarantine path, or ``None`` when the move failed (the
    record is then left in place; self-healing still recomputes).
    """
    path = Path(path)
    base = Path(root) if root is not None else path.parent
    try:
        rel = path.relative_to(base)
        name = ".".join(rel.parts)
    except ValueError:
        name = path.name
    target = _quarantine_target(base, name)
    try:
        shutil.move(str(path), str(target))
    except OSError:
        return None
    _fsync_dir(target.parent)  # make the move itself durable …
    _fsync_dir(path.parent)  # … and the disappearance from the source dir
    bump("store.quarantined", unit="records")
    return target


def quarantine_bytes(data: bytes, root: str | Path, name: str) -> Path | None:
    """Preserve corrupt bytes (e.g. a journal's bad tail) under quarantine."""
    target = _quarantine_target(Path(root), name)
    try:
        atomic_write_bytes(target, data)
    except OSError:
        return None
    bump("store.quarantined", unit="records")
    return target


# -- disk governance: quota parsing, LRU index, GC -----------------------------

_QUOTA_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_quota(spec: str | int | None) -> int | None:
    """``REPRO_CACHE_QUOTA`` value → bytes (``None``/empty/invalid → no quota).

    Accepts a plain byte count or a ``k``/``m``/``g`` suffix (powers of
    1024, case-insensitive): ``500m``, ``2g``, ``65536``.
    """
    if spec is None:
        return None
    if isinstance(spec, int):
        return spec if spec > 0 else None
    text = spec.strip().lower()
    if not text:
        return None
    factor = 1
    if text[-1] in _QUOTA_SUFFIX:
        factor = _QUOTA_SUFFIX[text[-1]]
        text = text[:-1]
    try:
        value = int(float(text) * factor)
    except ValueError:
        return None
    return value if value > 0 else None


class LRUIndex:
    """Logical-clock access index for a cache root (drives LRU eviction).

    Atime is a monotonically increasing *tick*, not wall clock, so
    eviction order is deterministic and immune to clock skew.  The index
    is advisory: the filesystem stays the source of truth for existence
    and size (``rebuild`` re-scans it), so a lost or stale index can
    never lose data — at worst eviction order degrades to arbitrary for
    untracked entries, and ``repro doctor fsck --repair`` rebuilds it.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.path = self.root / INDEX_NAME
        self._atimes: dict[str, int] = {}
        self._tick = 0
        self._load()

    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
            self._tick = int(doc["tick"])
            self._atimes = {str(k): int(v) for k, v in doc["entries"].items()}
        except (OSError, ValueError, KeyError, TypeError):
            self._atimes = {}
            self._tick = 0

    def save(self) -> None:
        doc = {"tick": self._tick, "entries": self._atimes}
        try:
            atomic_write_bytes(self.path, json.dumps(doc, sort_keys=True).encode("utf-8"))
        except OSError:
            pass  # advisory: a failed index write must not fail the cache

    def touch(self, rel: str, save: bool = True) -> None:
        self._tick += 1
        self._atimes[rel] = self._tick
        if save:
            self.save()

    def forget(self, rel: str) -> None:
        self._atimes.pop(rel, None)

    def atime(self, rel: str) -> int:
        return self._atimes.get(rel, 0)

    def rebuild(self, entries: Iterable[str]) -> None:
        """Reconcile with the filesystem: keep known ticks, drop ghosts."""
        entries = set(entries)
        self._atimes = {rel: t for rel, t in self._atimes.items() if rel in entries}
        for rel in sorted(entries - set(self._atimes)):
            self._tick += 1
            self._atimes[rel] = self._tick
        self.save()


def collect_entries(root: str | Path) -> list[tuple[str, int]]:
    """All record files under a cache root: ``[(relpath, size_bytes)]``.

    Skips the quarantine subtree, the LRU index, and in-flight temp files.
    """
    root = Path(root)
    out: list[tuple[str, int]] = []
    if not root.is_dir():
        return out
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(root)
        if rel.parts[0] == QUARANTINE_DIRNAME or rel.name == INDEX_NAME:
            continue
        if rel.suffix == ".tmp":
            continue
        try:
            out.append((rel.as_posix(), path.stat().st_size))
        except OSError:
            continue
    return out


@dataclass
class GCReport:
    """Outcome of one quota-enforcement pass."""

    quota: int
    total_before: int
    total_after: int
    evicted: list[str] = field(default_factory=list)

    @property
    def bytes_freed(self) -> int:
        return self.total_before - self.total_after


def run_gc(root: str | Path, quota: int, index: LRUIndex | None = None) -> GCReport:
    """Evict least-recently-used entries until the store fits ``quota``.

    Eviction is ordinary garbage collection of *valid* data (the entries
    are recomputable by construction), so unlike corruption handling it
    deletes; quarantined records are never touched and never counted
    against the quota.
    """
    root = Path(root)
    index = index if index is not None else LRUIndex(root)
    entries = collect_entries(root)
    total = sum(size for _, size in entries)
    report = GCReport(quota=quota, total_before=total, total_after=total)
    if total <= quota:
        return report
    for rel, size in sorted(entries, key=lambda e: (index.atime(e[0]), e[0])):
        if report.total_after <= quota:
            break
        try:
            (root / rel).unlink()
        except OSError:
            continue
        index.forget(rel)
        report.total_after -= size
        report.evicted.append(rel)
    index.save()
    if report.evicted:
        bump("store.gc_evictions", unit="records", n=len(report.evicted))
        bump("store.gc_bytes_freed", unit="bytes", n=report.bytes_freed)
    return report


# -- doctor: fsck --------------------------------------------------------------

#: fsck verdicts, in decreasing order of health.
VERDICTS = ("ok", "legacy-v0", "corrupt", "foreign-version", "orphaned-tmp")


@dataclass
class Verdict:
    """One fsck finding: a store file and what the scan concluded."""

    path: Path
    verdict: str
    detail: str = ""

    @property
    def bad(self) -> bool:
        return self.verdict in ("corrupt", "foreign-version", "orphaned-tmp")


def _classify_entry(path: Path) -> Verdict:
    if path.suffix == ".tmp":
        return Verdict(path, "orphaned-tmp", "in-flight temp file with no owner")
    try:
        data = path.read_bytes()
    except OSError as exc:
        return Verdict(path, "corrupt", f"unreadable: {exc}")
    if not is_enveloped(data):
        # v0 JSON entries can at least be parse-checked; pickles cannot be
        # safely probed (loading executes code), so they stay unverified.
        if path.suffix == ".json":
            try:
                json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                return Verdict(path, "corrupt", f"pre-envelope entry, unparseable: {exc}")
        return Verdict(path, "legacy-v0", "pre-envelope entry (no checksum to verify)")
    try:
        header, _ = unpack_record(data)
    except SnapshotCorruptError as exc:
        if "foreign schema_version" in str(exc):
            return Verdict(path, "foreign-version", str(exc))
        return Verdict(path, "corrupt", str(exc))
    return Verdict(path, "ok", f"schema v{header['schema_version']}")


def fsck_cache(root: str | Path) -> list[Verdict]:
    """Scan a cache root; one verdict per stored file (tmp files included)."""
    root = Path(root)
    verdicts: list[Verdict] = []
    if not root.is_dir():
        return verdicts
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(root)
        if rel.parts[0] == QUARANTINE_DIRNAME or rel.name == INDEX_NAME:
            continue
        if rel.suffix == ".tmp":
            verdicts.append(Verdict(path, "orphaned-tmp", "in-flight temp file with no owner"))
            continue
        verdicts.append(_classify_entry(path))
    return verdicts


def fsck_journal(path: str | Path) -> tuple[list[Verdict], int]:
    """Verify a campaign journal line by line: ``(verdicts, valid_bytes)``.

    ``valid_bytes`` is the length of the intact prefix — everything after
    it (a torn or checksum-failing tail) gets a ``corrupt`` verdict.
    """
    from repro.nvct.journal import scan_journal

    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return [Verdict(path, "corrupt", f"unreadable: {exc}")], 0
    header, lines, valid = scan_journal(raw)
    verdicts: list[Verdict] = []
    if header is None:
        verdicts.append(Verdict(path, "corrupt", "no usable journal header"))
    elif any("crc" not in doc for doc, _ in lines):
        verdicts.append(
            Verdict(path, "legacy-v0", f"{len(lines)} record(s), not all checksummed")
        )
    else:
        verdicts.append(Verdict(path, "ok", f"{len(lines)} checksummed record(s)"))
    if valid < len(raw):
        verdicts.append(
            Verdict(
                path,
                "corrupt",
                f"invalid tail: {len(raw) - valid} byte(s) past offset {valid}",
            )
        )
    return verdicts, valid


def repair_cache(root: str | Path) -> list[Path]:
    """Quarantine every bad cache entry and rebuild the LRU index.

    Returns the quarantine destinations.  ``legacy-v0`` entries are left
    alone (they are readable); ``corrupt`` / ``foreign-version`` /
    ``orphaned-tmp`` files are moved, never deleted.
    """
    root = Path(root)
    moved: list[Path] = []
    for verdict in fsck_cache(root):
        if not verdict.bad:
            continue
        target = quarantine_file(verdict.path, root)
        if target is not None:
            moved.append(target)
    index = LRUIndex(root)
    index.rebuild(rel for rel, _ in collect_entries(root))
    return moved


def repair_journal(path: str | Path) -> Path | None:
    """Truncate a journal to its intact prefix, quarantining the bad tail."""
    path = Path(path)
    verdicts, valid = fsck_journal(path)
    raw = path.read_bytes() if path.exists() else b""
    if valid >= len(raw):
        return None
    target = quarantine_bytes(raw[valid:], path.parent, path.name + ".tail")
    with open(path, "r+b") as fh:
        fh.truncate(valid)
        fh.flush()
        os.fsync(fh.fileno())  # the repair itself must survive a crash
    return target


# -- doctor: preflight ---------------------------------------------------------


@dataclass
class CheckResult:
    """One preflight probe: name, pass/fail, human detail."""

    name: str
    ok: bool
    detail: str


def _check_writable(directory: Path) -> tuple[bool, str]:
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".doctor")
        os.close(fd)
        os.unlink(tmp)
    except OSError as exc:
        return False, f"not writable: {exc}"
    return True, "writable"


def preflight(
    cache_dir: str | Path | None = None,
    journals: Iterable[str | Path] = (),
    min_free_bytes: int = 256 << 20,
) -> list[CheckResult]:
    """Environment checks a long campaign depends on.

    Covers the interpreter and numpy versions, cache-dir writability and
    free disk (against ``min_free_bytes``), the configured quota, and
    ownership/writability of any journals the user intends to resume.
    """
    checks: list[CheckResult] = []
    py = sys.version_info
    checks.append(
        CheckResult(
            "python",
            py >= (3, 10),
            f"{py.major}.{py.minor}.{py.micro} (needs >= 3.10)",
        )
    )
    try:
        import numpy

        checks.append(CheckResult("numpy", True, numpy.__version__))
    except Exception as exc:  # pragma: no cover - numpy is a hard dependency
        checks.append(CheckResult("numpy", False, f"not importable: {exc}"))

    if cache_dir is not None:
        cache_dir = Path(cache_dir)
        ok, detail = _check_writable(cache_dir)
        checks.append(CheckResult("cache-dir", ok, f"{cache_dir}: {detail}"))
        try:
            usage = shutil.disk_usage(cache_dir if cache_dir.exists() else cache_dir.parent)
            checks.append(
                CheckResult(
                    "free-disk",
                    usage.free >= min_free_bytes,
                    f"{usage.free / (1 << 20):.0f} MB free "
                    f"(needs >= {min_free_bytes / (1 << 20):.0f} MB)",
                )
            )
        except OSError as exc:
            checks.append(CheckResult("free-disk", False, str(exc)))
    else:
        checks.append(
            CheckResult("cache-dir", True, "not configured (REPRO_CACHE_DIR unset)")
        )
    quota_spec = os.environ.get(QUOTA_ENV_VAR, "").strip()
    if quota_spec:
        quota = parse_quota(quota_spec)
        checks.append(
            CheckResult(
                "cache-quota",
                quota is not None,
                f"{quota_spec!r} -> {quota} bytes" if quota else f"unparseable: {quota_spec!r}",
            )
        )
    for journal in journals:
        journal = Path(journal)
        name = f"journal:{journal.name}"
        if not journal.exists():
            checks.append(CheckResult(name, True, f"{journal}: will be created"))
            continue
        owned = True
        if hasattr(os, "getuid"):
            try:
                owned = journal.stat().st_uid == os.getuid()
            except OSError:
                owned = False
        writable = os.access(journal, os.W_OK)
        checks.append(
            CheckResult(
                name,
                owned and writable,
                f"{journal}: "
                + ("owned" if owned else "foreign owner")
                + ", "
                + ("writable" if writable else "read-only"),
            )
        )
    return checks

"""The ``repro work`` worker: lease, execute, stream, heartbeat, commit.

Workers are **stateless**: everything needed to execute a chunk rides in
the grant's ``spec`` — app name plus the full campaign config — and the
worker re-derives the golden run, the crash points, and the instrumented
run's snapshot store from it (:class:`ChunkExecutor`).  Determinism does
the heavy lifting: two workers that build an executor from the same spec
hold bit-identical snapshot stores, so it never matters *which* worker
classifies a trial.  Executors are cached per spec, so a worker draining
many chunks of one shard pays the instrumented run once.

Robustness posture:

* the lease's heartbeat runs on an **injectable clock** and fires every
  third of the scheduler's deadline while trials execute;
* a lost scheduler (SIGKILL before ``--resume``) shows up as a broken
  socket: the worker abandons its in-flight chunk (the reaper will
  re-issue it) and reconnects under its :class:`RetryPolicy` until the
  restarted scheduler answers or the policy gives up;
* a ``fenced`` commit means this worker was declared dead and its chunk
  re-granted — the only correct move is to drop the chunk and lease on;
* chunk execution failures feed a :class:`CircuitBreaker`: one poison
  chunk retries elsewhere, but a worker that fails every chunk it
  touches stops burning leases and exits loudly
  (:class:`~repro.errors.ServiceError`).
"""

from __future__ import annotations

import os
import socket as socket_mod
import time
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ServiceError
from repro.obs.metrics import bump
from repro.service.protocol import LineReader, config_from_doc, encode

if TYPE_CHECKING:
    from repro.nvct.campaign import CampaignConfig

__all__ = ["ChunkExecutor", "run_worker"]

#: How long a worker keeps retrying a dead socket before concluding the
#: scheduler is gone for good (exit 0: a finished campaign tears the
#: socket down, and that must not look like a failure).
DEFAULT_IDLE_TIMEOUT_S = 30.0

#: Reply deadline on the request/reply ops (lease, commit).  Generous —
#: the scheduler answers in microseconds unless it is dead, and a dead
#: scheduler should be detected, not waited on forever.
REPLY_TIMEOUT_S = 60.0


class ChunkExecutor:
    """Executable form of one shard's campaign spec.

    Building one replays the spec through the exact single-node pipeline
    ``run_campaign`` uses — golden run, :func:`campaign_points`,
    instrumented run, snapshot store — so :meth:`run` yields records
    bit-identical to the serial campaign's, trial index by trial index.
    """

    def __init__(
        self,
        factory,
        cfg: "CampaignConfig",
        golden_iterations: int,
        store,
        runtime,
        trial_timeout: float | None,
    ):
        self.factory = factory
        self.cfg = cfg
        self.golden_iterations = golden_iterations
        self.store = store  # golden image store, or None on the legacy path
        self.runtime = runtime
        self.trial_timeout = trial_timeout

    @classmethod
    def from_spec(cls, spec: dict) -> "ChunkExecutor":
        from repro.apps.registry import get_factory
        from repro.harness.cache import campaign_key
        from repro.nvct.campaign import _instrumented_run, campaign_points

        try:
            factory = get_factory(str(spec["app"]))
        except KeyError as exc:
            raise ServiceError(f"scheduler leased an unknown app: {exc}") from exc
        cfg = config_from_doc(spec["cfg"])
        key = campaign_key(factory, cfg)
        if key != spec.get("key"):
            # Version skew: this worker's code would sample or classify
            # differently than the scheduler's. Refusing here is what
            # keeps "bit-identical" an invariant rather than a hope.
            raise ServiceError(
                f"campaign key mismatch for {factory.name!r}: scheduler has "
                f"{str(spec.get('key'))[:12]}…, this worker derives "
                f"{key[:12]}… — mixed package versions? refusing the lease"
            )
        golden_result, _ = factory.golden()
        points, _weights = campaign_points(factory, cfg)
        use_golden = bool(spec.get("golden"))
        rt, _iterations = _instrumented_run(factory, cfg, points, golden=use_golden)
        store = rt.golden_store() if use_golden else None
        n_snaps = store.n_images if store is not None else len(rt.snapshots)
        if n_snaps != points.size:
            raise ServiceError(
                f"{factory.name}: {points.size} crash points but {n_snaps} snapshots"
            )
        return cls(
            factory,
            cfg,
            golden_result.iterations,
            store,
            rt,
            spec.get("trial_timeout"),
        )

    def run(self, indices: list[int]) -> Iterator[tuple[int, dict]]:
        """Classify the chunk's trials, yielding ``(index, record_doc)``."""
        from repro.nvct.campaign import _classify_trial
        from repro.nvct.serialize import record_to_dict

        snaps = (
            self.store.snapshots(indices)
            if self.store is not None
            else (self.runtime.snapshots[i] for i in indices)
        )
        for i, snap in zip(indices, snaps):
            rec = _classify_trial(
                self.factory, snap, self.golden_iterations, self.cfg,
                self.trial_timeout,
            )
            yield i, record_to_dict(rec)


class _Connection:
    """One blocking connection to the scheduler, with line framing."""

    def __init__(self, path: str, timeout: float = REPLY_TIMEOUT_S):
        self.sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.reader = LineReader()
        self.pending: list[dict] = []

    def send(self, doc: dict) -> None:
        self.sock.sendall(encode(doc))

    def recv(self) -> dict:
        """Next decoded message; raises ``OSError`` on EOF/timeout."""
        while True:
            if self.pending:
                return self.pending.pop(0)
            data = self.sock.recv(1 << 16)
            if not data:
                raise ConnectionResetError("scheduler closed the connection")
            self.pending.extend(self.reader.feed(data))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _connect(
    socket_path: str,
    retry,
    clock: Callable[[], float],
    sleep: Callable[[float], None],
    idle_timeout_s: float,
) -> _Connection | None:
    """Connect with retries; ``None`` once the scheduler stays gone.

    Covers the scheduler-restart window: ``repro serve --resume`` takes
    seconds to rebuild its queue, during which connects fail.  Backoff
    delays come from the (seeded, deterministic) retry policy; the idle
    timeout bounds the total wait.
    """
    start = clock()
    attempt = 0
    while True:
        try:
            return _Connection(socket_path)
        except OSError:
            if clock() - start >= idle_timeout_s:
                return None
            sleep(max(retry.delay("connect", min(attempt, 8)), 0.05))
            attempt += 1
            bump("service.worker_reconnects", unit="attempts")


def run_worker(
    socket_path: str | os.PathLike,
    *,
    name: str | None = None,
    idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
    retry=None,
    breaker=None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    executor_factory: Callable[[dict], ChunkExecutor] = ChunkExecutor.from_spec,
) -> int:
    """Drain leases from the scheduler at ``socket_path`` until ``done``.

    Returns the number of chunks this worker committed.  Raises
    :class:`ServiceError` when the circuit breaker concludes this worker
    cannot execute chunks at all; a merely *finished* (or vanished)
    scheduler is a clean return.
    """
    from repro.harness.resilience import CircuitBreaker, RetryPolicy
    from repro.obs import maybe_span, registry

    path = str(socket_path)
    worker = name or f"worker-{os.getpid()}"
    retry = retry or RetryPolicy(max_retries=8, base_delay=0.1, max_delay=2.0)
    breaker = breaker or CircuitBreaker(threshold=3)
    reg = registry()
    tracer = reg.tracer if reg else None
    executors: dict[str, ChunkExecutor] = {}
    committed = 0
    conn: _Connection | None = None
    try:
        while True:
            if conn is None:
                conn = _connect(path, retry, clock, sleep, idle_timeout_s)
                if conn is None:
                    return committed  # scheduler gone for good: campaign over
            try:
                conn.send({"op": "lease", "worker": worker})
                reply = conn.recv()
            except OSError:
                conn.close()
                conn = None
                continue
            op = reply.get("op")
            if op == "done":
                return committed
            if op == "wait":
                sleep(0.2)
                continue
            if op != "grant":
                continue
            if not breaker.allow():
                raise ServiceError(
                    f"worker {worker}: circuit breaker open after repeated "
                    "chunk failures; giving up"
                )
            try:
                with maybe_span(
                    tracer, "service.chunk",
                    chunk=reply.get("chunk"), worker=worker,
                ):
                    ok = _execute_chunk(
                        conn, reply, executors, executor_factory, clock,
                    )
            except ServiceError:
                raise
            except OSError:
                # Mid-chunk connection loss: the scheduler died (or we
                # were fenced out under it). Abandon the chunk — the
                # reaper re-issues it — and reconnect.
                conn.close()
                conn = None
                continue
            except Exception:
                if breaker.record_failure():
                    raise ServiceError(
                        f"worker {worker}: chunk execution keeps failing "
                        "(circuit breaker tripped); giving up"
                    )
                continue
            breaker.record_success()
            if ok:
                committed += 1
    finally:
        if conn is not None:
            conn.close()


def _execute_chunk(
    conn: _Connection,
    grant: dict,
    executors: dict[str, ChunkExecutor],
    executor_factory: Callable[[dict], ChunkExecutor],
    clock: Callable[[], float],
) -> bool:
    """Run one granted chunk end to end; ``True`` iff the commit was acked."""
    from repro.harness.chaos import injector as chaos_injector

    spec = grant["spec"]
    chunk_id = int(grant["chunk"])
    token = int(grant["token"])
    indices = [int(i) for i in grant["indices"]]
    deadline_s = float(grant.get("deadline_s", 30.0))
    cache_key = f"{spec.get('key')}#{grant.get('node', 0)}"
    if cache_key not in executors:
        executors[cache_key] = executor_factory(spec)
    executor = executors[cache_key]

    heartbeat_every = max(deadline_s / 3.0, 1e-6)
    last_beat = clock()
    for index, record_doc in executor.run(indices):
        ch = chaos_injector()
        if ch is not None:
            # The service.worker death site: a worker dying between two
            # trials of a chunk, detected only by its missed heartbeats.
            ch.maybe_kill("service.worker")
        _send_unreliable(
            conn,
            {"op": "record", "chunk": chunk_id, "token": token,
             "index": index, "record": record_doc},
            site="service.record",
        )
        if clock() - last_beat >= heartbeat_every:
            if ch is not None and ch.delays_heartbeat("service.heartbeat"):
                # Sit this one out: to the scheduler it is a heartbeat
                # delayed past the deadline, which may expire the lease
                # and fence our commit — exactly the zombie drill.
                pass
            else:
                _send_unreliable(
                    conn,
                    {"op": "heartbeat", "chunk": chunk_id, "token": token},
                    site="service.heartbeat",
                )
            last_beat = clock()

    # Commit, resending any records the scheduler never saw (msg_drop).
    while True:
        conn.send({"op": "commit", "chunk": chunk_id, "token": token})
        reply = conn.recv()
        op = reply.get("op")
        if op == "ack":
            return True
        if op == "fenced":
            bump("service.worker_fenced", unit="chunks")
            return False
        if op == "retry":
            missing = {int(i) for i in reply.get("missing", [])}
            for index, record_doc in executor.run(sorted(missing)):
                conn.send(
                    {"op": "record", "chunk": chunk_id, "token": token,
                     "index": index, "record": record_doc}
                )
            continue
        raise ServiceError(f"unexpected commit reply from scheduler: {reply!r}")


def _send_unreliable(conn: _Connection, doc: dict, site: str) -> None:
    """Send a fire-and-forget message through the chaos gate.

    ``msg_drop`` swallows the message (the completeness check or the
    reaper must recover); ``msg_duplicate`` sends it twice (the ledger's
    dedupe must absorb it).  Both decisions are pure in
    ``(seed, site, kind, call#)``.
    """
    from repro.harness.chaos import injector as chaos_injector

    ch = chaos_injector()
    if ch is not None and ch.drops(site):
        return
    conn.send(doc)
    if ch is not None and ch.duplicates(site):
        conn.send(doc)

"""Fault-tolerant campaign orchestration service (``repro serve`` / ``repro work``).

A paper-scale study — millions of crash trials across apps × crash
models × NVM configs — outgrows one process.  This package splits a
campaign the way the paper's own methodology splits an HPC job: a
**scheduler** that owns the work queue and the journals, and stateless
**workers** that pull chunks of trials, execute them through the
existing golden-pass engine, and stream records back.  The robustness
story is the point, not a bolt-on:

* every piece of queue state is an fsync'd, CRC-sealed journal line
  (the same envelope as the campaign journal, :mod:`repro.harness.store`),
  so a SIGKILL'd scheduler restarts with ``repro serve --resume`` and
  rebuilds its queue purely from disk;
* work is handed out as **leases** with monotonically increasing
  fencing tokens and a missed-heartbeat deadline — a dead worker's
  chunk is re-issued by the reaper, and a *zombie* worker (one that
  missed its deadline but kept running) has its late commit rejected
  by the stale token;
* trial records are **exactly-once** in the campaign journal: the
  scheduler dedupes by trial index, which is safe because
  classification is deterministic — any two workers that classify the
  same snapshot produce the bit-identical record;
* the final result is assembled by the ordinary
  :func:`~repro.nvct.campaign.run_campaign` replaying the fully
  populated journal, so a service campaign is **bit-identical** to a
  serial one by construction.

Layout: :mod:`~repro.service.leases` (lease state machine + journals,
no I/O besides the journal, no wall-clock reads — callers pass ``now``),
:mod:`~repro.service.protocol` (line-oriented JSON over a Unix socket,
CRC-sealed like journal lines), :mod:`~repro.service.scheduler`
(transport-agnostic scheduler core + the socket server and reaper),
:mod:`~repro.service.worker` (the pull-execute-commit loop).
"""

from repro.service.leases import Chunk, LeaseJournal, LeaseState, LeaseTable, TrialLedger
from repro.service.scheduler import CampaignScheduler, serve_forever
from repro.service.worker import ChunkExecutor, run_worker

__all__ = [
    "Chunk",
    "LeaseState",
    "LeaseTable",
    "LeaseJournal",
    "TrialLedger",
    "CampaignScheduler",
    "serve_forever",
    "ChunkExecutor",
    "run_worker",
]

"""Line-oriented JSON protocol between ``repro serve`` and ``repro work``.

One message = one line = one CRC-sealed JSON document — the exact
envelope journal lines use (:func:`repro.harness.store.seal_line`), so a
flipped bit on the wire is caught the same way a rotted journal line is.
Messages are dicts with an ``"op"`` field:

========== ============ ====================================================
direction  op           payload
========== ============ ====================================================
w → s      ``lease``    ``worker`` — request a chunk (also serves as hello)
w → s      ``heartbeat````chunk``, ``token`` — keep a lease alive
                        (fire-and-forget; droppable)
w → s      ``record``   ``chunk``, ``token``, ``index``, ``record`` — one
                        classified trial (fire-and-forget; droppable)
w → s      ``commit``   ``chunk``, ``token`` — all records streamed; seal it
s → w      ``grant``    ``chunk``, ``token``, ``node``, ``indices``,
                        ``deadline_s``, ``spec`` — a lease (``spec`` is the
                        self-contained campaign description below)
s → w      ``wait``     nothing leasable right now (all chunks in flight)
s → w      ``done``     campaign complete; the worker exits 0
s → w      ``ack``      commit accepted
s → w      ``retry``    ``missing`` — commit premature: these indices never
                        arrived (dropped records); resend, then re-commit
s → w      ``fenced``   commit rejected: the lease expired or was re-granted
                        (the worker is a zombie for this chunk; drop it)
========== ============ ====================================================

Reliability split: ``lease`` and ``commit`` are request/reply on a
connected stream — they cannot be silently lost.  ``record`` and
``heartbeat`` are fire-and-forget, which is where the ``msg_drop`` /
``msg_duplicate`` chaos kinds bite; the commit-time completeness check
(``retry``) closes the dropped-record hole, and the missed-heartbeat
reaper plus fencing closes the dropped-heartbeat one.

The ``spec`` makes workers stateless: ``app`` + the full campaign config
document lets a worker re-derive the golden run, the crash points, and
every snapshot from nothing, and the embedded content ``key`` (the same
SHA-256 the artifact cache and journal headers use) is re-computed and
checked worker-side, so a worker running skewed code refuses the work
instead of producing records that merely look compatible.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import ServiceError, SnapshotCorruptError
from repro.obs.metrics import bump

if TYPE_CHECKING:
    from repro.nvct.campaign import CampaignConfig

__all__ = [
    "encode",
    "decode_line",
    "LineReader",
    "config_to_doc",
    "config_from_doc",
]


def encode(doc: dict) -> bytes:
    """One message, sealed and newline-terminated (the wire format)."""
    from repro.harness.store import seal_line

    return json.dumps(seal_line(doc), sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict | None:
    """Decode one received line; ``None`` (counted) if torn or corrupt.

    A bad line is treated like a dropped message — the retry/reaper
    machinery recovers — rather than poisoning the connection.
    """
    from repro.harness.store import open_line

    try:
        doc = json.loads(line)
        if not isinstance(doc, dict):
            raise ValueError("not an object")
        return open_line(doc)
    except (ValueError, KeyError, TypeError, SnapshotCorruptError):
        bump("service.bad_lines", unit="messages")
        return None


class LineReader:
    """Incremental splitter: feed raw socket bytes, get decoded messages."""

    def __init__(self) -> None:
        self._buf = b""

    def feed(self, data: bytes) -> list[dict]:
        self._buf += data
        out = []
        while (pos := self._buf.find(b"\n")) >= 0:
            line, self._buf = self._buf[:pos], self._buf[pos + 1 :]
            if (doc := decode_line(line)) is not None:
                out.append(doc)
        return out


# -- campaign-config transport -------------------------------------------------


def config_to_doc(cfg: "CampaignConfig") -> dict:
    """Ship a campaign config to a stateless worker, losslessly.

    Unlike the content-key document (which drops defaults for key
    stability) this carries *every* field explicitly — the worker must
    reconstruct the exact config, not just fingerprint it.  A custom
    ``hierarchy`` is refused: the service CLI never sets one, and
    shipping arbitrary hierarchy objects is not worth the surface.
    """
    from repro.nvct.serialize import plan_to_dict

    if cfg.hierarchy is not None:
        raise ServiceError(
            "the orchestration service cannot ship a custom memory "
            "hierarchy to workers; run this campaign with `repro campaign`"
        )
    return {
        "n_tests": cfg.n_tests,
        "seed": cfg.seed,
        "plan": plan_to_dict(cfg.plan),
        "verified_mode": cfg.verified_mode,
        "max_iter_factor": cfg.max_iter_factor,
        "distribution": cfg.distribution,
        "n_cores": cfg.n_cores,
        "crash_model": cfg.crash_model,
        "nodes": cfg.nodes,
        "correlation": cfg.correlation,
        "burst_window_s": cfg.burst_window_s,
        "node": cfg.node,
    }


def config_from_doc(doc: dict) -> "CampaignConfig":
    """Rebuild the exact :class:`CampaignConfig` a scheduler shipped."""
    from repro.nvct.campaign import CampaignConfig
    from repro.nvct.serialize import plan_from_dict

    try:
        return replace(
            CampaignConfig(),
            n_tests=int(doc["n_tests"]),
            seed=int(doc["seed"]),
            plan=plan_from_dict(doc["plan"]),
            verified_mode=bool(doc["verified_mode"]),
            max_iter_factor=float(doc["max_iter_factor"]),
            distribution=str(doc["distribution"]),
            n_cores=int(doc["n_cores"]),
            crash_model=str(doc["crash_model"]),
            nodes=int(doc["nodes"]),
            correlation=float(doc["correlation"]),
            burst_window_s=float(doc["burst_window_s"]),
            node=int(doc["node"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed campaign spec from scheduler: {exc!r}") from exc

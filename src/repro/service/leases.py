"""Lease state machine, lease journal, and the exactly-once trial ledger.

The scheduler's whole queue is three small, separately testable pieces:

* :class:`LeaseTable` — pure in-memory state machine over the campaign's
  chunks.  **No wall-clock reads**: every time-dependent transition takes
  ``now`` from the caller, so reaper tests drive a fake clock and run
  deterministically without sleeps.  Fencing tokens come from one global
  monotonically increasing counter; a commit is accepted iff the chunk is
  still leased *and* the presented token is the lease's current token —
  an expired-and-regranted chunk fences the zombie's stale token, and an
  expired-but-not-yet-regranted chunk is ``pending`` (not leased), so a
  zombie commit is rejected either way.
* :class:`LeaseJournal` — the fsync'd write-ahead log of grant / expire /
  commit events, one CRC-sealed JSONL line each (the exact envelope the
  campaign journal uses, :func:`repro.harness.store.seal_line`).  Events
  are journaled *before* their effect is exposed (a grant is durable
  before the worker sees it), so ``repro serve --resume`` rebuilds the
  table by pure replay; foreign journals are refused through the same
  campaign-key + topology-fingerprint checks as campaign journals.
* :class:`TrialLedger` — the exactly-once sink in front of one shard's
  campaign journal: a record is appended iff its trial index has never
  been journaled.  Deduplicating by index is sufficient because
  classification is deterministic — a duplicate delivery or a zombie's
  in-flight record carries bit-identical content.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import JournalError
from repro.obs.metrics import bump

if TYPE_CHECKING:
    from repro.nvct.campaign import CrashTestRecord
    from repro.nvct.journal import CampaignJournal

__all__ = [
    "Chunk",
    "LeaseState",
    "LeaseTable",
    "LeaseJournal",
    "TrialLedger",
    "lease_header",
]

#: Lease states (a chunk is exactly one of these at any time).
PENDING = "pending"
LEASED = "leased"
COMMITTED = "committed"


@dataclass(frozen=True)
class Chunk:
    """One unit of leased work: a fixed set of trial indices on one shard.

    ``indices`` is an explicit tuple (not a range) because a pruned crash
    plan executes a non-contiguous subset of the campaign's trials.
    """

    chunk_id: int
    node: int
    indices: tuple[int, ...]


@dataclass
class LeaseState:
    """Mutable lease bookkeeping for one chunk."""

    chunk: Chunk
    status: str = PENDING
    token: int = 0  # 0 = never granted; real tokens start at 1
    worker: str = ""
    deadline: float = 0.0  # on the caller's clock; meaningless unless LEASED
    stolen: bool = False  # lease_steal chaos: expire at the next reap


class LeaseTable:
    """The scheduler's queue: chunks moving pending → leased → committed.

    Purely in-memory and clock-free; the scheduler journals every
    transition through :class:`LeaseJournal` and replays the journal back
    through :meth:`apply` on ``--resume``.
    """

    def __init__(self, chunks: list[Chunk], deadline_s: float):
        if deadline_s <= 0:
            raise ValueError(f"lease deadline must be positive, got {deadline_s}")
        self.deadline_s = float(deadline_s)
        self.states = {c.chunk_id: LeaseState(c) for c in chunks}
        self.next_token = 1

    # -- queries ---------------------------------------------------------------

    def done(self) -> bool:
        return all(s.status == COMMITTED for s in self.states.values())

    def counts(self) -> dict[str, int]:
        out = {PENDING: 0, LEASED: 0, COMMITTED: 0}
        for s in self.states.values():
            out[s.status] += 1
        return out

    # -- live transitions ------------------------------------------------------

    def grant(self, worker: str, now: float) -> LeaseState | None:
        """Lease the lowest-id pending chunk to ``worker``; ``None`` if none.

        The fencing token is drawn from the single global counter, so
        tokens are strictly increasing across *all* grants — the total
        order that makes "stale token" well defined.
        """
        for chunk_id in sorted(self.states):
            st = self.states[chunk_id]
            if st.status == PENDING:
                st.status = LEASED
                st.token = self.next_token
                self.next_token += 1
                st.worker = worker
                st.deadline = now + self.deadline_s
                st.stolen = False
                return st
        return None

    def heartbeat(self, chunk_id: int, token: int, now: float) -> bool:
        """Extend the lease deadline; ``False`` if the lease is not current."""
        st = self.states.get(chunk_id)
        if st is None or st.status != LEASED or st.token != token:
            return False
        st.deadline = now + self.deadline_s
        return True

    def expire_due(self, now: float) -> list[LeaseState]:
        """Reap: return (and re-enqueue) every lease past its deadline."""
        out = []
        for st in self.states.values():
            if st.status == LEASED and (st.stolen or now >= st.deadline):
                st.status = PENDING
                st.worker = ""
                st.stolen = False
                # token is kept: the *next* grant draws a fresh, higher one,
                # and the old value documents which grant was reaped.
                out.append(st)
        return out

    def commit(self, chunk_id: int, token: int) -> str:
        """Try to commit a chunk: ``"ok"``, ``"fenced"`` or ``"duplicate"``.

        ``fenced`` covers both zombie cases — the chunk was re-granted
        under a higher token, or it expired and sits pending.  A commit
        of an already-committed chunk is a ``duplicate`` (e.g. the ack
        was lost and the worker retried): harmless, not an error.
        """
        st = self.states.get(chunk_id)
        if st is None:
            return "fenced"
        if st.status == COMMITTED:
            return "duplicate"
        if st.status != LEASED or st.token != token:
            return "fenced"
        st.status = COMMITTED
        return "ok"

    # -- journal replay --------------------------------------------------------

    def apply(self, event: dict) -> None:
        """Replay one journaled event (grant / expire / commit).

        Replay is forgiving where live transitions are strict: the journal
        is the authority, and an event for an unknown chunk (a corrupt
        campaign would have been refused by the header check long before)
        is ignored rather than fatal.
        """
        st = self.states.get(int(event.get("chunk", -1)))
        if st is None:
            return
        kind = event.get("event")
        token = int(event.get("token", 0))
        if kind == "grant":
            st.status = LEASED
            st.token = token
            st.worker = str(event.get("worker", ""))
            st.deadline = 0.0  # a replayed lease is immediately reapable
        elif kind == "expire":
            if st.status == LEASED:
                st.status = PENDING
                st.worker = ""
        elif kind == "commit":
            st.status = COMMITTED
        if token >= self.next_token:
            # Tokens stay strictly increasing across scheduler restarts.
            self.next_token = token + 1


def lease_header(
    factory, cfg, *, chunk_size: int, deadline_s: float, n_chunks: int
) -> dict:
    """Header line of a lease journal.

    Rides on :func:`repro.nvct.journal.campaign_header` — same campaign
    content key, same optional topology fingerprint — plus the service
    parameters that shape the chunk layout, so a resume under a different
    ``--chunk-size`` is refused instead of replaying events against a
    differently numbered queue.  ``journal: "leases"`` keeps a campaign
    journal from ever being mistaken for a lease journal or vice versa.
    """
    from repro.nvct.journal import campaign_header

    header = campaign_header(factory, cfg)
    header["journal"] = "leases"
    header["chunk_size"] = int(chunk_size)
    header["deadline_s"] = float(deadline_s)
    header["n_chunks"] = int(n_chunks)
    return header


class LeaseJournal:
    """Append-only fsync'd event journal for one scheduler's queue.

    Same write-ahead discipline as the campaign journal: an event is
    either durably on disk or it never happened.  The torn tail a
    SIGKILL can leave is quarantined and truncated on resume, exactly
    like :meth:`repro.nvct.journal.CampaignJournal.open_or_resume` —
    losing the tail is always safe because every lost event is
    re-derivable (an un-journaled grant was never exposed to a worker;
    an un-journaled commit leaves the chunk pending and it re-runs).
    """

    def __init__(self, path: str | Path, header: dict):
        self.path = Path(path)
        self.header = header
        self._fh = None  # type: ignore[assignment]

    @classmethod
    def create(cls, path: str | Path, header: dict) -> "LeaseJournal":
        journal = cls(path, header)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "wb")
        journal._write_line(header)
        return journal

    @classmethod
    def open_or_resume(
        cls, path: str | Path, header: dict
    ) -> tuple["LeaseJournal", list[dict]]:
        """Resume ``path`` if it journals this queue, else start fresh.

        Returns the journal and every intact replayable event, in append
        order.  Refusal rules mirror the campaign journal's (topology
        first, then the content key), plus the service-shape check: a
        journal written under a different chunk size describes a
        different queue and cannot be replayed onto this one.
        """
        from repro.harness.store import quarantine_bytes
        from repro.nvct.journal import scan_journal

        path = Path(path)
        if not path.exists() or path.stat().st_size == 0:
            return cls.create(path, header), []
        raw = path.read_bytes()
        found, lines, valid = scan_journal(raw)
        if found is None or found.get("journal") != "leases":
            raise JournalError(
                f"{path}: not a lease journal (delete it or pick another path)"
            )
        if found.get("topology") != header.get("topology"):
            raise JournalError(
                f"{path}: lease journal was recorded under a different cluster "
                f"topology (found {found.get('topology')!r}, campaign has "
                f"{header.get('topology')!r}); refusing to resume"
            )
        if found.get("key") != header.get("key"):
            raise JournalError(
                f"{path}: lease journal belongs to a different campaign "
                f"(app {found.get('app')!r}, key {str(found.get('key'))[:12]}…); "
                "refusing to resume"
            )
        for param in ("chunk_size", "deadline_s", "n_chunks"):
            if found.get(param) != header.get(param):
                raise JournalError(
                    f"{path}: lease journal was written with {param}="
                    f"{found.get(param)!r} but this run asks for "
                    f"{header.get(param)!r} — the chunk layout would not "
                    "match; re-run with the original value or start fresh"
                )
        tail = raw[valid:]
        if tail:
            quarantine_bytes(tail, path.parent, path.name + ".tail")
        events = [
            {k: v for k, v in doc.items() if k != "crc"}
            for doc, _ in lines
            if doc.get("kind") == "lease-event"
        ]
        journal = cls(path, found)
        journal._fh = open(path, "r+b")
        journal._fh.truncate(valid)
        journal._fh.seek(valid)
        bump("service.lease_journal_resumes", unit="resumes")
        return journal, events

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "LeaseJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _write_line(self, doc: dict) -> None:
        from repro.harness.chaos import injector as chaos_injector
        from repro.harness.store import seal_line

        assert self._fh is not None, "lease journal is closed"
        line = json.dumps(seal_line(doc), sort_keys=True).encode("utf-8") + b"\n"
        if (ch := chaos_injector()) is not None:
            ch.maybe_sleep("journal.append")
            ch.check_io("journal.append")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    #: Same bounded-retry budget as the campaign journal's appends.
    APPEND_ATTEMPTS = 3

    def append(self, event: dict) -> None:
        """Durably journal one lease event (fsync before returning)."""
        doc = {"kind": "lease-event", **event}
        for attempt in range(self.APPEND_ATTEMPTS):
            try:
                self._write_line(doc)
                break
            except OSError:
                if attempt == self.APPEND_ATTEMPTS - 1:
                    raise
                self._fh = open(self.path, "ab")
        bump("service.lease_events", unit="events")


@dataclass
class TrialLedger:
    """Exactly-once gate in front of one shard's campaign journal.

    ``add`` journals a record iff its index is new; duplicates — a
    re-sent record after a lost ack, a ``msg_duplicate`` chaos double, a
    zombie's in-flight stream — are dropped and counted.  Safe because
    classification is deterministic: every delivery of index ``i``
    carries the bit-identical record.
    """

    journal: "CampaignJournal | None"
    indices: set[int] = field(default_factory=set)

    def add(self, index: int, record: "CrashTestRecord") -> bool:
        if index in self.indices:
            bump("service.duplicate_records", unit="records")
            return False
        if self.journal is not None:
            self.journal.append(index, record)
        self.indices.add(index)
        return True

    def has(self, index: int) -> bool:
        return index in self.indices

    def missing(self, indices: tuple[int, ...]) -> list[int]:
        return [i for i in indices if i not in self.indices]

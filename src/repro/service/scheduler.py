"""The ``repro serve`` scheduler: shard, lease, reap, and journal a campaign.

:class:`CampaignScheduler` is transport-agnostic — it consumes decoded
protocol messages through :meth:`~CampaignScheduler.handle` and a reaper
tick through :meth:`~CampaignScheduler.reap`, both taking ``now`` from
the caller's (injectable) clock, so every scheduling decision is testable
without a socket or a sleep.  :func:`serve_forever` is the thin event
loop that binds the Unix socket, feeds bytes through
:class:`~repro.service.protocol.LineReader`, and drives the reaper.

Durability contract: every state transition (grant, expiry, commit) is
fsync'd to the lease journal *before* its effect is visible to any
worker, and every trial record is fsync'd to the shard's campaign
journal before it counts toward a chunk's completeness.  ``--resume``
therefore rebuilds the queue purely from the two journals: replay the
lease events, auto-commit chunks the campaign journal already covers,
and expire whatever was leased when the scheduler died (those workers'
tokens are stale the moment a chunk is re-granted — fencing handles the
zombies).  Foreign journals are refused through the campaign content key
and the cluster topology fingerprint, exactly like ``repro campaign
--resume``.
"""

from __future__ import annotations

import socket as socket_mod
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import JournalError, UsageError
from repro.obs.metrics import bump
from repro.service.leases import (
    Chunk,
    LeaseJournal,
    LeaseTable,
    TrialLedger,
    lease_header,
)
from repro.service.protocol import config_to_doc, encode

if TYPE_CHECKING:
    from repro.apps.base import AppFactory
    from repro.nvct.campaign import CampaignConfig
    from repro.nvct.journal import CampaignJournal

__all__ = ["CampaignScheduler", "serve_forever", "DEFAULT_CHUNK_SIZE", "DEFAULT_DEADLINE_S"]

DEFAULT_CHUNK_SIZE = 8
DEFAULT_DEADLINE_S = 30.0


@dataclass
class _Shard:
    """One node's slice of the campaign: its config, journal and ledger."""

    node: int
    cfg: "CampaignConfig"
    n_snaps: int
    spec: dict  # the self-contained campaign description workers execute
    journal: "CampaignJournal"
    ledger: TrialLedger


class CampaignScheduler:
    """Queue state + protocol logic for one campaign's orchestration.

    ``journal`` is the campaign journal path (per-node siblings are
    derived for multi-node topologies, same layout as ``repro campaign
    --nodes --resume``); ``lease_journal`` defaults to ``<journal>.leases``.
    Call :meth:`prepare` once, then feed messages/ticks; when
    :meth:`done` turns true, :meth:`close` the journals and assemble the
    final result with the ordinary ``run_campaign`` /
    ``run_cluster_campaign`` replaying the now-complete journals — which
    is what makes the service result bit-identical to a serial run by
    construction.
    """

    def __init__(
        self,
        factory: "AppFactory",
        cfg: "CampaignConfig",
        *,
        journal: str | Path,
        lease_journal: str | Path | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        deadline_s: float = DEFAULT_DEADLINE_S,
        resume: bool = False,
        crash_plan: "object | None" = None,
        golden: bool | None = None,
        trial_timeout: float | None = None,
    ):
        if chunk_size < 1:
            raise UsageError(f"chunk size must be >= 1, got {chunk_size}")
        if cfg.hierarchy is not None:
            raise UsageError(
                "the orchestration service cannot ship a custom hierarchy "
                "to workers; use repro campaign"
            )
        if crash_plan is not None and cfg.nodes > 1:
            raise UsageError("a pruned crash plan cannot be combined with --nodes")
        self.factory = factory
        self.cfg = cfg
        self.journal_path = Path(journal)
        self.lease_path = (
            Path(lease_journal)
            if lease_journal is not None
            else self.journal_path.with_name(self.journal_path.name + ".leases")
        )
        self.chunk_size = int(chunk_size)
        self.deadline_s = float(deadline_s)
        self.resume = bool(resume)
        self.crash_plan = crash_plan
        self.golden = golden
        self.trial_timeout = trial_timeout
        self.shards: dict[int, _Shard] = {}
        self.table: LeaseTable | None = None
        self.lease_journal: LeaseJournal | None = None

    # -- queue construction ----------------------------------------------------

    def _shard_cfgs(self) -> list["CampaignConfig"]:
        """Per-node campaign configs, exactly as the cluster emulator cuts
        them (so journal headers and sampling keys match shard for shard)."""
        if self.cfg.nodes == 1:
            return [self.cfg]
        from repro.cluster.emulator import burst_schedule, trials_per_node
        from repro.cluster.topology import ClusterTopology

        topology = ClusterTopology.from_config(self.cfg)
        bursts = burst_schedule(topology, self.cfg.n_tests, self.cfg.seed)
        counts = trials_per_node(bursts, topology.nodes)
        return [
            replace(self.cfg, node=node, n_tests=n)
            for node, n in enumerate(counts)
            if n > 0
        ]

    def prepare(self) -> None:
        """Shard the campaign, open the journals, rebuild or create the queue."""
        from repro.cluster.topology import node_journal_path
        from repro.memsim.crashmodel import get_model
        from repro.nvct.campaign import _golden_default, campaign_points
        from repro.nvct.journal import CampaignJournal, campaign_header

        get_model(self.cfg.crash_model)  # validate the spec up front
        if self.crash_plan is not None:
            self.crash_plan.validate_for(self.factory, self.cfg)  # type: ignore[attr-defined]

        chunks: list[Chunk] = []
        chunk_id = 0
        for node_cfg in self._shard_cfgs():
            points, weights = campaign_points(self.factory, node_cfg)
            n_snaps = int(points.size)
            if self.crash_plan is not None:
                plan = self.crash_plan
                if plan.points != [int(p) for p in points] or plan.weights != [  # type: ignore[attr-defined]
                    int(w) for w in weights
                ]:
                    raise UsageError(
                        "crash plan's sampled points disagree with this "
                        "campaign's sampling — the plan is stale; re-emit "
                        "with `repro analyze --emit-plan`"
                    )
                to_run: list[int] = list(plan.executed_indices())  # type: ignore[attr-defined]
            else:
                to_run = list(range(n_snaps))
            use_golden = self.crash_plan is not None or (
                (self.golden if self.golden is not None else _golden_default())
                and node_cfg.n_cores == 1
                and not node_cfg.verified_mode
                and n_snaps > 0
            )
            journal, completed = CampaignJournal.open_or_resume(
                node_journal_path(self.journal_path, node_cfg.node),
                campaign_header(self.factory, node_cfg),
            )
            ledger = TrialLedger(journal, {i for i in completed if 0 <= i < n_snaps})
            spec = {
                "app": self.factory.name,
                "key": journal.header["key"],
                "cfg": config_to_doc(node_cfg),
                "golden": use_golden,
            }
            if self.trial_timeout is not None:
                spec["trial_timeout"] = self.trial_timeout
            self.shards[node_cfg.node] = _Shard(
                node=node_cfg.node,
                cfg=node_cfg,
                n_snaps=n_snaps,
                spec=spec,
                journal=journal,
                ledger=ledger,
            )
            for lo in range(0, len(to_run), self.chunk_size):
                chunks.append(
                    Chunk(
                        chunk_id=chunk_id,
                        node=node_cfg.node,
                        indices=tuple(to_run[lo : lo + self.chunk_size]),
                    )
                )
                chunk_id += 1

        self.table = LeaseTable(chunks, self.deadline_s)
        header = lease_header(
            self.factory,
            self.cfg,
            chunk_size=self.chunk_size,
            deadline_s=self.deadline_s,
            n_chunks=len(chunks),
        )
        if self.resume:
            self.lease_journal, events = LeaseJournal.open_or_resume(
                self.lease_path, header
            )
            for event in events:
                self.table.apply(event)
        else:
            if self.lease_path.exists() and self.lease_path.stat().st_size > 0:
                raise JournalError(
                    f"{self.lease_path}: lease journal already exists — a "
                    "scheduler died here; restart with --resume (or delete "
                    "the file to abandon its queue state)"
                )
            self.lease_journal = LeaseJournal.create(self.lease_path, header)

        # Chunks the campaign journal already fully covers are committed
        # work regardless of what the lease journal says (the record fsync
        # may have landed while the commit event was lost to a crash).
        for st in self.table.states.values():
            ledger = self.shards[st.chunk.node].ledger
            if st.status != "committed" and not ledger.missing(st.chunk.indices):
                st.status = "committed"
                self.lease_journal.append(
                    {"event": "commit", "chunk": st.chunk.chunk_id,
                     "token": st.token, "recovered": True}
                )
        if self.resume:
            # Whoever held a lease when the scheduler died is a zombie
            # now: re-enqueue immediately (replayed grants carry deadline
            # 0, i.e. already missed) and let fencing reject late commits.
            self.reap(now=0.0)

    # -- protocol --------------------------------------------------------------

    def handle(self, msg: dict, now: float) -> list[dict]:
        """Process one decoded message; return the replies to send back."""
        assert self.table is not None and self.lease_journal is not None
        op = msg.get("op")
        if op == "lease":
            return self._handle_lease(str(msg.get("worker", "?")), now)
        if op == "heartbeat":
            ok = self.table.heartbeat(
                int(msg.get("chunk", -1)), int(msg.get("token", 0)), now
            )
            if ok:
                bump("service.heartbeats", unit="beats")
            return []
        if op == "record":
            self._handle_record(msg)
            return []
        if op == "commit":
            return [self._handle_commit(msg)]
        bump("service.bad_lines", unit="messages")
        return []

    def _handle_lease(self, worker: str, now: float) -> list[dict]:
        assert self.table is not None and self.lease_journal is not None
        st = self.table.grant(worker, now)
        if st is None:
            return [{"op": "done"} if self.table.done() else {"op": "wait"}]
        # Write-ahead: the grant is durable before any worker sees it, so
        # a post-crash resume can never find a live lease it has no
        # journal line for.
        self.lease_journal.append(
            {"event": "grant", "chunk": st.chunk.chunk_id,
             "token": st.token, "worker": worker}
        )
        from repro.harness.chaos import injector as chaos_injector

        if (ch := chaos_injector()) is not None and ch.steals("service.lease"):
            # Another reaper already re-issued this chunk, as far as the
            # holder is concerned: expire it at the next tick and let the
            # fencing token reject the original holder's commit.
            st.stolen = True
        bump("service.leases_granted", unit="leases")
        shard = self.shards[st.chunk.node]
        return [
            {
                "op": "grant",
                "chunk": st.chunk.chunk_id,
                "token": st.token,
                "node": st.chunk.node,
                "indices": list(st.chunk.indices),
                "deadline_s": self.deadline_s,
                "spec": shard.spec,
            }
        ]

    def _handle_record(self, msg: dict) -> None:
        """Ingest one streamed trial record (fire-and-forget, best effort).

        Records are accepted regardless of lease status — a zombie's
        record for a still-missing index is bit-identical to the one the
        new holder would produce (classification is deterministic), and
        the ledger's index dedupe enforces exactly-once in the journal.
        """
        assert self.table is not None
        from repro.nvct.serialize import record_from_dict

        st = self.table.states.get(int(msg.get("chunk", -1)))
        if st is None:
            return
        try:
            index = int(msg["index"])
            record = record_from_dict(msg["record"])
        except (KeyError, TypeError, ValueError):
            bump("service.bad_lines", unit="messages")
            return
        if index not in st.chunk.indices:
            bump("service.bad_lines", unit="messages")
            return
        if self.shards[st.chunk.node].ledger.add(index, record):
            bump("service.records", unit="records")

    def _handle_commit(self, msg: dict) -> dict:
        assert self.table is not None and self.lease_journal is not None
        chunk_id = int(msg.get("chunk", -1))
        token = int(msg.get("token", 0))
        st = self.table.states.get(chunk_id)
        if st is None:
            bump("service.fenced_commits", unit="commits")
            return {"op": "fenced", "chunk": chunk_id}
        if st.status == "leased" and st.token == token:
            missing = self.shards[st.chunk.node].ledger.missing(st.chunk.indices)
            if missing:
                # Dropped records (msg_drop chaos, a lossy pipe): the
                # commit is premature, not wrong — ask for the gaps.
                return {"op": "retry", "chunk": chunk_id, "missing": missing}
        verdict = self.table.commit(chunk_id, token)
        if verdict == "ok":
            self.lease_journal.append(
                {"event": "commit", "chunk": chunk_id, "token": token}
            )
            bump("service.commits", unit="commits")
            return {"op": "ack", "chunk": chunk_id}
        if verdict == "duplicate":
            # The chunk is already sealed (this worker's first ack was
            # lost, or the journal covered it at resume): idempotent ack.
            return {"op": "ack", "chunk": chunk_id}
        bump("service.fenced_commits", unit="commits")
        return {"op": "fenced", "chunk": chunk_id}

    # -- the reaper ------------------------------------------------------------

    def reap(self, now: float) -> int:
        """Expire every lease past its missed-heartbeat deadline."""
        assert self.table is not None and self.lease_journal is not None
        expired = self.table.expire_due(now)
        for st in expired:
            self.lease_journal.append(
                {"event": "expire", "chunk": st.chunk.chunk_id, "token": st.token}
            )
            bump("service.leases_expired", unit="leases")
        return len(expired)

    # -- lifecycle -------------------------------------------------------------

    def done(self) -> bool:
        return self.table is not None and self.table.done()

    def close(self) -> None:
        for shard in self.shards.values():
            shard.journal.close()
        if self.lease_journal is not None:
            self.lease_journal.close()


def serve_forever(
    scheduler: CampaignScheduler,
    socket_path: str | Path,
    *,
    clock: Callable[[], float] = time.monotonic,
    poll_s: float = 0.05,
    linger_s: float = 2.0,
) -> None:
    """Run the scheduler's event loop on a Unix stream socket until done.

    Accepts connections, splits their byte streams into sealed JSON
    lines, dispatches to :meth:`CampaignScheduler.handle`, and drives the
    reaper once per poll interval.  After the campaign completes it
    lingers briefly so workers polling for work receive ``done`` and exit
    cleanly; a worker that misses the linger window sees a vanished
    socket, which its connect-retry loop treats the same way.

    A stale socket file (a SIGKILL'd predecessor's) is unlinked before
    binding — queue safety never depends on the socket, only on the
    journals.
    """
    import selectors

    from repro.obs import maybe_span, registry
    from repro.service.protocol import LineReader

    path = Path(socket_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        path.unlink()
    server = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    reg = registry()
    try:
        server.bind(str(path))
        server.listen(16)
        server.setblocking(False)
        sel = selectors.DefaultSelector()
        sel.register(server, selectors.EVENT_READ, None)

        def pump(deadline: float | None) -> None:
            scheduler.reap(clock())
            for key, _ in sel.select(timeout=poll_s):
                if key.data is None:
                    conn, _addr = server.accept()  # type: ignore[union-attr]
                    conn.setblocking(True)
                    sel.register(conn, selectors.EVENT_READ, LineReader())
                    continue
                conn = key.fileobj  # type: ignore[assignment]
                try:
                    data = conn.recv(1 << 16)
                except OSError:
                    data = b""
                if not data:
                    sel.unregister(conn)
                    conn.close()
                    continue
                try:
                    for msg in key.data.feed(data):
                        for reply in scheduler.handle(msg, clock()):
                            conn.sendall(encode(reply))
                except (BrokenPipeError, ConnectionResetError):
                    # The worker died mid-reply; its lease will expire.
                    sel.unregister(conn)
                    conn.close()

        with maybe_span(
            reg.tracer if reg else None, "service.serve", app=scheduler.factory.name
        ):
            while not scheduler.done():
                pump(None)
            # Linger: answer the final round of lease polls with "done".
            end = clock() + linger_s
            while clock() < end and len(sel.get_map()) > 1:
                pump(end)
        for key in list(sel.get_map().values()):
            if key.data is not None:
                key.fileobj.close()  # type: ignore[union-attr]
        sel.close()
    finally:
        server.close()
        if path.exists():
            path.unlink()
        scheduler.close()

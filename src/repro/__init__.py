"""EasyCrash reproduction.

A from-scratch Python implementation of *EasyCrash: Exploring
Non-Volatility of Non-Volatile Memory for High Performance Computing
Under Failures* (Ren, Wu, Li — IEEE CLUSTER 2020): the NVCT crash tester
(value-aware cache/NVM simulation), eleven instrumented HPC
mini-applications, the EasyCrash selective-persistence planner, the
performance and write-endurance models, the C/R baseline, and the
Sec. 7 system-efficiency emulator.

Typical entry points::

    from repro.apps.registry import get_factory
    from repro.core import EasyCrashConfig, plan_easycrash
    from repro.nvct import CampaignConfig, run_campaign

See README.md for a tour, DESIGN.md for the architecture, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Exception hierarchy for the repro package — and the CLI exit-code taxonomy.

Exit codes (``python -m repro``, enforced in :func:`repro.cli.main` and
tested by ``tests/test_cli.py``):

====== ======================================================================
code   meaning
====== ======================================================================
``0``  success
``1``  findings / regression: the command ran but its gate failed (analyzer
       findings in ``--strict``, a perf regression in ``stats --diff``,
       a failed doctor check or fsck verdict)
``2``  usage or environment error: bad arguments, unreadable input,
       :class:`JournalError` (e.g. resuming a journal that belongs to a
       different campaign)
``3``  data corruption: :class:`SnapshotCorruptError` escaped to the top
       level — a store record, bench document, or campaign file failed its
       integrity check and no self-healing path applied (``repro doctor
       fsck --repair`` quarantines the offender)
``130`` interrupted (Ctrl-C); with ``--resume`` at most the in-flight trial
       is lost
====== ======================================================================
"""

from __future__ import annotations

#: CLI exit codes (see module docstring for the full taxonomy).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_CORRUPT = 3
EXIT_INTERRUPTED = 130


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class UsageError(ReproError):
    """Raised for bad user input the CLI should report as exit code 2
    (e.g. ``analyze --apps`` naming an application that is not in the
    registry, or a crash plan that does not match the campaign)."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class AllocationError(ReproError):
    """Raised when the persistent heap cannot satisfy an allocation."""


class CrashInjected(ReproError):
    """Raised inside an instrumented run when an injected crash fires.

    This is the simulated analogue of the machine halting: the exception
    unwinds the application's main loop, and the campaign driver captures
    the NVM image that remains.
    """


class RestartInterrupted(ReproError):
    """Raised when a restarted application cannot run to completion.

    Corresponds to the paper's response class S3 ("Interruption", e.g. a
    segfault caused by restarting from inconsistent data).
    """


class VerificationError(ReproError):
    """Raised when an application's acceptance verification fails."""


class PlanInfeasible(ReproError):
    """Raised when no code-region selection satisfies both the runtime
    overhead bound ``ts`` and the recomputability threshold ``tau``."""


class SnapshotCorruptError(ReproError, ValueError):
    """Raised when serialized campaign/snapshot data is truncated or garbage.

    Subclasses ``ValueError`` so legacy callers that caught the bare
    decode error keep working; the typed class lets the resilience layer
    distinguish transport corruption (recoverable: the parent still holds
    the pristine snapshot) from application failures.
    """


class TrialTimeout(ReproError):
    """Raised when one crash trial exceeds its ``--trial-timeout`` deadline."""


class JournalError(ReproError):
    """Raised when a campaign journal cannot be used for the requested run
    (e.g. ``--resume`` with a journal written for a different campaign)."""


class ServiceError(ReproError):
    """Raised when the campaign orchestration service cannot continue
    (e.g. a worker's circuit breaker trips after repeated chunk failures,
    or a scheduler socket cannot be bound).  The CLI maps it to exit
    code 1: the command ran but the service could not finish its job."""

"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class AllocationError(ReproError):
    """Raised when the persistent heap cannot satisfy an allocation."""


class CrashInjected(ReproError):
    """Raised inside an instrumented run when an injected crash fires.

    This is the simulated analogue of the machine halting: the exception
    unwinds the application's main loop, and the campaign driver captures
    the NVM image that remains.
    """


class RestartInterrupted(ReproError):
    """Raised when a restarted application cannot run to completion.

    Corresponds to the paper's response class S3 ("Interruption", e.g. a
    segfault caused by restarting from inconsistent data).
    """


class VerificationError(ReproError):
    """Raised when an application's acceptance verification fails."""


class PlanInfeasible(ReproError):
    """Raised when no code-region selection satisfies both the runtime
    overhead bound ``ts`` and the recomputability threshold ``tau``."""


class SnapshotCorruptError(ReproError, ValueError):
    """Raised when serialized campaign/snapshot data is truncated or garbage.

    Subclasses ``ValueError`` so legacy callers that caught the bare
    decode error keep working; the typed class lets the resilience layer
    distinguish transport corruption (recoverable: the parent still holds
    the pristine snapshot) from application failures.
    """


class TrialTimeout(ReproError):
    """Raised when one crash trial exceeds its ``--trial-timeout`` deadline."""


class JournalError(ReproError):
    """Raised when a campaign journal cannot be used for the requested run
    (e.g. ``--resume`` with a journal written for a different campaign)."""

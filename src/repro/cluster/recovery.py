"""Per-burst recovery orchestration: NVM restart vs. checkpoint rollback.

After a correlated burst crashes ``k`` nodes at once, each victim's
post-crash NVM image has already been classified by the campaign engine
(the same S1-S4 taxonomy as Fig. 3).  The orchestrator turns those
*measured* outcomes into per-node recovery decisions, the way Yang et
al. (PAPERS.md) argue recovery should be decided — from observed
consistency, not pessimistic global rollback:

* **NVM restart** (``nvm_restart``) — the image passed the app's
  acceptance/recomputability check (response S1, or S2 with extra
  iterations): the node reloads its data objects from NVM at
  ``t_r_nvm_s`` and loses no checkpointed work.
* **Checkpoint rollback** (``rollback``) — the image failed (S3
  interruption, S4 verification failure, or a quarantined FAILED
  trial): the node restores the last checkpoint at
  :attr:`~repro.checkpoint.multilevel.MultiLevelCheckpointModel.t_restore`.

Rollback is **coordinated**: a node rolling back past the last
consistent cut drags every surviving peer back with it (the
Huang-et-al. multi-node persistence/rollback tradeoff), so a burst with
even one rollback rewinds the whole cluster and the burst's NVM
restarts become moot for lost work — but each victim's *decision* is
still recorded from its own image, because the NVM-restart/rollback mix
is exactly what :func:`repro.system.efficiency.efficiency_measured_multinode`
consumes.  A burst of pure NVM restarts resynchronizes with surviving
peers (``t_sync``) only when there *are* surviving peers — the same
gating the efficiency model applies.

Everything here is pure bookkeeping over already-deterministic campaign
records, so a recovery log replays bit-identically from the seed.  The
``straggler_node`` chaos kind can stall the coordinated-rollback
barrier (site ``cluster.rollback``); like every injected fault it may
change timing, never results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.nvct.campaign import Response

if TYPE_CHECKING:
    from repro.checkpoint.multilevel import MultiLevelCheckpointModel
    from repro.cluster.emulator import Burst
    from repro.nvct.campaign import CrashTestRecord

__all__ = [
    "NVM_RESTART",
    "ROLLBACK",
    "NodeRecovery",
    "BurstRecovery",
    "RecoveryLog",
    "RecoveryOrchestrator",
]

NVM_RESTART = "nvm_restart"
ROLLBACK = "rollback"

#: Responses whose post-crash image passes the acceptance check: the app
#: restarted from NVM and verified (possibly with extra iterations).
_RESTARTABLE = (Response.S1, Response.S2)


@dataclass(frozen=True)
class NodeRecovery:
    """One crashed node's measured image outcome and recovery decision."""

    node: int
    counter: int  # crash point (access counter) the image was taken at
    response: str  # Response.name of the measured classification
    decision: str  # NVM_RESTART or ROLLBACK
    extra_iterations: int = 0

    @property
    def rolled_back(self) -> bool:
        return self.decision == ROLLBACK


@dataclass(frozen=True)
class BurstRecovery:
    """Recovery of one correlated burst: per-victim decisions plus the
    coordinated consequences for the rest of the cluster."""

    index: int
    time_s: float
    victims: tuple[NodeRecovery, ...]
    #: nodes dragged back by coordinated rollback: surviving non-victims
    #: plus victims whose own image was restartable (their NVM restart is
    #: moot once a peer rewinds the cluster).  0 for a pure-NVM burst.
    peers_rewound: int
    t_recover_s: float

    @property
    def size(self) -> int:
        return len(self.victims)

    @property
    def rollbacks(self) -> int:
        return sum(1 for v in self.victims if v.rolled_back)

    @property
    def nvm_restarts(self) -> int:
        return self.size - self.rollbacks

    @property
    def coordinated(self) -> bool:
        """Did this burst force a coordinated cluster-wide rollback?"""
        return self.rollbacks > 0


@dataclass
class RecoveryLog:
    """The per-node recovery decision log of one cluster campaign."""

    nodes: int
    bursts: list[BurstRecovery] = field(default_factory=list)

    def mix(self) -> dict[str, int]:
        """Node-level decision counts: ``{"nvm_restart": .., "rollback": ..}``."""
        out = {NVM_RESTART: 0, ROLLBACK: 0}
        for burst in self.bursts:
            out[NVM_RESTART] += burst.nvm_restarts
            out[ROLLBACK] += burst.rollbacks
        return out

    def burst_mix(self) -> dict[str, int]:
        """Burst-level outcomes: a burst rolls back iff any victim does."""
        out = {NVM_RESTART: 0, ROLLBACK: 0}
        for burst in self.bursts:
            out[ROLLBACK if burst.coordinated else NVM_RESTART] += 1
        return out

    def by_burst_size(self) -> dict[int, dict[str, int]]:
        """Per burst size k: bursts seen, NVM restarts, rollbacks, rewinds."""
        out: dict[int, dict[str, int]] = {}
        for burst in self.bursts:
            row = out.setdefault(
                burst.size,
                {"bursts": 0, NVM_RESTART: 0, ROLLBACK: 0, "peers_rewound": 0},
            )
            row["bursts"] += 1
            row[NVM_RESTART] += burst.nvm_restarts
            row[ROLLBACK] += burst.rollbacks
            row["peers_rewound"] += burst.peers_rewound
        return dict(sorted(out.items()))

    def total_recovery_s(self) -> float:
        return float(sum(b.t_recover_s for b in self.bursts))

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "bursts": [
                {
                    "index": b.index,
                    "time_s": b.time_s,
                    "peers_rewound": b.peers_rewound,
                    "t_recover_s": b.t_recover_s,
                    "victims": [
                        {
                            "node": v.node,
                            "counter": v.counter,
                            "response": v.response,
                            "decision": v.decision,
                            "extra_iterations": v.extra_iterations,
                        }
                        for v in b.victims
                    ],
                }
                for b in self.bursts
            ],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "RecoveryLog":
        return cls(
            nodes=int(doc["nodes"]),
            bursts=[
                BurstRecovery(
                    index=int(b["index"]),
                    time_s=float(b["time_s"]),
                    peers_rewound=int(b["peers_rewound"]),
                    t_recover_s=float(b["t_recover_s"]),
                    victims=tuple(
                        NodeRecovery(
                            node=int(v["node"]),
                            counter=int(v["counter"]),
                            response=str(v["response"]),
                            decision=str(v["decision"]),
                            extra_iterations=int(v["extra_iterations"]),
                        )
                        for v in b["victims"]
                    ),
                )
                for b in doc["bursts"]
            ],
        )


class RecoveryOrchestrator:
    """Chooses per-node recovery for every burst and accounts its cost.

    ``checkpoint`` supplies ``t_restore``/``t_sync`` (default: the
    paper's NVMe scenario, checkpointing 64 GB of node memory to a local
    SSD — T_chk ~= 32 s); ``t_r_nvm_s`` is the EasyCrash reload-from-NVM
    time (seconds, not minutes — the whole point of the paper).
    """

    def __init__(
        self,
        nodes: int,
        checkpoint: "MultiLevelCheckpointModel | None" = None,
        t_r_nvm_s: float = 2.0,
    ):
        if nodes < 1:
            raise ValueError(f"cluster needs at least one node, got {nodes}")
        if checkpoint is None:
            from repro.checkpoint.multilevel import MultiLevelCheckpointModel

            checkpoint = MultiLevelCheckpointModel.for_scenario(64.0, "ssd")
        self.nodes = nodes
        self.checkpoint = checkpoint
        self.t_r_nvm_s = float(t_r_nvm_s)

    @staticmethod
    def decide(record: "CrashTestRecord") -> str:
        """The acceptance check: restart from NVM iff the measured image
        recomputed and verified (S1/S2); anything else rolls back."""
        return NVM_RESTART if record.response in _RESTARTABLE else ROLLBACK

    def _burst_time(self, size: int, rollbacks: int) -> float:
        """Modeled wall time to recover one burst.

        A coordinated rollback restores checkpoints in parallel and pays
        one sync barrier.  A pure-NVM burst reloads from NVM and pays the
        barrier only when surviving checkpointing peers exist to
        resynchronize with (the ``efficiency_measured_multinode`` gate).
        """
        if rollbacks > 0:
            return self.checkpoint.t_restore + self.checkpoint.t_sync
        survivors = self.nodes - size
        return self.t_r_nvm_s + (self.checkpoint.t_sync if survivors > 0 else 0.0)

    def orchestrate(
        self,
        bursts: "Sequence[Burst]",
        records_by_node: Mapping[int, Sequence["CrashTestRecord"]],
    ) -> RecoveryLog:
        """Walk the burst schedule, consuming each victim node's next
        measured trial record, and emit the recovery decision log.

        ``records_by_node`` maps node -> its trial records in burst-time
        order (one per time the schedule crashes that node; weighted
        records appear once per unit of weight).
        """
        from repro.harness.chaos import injector as chaos_injector

        cursor: dict[int, int] = {n: 0 for n in records_by_node}
        log = RecoveryLog(nodes=self.nodes)
        for burst in bursts:
            victims = []
            for node in burst.nodes:
                slot = cursor[node]
                cursor[node] = slot + 1
                rec = records_by_node[node][slot]
                victims.append(
                    NodeRecovery(
                        node=node,
                        counter=rec.counter,
                        response=rec.response.name,
                        decision=self.decide(rec),
                        extra_iterations=rec.extra_iterations,
                    )
                )
            rollbacks = sum(1 for v in victims if v.rolled_back)
            if rollbacks and (ch := chaos_injector()) is not None:
                # A straggler may stall the coordinated-rollback barrier;
                # timing only — the decisions above are already fixed.
                ch.maybe_straggle("cluster.rollback")
            log.bursts.append(
                BurstRecovery(
                    index=burst.index,
                    time_s=burst.time_s,
                    victims=tuple(victims),
                    peers_rewound=self.nodes - rollbacks if rollbacks else 0,
                    t_recover_s=self._burst_time(len(victims), rollbacks),
                )
            )
        for node, seq in records_by_node.items():
            if cursor.get(node, 0) != len(seq):
                raise RuntimeError(
                    f"node {node}: burst schedule consumed {cursor.get(node, 0)} "
                    f"of {len(seq)} trial records — schedule and campaign disagree"
                )
        return log

"""Cluster topology axis: how a campaign shards across emulated nodes.

The paper's Sec. 7 emulator models a 100k-400k-node machine; PR 8 gave us
burst-correlated failure *schedules* but every campaign still crashed one
memory image at a time.  :class:`ClusterTopology` is the configuration
axis that changes that: ``nodes`` emulated nodes, each owning its own
cache hierarchy and crash-model survivor overlay, with a correlated
failure process whose bursts can crash several nodes at the same instant.

The topology rides on :class:`~repro.nvct.campaign.CampaignConfig`
(``nodes`` / ``correlation`` / ``burst_window_s`` / ``node``) so it flows
through content keys and journal headers like every other campaign axis.
All four fields are dropped from keys at their defaults, keeping
single-node keys byte-identical to the pre-cluster era; a non-default
topology is additionally fingerprinted into the journal header so
``--resume`` can refuse a journal recorded under a different layout
(see :func:`repro.nvct.journal.campaign_header`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.nvct.campaign import CampaignConfig

__all__ = [
    "ClusterTopology",
    "topology_fingerprint",
    "node_journal_path",
]


@dataclass(frozen=True)
class ClusterTopology:
    """Shape of the emulated cluster a campaign is sharded across."""

    nodes: int = 1
    correlation: float = 0.0
    burst_window_s: float = 600.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"cluster needs at least one node, got {self.nodes}")
        if not 0.0 <= self.correlation < 1.0:
            raise ValueError(f"correlation must be in [0, 1), got {self.correlation}")
        if self.burst_window_s <= 0:
            raise ValueError("burst_window_s must be positive")

    @property
    def is_default(self) -> bool:
        """A single uncorrelated node — the historical single-node campaign."""
        return self.nodes == 1 and self.correlation == 0.0

    @classmethod
    def from_config(cls, cfg: "CampaignConfig") -> "ClusterTopology":
        return cls(
            nodes=cfg.nodes,
            correlation=cfg.correlation,
            burst_window_s=cfg.burst_window_s,
        )


def topology_fingerprint(cfg: "CampaignConfig") -> dict | None:
    """Journal-header fingerprint of a config's cluster topology.

    ``None`` for the historical single-node default (so pre-cluster
    journals, which carry no ``topology`` field, stay resumable byte for
    byte).  Otherwise a canonical dict pinning every input that shapes
    the shard layout — node count, correlation, burst window, which
    shard this journal belongs to, and the parsed crash model — so a
    resume under any different ``--nodes``/``--correlation``/crash-model
    combination is refused instead of silently mixing shard layouts.
    """
    if cfg.nodes == 1 and cfg.correlation == 0.0 and cfg.node == 0:
        return None
    from repro.memsim.crashmodel import get_model

    return {
        "nodes": cfg.nodes,
        "correlation": cfg.correlation,
        "burst_window_s": cfg.burst_window_s,
        "node": cfg.node,
        "crash_model": get_model(cfg.crash_model).fingerprint(),
    }


def node_journal_path(base: str | Path, node: int) -> Path:
    """Per-node journal file derived from the campaign's ``--resume`` path.

    Node 0 journals at the base path itself (a one-node cluster resumes
    the same file a plain campaign would); node ``n`` > 0 journals at a
    ``.node<n>`` sibling next to it.
    """
    base = Path(base)
    if node == 0:
        return base
    return base.with_name(f"{base.name}.node{node}")

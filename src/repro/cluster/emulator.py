"""Multi-node crash emulation: shard a campaign across emulated nodes.

The :class:`ClusterEmulator` runs one crash-test campaign per emulated
node — each node an SPMD replica of the application with its **own**
cache hierarchy, golden-pass engine and crash-model survivor overlay
(all reused verbatim from the single-node stack) — and drives the crash
schedule from a :class:`~repro.checkpoint.multilevel.CorrelatedFailureProcess`
so one burst can crash ``k`` nodes at the same instant.  Nodes crash at
the same wall-clock burst but at *different* instruction counters (real
SPMD ranks are never cycle-aligned), which is modeled by giving node
``n`` its own deterministic crash-point schedule: the node-0 schedule is
exactly the historical single-node one, so an N=1 cluster degenerates to
the plain campaign **record for record**.

Determinism contract: bursts, victim choices, per-node crash points,
classifications and the recovery log are all pure functions of
``(cfg.seed, topology, app)`` — a cluster campaign replays
bit-identically from its seed, including across SIGKILL + ``--resume``
(each node journals separately, see
:func:`repro.cluster.topology.node_journal_path`).

Node executions run under a :class:`NodeLease`: the ``node_death`` chaos
kind (site ``cluster.node``) can kill a node mid-burst, the lease's
retry policy re-runs the shard (deterministic, so the replay is
bit-identical), and the shared circuit breaker turns a systematically
dying cluster into a loud failure instead of an infinite retry loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.checkpoint.multilevel import CorrelatedFailureProcess
from repro.cluster.recovery import RecoveryLog, RecoveryOrchestrator
from repro.cluster.topology import ClusterTopology, node_journal_path
from repro.errors import UsageError
from repro.util.rng import derive_rng, derive_seed

if TYPE_CHECKING:
    from pathlib import Path

    from repro.apps.base import AppFactory
    from repro.checkpoint.multilevel import MultiLevelCheckpointModel
    from repro.harness.resilience import RetryPolicy
    from repro.nvct.campaign import CampaignConfig, CampaignResult, CrashTestRecord

__all__ = [
    "BURST_MTBF_S",
    "Burst",
    "burst_schedule",
    "trials_per_node",
    "NodeLease",
    "ClusterResult",
    "ClusterEmulator",
    "run_cluster_campaign",
]

#: Emulated-time MTBF of the burst process (one primary failure per hour).
#: Only the *grouping* of arrivals into bursts matters to the emulator —
#: which trials land in the same burst — so the unit is arbitrary as long
#: as it is fixed; ``burst_window_s`` is interpreted relative to it.
BURST_MTBF_S = 3600.0


@dataclass(frozen=True)
class Burst:
    """One correlated failure burst: which nodes crash, and when."""

    index: int
    time_s: float
    nodes: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.nodes)


def burst_schedule(
    topology: ClusterTopology, n_events: int, seed: int
) -> list[Burst]:
    """The deterministic burst schedule for ``n_events`` node crashes.

    Arrivals come from a :class:`CorrelatedFailureProcess` (grouped into
    bursts by ``burst_window_s`` gaps); a raw burst of ``s`` arrivals
    crashes ``min(s, nodes)`` *distinct* victims, drawn without
    replacement from a seeded rng per burst.  The horizon grows by
    doubling until the schedule carries ``n_events`` victims, so the
    result is a pure function of ``(topology, n_events, seed)``.  At
    N=1 every burst crashes node 0 exactly once.
    """
    if n_events <= 0:
        return []
    process = CorrelatedFailureProcess(
        mtbf_s=BURST_MTBF_S,
        correlation=topology.correlation,
        burst_window_s=topology.burst_window_s,
        seed=derive_seed(seed, "cluster-bursts"),
    )
    horizon = 4.0 * BURST_MTBF_S * float(n_events)
    while True:
        groups = process.bursts(horizon)
        if sum(min(len(g), topology.nodes) for g in groups) >= n_events:
            break
        horizon *= 2.0
    out: list[Burst] = []
    remaining = n_events
    for b, group in enumerate(groups):
        k = min(len(group), topology.nodes, remaining)
        rng = derive_rng(seed, "cluster-victims", b)
        victims = np.sort(rng.permutation(topology.nodes)[:k])
        out.append(
            Burst(index=b, time_s=float(group[0]), nodes=tuple(int(v) for v in victims))
        )
        remaining -= k
        if remaining == 0:
            break
    return out


def trials_per_node(bursts: Sequence[Burst], nodes: int) -> list[int]:
    """How many times the schedule crashes each node (its campaign size)."""
    counts = [0] * nodes
    for burst in bursts:
        for node in burst.nodes:
            counts[node] += 1
    return counts


def _slot_records(result: "CampaignResult") -> list["CrashTestRecord"]:
    """Expand weighted records back to one record per sampled crash slot.

    Records come back sorted by crash point with duplicates collapsed
    into weights; the schedule consumes one slot per time it crashes the
    node, in crash-point order, so a weight-w record fills w slots.
    """
    out: list["CrashTestRecord"] = []
    for rec in result.records:
        out.extend([rec] * rec.weight)
    return out


@dataclass
class NodeLease:
    """A node's work lease: retry-on-death on top of the circuit breaker.

    Each node's campaign runs under a lease.  If the ``node_death`` chaos
    kind fires at site ``cluster.node`` the lease expires mid-burst; the
    retry policy re-acquires and replays the shard — every replay is
    bit-identical because the shard itself is deterministic (and journal
    resume skips already-classified trials).  Failures feed the shared
    :class:`~repro.harness.resilience.CircuitBreaker`; once it trips the
    death propagates instead of retrying forever.
    """

    node: int
    policy: "RetryPolicy"
    breaker: "object"  # CircuitBreaker
    attempts: int = field(default=0, init=False)

    def run(self, fn: Callable[[], "CampaignResult"]) -> "CampaignResult":
        from repro.harness.chaos import NodeDeath, injector as chaos_injector

        while True:
            if not self.breaker.allow():
                raise NodeDeath(
                    f"node {self.node}: circuit breaker open after repeated "
                    "node deaths; giving up"
                )
            self.attempts += 1
            try:
                if (ch := chaos_injector()) is not None:
                    ch.maybe_node_death("cluster.node")
                result = fn()
            except NodeDeath:
                tripped = self.breaker.record_failure()
                if tripped or self.attempts > self.policy.max_retries:
                    raise
                time.sleep(self.policy.delay(f"node{self.node}", self.attempts - 1))
                continue
            self.breaker.record_success()
            return result


@dataclass
class ClusterResult:
    """Everything one cluster campaign produced."""

    app: str
    topology: ClusterTopology
    crash_model: str
    bursts: list[Burst]
    node_results: dict[int, "CampaignResult"]
    log: RecoveryLog

    @property
    def n_tests(self) -> int:
        return sum(r.n_tests for r in self.node_results.values())

    def recovery_mix(self) -> dict[str, int]:
        return self.log.mix()

    def recomputability(self) -> float:
        """Weight-aware S1 fraction across every node's trials."""
        from repro.nvct.campaign import Response

        total = hits = 0
        for result in self.node_results.values():
            for rec in result.records:
                total += rec.weight
                if rec.response is Response.S1:
                    hits += rec.weight
        return hits / total if total else float("nan")

    def to_dict(self) -> dict:
        from repro.nvct.serialize import record_to_dict

        return {
            "kind": "cluster-campaign",
            "app": self.app,
            "crash_model": self.crash_model,
            "topology": {
                "nodes": self.topology.nodes,
                "correlation": self.topology.correlation,
                "burst_window_s": self.topology.burst_window_s,
            },
            "bursts": [
                {"index": b.index, "time_s": b.time_s, "nodes": list(b.nodes)}
                for b in self.bursts
            ],
            "records": {
                str(node): [record_to_dict(r) for r in result.records]
                for node, result in sorted(self.node_results.items())
            },
            "recovery_log": self.log.to_dict(),
        }


class ClusterEmulator:
    """Shard one campaign across ``cfg.nodes`` emulated nodes.

    ``cfg`` is an ordinary :class:`~repro.nvct.campaign.CampaignConfig`
    whose topology fields (``nodes``/``correlation``/``burst_window_s``)
    are non-default; ``cfg.n_tests`` is the *total* number of node
    crashes across the cluster.  Every other parameter means exactly
    what it means for a single-node campaign and is applied per shard.
    """

    def __init__(
        self,
        factory: "AppFactory",
        cfg: "CampaignConfig",
        *,
        jobs: int | None = None,
        chunk_timeout: float | None = None,
        journal: "str | Path | None" = None,
        retry: "RetryPolicy | None" = None,
        trial_timeout: float | None = None,
        golden: bool | None = None,
        checkpoint: "MultiLevelCheckpointModel | None" = None,
        breaker_threshold: int = 3,
    ):
        if cfg.node != 0:
            raise UsageError(
                "the cluster emulator owns shard assignment: pass node=0 "
                f"(got node={cfg.node})"
            )
        if cfg.n_cores > 1 or cfg.verified_mode:
            raise UsageError(
                "cluster emulation requires single-core, non-verified "
                "campaigns (each node is one emulated rank)"
            )
        self.factory = factory
        self.cfg = cfg
        try:
            self.topology = ClusterTopology.from_config(cfg)
        except ValueError as exc:
            # Same contract as a bad --crash-model spec: a usage error,
            # not an internal failure (the CLI maps it to exit 2).
            raise UsageError(str(exc)) from exc
        self.jobs = jobs
        self.chunk_timeout = chunk_timeout
        self.journal = journal
        self.retry = retry
        self.trial_timeout = trial_timeout
        self.golden = golden
        self.checkpoint = checkpoint
        self.breaker_threshold = breaker_threshold

    def _lease_policy(self) -> "RetryPolicy":
        from repro.harness.resilience import RetryPolicy

        # Leases retry instantly by default: a replayed shard is pure CPU
        # work, and the chaos death schedule advances per attempt.
        return self.retry or RetryPolicy(max_retries=4, base_delay=0.0, max_delay=0.0)

    def run(self) -> ClusterResult:
        from repro.harness.resilience import CircuitBreaker
        from repro.memsim.crashmodel import get_model
        from repro.nvct.campaign import run_campaign

        cfg = self.cfg
        model = get_model(cfg.crash_model)  # validate the spec up front
        bursts = burst_schedule(self.topology, cfg.n_tests, cfg.seed)
        counts = trials_per_node(bursts, self.topology.nodes)
        policy = self._lease_policy()
        breaker = CircuitBreaker(threshold=self.breaker_threshold)
        node_results: dict[int, "CampaignResult"] = {}
        for node, n_trials in enumerate(counts):
            if n_trials == 0:
                continue  # the schedule never crashed this node
            node_cfg = replace(cfg, node=node, n_tests=n_trials)
            journal = (
                node_journal_path(self.journal, node)
                if self.journal is not None
                else None
            )
            lease = NodeLease(node=node, policy=policy, breaker=breaker)
            node_results[node] = lease.run(
                lambda node_cfg=node_cfg, journal=journal: run_campaign(
                    self.factory,
                    node_cfg,
                    jobs=self.jobs,
                    chunk_timeout=self.chunk_timeout,
                    journal=journal,
                    retry=self.retry,
                    trial_timeout=self.trial_timeout,
                    golden=self.golden,
                    _shard=True,
                )
            )
        orchestrator = RecoveryOrchestrator(
            nodes=self.topology.nodes, checkpoint=self.checkpoint
        )
        log = orchestrator.orchestrate(
            bursts, {n: _slot_records(r) for n, r in node_results.items()}
        )
        return ClusterResult(
            app=self.factory.name,
            topology=self.topology,
            crash_model=model.spec,
            bursts=bursts,
            node_results=node_results,
            log=log,
        )


def run_cluster_campaign(
    factory: "AppFactory",
    cfg: "CampaignConfig",
    *,
    jobs: int | None = None,
    chunk_timeout: float | None = None,
    journal: "str | Path | None" = None,
    retry: "RetryPolicy | None" = None,
    trial_timeout: float | None = None,
    golden: bool | None = None,
    checkpoint: "MultiLevelCheckpointModel | None" = None,
) -> ClusterResult:
    """Run one multi-node crash campaign (see :class:`ClusterEmulator`)."""
    return ClusterEmulator(
        factory,
        cfg,
        jobs=jobs,
        chunk_timeout=chunk_timeout,
        journal=journal,
        retry=retry,
        trial_timeout=trial_timeout,
        golden=golden,
        checkpoint=checkpoint,
    ).run()

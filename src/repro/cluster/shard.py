"""Sharded survivor overlays: per-node crash images over a partitioned heap.

A cluster campaign gives every emulated node its own cache hierarchy, so
each node's post-crash NVM image is produced by applying the crash
model's survivor plan to *that node's* dirty state only.  This module is
the pure-function core of that sharding, factored out so the Hypothesis
property tests can pin its two load-bearing guarantees directly against
:func:`repro.memsim.reference.reference_survivor_plan`:

* **N=1 degeneration** — sharding a dirty-block space across one node
  and applying the survivor plan shard-by-shard is byte-identical to the
  single-node plan on the whole space (node 0 even reuses the exact
  historical rng derivation, so the bytes agree bit for bit);
* **per-node monotonicity** — on every shard, the surviving byte sets
  obey ``whole-cache-loss ⊆ adr ⊆ eadr``, the same persistence-domain
  ordering PR 8 proved for single-node overlays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.memsim.blocks import BLOCK_SIZE
from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from repro.memsim.crashmodel import CrashModel, SurvivorPlan

__all__ = [
    "shard_ranges",
    "node_rng",
    "plan_survivor_bytes",
    "sharded_survivor_bytes",
]

_EMPTY = np.empty(0, dtype=np.int64)


def shard_ranges(n_blocks: int, nodes: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` block ranges assigning the address space to
    nodes (nearly equal stripes; the leading ranges absorb the remainder)."""
    if nodes < 1:
        raise ValueError(f"need at least one node, got {nodes}")
    base, extra = divmod(max(0, n_blocks), nodes)
    out = []
    lo = 0
    for n in range(nodes):
        hi = lo + base + (1 if n < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def node_rng(seed: int, model: "CrashModel", counter: int, node: int) -> np.random.Generator:
    """The survivor-plan rng for one node's crash image.

    Node 0 keeps the exact single-node derivation the engine has always
    used (:meth:`repro.memsim.crashmodel.CrashModel.apply`), which is
    what makes a one-node cluster bit-identical to the plain campaign;
    higher nodes fold their index into the derivation.
    """
    if node == 0:
        return derive_rng(seed, "crash-model", model.spec, counter)
    return derive_rng(seed, "crash-model", model.spec, counter, node)


def plan_survivor_bytes(plan: "SurvivorPlan") -> np.ndarray:
    """Absolute byte indices a survivor plan preserves (sorted, unique)."""
    full, partial = plan
    full = np.asarray(full, dtype=np.int64)
    parts = []
    if full.size:
        parts.append(
            (full[:, None] * BLOCK_SIZE + np.arange(BLOCK_SIZE, dtype=np.int64)).ravel()
        )
    if partial is not None:
        block, cut = partial
        if cut > 0:
            parts.append(block * BLOCK_SIZE + np.arange(cut, dtype=np.int64))
    if not parts:
        return _EMPTY
    return np.unique(np.concatenate(parts))


def sharded_survivor_bytes(
    model: "CrashModel",
    dirty_blocks: np.ndarray,
    store_seq: np.ndarray,
    nodes: int,
    seed: int,
    counter: int = 0,
) -> dict[int, np.ndarray]:
    """Per-node surviving byte indices of a sharded crash image.

    The dirty-block space is striped contiguously across ``nodes``
    (:func:`shard_ranges` over ``max(dirty)+1`` blocks); each node runs
    the model's survivor plan on its own dirty blocks with its own
    seeded rng.  Byte indices are absolute (concatenated-heap
    coordinates), so the union over nodes is directly comparable with a
    single-node plan over the whole space.
    """
    dirty_blocks = np.asarray(dirty_blocks, dtype=np.int64)
    store_seq = np.asarray(store_seq, dtype=np.int64)
    span = int(dirty_blocks.max()) + 1 if dirty_blocks.size else 0
    out: dict[int, np.ndarray] = {}
    for node, (lo, hi) in enumerate(shard_ranges(span, nodes)):
        mask = (dirty_blocks >= lo) & (dirty_blocks < hi)
        if not mask.any():
            out[node] = _EMPTY
            continue
        plan = model.survivor_plan(
            dirty_blocks[mask], store_seq[mask], node_rng(seed, model, counter, node)
        )
        out[node] = plan_survivor_bytes(plan)
    return out

"""Human-readable views of a cluster campaign (CLI postmortem)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.recovery import NVM_RESTART, ROLLBACK
from repro.util.tables import render_table

if TYPE_CHECKING:
    from repro.cluster.emulator import ClusterResult
    from repro.cluster.recovery import RecoveryLog

__all__ = ["cluster_summary", "recovery_mix_table", "decision_log"]


def cluster_summary(result: "ClusterResult") -> str:
    """Headline figures of one cluster campaign."""
    mix = result.recovery_mix()
    burst_mix = result.log.burst_mix()
    k_max = max((b.size for b in result.bursts), default=0)
    lines = [
        f"application: {result.app}",
        f"topology: {result.topology.nodes} node(s), "
        f"correlation {result.topology.correlation:g}, "
        f"burst window {result.topology.burst_window_s:g}s",
        f"crash model: {result.crash_model}",
        f"bursts: {len(result.bursts)} ({result.n_tests} node crashes, "
        f"largest burst k={k_max})",
        f"recovery mix: {mix[NVM_RESTART]} NVM restart(s), "
        f"{mix[ROLLBACK]} rollback(s) "
        f"({burst_mix[ROLLBACK]} coordinated-rollback burst(s))",
        f"recomputability: {result.recomputability():.3f}",
        f"modeled recovery time: {result.log.total_recovery_s():.1f}s",
    ]
    return "\n".join(lines)


def recovery_mix_table(log: "RecoveryLog") -> str:
    """NVM restarts vs rollbacks per burst size (the paper's measured mix)."""
    rows = []
    for size, row in log.by_burst_size().items():
        rows.append(
            [size, row["bursts"], row[NVM_RESTART], row[ROLLBACK], row["peers_rewound"]]
        )
    return render_table(
        ["Burst size", "Bursts", "NVM restarts", "Rollbacks", "Peers rewound"],
        rows,
        title="Recovery mix by burst size",
    )


def decision_log(log: "RecoveryLog", limit: int = 10) -> str:
    """The first ``limit`` bursts' per-node decisions, one line each."""
    lines = []
    for burst in log.bursts[:limit]:
        decisions = ", ".join(
            f"node{v.node}@{v.counter}:{v.response}->"
            + ("nvm" if not v.rolled_back else "rollback")
            for v in burst.victims
        )
        suffix = (
            f" [coordinated rollback, {burst.peers_rewound} peer(s) rewound]"
            if burst.coordinated
            else ""
        )
        lines.append(f"burst {burst.index} t={burst.time_s:.0f}s: {decisions}{suffix}")
    if len(log.bursts) > limit:
        lines.append(f"... {len(log.bursts) - limit} more burst(s)")
    return "\n".join(lines)

"""Multi-node crash emulation (Sec. 7 at cluster scale).

Shards a crash-test campaign across N emulated nodes, drives correlated
failure bursts that crash several nodes at the same instant, and
orchestrates per-node recovery — NVM restart when the measured image
passes the acceptance check, coordinated checkpoint rollback otherwise.
See :mod:`repro.cluster.emulator` for the execution model and
:mod:`repro.cluster.recovery` for the decision semantics.
"""

from repro.cluster.emulator import (
    BURST_MTBF_S,
    Burst,
    ClusterEmulator,
    ClusterResult,
    NodeLease,
    burst_schedule,
    run_cluster_campaign,
    trials_per_node,
)
from repro.cluster.recovery import (
    NVM_RESTART,
    ROLLBACK,
    BurstRecovery,
    NodeRecovery,
    RecoveryLog,
    RecoveryOrchestrator,
)
from repro.cluster.topology import ClusterTopology, node_journal_path, topology_fingerprint

__all__ = [
    "BURST_MTBF_S",
    "Burst",
    "ClusterEmulator",
    "ClusterResult",
    "ClusterTopology",
    "NodeLease",
    "NodeRecovery",
    "BurstRecovery",
    "RecoveryLog",
    "RecoveryOrchestrator",
    "NVM_RESTART",
    "ROLLBACK",
    "burst_schedule",
    "node_journal_path",
    "run_cluster_campaign",
    "topology_fingerprint",
    "trials_per_node",
]

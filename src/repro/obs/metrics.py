"""Metric primitives and the process-wide registry (``REPRO_OBS`` gated).

Telemetry is **off by default** and costs nothing while off: every
instrumentation site asks :func:`registry` for the process registry and
skips its entire recording block when that returns ``None``.  No metric
object is ever allocated in the disabled state (asserted by
``tests/obs``), and the hot simulation loops are never instrumented
per-access — sites publish the simulator's existing aggregate counters
(:mod:`repro.memsim.stats`) at run boundaries instead.

Enable with ``REPRO_OBS=1`` (environment, read lazily on first use) or
programmatically via :func:`enable`, which the ``--stats`` CLI flag uses.

Three metric kinds, all process-local and thread-unsafe by design (the
simulator is single-threaded; workers publish into their own process's
registry and only the parent's is exported):

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (e.g. dirty-line residency);
* :class:`Histogram` — count/total/min/max plus power-of-two buckets.

Metric names are dotted paths (``memsim.LLC.read_hits``); units ride
along (``blocks``, ``tests``, ``ops``, seconds as ``s``, rates as
``X/s``) and flow into the bench.json records of :mod:`repro.obs.export`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.obs.spans import Tracer

__all__ = [
    "ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "registry",
    "bump",
    "enable",
    "disable",
    "reset",
]

ENV_VAR = "REPRO_OBS"

#: Histogram bucket upper bounds: powers of two spanning sub-microsecond
#: spans up to billions of blocks; one overflow bucket catches the rest.
_BUCKET_BOUNDS = tuple(2.0**e for e in range(-20, 31, 2))


class Metric:
    """Common base: name + unit + allocation accounting.

    ``allocations`` counts every metric object ever constructed in this
    process — the zero-overhead-when-disabled test asserts it stays flat
    across a full campaign with ``REPRO_OBS=0``.
    """

    allocations = 0
    kind = "metric"

    __slots__ = ("name", "unit")

    def __init__(self, name: str, unit: str = "") -> None:
        Metric.allocations += 1
        self.name = name
        self.unit = unit

    def as_dict(self) -> dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing event counter."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, unit: str = "") -> None:
        super().__init__(name, unit)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def as_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "unit": self.unit, "value": self.value}


class Gauge(Metric):
    """Last-written value (set semantics, not accumulation)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, unit: str = "") -> None:
        super().__init__(name, unit)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "unit": self.unit, "value": self.value}


class Histogram(Metric):
    """Streaming distribution: count/total/min/max + power-of-two buckets."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self, name: str, unit: str = "") -> None:
        super().__init__(name, unit)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
        }


class MetricRegistry:
    """Fetch-or-create store for metrics plus the process span tracer.

    One registry per enabled process; accessing an existing name with a
    different metric kind is a programming error and raises.
    """

    allocations = 0

    def __init__(self) -> None:
        MetricRegistry.allocations += 1
        self._metrics: dict[str, Metric] = {}
        self.tracer = Tracer()

    def _get(self, cls: type, name: str, unit: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, unit)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, unit: str = "") -> Counter:
        return self._get(Counter, name, unit)  # type: ignore[return-value]

    def gauge(self, name: str, unit: str = "") -> Gauge:
        return self._get(Gauge, name, unit)  # type: ignore[return-value]

    def histogram(self, name: str, unit: str = "") -> Histogram:
        return self._get(Histogram, name, unit)  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """All metrics as plain dicts (stable name order)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}


# -- process-wide gate --------------------------------------------------------

_registry: MetricRegistry | None = None
_resolved = False


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no", "off")


def registry() -> MetricRegistry | None:
    """The process registry, or ``None`` while telemetry is disabled.

    The environment is consulted once, lazily; :func:`enable`,
    :func:`disable` and :func:`reset` override it.
    """
    global _registry, _resolved
    if not _resolved:
        _resolved = True
        if _env_enabled():
            _registry = MetricRegistry()
    return _registry


def bump(name: str, unit: str = "", n: int = 1) -> None:
    """Increment counter ``name`` iff telemetry is enabled (else free no-op).

    The one-line guard used by sites that only ever count (the artifact
    store's ``store.crc_failures`` / ``store.quarantined`` /
    ``store.legacy_reads`` / ``store.gc_*`` family); sites that also set
    gauges or record histograms keep the explicit ``registry()`` guard.
    """
    if (reg := registry()) is not None:
        reg.counter(name, unit=unit).inc(n)


def enable() -> MetricRegistry:
    """Force telemetry on with a fresh registry (returned)."""
    global _registry, _resolved
    _registry = MetricRegistry()
    _resolved = True
    return _registry


def disable() -> None:
    """Force telemetry off (``registry()`` returns ``None``)."""
    global _registry, _resolved
    _registry = None
    _resolved = True


def reset() -> None:
    """Forget any override; the next ``registry()`` re-reads ``REPRO_OBS``."""
    global _registry, _resolved
    _registry = None
    _resolved = False


@contextmanager
def enabled() -> Iterator[MetricRegistry]:
    """Scoped enable: a fresh registry inside, prior state restored after."""
    global _registry, _resolved
    prev_registry, prev_resolved = _registry, _resolved
    reg = enable()
    try:
        yield reg
    finally:
        _registry, _resolved = prev_registry, prev_resolved

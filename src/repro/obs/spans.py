"""Nested timing spans over the campaign pipeline.

A :class:`Tracer` records a tree of wall-clock spans — ``campaign`` →
``golden`` / ``profile`` / ``instrumented_run`` / ``classify``, with
per-iteration and per-region child spans inside the instrumented run —
without re-instrumenting the runtime: :class:`RuntimeSpanListener`
subscribes to the :class:`~repro.nvct.runtime.RuntimeEvent` stream that
PR 2 added for the dynamic analyzer, so the simulator's hot paths emit
nothing unless a listener is attached (and nothing at all when telemetry
is off, because no listener is attached then).

Spans keep their parent by index into the tracer's span list, which makes
the whole trace one flat JSONL-friendly table.  Aggregates (count/total
per span name) are maintained separately and survive the trace cap, so
bench.json summaries stay exact even for very long runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ContextManager, Iterator

if TYPE_CHECKING:
    from repro.nvct.runtime import RuntimeEvent

__all__ = ["Span", "Tracer", "RuntimeSpanListener", "maybe_span"]

#: Completed spans kept verbatim for JSONL export; aggregation continues
#: past the cap (``Tracer.dropped`` counts the overflow).
MAX_TRACE_SPANS = 100_000


@dataclass
class Span:
    """One completed (or still-open) timed operation."""

    name: str
    start: float
    end: float = 0.0
    parent: int = -1  # index into the tracer's span list; -1 = root
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self, index: int) -> dict[str, object]:
        out: dict[str, object] = {
            "index": index,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "parent": self.parent,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Span recorder with explicit start/end, a stack for nesting, and
    name-keyed aggregates.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[int] = []
        self._clock = clock
        # name -> [count, total_duration]; exact even past the trace cap.
        self._totals: dict[str, list[float]] = {}

    # -- recording ------------------------------------------------------------

    def _append(self, span: Span) -> int:
        if len(self.spans) >= MAX_TRACE_SPANS:
            self.dropped += 1
            return -1
        self.spans.append(span)
        return len(self.spans) - 1

    def _aggregate(self, name: str, duration: float) -> None:
        agg = self._totals.setdefault(name, [0, 0.0])
        agg[0] += 1
        agg[1] += duration

    def start(self, name: str, **attrs: object) -> int:
        """Open a span nested under the current stack top; returns its index."""
        parent = self._stack[-1] if self._stack else -1
        idx = self._append(Span(name, self._clock(), 0.0, parent, dict(attrs)))
        self._stack.append(idx)
        return idx

    def end(self, idx: int) -> None:
        """Close the span opened by :meth:`start` (tolerates capped spans)."""
        now = self._clock()
        if idx in self._stack:
            # Unwind anything left open above it (defensive: a listener
            # that missed its close must not corrupt the nesting).
            while self._stack and self._stack[-1] != idx:
                self._stack.pop()
            self._stack.pop()
        if 0 <= idx < len(self.spans):
            span = self.spans[idx]
            span.end = now
            self._aggregate(span.name, span.duration)
        else:  # dropped by the cap: aggregate only
            self._aggregate("(dropped)", 0.0)

    def record(self, name: str, start: float, end: float, **attrs: object) -> int:
        """Add an already-completed span under the current stack top."""
        parent = self._stack[-1] if self._stack else -1
        idx = self._append(Span(name, start, end, parent, dict(attrs)))
        self._aggregate(name, max(0.0, end - start))
        return idx

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[int]:
        idx = self.start(name, **attrs)
        try:
            yield idx
        finally:
            self.end(idx)

    # -- views ----------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def count(self, name: str) -> int:
        return int(self._totals.get(name, [0, 0.0])[0])

    def total(self, name: str) -> float:
        """Summed duration of all completed spans called ``name``."""
        return float(self._totals.get(name, [0, 0.0])[1])

    def names(self) -> list[str]:
        return sorted(self._totals)

    def to_records(self) -> list[dict[str, object]]:
        """The trace as JSONL-ready rows (parent links by row index)."""
        return [span.as_dict(i) for i, span in enumerate(self.spans)]


def maybe_span(tracer: Tracer | None, name: str, **attrs: object) -> ContextManager[object]:
    """``tracer.span(...)`` when tracing, a no-op context otherwise.

    Lets instrumented call sites keep a single code path whether or not
    telemetry is enabled.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


class RuntimeSpanListener:
    """Derives iteration/region spans from a runtime's event stream.

    Region spans cover the stretch between consecutive structural events
    (the runtime emits ``region_end`` but no ``region_begin``; regions
    are back-to-back inside an iteration, so the previous boundary *is*
    the region start).  Iteration spans cover ``iteration_end`` to
    ``iteration_end``.  ``store``/``persist`` events are counted into the
    registry elsewhere and ignored here, keeping the per-event cost of an
    attached listener to one string comparison.

    Call :meth:`close` after the run so the trailing open iteration span
    is not lost (the campaign driver does).
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        now = tracer.now()
        self._boundary = now
        self._iter_start = now
        self._saw_iteration = False

    def __call__(self, event: "RuntimeEvent") -> None:
        kind = event.kind
        if kind == "region_end":
            now = self.tracer.now()
            self.tracer.record(
                f"region:{event.region}", self._boundary, now, iteration=event.iteration
            )
            self._boundary = now
        elif kind == "iteration_end":
            now = self.tracer.now()
            self.tracer.record("iteration", self._iter_start, now, index=event.iteration)
            self._boundary = now
            self._iter_start = now
            self._saw_iteration = True

    def close(self) -> None:
        """Flush the tail: time after the last iteration boundary."""
        now = self.tracer.now()
        if now > self._iter_start and self._saw_iteration:
            self.tracer.record("iteration:tail", self._iter_start, now)

"""Machine-readable telemetry artifacts: bench.json, JSONL traces, diffs.

The exchange format is deliberately tiny — a ``bench.json`` file is a
JSON array of flat records::

    {"metric": "campaign.throughput", "value": 41.7, "unit": "tests/s",
     "scale": "quick", "git_sha": "d4b5b51"}

Every figure/table driver, the ``repro campaign --stats`` CLI path and
the benchmark session hook all emit this one schema, so a single checker
(:func:`diff_bench`, wrapped by ``tools/check_bench_regression.py`` and
``repro stats --diff``) gates them all.

Gating semantics: only *rate* metrics (unit ending in ``/s``) are
compared against the threshold — counters and gauges are informational
(they are either deterministic, where any drift is a correctness matter
for the test suite, or machine-dependent absolutes).  When both files
carry the :data:`CALIBRATION_METRIC` record (a fixed NumPy workload
timed at export), rates are normalized by the machines' calibration
ratio first, which keeps a committed baseline meaningful across runner
generations.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.obs.metrics import Histogram, MetricRegistry

__all__ = [
    "SCHEMA_FIELDS",
    "CALIBRATION_METRIC",
    "git_sha",
    "calibration_ops_per_s",
    "bench_records",
    "validate_bench",
    "load_bench",
    "write_bench",
    "write_text",
    "write_json",
    "write_jsonl",
    "read_jsonl",
    "render_bench",
    "BenchDiff",
    "diff_bench",
    "render_diff",
]

SCHEMA_FIELDS = ("metric", "value", "unit", "scale", "git_sha")

#: Machine-speed yardstick included in every bench.json (see module doc).
CALIBRATION_METRIC = "calibration.ops_per_s"

_CALIBRATION_ELEMS = 1 << 18  # ~2 MB of float64: larger than L1/L2, cache-stable


def git_sha(root: str | Path | None = None) -> str:
    """Short commit id of ``root`` (default: this package's repository);
    ``unknown`` outside a git checkout."""
    cwd = Path(root) if root is not None else Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def calibration_ops_per_s(repeats: int = 5) -> float:
    """Element-updates per second of a fixed vector workload (~20 ms).

    Deliberately simple and allocation-free in the timed region so the
    number tracks the machine, not the allocator or the BLAS build.
    """
    a = np.arange(_CALIBRATION_ELEMS, dtype=np.float64)
    b = np.ones(_CALIBRATION_ELEMS, dtype=np.float64)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(a, 1.0000001, out=a)
        np.add(a, b, out=a)
        best = min(best, time.perf_counter() - t0)
    return 2 * _CALIBRATION_ELEMS / best


# -- record assembly -----------------------------------------------------------


def _record(metric: str, value: float, unit: str, scale: str, sha: str) -> dict[str, object]:
    return {"metric": metric, "value": value, "unit": unit, "scale": scale, "git_sha": sha}


def bench_records(
    reg: MetricRegistry,
    scale: str = "default",
    sha: str | None = None,
    calibrate: bool = True,
) -> list[dict[str, object]]:
    """Flatten a registry (metrics + span aggregates) into bench records.

    Derived rate metrics are appended where their ingredients exist:
    ``campaign.throughput`` (crash tests per second of ``campaign`` span
    time) and ``sim.throughput`` (simulated blocks per second of
    ``instrumented_run`` span time) — the two rates the CI perf gate
    compares against the committed baseline.
    """
    sha = sha if sha is not None else git_sha()
    records: list[dict[str, object]] = []
    for name in reg.names():
        metric = reg.get(name)
        assert metric is not None
        if isinstance(metric, Histogram):
            records.append(_record(f"{name}.count", metric.count, "samples", scale, sha))
            if metric.count:
                records.append(_record(f"{name}.mean", metric.mean, metric.unit, scale, sha))
                records.append(_record(f"{name}.max", metric.max, metric.unit, scale, sha))
        else:
            records.append(_record(name, getattr(metric, "value"), metric.unit, scale, sha))
    for span_name in reg.tracer.names():
        safe = span_name.replace(" ", "_")
        records.append(
            _record(f"span.{safe}.total_s", reg.tracer.total(span_name), "s", scale, sha)
        )
        records.append(
            _record(f"span.{safe}.count", reg.tracer.count(span_name), "spans", scale, sha)
        )
    by_name = {r["metric"]: r["value"] for r in records}
    for rate, numerator, span in (
        ("campaign.throughput", "campaign.tests", "campaign"),
        ("sim.throughput", "runtime.accesses", "instrumented_run"),
    ):
        n = by_name.get(numerator)
        elapsed = reg.tracer.total(span)
        if n and elapsed > 0:
            unit = "tests/s" if rate.startswith("campaign") else "blocks/s"
            records.append(_record(rate, float(n) / elapsed, unit, scale, sha))
    if calibrate:
        records.append(_record(CALIBRATION_METRIC, calibration_ops_per_s(), "ops/s", scale, sha))
    return records


def validate_bench(records: object) -> list[dict[str, object]]:
    """Schema-check a loaded bench document; raises ``ValueError``."""
    if not isinstance(records, list):
        raise ValueError("bench.json must be a JSON array of records")
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise ValueError(f"record {i}: not an object")
        for key in SCHEMA_FIELDS:
            if key not in rec:
                raise ValueError(f"record {i}: missing field {key!r}")
        if not isinstance(rec["metric"], str) or not rec["metric"]:
            raise ValueError(f"record {i}: 'metric' must be a non-empty string")
        if not isinstance(rec["value"], (int, float)) or isinstance(rec["value"], bool):
            raise ValueError(f"record {i} ({rec['metric']}): 'value' must be a number")
    return records


def load_bench(path: str | Path) -> list[dict[str, object]]:
    """Load a bench document, verifying its integrity envelope.

    Enveloped documents (written by :func:`write_bench` since the store
    era) have their payload CRC checked — a mismatch raises the typed
    :class:`~repro.errors.SnapshotCorruptError`.  Pre-envelope (v0)
    documents — bare JSON arrays, like the committed CI baseline — pass
    through the legacy shim unverified.
    """
    from repro.harness.store import open_json_doc

    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    return validate_bench(open_json_doc(doc))


# -- the one writer ------------------------------------------------------------


def write_text(path: str | Path, text: str) -> Path:
    """The repository's artifact writer: parent dirs created, UTF-8,
    exactly one trailing newline, **atomic and durable**.  Text reports,
    JSON twins, bench files and saved campaigns all go through here so
    the guarantees cannot drift apart: it delegates to
    :func:`repro.harness.store.atomic_write_bytes` (fsync'd same-dir temp
    file + ``os.replace`` + directory fsync), so a crash mid-write leaves
    either the old artifact or the new one — never a torn file."""
    from repro.harness.store import atomic_write_bytes

    return atomic_write_bytes(path, (text.rstrip("\n") + "\n").encode("utf-8"))


def write_json(path: str | Path, obj: object) -> Path:
    return write_text(path, json.dumps(obj, indent=1, sort_keys=True))


def write_bench(path: str | Path, records: Sequence[dict[str, object]]) -> Path:
    """Write a bench document wrapped in the store's in-document envelope.

    The file stays a plain JSON document (external tooling can still
    parse it — the records live under ``"payload"``), but gains a header
    with a payload CRC that :func:`load_bench` verifies.
    """
    from repro.harness.store import seal_json_doc

    return write_json(path, seal_json_doc(validate_bench(list(records))))


def write_jsonl(path: str | Path, rows: Iterable[dict[str, object]]) -> Path:
    lines = [json.dumps(row, sort_keys=True) for row in rows]
    return write_text(path, "\n".join(lines) if lines else "")


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    out = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def render_bench(records: Sequence[dict[str, object]]) -> str:
    """Aligned dump of a bench document (``repro stats FILE``)."""
    from repro.util.tables import render_table

    rows = [
        [str(r["metric"]), float(r["value"]), str(r["unit"]), str(r["scale"]), str(r["git_sha"])]
        for r in records
    ]
    return render_table(
        ["Metric", "Value", "Unit", "Scale", "Git"], rows, float_fmt="{:.6g}"
    )


# -- regression diffing --------------------------------------------------------


def _is_gated(metric: str, unit: str) -> bool:
    return unit.endswith("/s") and metric != CALIBRATION_METRIC


@dataclass
class BenchDiff:
    """Comparison of a current bench document against a baseline."""

    threshold: float
    calibration_ratio: float | None  # current speed / baseline speed, if known
    # (metric, current, baseline, normalized current/baseline ratio, gated)
    rows: list[tuple[str, float, float, float, bool]] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # baseline metrics absent now

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_bench(
    current: Sequence[dict[str, object]],
    baseline: Sequence[dict[str, object]],
    threshold: float = 0.15,
) -> BenchDiff:
    """Compare rate metrics (higher is better) against ``baseline``.

    A gated metric regresses when its calibration-normalized value drops
    more than ``threshold`` below the baseline.  Metrics present only on
    one side never fail the gate (they are listed as ``missing`` when the
    baseline had them), so adding instrumentation cannot break CI.

    The calibration correction is one-sided: a machine slower than the
    baseline's is fully forgiven (rates are scaled up by the speed
    deficit), but a machine that merely *benchmarks* faster is not asked
    for proportionally more throughput — the correction is capped at 1.0
    there.  Calibration is a ~20 ms micro-measurement with around 10 %
    jitter on shared runners; demanding extra throughput because it
    spiked high would fail healthy builds, while the capped direction
    only ever makes the gate more lenient than a raw comparison.
    """
    cur = {str(r["metric"]): (float(r["value"]), str(r["unit"])) for r in current}
    base = {str(r["metric"]): (float(r["value"]), str(r["unit"])) for r in baseline}
    cal = None
    if CALIBRATION_METRIC in cur and CALIBRATION_METRIC in base:
        base_cal = base[CALIBRATION_METRIC][0]
        if base_cal > 0 and cur[CALIBRATION_METRIC][0] > 0:
            cal = cur[CALIBRATION_METRIC][0] / base_cal
    diff = BenchDiff(threshold=threshold, calibration_ratio=cal)
    for metric in sorted(set(cur) & set(base)):
        value, unit = cur[metric]
        base_value = base[metric][0]
        gated = _is_gated(metric, unit)
        if base_value == 0:
            ratio = float("inf") if value else 1.0
        else:
            ratio = value / base_value
            if gated and cal:
                # Discount machine-speed differences, one-sided (see doc).
                ratio /= min(cal, 1.0)
        diff.rows.append((metric, value, base_value, ratio, gated))
        if gated and ratio < 1.0 - threshold:
            diff.regressions.append(
                f"{metric}: {value:.6g} vs baseline {base_value:.6g} "
                f"(normalized x{ratio:.3f} < {1.0 - threshold:.2f})"
            )
    diff.missing = sorted(set(base) - set(cur))
    return diff


def render_diff(diff: BenchDiff) -> str:
    from repro.util.tables import render_table

    rows = [
        [m, c, b, f"x{r:.3f}", "gate" if g else ""]
        for m, c, b, r, g in diff.rows
    ]
    out = render_table(
        ["Metric", "Current", "Baseline", "Ratio*", "Gated"],
        rows,
        title="bench diff (*rate ratios are calibration-normalized; gate fails below "
        f"x{1.0 - diff.threshold:.2f})",
        float_fmt="{:.6g}",
    )
    if diff.calibration_ratio is not None:
        out += f"\n(machine calibration: current is x{diff.calibration_ratio:.3f} of baseline)"
    if diff.missing:
        out += "\n(baseline metrics not measured here: " + ", ".join(diff.missing) + ")"
    out += "\n" + ("OK" if diff.ok else "REGRESSION:\n  " + "\n  ".join(diff.regressions))
    return out

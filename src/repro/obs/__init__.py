"""Telemetry & metrics subsystem (``repro.obs``).

Counters/gauges/histograms over the simulator and campaign engine,
nested wall-clock spans built on the runtime's event-listener hooks, and
machine-readable exports (``bench.json`` + JSONL traces) that the CI
perf-regression gate consumes.

Disabled by default and free when disabled: every call site guards on
``registry() is None``, so no metric objects exist and no listener is
attached unless ``REPRO_OBS=1`` (or :func:`enable`, which the CLI's
``--stats`` flag uses).  See ``docs/API.md`` ("repro.obs") for the
metric catalog, the span hierarchy and the bench.json schema.
"""

from repro.obs.metrics import (
    ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    disable,
    enable,
    enabled,
    registry,
    reset,
)
from repro.obs.spans import RuntimeSpanListener, Span, Tracer, maybe_span

__all__ = [
    "ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "registry",
    "enable",
    "enabled",
    "disable",
    "reset",
    "Span",
    "Tracer",
    "RuntimeSpanListener",
    "maybe_span",
]

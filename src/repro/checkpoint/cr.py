"""NVM write traffic of checkpoint creation (paper Fig. 9).

The paper compares the *extra* NVM writes of EasyCrash (cache flushes)
against traditional C/R, whose extra writes come from (a) writing the
checkpoint copy itself and (b) cache pollution — loading checkpoint
source data evicts dirty lines.  Following the paper, the checkpoint is
taken once per run (a conservative assumption in C/R's favour), and a
write is counted whenever a dirty block leaves the last-level cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppFactory
from repro.memsim.config import HierarchyConfig
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import Runtime

__all__ = ["CheckpointWriteStats", "checkpoint_write_experiment", "simulate_checkpoint"]


@dataclass(frozen=True)
class CheckpointWriteStats:
    """NVM writes of one run variant, for Fig. 9's normalization."""

    label: str
    nvm_writes: int
    baseline_writes: int

    @property
    def normalized(self) -> float:
        """Total writes normalized by the no-persistence/no-checkpoint run."""
        if self.baseline_writes == 0:
            return 1.0 if self.nvm_writes == 0 else float("inf")
        return self.nvm_writes / self.baseline_writes


def simulate_checkpoint(rt: Runtime, object_names: list[str]) -> None:
    """Copy the named objects into a checkpoint area through the cache.

    Models ``memcpy``-style checkpointing: stream-read each source object
    and stream-write its copy (write-allocate, so the copy pollutes the
    cache), then flush the copy to make it durable.
    """
    heap, hier = rt._require()
    chk_base = heap.total_blocks() + 16
    cursor = chk_base
    for name in object_names:
        obj = heap.objects[name]
        rt.load_range(obj, 0, obj.nbytes)
        hier.access(cursor, cursor + obj.nblocks, write=True)
        cursor += obj.nblocks
    hier.flush(chk_base, cursor)


def _run_with(factory: AppFactory, plan: PersistencePlan, hierarchy: HierarchyConfig | None,
              checkpoint_objects: list[str] | None) -> int:
    rt = Runtime(hierarchy=hierarchy, plan=plan)
    app = factory.make(runtime=rt)
    with np.errstate(all="ignore"):
        app.run()
    if checkpoint_objects is not None:
        simulate_checkpoint(rt, checkpoint_objects)
    assert rt.hierarchy is not None
    # The run's results eventually reach NVM in every variant: drain the
    # caches so the normalization basis is never degenerate (apps whose
    # working set fits the LLC would otherwise report zero writes).
    rt.hierarchy.writeback_all()
    return rt.hierarchy.stats.nvm_writes


def checkpoint_write_experiment(
    factory: AppFactory,
    critical_objects: list[str],
    easycrash_plan: PersistencePlan,
    hierarchy: HierarchyConfig | None = None,
) -> dict[str, CheckpointWriteStats]:
    """Fig. 9's four variants for one application.

    Returns write statistics for: the plain run (normalization basis),
    EasyCrash, C/R checkpointing only the critical objects, and C/R
    checkpointing all candidate objects.
    """
    app = factory.make(None)
    all_candidates = [o.name for o in app.ws.heap.candidates()]

    none_plan = PersistencePlan.none(persist_iterator=False)
    baseline = _run_with(factory, none_plan, hierarchy, None)
    easycrash = _run_with(factory, easycrash_plan, hierarchy, None)
    cr_critical = _run_with(factory, none_plan, hierarchy, critical_objects)
    cr_all = _run_with(factory, none_plan, hierarchy, all_candidates)
    return {
        "baseline": CheckpointWriteStats("no persistence", baseline, baseline),
        "easycrash": CheckpointWriteStats("EasyCrash", easycrash, baseline),
        "cr_critical": CheckpointWriteStats("C/R (critical objects)", cr_critical, baseline),
        "cr_all": CheckpointWriteStats("C/R (all data objects)", cr_all, baseline),
    }

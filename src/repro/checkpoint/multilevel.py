"""Multi-level checkpoint timing model (after Moody/Mohror et al., the
scheme the paper's Sec. 7 assumes: synchronous coordinated checkpoints
written to node-local storage, drained asynchronously to remote storage).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MultiLevelCheckpointModel"]


@dataclass(frozen=True)
class MultiLevelCheckpointModel:
    """Per-node checkpoint cost model.

    ``local_bandwidth`` is the node-local device bandwidth (SSD/NVMe
    ~2 GB/s, HDD 20-200 MB/s); the remote drain is asynchronous and not
    charged to ``t_chk``, matching the paper.  ``sync_fraction`` expresses
    the coordination barrier as a fraction of the checkpoint time (the
    paper adopts 50% from Fang et al.).
    """

    checkpoint_bytes: float
    local_bandwidth: float
    sync_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.checkpoint_bytes <= 0 or self.local_bandwidth <= 0:
            raise ValueError("checkpoint size and bandwidth must be positive")
        if self.sync_fraction < 0:
            raise ValueError("sync_fraction must be non-negative")

    @property
    def t_chk(self) -> float:
        """Time to write one coordinated checkpoint (seconds)."""
        return self.checkpoint_bytes / self.local_bandwidth

    @property
    def t_sync(self) -> float:
        """Cross-node synchronization overhead (seconds)."""
        return self.sync_fraction * self.t_chk

    @property
    def t_restore(self) -> float:
        """Recovery-from-checkpoint time; the paper assumes T_r = T_chk."""
        return self.t_chk

    @staticmethod
    def for_scenario(memory_gb: float, device: str) -> "MultiLevelCheckpointModel":
        """Presets matching the paper's hardware scenarios: checkpointing
        a node's memory to NVMe ("ssd"), fast HDD ("hdd_fast") or slow
        HDD ("hdd_slow") yields T_chk ≈ 32 s / 320 s / 3200 s."""
        bw = {"ssd": 2e9, "hdd_fast": 2e8, "hdd_slow": 2e7}[device]
        return MultiLevelCheckpointModel(memory_gb * 64e9 / 64, bw)

"""Multi-level checkpoint timing model (after Moody/Mohror et al., the
scheme the paper's Sec. 7 assumes: synchronous coordinated checkpoints
written to node-local storage, drained asynchronously to remote storage),
plus the failure-arrival process the Sec. 7 emulator draws crashes from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng

__all__ = ["MultiLevelCheckpointModel", "CorrelatedFailureProcess"]


@dataclass(frozen=True)
class MultiLevelCheckpointModel:
    """Per-node checkpoint cost model.

    ``local_bandwidth`` is the node-local device bandwidth (SSD/NVMe
    ~2 GB/s, HDD 20-200 MB/s); the remote drain is asynchronous and not
    charged to ``t_chk``, matching the paper.  ``sync_fraction`` expresses
    the coordination barrier as a fraction of the checkpoint time (the
    paper adopts 50% from Fang et al.).
    """

    checkpoint_bytes: float
    local_bandwidth: float
    sync_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.checkpoint_bytes <= 0 or self.local_bandwidth <= 0:
            raise ValueError("checkpoint size and bandwidth must be positive")
        if self.sync_fraction < 0:
            raise ValueError("sync_fraction must be non-negative")

    @property
    def t_chk(self) -> float:
        """Time to write one coordinated checkpoint (seconds)."""
        return self.checkpoint_bytes / self.local_bandwidth

    @property
    def t_sync(self) -> float:
        """Cross-node synchronization overhead (seconds)."""
        return self.sync_fraction * self.t_chk

    @property
    def t_restore(self) -> float:
        """Recovery-from-checkpoint time; the paper assumes T_r = T_chk."""
        return self.t_chk

    @staticmethod
    def for_scenario(memory_gb: float, device: str) -> "MultiLevelCheckpointModel":
        """Presets matching the paper's hardware scenarios: checkpointing
        a node's memory to NVMe ("ssd"), fast HDD ("hdd_fast") or slow
        HDD ("hdd_slow") yields T_chk ≈ 32 s / 320 s / 3200 s."""
        bw = {"ssd": 2e9, "hdd_fast": 2e8, "hdd_slow": 2e7}[device]
        return MultiLevelCheckpointModel(memory_gb * 64e9 / 64, bw)


@dataclass(frozen=True)
class CorrelatedFailureProcess:
    """Seeded failure-arrival process for the Sec. 7 emulator.

    Primary failures arrive with exponential inter-arrival times at the
    system MTBF (the paper's assumption: Eqs. 6-9 take ``M = Total/MTBF``
    as the Poisson expectation).  ``correlation`` adds the bursts real
    machines exhibit (cascading node failures after a rack power or
    fabric event): each failure spawns a correlated follow-up within an
    exponential ``burst_window_s`` with probability ``correlation``, and
    follow-ups can cascade — burst sizes are geometric, so the expected
    arrival count inflates by ``1/(1 - correlation)``.

    Everything is derived from ``seed`` via :func:`repro.util.rng.derive_rng`,
    so a scenario's failure schedule replays bit-identically.
    """

    mtbf_s: float
    correlation: float = 0.0
    burst_window_s: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0 or self.burst_window_s <= 0:
            raise ValueError("mtbf_s and burst_window_s must be positive")
        if not 0.0 <= self.correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")

    def arrivals(self, horizon_s: float) -> np.ndarray:
        """Sorted failure times in ``[0, horizon_s)``."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rng = derive_rng(
            self.seed, "failure-arrivals", f"{self.mtbf_s:.6e}",
            f"{self.correlation:.6e}", f"{self.burst_window_s:.6e}",
        )
        out: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self.mtbf_s))
            if t >= horizon_s:
                break
            out.append(t)
            follow = t
            while float(rng.random()) < self.correlation:
                follow += float(rng.exponential(self.burst_window_s))
                if follow >= horizon_s:
                    break
                out.append(follow)
        return np.sort(np.asarray(out, dtype=np.float64))

    def bursts(self, horizon_s: float) -> list[np.ndarray]:
        """The arrivals grouped into correlated bursts.

        Two consecutive failures belong to the same burst when they are
        at most ``burst_window_s`` apart — the grouping the cluster
        emulator (:mod:`repro.cluster.emulator`) turns into simultaneous
        multi-node crashes.  Deterministic for a fixed ``horizon_s``
        (it is a pure view over :meth:`arrivals`).
        """
        times = self.arrivals(horizon_s)
        groups: list[np.ndarray] = []
        start = 0
        for i in range(1, times.size):
            if float(times[i] - times[i - 1]) > self.burst_window_s:
                groups.append(times[start:i])
                start = i
        if times.size:
            groups.append(times[start:])
        return groups

    def effective_mtbf(self, horizon_s: float) -> float:
        """Empirical MTBF of the sampled schedule (``horizon / count``);
        equals ``mtbf_s`` in expectation at ``correlation == 0`` and
        shrinks toward ``mtbf_s * (1 - correlation)`` under bursts."""
        n = int(self.arrivals(horizon_s).size)
        return horizon_s / n if n else float("inf")

    @staticmethod
    def for_nodes(
        nodes: int, correlation: float = 0.0, burst_window_s: float = 600.0, seed: int = 0
    ) -> "CorrelatedFailureProcess":
        """The paper's exascale scenarios: per-node MTBF scaling gives the
        12 h / 6 h / 3 h system MTBFs at 100k / 200k / 400k nodes."""
        from repro.system.mtbf import mtbf_for_nodes

        return CorrelatedFailureProcess(
            mtbf_s=mtbf_for_nodes(nodes),
            correlation=correlation,
            burst_window_s=burst_window_s,
            seed=seed,
        )

"""Checkpoint/restart substrate: the paper's C/R comparison baseline.

:mod:`repro.checkpoint.cr` simulates in-memory checkpoint creation through
the cache hierarchy to count the extra NVM writes C/R causes (Fig. 9);
:mod:`repro.checkpoint.multilevel` models the multi-level (local SSD →
remote storage) checkpoint timing used by the system-efficiency study.
"""

from repro.checkpoint.cr import CheckpointWriteStats, checkpoint_write_experiment
from repro.checkpoint.multilevel import MultiLevelCheckpointModel

__all__ = [
    "CheckpointWriteStats",
    "checkpoint_write_experiment",
    "MultiLevelCheckpointModel",
]

#!/usr/bin/env python3
"""CI perf-regression gate: compare a bench.json against the baseline.

Usage::

    python tools/check_bench_regression.py CURRENT BASELINE [--threshold 0.15]

Exit codes: ``0`` no gated metric regressed, ``1`` at least one rate
metric (unit ``*/s``) dropped more than ``threshold`` below the
baseline after calibration normalization, ``2`` unusable input.

The comparison logic lives in :func:`repro.obs.export.diff_bench` (also
reachable as ``repro stats --diff``); this wrapper only adds the
``sys.path`` bootstrap so CI can call it without installing the package.

Refreshing the committed baseline after an intentional perf change::

    REPRO_BENCH_SCALE=quick PYTHONPATH=src \\
        python -m repro campaign EP --tests 40 --stats benchmarks/baseline/bench.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import diff_bench, load_bench, render_diff  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="bench.json measured by this run")
    parser.add_argument("baseline", help="committed baseline bench.json")
    parser.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRAC",
        help="allowed fractional slowdown of gated rate metrics (default 0.15)",
    )
    args = parser.parse_args(argv)
    try:
        current = load_bench(args.current)
        baseline = load_bench(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"check_bench_regression: {exc}", file=sys.stderr)
        return 2
    diff = diff_bench(current, baseline, threshold=args.threshold)
    print(render_diff(diff))
    return 0 if diff.ok else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Soak the campaign orchestration service under process murder and chaos.

The drill, end to end:

1. start ``repro serve`` plus three ``repro work`` processes (every child
   inherits ``REPRO_CHAOS``, so messages drop and duplicate, leases get
   stolen, and heartbeats stall while the campaign runs);
2. SIGKILL two workers mid-chunk — their leases must expire and their
   chunks re-run elsewhere — and respawn replacements;
3. SIGKILL the *scheduler*, then restart it with ``--resume`` so it
   rebuilds the queue purely from the lease + campaign journals while the
   surviving workers reconnect and their stale tokens get fenced;
4. when everything drains, verify the hard invariants:
   - the campaign journal holds **exactly one** record per trial index
     (no gaps, no duplicates, counted on the raw journal lines);
   - the ``--save`` artifact is **byte-identical** to a serial
     ``run_campaign`` oracle computed with chaos off.

Exit status 0 only if the whole drill passes.  The workdir is left in
place on failure so CI can upload the journals (and any quarantine) as
artifacts.

Usage::

    PYTHONPATH=src python tools/service_soak.py --workdir service-soak
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: The service fault mix: everything the protocol must absorb.  (The
#: ``worker_death`` drill is the explicit SIGKILLs below — real process
#: murder, not an in-process emulation.)
DEFAULT_CHAOS = "7:0.2:msg_drop,msg_duplicate,lease_steal,heartbeat_delay"

#: Worker child: slow classification down so the kill choreography has a
#: campaign to interrupt (same trick as tests/cluster/test_sigkill_resume.py).
WORKER_CHILD = """
import sys, time
import repro.nvct.campaign as camp
_orig = camp._classify
def _slow(*a, **k):
    time.sleep(float(sys.argv[3]))
    return _orig(*a, **k)
camp._classify = _slow
from repro.cli import main
sys.exit(main(["work", "--socket", sys.argv[1], "--name", sys.argv[2]]))
"""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.setdefault("REPRO_CHAOS", DEFAULT_CHAOS)
    return env


class Soak:
    def __init__(self, args: argparse.Namespace):
        self.args = args
        self.workdir = Path(args.workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.socket = self.workdir / "scheduler.sock"
        self.journal = self.workdir / "campaign.jsonl"
        self.saved = self.workdir / "service.json"
        self.serve: subprocess.Popen | None = None
        self.workers: list[subprocess.Popen] = []
        self.log_fh = open(self.workdir / "children.log", "ab", buffering=0)

    def say(self, msg: str) -> None:
        print(f"[soak] {msg}", flush=True)

    # -- process management ----------------------------------------------------

    def spawn_serve(self, resume: bool) -> None:
        argv = [
            sys.executable, "-m", "repro", "serve", self.args.app,
            "--socket", str(self.socket), "--journal", str(self.journal),
            "--tests", str(self.args.tests), "--seed", str(self.args.seed),
            "--chunk-size", str(self.args.chunk_size),
            "--heartbeat-deadline", str(self.args.deadline),
            "--save", str(self.saved),
        ]
        if resume:
            argv.append("--resume")
        self.serve = subprocess.Popen(
            argv, env=_env(), stdout=self.log_fh, stderr=self.log_fh
        )
        self.say(f"scheduler up (pid {self.serve.pid}, resume={resume})")

    def spawn_worker(self, name: str) -> subprocess.Popen:
        proc = subprocess.Popen(
            [sys.executable, "-c", WORKER_CHILD, str(self.socket), name,
             str(self.args.trial_sleep)],
            env=_env(), stdout=self.log_fh, stderr=self.log_fh,
        )
        self.say(f"worker {name} up (pid {proc.pid})")
        return proc

    def sigkill(self, proc: subprocess.Popen, what: str) -> None:
        if proc.poll() is not None:
            raise SystemExit(
                f"{what} exited (rc {proc.returncode}) before its scheduled "
                f"SIGKILL — the campaign is too short for the choreography; "
                f"raise --tests or --trial-sleep"
            )
        self.say(f"SIGKILL {what} (pid {proc.pid})")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)

    def kill_everything(self) -> None:
        for proc in [self.serve, *self.workers]:
            if proc is not None and proc.poll() is None:
                proc.kill()

    # -- progress --------------------------------------------------------------

    def journaled_trials(self) -> int:
        if not self.journal.exists():
            return 0
        return self.journal.read_bytes().count(b'"kind": "trial"')

    def wait_for_trials(self, n: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.journaled_trials() >= n:
                return
            if self.serve is not None and self.serve.poll() is not None:
                raise SystemExit(
                    f"scheduler exited early (rc {self.serve.returncode}) at "
                    f"{self.journaled_trials()} trials — raise --tests or "
                    f"--trial-sleep so the kill choreography fits; see "
                    f"{self.workdir}/children.log"
                )
            time.sleep(0.05)
        raise SystemExit(
            f"timed out waiting for {n} journaled trials "
            f"(have {self.journaled_trials()}); see {self.workdir}/children.log"
        )

    # -- the drill -------------------------------------------------------------

    def run(self) -> None:
        q = self.args.tests // 4  # kill milestones: 1/4, 2/4, 3/4 of the run
        self.spawn_serve(resume=False)
        self.workers = [self.spawn_worker(f"soak-w{i}") for i in range(3)]

        self.wait_for_trials(q, self.args.timeout)
        self.sigkill(self.workers[0], "worker soak-w0")
        self.workers[0] = self.spawn_worker("soak-w0b")

        self.wait_for_trials(2 * q, self.args.timeout)
        self.sigkill(self.workers[1], "worker soak-w1")
        self.workers[1] = self.spawn_worker("soak-w1b")

        self.wait_for_trials(3 * q, self.args.timeout)
        self.sigkill(self.serve, "scheduler")
        time.sleep(0.5)  # let the survivors notice the dead socket
        self.spawn_serve(resume=True)

        deadline = time.monotonic() + self.args.timeout
        for proc, what in [(self.serve, "scheduler"),
                           *[(w, "worker") for w in self.workers]]:
            remaining = max(1.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                raise SystemExit(
                    f"{what} (pid {proc.pid}) never finished; see "
                    f"{self.workdir}/children.log"
                )
        if self.serve.returncode != 0:
            raise SystemExit(f"resumed scheduler exited {self.serve.returncode}")
        for w in self.workers:
            if w.returncode != 0:
                raise SystemExit(f"a worker exited {w.returncode}")
        self.say("all processes drained cleanly")

    # -- verification ----------------------------------------------------------

    def verify(self) -> None:
        sys.path.insert(0, str(ROOT / "src"))
        from repro.apps.registry import get_factory
        from repro.harness import chaos
        from repro.nvct.campaign import CampaignConfig, run_campaign
        from repro.nvct.journal import scan_journal
        from repro.nvct.serialize import save_campaign

        chaos.disable()  # the oracle runs clean, whatever REPRO_CHAOS says

        # Exactly-once, counted on the raw journal lines (a dict-shaped
        # loader would silently absorb duplicates; the raw lines cannot lie).
        _, lines, _ = scan_journal(self.journal.read_bytes())
        indices = [doc["index"] for doc, _ in lines if doc.get("kind") == "trial"]
        dupes = {i for i in indices if indices.count(i) > 1}
        if dupes:
            raise SystemExit(f"duplicate journal records for indices {sorted(dupes)}")
        if set(indices) != set(range(len(indices))):
            raise SystemExit(
                f"journal index set has gaps: {len(indices)} records, "
                f"missing {sorted(set(range(len(indices))) - set(indices))[:10]}"
            )
        self.say(f"exactly-once holds over {len(indices)} journaled trials")

        factory = get_factory(self.args.app)
        cfg = CampaignConfig(n_tests=self.args.tests, seed=self.args.seed)
        oracle_path = self.workdir / "serial.json"
        save_campaign(run_campaign(factory, cfg), oracle_path)
        if self.saved.read_bytes() != oracle_path.read_bytes():
            raise SystemExit(
                f"service result diverged from the serial oracle: "
                f"cmp {self.saved} {oracle_path}"
            )
        self.say("service --save is byte-identical to the serial oracle")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="service-soak")
    parser.add_argument("--app", default="EP")
    parser.add_argument("--tests", type=int, default=60)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--chunk-size", type=int, default=4)
    parser.add_argument("--deadline", type=float, default=2.0,
                        help="lease heartbeat deadline (seconds)")
    parser.add_argument("--trial-sleep", type=float, default=0.1,
                        help="per-trial slowdown in workers, so kills land mid-run")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-phase timeout (seconds)")
    args = parser.parse_args()
    if args.tests < 8:
        parser.error("--tests must be >= 8 so the kill milestones are distinct")

    soak = Soak(args)
    try:
        soak.run()
        soak.verify()
    except SystemExit as exc:
        soak.kill_everything()
        print(f"[soak] FAILED: {exc}", file=sys.stderr, flush=True)
        return 1
    finally:
        soak.kill_everything()
        soak.log_fh.close()
    print("[soak] PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

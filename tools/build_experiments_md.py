"""Assemble EXPERIMENTS.md from the benchmark artifacts.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/build_experiments_md.py

Each section pairs the paper's reported numbers with the regenerated
table/figure from ``benchmarks/results/`` and states the shape criteria
the benchmark suite asserts.  Sections carry a provenance line from
their machine-readable JSON twin when one exists, and a closing
"Performance tracking" section diffs the newest top-level
``BENCH_<sha>.json`` trajectory file against the committed perf baseline
(``benchmarks/baseline/bench.json``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

RESULTS = ROOT / "benchmarks" / "results"
BASELINE = ROOT / "benchmarks" / "baseline" / "bench.json"
TARGET = ROOT / "EXPERIMENTS.md"

SECTIONS: list[tuple[str, str, str]] = [
    (
        "table_1",
        "Table 1 — benchmark characteristics",
        "Paper: 11 benchmarks; region counts CG 6 / MG 4 / FT 4 / IS 8 / BT 15 /\n"
        "LU 4 / SP 16 / EP 2 / botsspar 4 / LULESH 4 / kmeans 1; IS's critical\n"
        "object is tiny (4 KB) while FT/botsspar's critical set spans (nearly)\n"
        "all candidates; CG and kmeans restart with extra iterations (9.1 and\n"
        "18.2 on average); IS segfaults; LU/EP fail verification.\n"
        "Shape asserted: region counts match exactly; IS critical object in the\n"
        "KB range; per-app restart-overhead classes reproduce.",
    ),
    (
        "figure_3",
        "Figure 3 — responses after crash and restart (no persistence)",
        "Paper: recomputability differs wildly across applications\n"
        "(Observation 1); SP highest (88%), EP zero, average 28%.\n"
        "Shape asserted: EP/botsspar ~0, SP > 0.5, kmeans S2-dominated,\n"
        "IS fails or interrupts.",
    ),
    (
        "figure_4a",
        "Figure 4a — MG, persisting different data objects",
        "Paper: persisting u lifts MG from 27% to 63%; persisting the other\n"
        "objects barely helps (Observation 2).\n"
        "Shape asserted: u >> none + 0.2; r within 0.2 of u's gain below it.",
    ),
    (
        "figure_4b",
        "Figure 4b — MG, persisting u at different code regions",
        "Paper: one region (R3) stands out with +21%; others < +7%\n"
        "(Observation 3).\n"
        "Shape asserted: max-min across regions > 0.15; best region > none+0.1.",
    ),
    (
        "figure_5",
        "Figure 5 — selection strategies",
        "Paper: persisting the *selected* objects is within 3% of persisting\n"
        "all candidates.\n"
        "Shape asserted: mean gap < 0.10; selection >> no persistence.",
    ),
    (
        "figure_6",
        "Figure 6 — EasyCrash recomputability",
        "Paper: average 28% -> 82% with EasyCrash; 54% of failing crashes\n"
        "transformed; EasyCrash within 5% of the costly best configuration\n"
        "except CG; the physical-machine 'Verified' runs slightly above NVCT.\n"
        "Shape asserted: avg EC > baseline + 0.3 and > 0.6; EC within 0.25 of\n"
        "the best-configuration envelope.\n"
        "Documented divergence: under trajectory-exact (NPB-style)\n"
        "verification, a *consistent copy taken mid-iteration* (the paper's\n"
        "VFY methodology) can be worse than a flushed iteration boundary, so\n"
        "our VFY column sits below EC for the replay-exact apps rather than\n"
        "slightly above as in the paper.",
    ),
    (
        "table_4",
        "Table 4 — runtime overhead of persistence",
        "Paper: EasyCrash 1.5% average overhead; persisting all candidates\n"
        "every iteration 19%; the best-recomputability configuration 35%.\n"
        "Shape asserted: EC < 6% average and below both alternatives; every\n"
        "app under its ts bound (with modeling slack).",
    ),
    (
        "figure_7",
        "Figure 7 — emulated NVM (Quartz-style)",
        "Paper: EasyCrash < 9% overhead (2.3% avg) on all four configurations;\n"
        "the no-selection baseline suffers 48%/62% on 4x/8x latency and\n"
        "21%/22% on 1/6-1/8 bandwidth — flushes are latency-bound.\n"
        "Shape asserted: EC cheap everywhere; no-EC worst on the latency\n"
        "configurations; 8x > 4x.",
    ),
    (
        "figure_8",
        "Figure 8 — Optane DC PMM",
        "Paper: EasyCrash 6% average overhead; without EasyCrash 50%.\n"
        "Shape asserted: EC < 15%; no-EC exceeds EC by > 5 points.",
    ),
    (
        "figure_9",
        "Figure 9 — NVM write traffic",
        "Paper: EasyCrash adds 16% extra writes vs C/R's 38% (critical\n"
        "objects) and 50% (all objects): a 44% average reduction in extra\n"
        "writes; the benefit is largest for large data objects.\n"
        "Shape asserted: EC < C/R-all (the paper's headline comparison).\n"
        "Documented divergence: at mini-app scale the LLC:footprint ratio is\n"
        "~20x larger than the paper's, inflating flush-induced writes for\n"
        "the small hot applications (the paper itself notes EasyCrash 'is\n"
        "not beneficial' at reducing writes for small data objects), so the\n"
        "single-shot critical-object C/R is not strictly dominated here.",
    ),
    (
        "figure_10",
        "Figure 10 — system efficiency (MTBF 12 h)",
        "Paper: EasyCrash improves system efficiency by 2% / 3% / 15% on\n"
        "average at checkpoint costs 32 / 320 / 3200 s (up to 24%).\n"
        "Shape asserted: gains positive and increasing in T_chk; tau\n"
        "decreasing in T_chk.",
    ),
    (
        "figure_11",
        "Figure 11 — scaling with machine size (CG)",
        "Paper: the EasyCrash advantage grows from 100k to 200k to 400k nodes\n"
        "(MTBF 12/6/3 h).\n"
        "Shape asserted: gain non-negative everywhere and larger at 400k than\n"
        "at 100k for both checkpoint costs.",
    ),
    (
        "headline",
        "Headline claims",
        "Paper: 54% of crashes that cannot correctly recompute are transformed;\n"
        "82% average recomputability with EasyCrash; 1.5% average runtime\n"
        "overhead; 44% fewer extra NVM writes than C/R; up to 24% (15% avg)\n"
        "system-efficiency improvement.\n"
        "Shape asserted: see benchmarks/test_headline_claims.py bands.",
    ),
    (
        "ablation_frequency",
        "Ablation — flush frequency vs Eq. 5",
        "Extension: measured recomputability at flush frequencies 1/2/4/8\n"
        "against the paper's linear interpolation (Eq. 5).",
    ),
    (
        "ablation_selection",
        "Ablation — selection strategy",
        "Extension: EasyCrash's correlation-selected objects vs random and\n"
        "largest-objects picks at equal or larger flush volume.",
    ),
    (
        "ablation_crash_distribution",
        "Ablation — crash-time distribution",
        "Extension: sensitivity of measured recomputability to the crash-time\n"
        "law (uniform, early-biased, late-biased).",
    ),
    (
        "ablation_crash_model",
        "Ablation — crash model (persistence domain)",
        "Extension: inconsistent rate by application under each crash model\n"
        "(`repro.memsim.crashmodel`): the paper's whole-cache-loss, a bounded\n"
        "ADR write-pending queue, eADR full-cache flush-on-failure, and torn\n"
        "multi-word stores.  Survivor overlays guarantee\n"
        "eadr <= adr <= whole-cache-loss exactly, per crash point and object;\n"
        "the table shows how much of the paper's inconsistency is attributable\n"
        "to the persistence-domain assumption itself.",
    ),
    (
        "ablation_flush_instruction",
        "Ablation — CLWB vs CLFLUSHOPT",
        "Extension: equal protection, different cost — the invalidating flush\n"
        "reloads its lines (the paper's x2 estimate).",
    ),
    (
        "sensitivity_ts",
        "Sensitivity — the overhead bound ts",
        "Paper Sec. 6 also runs ts = 2% and 5%: overhead is always bounded by\n"
        "ts; smaller budgets force lower flush frequencies (and can fail tau).",
    ),
    (
        "multicore",
        "Extension — multi-threaded campaigns",
        "Paper Sec. 4.1: multi-threaded runs reach the same conclusions as\n"
        "single-threaded ones; reproduced on the MESI-lite multi-core model.",
    ),
    (
        "recovery_mix",
        "Extension — multi-node recovery mix",
        "Extension: the cluster emulator (`repro.cluster`) shards a campaign\n"
        "across emulated nodes, drives correlated failure bursts through them,\n"
        "and lets the recovery orchestrator choose per crashed node between an\n"
        "NVM restart (measured acceptance S1/S2) and a coordinated checkpoint\n"
        "rollback that rewinds the surviving peers.  The table counts both\n"
        "decisions per burst size and crash model; eADR's larger persistence\n"
        "domain converts rollbacks into restarts, which the measured-mix\n"
        "efficiency model (`efficiency_measured_multinode`) turns into a\n"
        "system-efficiency gain.",
    ),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated by
`pytest benchmarks/ --benchmark-only` (artifacts in `benchmarks/results/`,
sized by `REPRO_BENCH_SCALE`).  Absolute numbers are not expected to match
the paper — the substrate is a scaled simulator, not the authors' Xeon +
Optane testbed — but each section lists the *shape* criteria that the
benchmark suite asserts, mirroring who wins, by roughly what factor, and
where the crossovers fall.

Campaign sizes for the run recorded below: see the settings line in each
benchmark log (default: 120-test validation campaigns, 200-test planning
campaigns; the paper used 1000-2000 tests).

"""


def _twin_note(stem: str) -> str | None:
    """Provenance line from a section's machine-readable JSON twin."""
    twin = RESULTS / f"{stem}.json"
    if not twin.exists():
        return None
    try:
        doc = json.loads(twin.read_text(encoding="utf-8"))
    except ValueError:
        return f"*json twin `benchmarks/results/{stem}.json` unreadable*\n"
    return (
        f"*json twin: `benchmarks/results/{stem}.json` — "
        f"{len(doc.get('rows', []))} rows, scale `{doc.get('scale', '?')}`, "
        f"git `{doc.get('git_sha', '?')}`*\n"
    )


def _golden_section() -> str:
    """Before/after snapshot-production throughput from the bench trajectory."""
    from repro.obs.export import load_bench

    lines = ["## Golden-pass snapshot production\n"]
    lines.append(
        "One instrumented execution now feeds every crash test by replaying\n"
        "recorded write-back deltas (`repro.memsim.golden`) instead of\n"
        "full-copying and full-diffing the heap at each crash point.  The\n"
        "numbers below are `benchmarks/test_campaign_throughput.py`'s\n"
        "snapshot-production benchmarks (a 3 MB streaming candidate heap,\n"
        ">= 100 crash points; `test_golden_snapshot_speedup` asserts >= 5x);\n"
        "both paths produce bit-identical campaign records\n"
        "(`tests/nvct/test_golden.py`).\n"
    )
    legacy = golden = None
    for path in sorted(
        ROOT.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime, reverse=True
    ):
        try:
            records = load_bench(path)
        except (OSError, ValueError):
            continue
        by_metric = {r["metric"]: r for r in records}
        legacy = by_metric.get("benchmark.test_snapshot_production_legacy.mean_s")
        golden = by_metric.get("benchmark.test_snapshot_production_golden.mean_s")
        if legacy and golden:
            lines.append(f"Current run: `{path.name}` (scale `{legacy['scale']}`).\n")
            break
    if not (legacy and golden):
        lines.append(
            "*(no snapshot-production records yet — run "
            "`pytest benchmarks/test_campaign_throughput.py`)*\n"
        )
        return "\n".join(lines)
    t_l, t_g = float(legacy["value"]), float(golden["value"])
    lines.append(
        "| snapshot production | mean wall time | speedup |\n"
        "|---|---|---|\n"
        f"| legacy (per-point copy + diff) | {t_l:.3f} s | 1.0x |\n"
        f"| golden pass (delta replay) | {t_g:.3f} s | **{t_l / t_g:.1f}x** |\n"
    )
    return "\n".join(lines)


def _perf_section() -> str:
    """Current-vs-baseline performance deltas from the bench trajectory."""
    from repro.obs.export import diff_bench, load_bench, render_bench, render_diff

    lines = ["## Performance tracking\n"]
    lines.append(
        "Rate metrics (unit `*/s`) from the newest `BENCH_<sha>.json` against\n"
        "the committed baseline `benchmarks/baseline/bench.json`; the same diff\n"
        "gates CI (`tools/check_bench_regression.py`, threshold 15%).\n"
    )
    try:
        baseline = load_bench(BASELINE)
    except (OSError, ValueError):
        lines.append("*(no committed baseline — run the perf gate once to create it)*\n")
        return "\n".join(lines)
    trajectory = sorted(
        ROOT.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime, reverse=True
    )
    current = None
    for path in trajectory:
        try:
            current = load_bench(path)
        except (OSError, ValueError):
            continue
        lines.append(f"Current run: `{path.name}`.\n")
        break
    if current is None:
        lines.append("*(no BENCH_<sha>.json yet — baseline shown as-is)*\n")
        lines.append("```\n" + render_bench(baseline) + "\n```\n")
        return "\n".join(lines)
    lines.append("```\n" + render_diff(diff_bench(current, baseline)) + "\n```\n")
    return "\n".join(lines)


def _chaos_section() -> str:
    """Static recipe: reproducing a campaign under injected failures."""
    return """## Recipe — campaigns under injected failures

The paper studies applications that survive crashes; the harness applies
the same standard to itself.  To reproduce any experiment *while the
harness is being failed on purpose*:

```bash
# 1. A long campaign with a write-ahead journal, under 5% fault injection
#    (worker kills, payload truncation, cache corruption, I/O errors —
#    deterministic per seed):
REPRO_CHAOS=7:0.05 python -m repro campaign MG --tests 2000 --jobs 0 \\
    --resume mg.journal --save mg-chaos.json

# 2. Kill it at any point (Ctrl-C exits 130; SIGKILL is fine too), then
#    rerun the same command: journaled trials are skipped, and the final
#    report is bit-identical to an uninterrupted run.

# 3. The control run, no chaos, no interruption:
python -m repro campaign MG --tests 2000 --jobs 0 --save mg-clean.json
diff mg-chaos.json mg-clean.json   # identical

# 4. The CI soak (fixed seed, engine test subset + resume smoke):
REPRO_CHAOS=7:0.05 PYTHONPATH=src python -m pytest -q \\
    tests/nvct/test_parallel.py tests/nvct/test_journal.py \\
    tests/harness/test_cache.py tests/harness/test_chaos.py \\
    tests/harness/test_resilience.py
```

Injected faults may change *timing* (retries, serial fallback) but never
*results*: classification is pure, corrupted snapshot payloads fail the
chunk and are reclassified from the parent's pristine copy, and torn
cache entries read as misses.  See the *Resilience, chaos & the campaign
journal* section of `docs/API.md`.
"""


def _service_section() -> str:
    """Static recipe: scaling a campaign across worker processes."""
    return """## Recipe — scaling a campaign across workers

`--jobs` forks one process pool inside a single `repro campaign`; the
orchestration service scales past it.  One scheduler shards the campaign
into leased chunks and any number of stateless workers drain them —
separate processes, started and stopped freely while the campaign runs:

```bash
python -m repro serve MG --tests 2000 --socket mg.sock \\
    --journal mg.jsonl --save mg-service.json &
python -m repro work --socket mg.sock --name w0 &
python -m repro work --socket mg.sock --name w1 &
python -m repro work --socket mg.sock --name w2 &
wait
```

Workers may be SIGKILLed at any point — missed heartbeats expire their
leases, the chunks re-run elsewhere, and fencing tokens reject any
zombie's late commit.  So may the scheduler: `repro serve --resume`
rebuilds its queue purely from the lease + campaign journals.  However
the run was mangled, the saved result is **byte-identical** to a serial
`repro campaign MG --tests 2000 --save` — CI's `service-soak` job
SIGKILLs two workers plus the scheduler per push, under the message
chaos kinds (`msg_drop`, `msg_duplicate`, `lease_steal`,
`heartbeat_delay`), and `cmp`s the artifacts.  See *Campaign
orchestration service* in `docs/API.md`.
"""


def _equivalence_section() -> str:
    """Live table: equivalence-class counts vs naive crash-point sampling."""
    header = """## Crash-plan equivalence pruning vs naive sampling

NVM content changes only on write-backs (evictions + persist flushes),
so crash points between the same two write-back events see bit-identical
NVM images and classify identically.  `repro analyze --emit-plan`
partitions the sampled points by dirty-block signature; `repro campaign
--crash-plan` then executes one representative per class plus a
cross-checked purity tail and broadcasts the responses.  The pruned
record list is **bit-identical** to the full campaign's — same records,
same aggregates to the last ulp (`tests/analysis/test_equiv_pass.py`)
— at the reduction factors below (computed live for the proof-scale
configurations the test suite uses):
"""
    try:
        from repro.analysis.equiv_pass import build_crash_plan
        from repro.apps.base import AppFactory
        from repro.apps.ep import EP
        from repro.apps.kmeans import KMeans
        from repro.nvct.campaign import CampaignConfig
        from repro.nvct.plan import PersistencePlan

        cases = [
            (AppFactory(EP, batches=8, batch_size=256, seed=2020), 200),
            (AppFactory(KMeans, n_points=256, n_features=4, k=4, seed=2020), 400),
        ]
        rows = [
            "| app | sampled crash points (naive trials) | equivalence classes "
            "| executed trials (incl. purity tail) | reduction |",
            "|---|---|---|---|---|",
        ]
        for factory, n_tests in cases:
            app = factory.make(None)
            cands = [o.name for o in app.ws.heap.candidates()]
            cfg = CampaignConfig(
                n_tests=n_tests, seed=3, plan=PersistencePlan.at_loop_end(cands)
            )
            plan = build_crash_plan(factory, cfg)
            executed = len(plan.executed_indices())
            rows.append(
                f"| {factory.name} | {plan.n_points} | {plan.n_classes} "
                f"| {executed} | {plan.n_points / executed:.1f}x |"
            )
        table = "\n".join(rows) + "\n"
    except Exception as exc:  # pragma: no cover - doc builder resilience
        table = f"*(equivalence table unavailable: {exc})*\n"
    return header + "\n" + table


def _render_sections(missing: list[str]) -> list[str]:
    """HEADER plus the artifact-derived section blocks — the part of the
    document that is a pure function of the committed ``benchmarks/results/``
    artifacts (the live/perf sections below it depend on local BENCH files
    and runtime state and are excluded from the drift check)."""
    parts = [HEADER]
    for stem, title, commentary in SECTIONS:
        path = RESULTS / f"{stem}.txt"
        parts.append(f"## {title}\n")
        parts.append(commentary.strip() + "\n")
        if path.exists():
            parts.append("```\n" + path.read_text(encoding="utf-8").rstrip() + "\n```\n")
            note = _twin_note(stem)
            if note:
                parts.append(note)
        else:
            missing.append(stem)
            parts.append("*(artifact missing — rerun the benchmark suite)*\n")
    return parts


def check() -> int:
    """Drift gate: the committed EXPERIMENTS.md must start with exactly
    the text this script would generate from the committed artifacts."""
    expected = "\n".join(_render_sections([]))
    try:
        actual = TARGET.read_text(encoding="utf-8")
    except OSError:
        print("EXPERIMENTS.md is missing — run tools/build_experiments_md.py", file=sys.stderr)
        return 1
    if actual.startswith(expected):
        print(f"{TARGET.name} is in sync with benchmarks/results/ ({len(SECTIONS)} sections)")
        return 0
    # Point at the first diverging line to make the failure actionable.
    exp_lines = expected.splitlines()
    act_lines = actual.splitlines()
    for i, (e, a) in enumerate(zip(exp_lines, act_lines), start=1):
        if e != a:
            print(
                f"EXPERIMENTS.md drifted from the generator at line {i}:\n"
                f"  committed: {a!r}\n"
                f"  generated: {e!r}",
                file=sys.stderr,
            )
            break
    else:
        print(
            f"EXPERIMENTS.md is shorter than the generated prefix "
            f"({len(act_lines)} < {len(exp_lines)} lines)",
            file=sys.stderr,
        )
    print("re-run: python tools/build_experiments_md.py (after the benchmark suite)", file=sys.stderr)
    return 1


def main() -> int:
    if not RESULTS.exists():
        print("no benchmarks/results/ — run the benchmark suite first", file=sys.stderr)
        return 1
    if "--check" in sys.argv[1:]:
        return check()
    missing: list[str] = []
    parts = _render_sections(missing)
    parts.append(_chaos_section())
    parts.append(_service_section())
    parts.append(_golden_section())
    parts.append(_equivalence_section())
    parts.append(_perf_section())
    TARGET.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {TARGET} ({len(SECTIONS) - len(missing)}/{len(SECTIONS)} sections)")
    if missing:
        print("missing:", ", ".join(missing))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The campaign's core correctness property: snapshotting many crash
points during ONE execution yields exactly the same NVM images as
separate executions crashed at each point individually."""

import numpy as np
import pytest

from repro.nvct.campaign import _sample_crash_points
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import CountingRuntime, Runtime
from tests.nvct.test_campaign import Counterloop


def snapshots_for(points, plan):
    rt = Runtime(plan=plan, crash_points=points)
    app = Counterloop(runtime=rt, size=256, nit=6)
    app.setup()
    app.run()
    return rt.snapshots


@pytest.mark.parametrize(
    "plan",
    [PersistencePlan.none(), PersistencePlan.at_loop_end(["acc"])],
    ids=["no-plan", "loop-flush"],
)
def test_multi_snapshot_equals_single_snapshot(plan):
    counting = CountingRuntime()
    app = Counterloop(runtime=counting, size=256, nit=6)
    app.setup()
    app.run()
    points = _sample_crash_points((counting.window_begin, counting.counter), 12, 3, "x")

    multi = snapshots_for(points, plan)
    assert len(multi) == len(points)
    for i, p in enumerate(points):
        single = snapshots_for(np.array([p]), plan)
        assert len(single) == 1
        assert multi[i].counter == single[0].counter == p
        assert multi[i].iteration == single[0].iteration
        assert multi[i].region == single[0].region
        for name, payload in multi[i].nvm_state.items():
            assert np.array_equal(payload, single[0].nvm_state[name]), (
                f"NVM image of {name} differs at crash point {p}"
            )
        assert multi[i].rates == pytest.approx(single[0].rates)


def test_snapshot_counters_strictly_increasing():
    counting = CountingRuntime()
    app = Counterloop(runtime=counting, size=256, nit=6)
    app.setup()
    app.run()
    points = _sample_crash_points((counting.window_begin, counting.counter), 20, 5, "y")
    snaps = snapshots_for(points, PersistencePlan.none())
    counters = [s.counter for s in snaps]
    assert counters == sorted(counters)
    assert len(set(counters)) == len(counters)

"""Crash campaigns on the full three-level hierarchy.

The default campaigns use a single scaled LLC; these tests exercise the
paper-like inclusive multi-level configuration end to end and check the
claims that justify the default: persistence exposure is governed by the
LLC, and flushing repairs recomputability identically.
"""

import pytest

from repro.memsim.config import HierarchyConfig
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.plan import PersistencePlan
from tests.nvct.test_campaign import factory


def three_level():
    # Scaled three-level hierarchy whose LLC matches the single-level size
    # used elsewhere in these tests.
    from repro.memsim.config import CacheLevelConfig

    return HierarchyConfig(
        (
            CacheLevelConfig("L1", 4 * 1024, 4),
            CacheLevelConfig("L2", 16 * 1024, 8),
            CacheLevelConfig("L3", 64 * 1024, 8),
        )
    )


def test_three_level_campaign_runs_and_classifies():
    cfg = CampaignConfig(n_tests=20, seed=4, hierarchy=three_level())
    res = run_campaign(factory(size=4096, nit=6), cfg)
    assert res.n_tests == 20
    assert 0.0 <= res.recomputability() <= 1.0


def test_flush_repair_holds_on_three_levels():
    fac = factory(size=4096, nit=6)
    base = run_campaign(
        fac, CampaignConfig(n_tests=25, seed=4, hierarchy=three_level())
    )
    flushed = run_campaign(
        fac,
        CampaignConfig(
            n_tests=25, seed=4, hierarchy=three_level(),
            plan=PersistencePlan.at_loop_end(["acc"]),
        ),
    )
    assert flushed.recomputability() > base.recomputability()
    assert flushed.recomputability() > 0.9


def test_llc_governs_persistence_exposure():
    """A 3-level hierarchy and a single-level cache of the same LLC size
    should expose a similar amount of unpersisted state (the upper levels
    are strictly contained in the LLC by inclusivity)."""
    fac = factory(size=4096, nit=6)
    multi = run_campaign(
        fac, CampaignConfig(n_tests=30, seed=4, hierarchy=three_level())
    )
    single = run_campaign(
        fac,
        CampaignConfig(
            n_tests=30, seed=4, hierarchy=HierarchyConfig.scaled_llc(64 * 1024, 8)
        ),
    )
    assert abs(multi.recomputability() - single.recomputability()) < 0.3


def test_paper_like_hierarchy_configuration_is_valid():
    cfg = HierarchyConfig.paper_like()
    assert cfg.llc.size_bytes == 16 * 1024 * 1024
    assert len(cfg.levels) == 3
    assert cfg.min_sets == min(lv.num_sets for lv in cfg.levels)

"""Campaign-level crash-model semantics: golden/legacy agreement, content
keys, monotonicity, journal resume and crash-plan equivalence per model."""

import json

import pytest

from repro.analysis.equiv_pass import build_crash_plan, crash_plan_key
from repro.apps.registry import get_factory
from repro.errors import UsageError
from repro.harness.cache import campaign_config_doc, campaign_key
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.journal import campaign_header
from repro.nvct.serialize import campaign_from_dict, campaign_to_dict

FACTORY = get_factory("EP")
MODELS = ["whole-cache-loss", "adr", "eadr", "torn"]


def _cfg(model="whole-cache-loss", **kw):
    kw.setdefault("n_tests", 12)
    kw.setdefault("seed", 3)
    return CampaignConfig(crash_model=model, **kw)


@pytest.mark.parametrize("model", MODELS)
def test_golden_matches_legacy_per_model(model):
    """The golden-pass overlay machinery and the legacy per-point path
    must produce bit-identical reports under every crash model."""
    golden = run_campaign(FACTORY, _cfg(model), golden=True)
    legacy = run_campaign(FACTORY, _cfg(model), golden=False)
    assert golden.records == legacy.records
    assert golden.crash_model == legacy.crash_model


def test_default_is_whole_cache_loss_bit_identical():
    default = run_campaign(FACTORY, CampaignConfig(n_tests=12, seed=3))
    explicit = run_campaign(FACTORY, _cfg("whole-cache-loss"))
    assert default.records == explicit.records
    assert default.crash_model == explicit.crash_model == "whole-cache-loss"


def test_inconsistent_rate_monotone_per_record():
    """The structural guarantee: eADR <= ADR <= whole-cache-loss, exactly,
    per crash point and per object (survivor sets are nested)."""
    results = {m: run_campaign(FACTORY, _cfg(m)) for m in MODELS}
    for eadr_rec, adr_rec, wcl_rec in zip(
        results["eadr"].records, results["adr"].records,
        results["whole-cache-loss"].records,
    ):
        assert eadr_rec.counter == adr_rec.counter == wcl_rec.counter
        for name, wcl_rate in wcl_rec.rates.items():
            assert eadr_rec.rates[name] <= adr_rec.rates[name] <= wcl_rate


@pytest.mark.parametrize("model", ["adr", "eadr", "torn"])
def test_campaign_deterministic_per_model(model):
    a = run_campaign(FACTORY, _cfg(model))
    b = run_campaign(FACTORY, _cfg(model))
    assert a.records == b.records


# -- content keys --------------------------------------------------------------


def test_campaign_key_stable_at_default():
    """Default configs must produce the exact pre-crash-model key doc:
    no ``crash_model`` entry at all (cache compatibility)."""
    doc = campaign_config_doc(CampaignConfig(n_tests=12, seed=3))
    assert "crash_model" not in doc
    assert campaign_key(FACTORY, CampaignConfig(n_tests=12, seed=3)) == campaign_key(
        FACTORY, _cfg("whole-cache-loss")
    )


def test_campaign_key_changes_iff_model_changes():
    base = campaign_key(FACTORY, _cfg())
    adr = campaign_key(FACTORY, _cfg("adr"))
    assert adr != base
    assert adr == campaign_key(FACTORY, _cfg("adr:wpq=64"))  # canonical spelling
    assert adr != campaign_key(FACTORY, _cfg("adr:wpq=32"))
    assert len({base, adr, campaign_key(FACTORY, _cfg("eadr")),
                campaign_key(FACTORY, _cfg("torn"))}) == 4


def test_crash_plan_key_tracks_model():
    assert crash_plan_key(FACTORY, _cfg("adr")) != crash_plan_key(FACTORY, _cfg())
    assert crash_plan_key(FACTORY, _cfg("adr")) == crash_plan_key(
        FACTORY, _cfg("adr:wpq=64")
    )


# -- serialization and journals ------------------------------------------------


def test_serialize_roundtrip_with_model():
    result = run_campaign(FACTORY, _cfg("adr"))
    doc = json.loads(json.dumps(campaign_to_dict(result)))
    assert doc["crash_model"] == "adr:wpq=64"
    back = campaign_from_dict(doc)
    assert back.crash_model == result.crash_model
    assert back.records == result.records


def test_serialize_omits_model_at_default():
    result = run_campaign(FACTORY, CampaignConfig(n_tests=12, seed=3))
    doc = campaign_to_dict(result)
    assert "crash_model" not in doc
    assert campaign_from_dict(doc).crash_model == "whole-cache-loss"


def test_journal_header_carries_model_only_when_non_default():
    assert "crash_model" not in campaign_header(FACTORY, _cfg())
    assert campaign_header(FACTORY, _cfg("adr"))["crash_model"] == "adr:wpq=64"


def test_journal_resume_under_adr(tmp_path):
    path = tmp_path / "adr.jsonl"
    baseline = run_campaign(FACTORY, _cfg("adr"), jobs=1)
    run_campaign(FACTORY, _cfg("adr"), jobs=1, journal=path)
    resumed = run_campaign(FACTORY, _cfg("adr"), jobs=1, journal=path)
    assert resumed.records == baseline.records


def test_crash_plan_equivalence_under_adr():
    cfg = _cfg("adr")
    plan = build_crash_plan(FACTORY, cfg)
    full = run_campaign(FACTORY, cfg)
    pruned = run_campaign(FACTORY, cfg, plan=plan)
    assert pruned.records == full.records


# -- gating --------------------------------------------------------------------


def test_non_default_model_rejects_verified_mode():
    with pytest.raises(UsageError, match="crash model"):
        run_campaign(FACTORY, _cfg("adr", verified_mode=True))


def test_non_default_model_rejects_multicore():
    with pytest.raises(UsageError, match="crash model"):
        run_campaign(FACTORY, _cfg("eadr", n_cores=2))

"""Persistent heap: layout, NVM image maintenance, inconsistency."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.memsim.blocks import BLOCK_SIZE
from repro.nvct.heap import PersistentHeap


def test_objects_are_block_aligned_and_disjoint():
    heap = PersistentHeap()
    a = heap.allocate("a", (10,), np.float64)
    b = heap.allocate("b", (100,), np.float64)
    assert a.base_block * BLOCK_SIZE % BLOCK_SIZE == 0
    assert b.base_block >= a.end_block + 1  # guard block


def test_duplicate_name_rejected():
    heap = PersistentHeap()
    heap.allocate("a", (4,))
    with pytest.raises(AllocationError):
        heap.allocate("a", (4,))


def test_readonly_candidate_rejected():
    heap = PersistentHeap()
    with pytest.raises(AllocationError):
        heap.allocate("a", (4,), candidate=True, readonly=True)


def test_empty_allocation_rejected():
    heap = PersistentHeap()
    with pytest.raises(AllocationError):
        heap.allocate("a", (0,))


def test_writeback_copies_exact_blocks():
    heap = PersistentHeap()
    a = heap.allocate("a", (32,), np.float64)  # 256 bytes = 4 blocks
    a.data[...] = np.arange(32.0)
    # Write back only the second block (elements 8..15).
    heap.writeback_blocks(np.array([a.base_block + 1]))
    nvm = a.nvm_view()
    assert np.array_equal(nvm[8:16], np.arange(8.0, 16.0))
    assert np.all(nvm[:8] == 0.0) and np.all(nvm[16:] == 0.0)


def test_writeback_ignores_unowned_blocks():
    heap = PersistentHeap()
    a = heap.allocate("a", (8,), np.float64)
    heap.writeback_blocks(np.array([a.end_block + 50]))  # guard/no-man's land
    assert np.all(a.nvm_bytes == 0)


def test_writeback_respects_padding_tail():
    heap = PersistentHeap()
    a = heap.allocate("a", (9,), np.float64)  # 72 bytes -> 2 blocks, padded
    a.data[...] = 1.0
    heap.writeback_blocks(np.arange(a.base_block, a.end_block))
    assert np.array_equal(a.nvm_view(), np.ones(9))


def test_inconsistent_rate_counts_differing_bytes():
    heap = PersistentHeap()
    a = heap.allocate("a", (16,), np.float64)  # 128 bytes
    a.data[...] = 1.0
    a.sync_nvm()
    # Flip every byte of the first 8 doubles (64 bytes).
    a.data_bytes[:64] ^= 0xFF
    assert a.inconsistent_rate() == pytest.approx(0.5)
    # 1.0 -> 2.0 differs in exactly 2 of 8 bytes per double.
    a.data_bytes[:64] ^= 0xFF
    a.data[:8] = 2.0
    assert a.inconsistent_rate() == pytest.approx(2 * 8 / 128)


def test_snapshot_includes_candidates_and_iterator_only():
    heap = PersistentHeap()
    heap.allocate("cand", (8,), candidate=True)
    heap.allocate("ro", (8,), candidate=False, readonly=True)
    heap.allocate("it", (1,), np.int64, candidate=False, role="iterator")
    snap = heap.snapshot_nvm()
    assert set(snap) == {"cand", "it"}


def test_snapshot_consistent_uses_architectural_bytes():
    heap = PersistentHeap()
    a = heap.allocate("a", (8,))
    a.data[...] = 7.0
    snap = heap.snapshot_consistent()
    assert np.array_equal(snap["a"].view(np.float64), np.full(8, 7.0))
    assert np.all(heap.snapshot_nvm()["a"] == 0)


def test_footprint_and_candidate_bytes():
    heap = PersistentHeap()
    heap.allocate("a", (16,), candidate=True)
    heap.allocate("b", (16,), candidate=False, readonly=True)
    assert heap.footprint_bytes() == 2 * 16 * 8
    assert heap.candidate_bytes() == 16 * 8

"""Failure injection: the framework must stay robust when NVM images are
corrupted beyond what cache semantics alone would produce (bit flips in
the medium, truncated snapshots, garbage iterators)."""

import numpy as np
import pytest

from repro.apps.base import AppFactory
from repro.apps.mg import MG
from repro.nvct.campaign import CampaignConfig, Response, _classify, run_campaign
from repro.nvct.runtime import Snapshot
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def mg_factory():
    return AppFactory(MG, n=17, nit=10, seed=7)


@pytest.fixture(scope="module")
def clean_snapshot(mg_factory):
    """An iteration-boundary snapshot taken from architectural state."""
    app = mg_factory.make(None)
    app.run(start_iter=0, max_iterations=5)
    return app.ws.heap.snapshot_consistent()


def classify_state(mg_factory, state):
    snap = Snapshot(
        index=0, counter=0, iteration=4, region="R1",
        nvm_state=state, rates={}, consistent_state=None,
    )
    cfg = CampaignConfig(n_tests=1, seed=0)
    return _classify(mg_factory, snap, mg_factory.golden()[0].iterations, cfg)


def test_clean_boundary_state_recomputes(mg_factory, clean_snapshot):
    rec = classify_state(mg_factory, dict(clean_snapshot))
    assert rec.response is Response.S1


def test_bitflips_in_solution_degrade_gracefully(mg_factory, clean_snapshot):
    state = {k: v.copy() for k, v in clean_snapshot.items()}
    rng = derive_rng(1, "bitflip")
    idx = rng.integers(0, state["u"].size, size=64)
    state["u"][idx] ^= 0xFF
    rec = classify_state(mg_factory, state)
    # Must classify (usually S4: corrupted values break the trajectory
    # match), never raise out of the campaign machinery.
    assert rec.response in (Response.S1, Response.S2, Response.S3, Response.S4)
    assert rec.response is not Response.S1


def test_nan_poisoning_is_contained(mg_factory, clean_snapshot):
    state = {k: v.copy() for k, v in clean_snapshot.items()}
    u = state["u"].view(np.float64)
    u[: u.size // 4] = np.nan
    rec = classify_state(mg_factory, state)
    assert rec.response in (Response.S3, Response.S4)


def test_garbage_iterator_handled(mg_factory, clean_snapshot):
    state = {k: v.copy() for k, v in clean_snapshot.items()}
    state["it"] = np.full_like(state["it"], 0xFF)  # iterator = huge value
    rec = classify_state(mg_factory, state)
    # Resuming past the end runs zero iterations; verification decides.
    assert rec.response in (Response.S1, Response.S2, Response.S3, Response.S4)


def test_truncated_payload_rejected_or_classified(mg_factory, clean_snapshot):
    state = {k: v.copy() for k, v in clean_snapshot.items()}
    state["u"] = state["u"][: 64]  # far too short
    snap = Snapshot(
        index=0, counter=0, iteration=4, region="R1",
        nvm_state=state, rates={}, consistent_state=None,
    )
    cfg = CampaignConfig(n_tests=1, seed=0)
    rec = _classify(mg_factory, snap, mg_factory.golden()[0].iterations, cfg)
    # The restore of a short payload is a broken-environment event; the
    # classifier must fold it into S3, not propagate.
    assert rec.response in (Response.S3, Response.S4)


def test_unknown_objects_in_snapshot_ignored(mg_factory, clean_snapshot):
    state = {k: v.copy() for k, v in clean_snapshot.items()}
    state["no_such_object"] = np.zeros(64, dtype=np.uint8)
    rec = classify_state(mg_factory, state)
    assert rec.response is Response.S1


def test_campaign_survives_hostile_app():
    """An application whose restart path sometimes raises non-standard
    exceptions must still produce a full campaign."""
    from tests.nvct.test_campaign import Counterloop

    class Hostile(Counterloop):
        NAME = "hostile"

        def _iterate(self, it):
            done = super()._iterate(it)
            if float(self.acc.np[0]) > 1e6:  # absurd state -> blow up
                raise MemoryError("synthetic")
            return done

    res = run_campaign(AppFactory(Hostile), CampaignConfig(n_tests=10, seed=1))
    assert res.n_tests == 10

"""Application characterization profiles."""

import pytest

from repro.apps.base import AppFactory
from repro.nvct.characterize import characterize
from tests.nvct.test_campaign import Counterloop


@pytest.fixture(scope="module")
def character():
    return characterize(AppFactory(Counterloop, size=256, nit=4))


def test_objects_profiled(character):
    names = {o.name for o in character.objects}
    assert {"acc", "scratch", "it"} <= names


def test_read_write_counts(character):
    by = {o.name: o for o in character.objects}
    # acc: one in-place update (write) per iteration, 32 blocks each.
    assert by["acc"].writes == 4 * 32
    # scratch: written then read every iteration.
    assert by["scratch"].writes == 4 * 32
    assert by["scratch"].reads == 4 * 32
    assert by["scratch"].rw_ratio == pytest.approx(1.0)


def test_regions_attributed(character):
    by = {o.name: o for o in character.objects}
    assert "R2" in by["acc"].regions
    assert "R1" in by["scratch"].regions


def test_candidacy_and_footprint(character):
    by = {o.name: o for o in character.objects}
    assert by["acc"].candidate
    assert not by["it"].candidate
    assert character.footprint_bytes >= 2 * 256 * 8
    assert character.iterations == 4


def test_render_is_a_table(character):
    text = character.render()
    assert "Object" in text and "acc" in text and "R/W" in text

"""PersistencePlan semantics."""

import pytest

from repro.nvct.plan import PersistencePlan


def test_none_is_inactive():
    p = PersistencePlan.none()
    assert not p.is_active
    assert p.persist_iterator


def test_none_without_iterator():
    p = PersistencePlan.none(persist_iterator=False)
    assert not p.persist_iterator


def test_loop_end_plan():
    p = PersistencePlan.at_loop_end(["a", "b"], frequency=3)
    assert p.is_active
    assert p.at_iteration_end
    assert p.iteration_frequency == 3
    assert p.objects == ("a", "b")


def test_per_region_flush_schedule():
    p = PersistencePlan.per_region(["a"], {"R1": 2, "R3": 1})
    assert p.flushes_at("R1", 2)
    assert not p.flushes_at("R1", 3)
    assert p.flushes_at("R3", 1) and p.flushes_at("R3", 7)
    assert not p.flushes_at("R2", 4)


def test_every_region():
    p = PersistencePlan.every_region(["a"], ["R1", "R2"])
    assert p.flushes_at("R1", 1) and p.flushes_at("R2", 99)


def test_objects_without_schedule_is_inactive():
    p = PersistencePlan(objects=("a",))
    assert not p.is_active


def test_invalid_frequencies_rejected():
    with pytest.raises(ValueError):
        PersistencePlan.per_region(["a"], {"R1": 0})
    with pytest.raises(ValueError):
        PersistencePlan.at_loop_end(["a"], frequency=0)


def test_plans_are_hashable_and_comparable():
    a = PersistencePlan.at_loop_end(["x"])
    b = PersistencePlan.at_loop_end(["x"])
    assert a == b

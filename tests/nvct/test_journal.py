"""Write-ahead campaign journal: durability, torn tails, resume identity."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.apps.registry import get_factory
from repro.errors import JournalError, TrialTimeout
from repro.nvct import campaign as campaign_mod
from repro.nvct.campaign import CampaignConfig, CrashTestRecord, Response, run_campaign
from repro.nvct.journal import CampaignJournal, campaign_header, load_journal
from repro.nvct.serialize import campaign_to_dict

FACTORY = get_factory("EP")
CFG = CampaignConfig(n_tests=8, seed=3)


def _header():
    return campaign_header(FACTORY, CFG)


def _record(i: int) -> CrashTestRecord:
    return CrashTestRecord(
        counter=100 + i, iteration=i, region="loop", rates={"q": 0.1 * i},
        response=Response.S1,
    )


def test_append_load_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal.create(path, _header()) as j:
        for i in range(4):
            j.append(i, _record(i))
    header, records, valid = load_journal(path)
    # created_at is stamped at write time; everything else must round-trip
    stable = {k: v for k, v in header.items() if k != "created_at"}
    assert stable == {k: v for k, v in _header().items() if k != "created_at"}
    assert sorted(records) == [0, 1, 2, 3]
    assert records[2] == _record(2)
    assert valid == path.stat().st_size  # every byte accounted for


def test_torn_tail_is_ignored_and_truncated_on_resume(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal.create(path, _header()) as j:
        for i in range(3):
            j.append(i, _record(i))
    intact = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "trial", "index": 3, "rec')  # SIGKILL mid-append
    header, records, valid = load_journal(path)
    assert header is not None and sorted(records) == [0, 1, 2]
    assert valid == intact
    j, completed = CampaignJournal.open_or_resume(path, _header())
    with j:
        assert sorted(completed) == [0, 1, 2]
        assert path.stat().st_size == intact  # tail truncated away
        j.append(3, _record(3))  # appends stay line-aligned afterwards
    _, records, _ = load_journal(path)
    assert sorted(records) == [0, 1, 2, 3]


def test_refuses_foreign_and_garbage_journals(tmp_path):
    path = tmp_path / "other.jsonl"
    other = campaign_header(FACTORY, CampaignConfig(n_tests=8, seed=99))
    with CampaignJournal.create(path, other):
        pass
    with pytest.raises(JournalError, match="different campaign"):
        CampaignJournal.open_or_resume(path, _header())
    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("this is not a journal\n")
    with pytest.raises(JournalError, match="not a campaign journal"):
        CampaignJournal.open_or_resume(garbage, _header())


def test_missing_or_empty_file_starts_fresh(tmp_path):
    path = tmp_path / "fresh.jsonl"
    j, completed = CampaignJournal.open_or_resume(path, _header())
    with j:
        assert completed == {}
    (tmp_path / "empty.jsonl").touch()
    j, completed = CampaignJournal.open_or_resume(tmp_path / "empty.jsonl", _header())
    with j:
        assert completed == {}


def test_campaign_journals_every_trial(tmp_path):
    path = tmp_path / "j.jsonl"
    result = run_campaign(FACTORY, CFG, jobs=1, journal=path)
    _, records, _ = load_journal(path)
    assert sorted(records) == list(range(len(result.records)))
    assert [records[i] for i in range(len(result.records))] == result.records


def test_resume_after_interruption_is_bit_identical(tmp_path):
    baseline = run_campaign(FACTORY, CFG, jobs=1)
    path = tmp_path / "j.jsonl"
    run_campaign(FACTORY, CFG, jobs=1, journal=path)
    # simulate a crash: keep the header + 3 trials + a torn half-line
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(b"".join(lines[:4]) + lines[4][: len(lines[4]) // 2])
    resumed = run_campaign(FACTORY, CFG, jobs=1, journal=path)
    assert resumed.records == baseline.records
    assert json.dumps(campaign_to_dict(resumed), sort_keys=True) == json.dumps(
        campaign_to_dict(baseline), sort_keys=True
    )


def test_parallel_journaled_campaign_matches_serial(tmp_path):
    baseline = run_campaign(FACTORY, CFG, jobs=1)
    path = tmp_path / "j.jsonl"
    parallel = run_campaign(FACTORY, CFG, jobs=2, journal=path)
    assert parallel.records == baseline.records
    _, records, _ = load_journal(path)
    assert [records[i] for i in range(len(baseline.records))] == baseline.records


def test_completed_journal_reruns_nothing(tmp_path, monkeypatch):
    path = tmp_path / "j.jsonl"
    first = run_campaign(FACTORY, CFG, jobs=1, journal=path)

    def explode(*a, **k):
        raise AssertionError("a completed journal must skip classification")

    monkeypatch.setattr(campaign_mod, "_classify", explode)
    again = run_campaign(FACTORY, CFG, jobs=1, journal=path)
    assert again.records == first.records


def test_poison_trial_is_quarantined_as_failed(monkeypatch):
    calls = {"n": 0}
    orig = campaign_mod._classify

    def poison(factory, snap, golden_iterations, cfg):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("poison trial")
        return orig(factory, snap, golden_iterations, cfg)

    monkeypatch.setattr(campaign_mod, "_classify", poison)
    result = run_campaign(FACTORY, CFG, jobs=1)
    failed = [r for r in result.records if r.response is Response.FAILED]
    assert len(failed) == 1
    assert failed[0].error == "RuntimeError: poison trial"
    assert len(result.records) == CFG.n_tests  # the campaign still completed


@pytest.mark.skipif(not hasattr(signal, "setitimer"), reason="needs SIGALRM")
def test_trial_timeout_quarantines_slow_trial(monkeypatch):
    calls = {"n": 0}
    orig = campaign_mod._classify

    def sometimes_hangs(factory, snap, golden_iterations, cfg):
        calls["n"] += 1
        if calls["n"] == 1:
            time.sleep(30)
        return orig(factory, snap, golden_iterations, cfg)

    monkeypatch.setattr(campaign_mod, "_classify", sometimes_hangs)
    result = run_campaign(FACTORY, CFG, jobs=1, trial_timeout=0.2)
    failed = [r for r in result.records if r.response is Response.FAILED]
    assert len(failed) == 1
    assert failed[0].error.startswith(TrialTimeout.__name__)


# -- the acceptance test: SIGKILL mid-campaign, resume, compare ---------------

_CHILD = """
import sys, time
import repro.nvct.campaign as camp
_orig = camp._classify
def _slow(*a, **k):
    time.sleep(0.2)  # give the parent time to SIGKILL us mid-campaign
    return _orig(*a, **k)
camp._classify = _slow
from repro.apps.registry import get_factory
from repro.nvct.campaign import CampaignConfig
camp.run_campaign(
    get_factory("EP"), CampaignConfig(n_tests=8, seed=3),
    jobs=1, journal=sys.argv[1],
)
print("COMPLETE", flush=True)
"""


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="needs SIGKILL")
def test_sigkill_then_resume_is_bit_identical(tmp_path):
    """Kill a journaled campaign process mid-run with SIGKILL; rerunning
    with the same journal must reproduce the uninterrupted report exactly."""
    journal = tmp_path / "j.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(journal)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                out, err = proc.communicate()
                pytest.fail(f"campaign finished before the kill: {err.decode()!r}")
            if journal.exists() and journal.read_bytes().count(b"\n") >= 4:
                break  # header + >= 3 journaled trials: mid-campaign
            time.sleep(0.02)
        else:
            pytest.fail("journal never accumulated trials")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    journaled = journal.read_bytes().count(b"\n")
    assert 4 <= journaled < 1 + CFG.n_tests  # interrupted partway, durably

    resumed = run_campaign(FACTORY, CFG, jobs=1, journal=journal)
    baseline = run_campaign(FACTORY, CFG, jobs=1)
    assert resumed.records == baseline.records
    assert json.dumps(campaign_to_dict(resumed), sort_keys=True) == json.dumps(
        campaign_to_dict(baseline), sort_keys=True
    )


def test_bit_rotted_tail_record_is_quarantined_on_resume(tmp_path):
    """Silent bit-rot that still parses as JSON: only the line CRC can
    catch it.  The journal ends at the last intact line, the rotted tail
    is preserved under quarantine/, and the trial simply re-runs."""
    path = tmp_path / "j.jsonl"
    with CampaignJournal.create(path, _header()) as j:
        for i in range(3):
            j.append(i, _record(i))
    lines = path.read_bytes().splitlines(keepends=True)
    rotted = json.loads(lines[-1])
    rotted["record"]["counter"] += 1  # the crc field is now stale
    lines[-1] = json.dumps(rotted, sort_keys=True).encode() + b"\n"
    path.write_bytes(b"".join(lines))

    header, records, valid = load_journal(path)
    assert header is not None and sorted(records) == [0, 1]
    j, completed = CampaignJournal.open_or_resume(path, _header())
    j.close()
    assert sorted(completed) == [0, 1]
    assert path.stat().st_size == valid  # live file truncated to intact prefix
    tails = list((tmp_path / "quarantine").iterdir())
    assert len(tails) == 1 and tails[0].name.startswith("j.jsonl.tail")
    assert json.loads(tails[0].read_bytes())["record"]["counter"] == rotted["record"]["counter"]


def test_v0_journal_without_crcs_loads_through_shim(tmp_path):
    from repro.nvct.serialize import record_to_dict

    path = tmp_path / "j.jsonl"
    docs = [
        _header(),
        {"kind": "trial", "index": 0, "record": record_to_dict(_record(0))},
        {"kind": "trial", "index": 1, "record": record_to_dict(_record(1))},
    ]
    path.write_bytes(
        b"".join(json.dumps(d, sort_keys=True).encode() + b"\n" for d in docs)
    )
    header, records, valid = load_journal(path)
    assert header is not None and header["key"] == _header()["key"]
    assert sorted(records) == [0, 1]
    assert valid == path.stat().st_size
    # resuming a v0 journal keeps working, and new appends are checksummed
    j, completed = CampaignJournal.open_or_resume(path, _header())
    with j:
        j.append(2, _record(2))
    assert sorted(completed) == [0, 1]
    last = json.loads(path.read_bytes().splitlines()[-1])
    assert "crc" in last

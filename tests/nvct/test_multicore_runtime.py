"""Multi-core runtime and the multi-threaded-conclusions-match property."""

import numpy as np
import pytest

from repro.apps.base import AppFactory
from repro.apps.parallel_kmeans import ParallelKMeans
from repro.errors import ConfigError
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.managed import Workspace
from repro.nvct.multicore_runtime import MulticoreRuntime
from repro.nvct.plan import PersistencePlan


def test_core_scoping():
    rt = MulticoreRuntime(n_cores=4)
    ws = Workspace(rt)
    a = ws.array("a", (64,))
    with rt.on_core(2):
        a.write(slice(0, 32), 1.0)
    assert rt.hierarchy.l1s[2].resident_dirty_blocks().size > 0
    assert rt.hierarchy.l1s[0].resident_dirty_blocks().size == 0
    with pytest.raises(ConfigError):
        with rt.on_core(9):
            pass


def test_parallel_chunks_cover_everything():
    rt = MulticoreRuntime(n_cores=3)
    chunks = rt.parallel_chunks(10)
    seen = []
    for core, sl in chunks:
        assert 0 <= core < 3
        seen.extend(range(sl.start, sl.stop))
    assert seen == list(range(10))


def test_flush_gathers_all_cores_dirty_lines():
    rt = MulticoreRuntime(n_cores=2)
    ws = Workspace(rt)
    a = ws.array("a", (32,))  # 4 blocks
    with rt.on_core(0):
        a.write(slice(0, 16), 1.0)
    with rt.on_core(1):
        a.write(slice(16, 32), 2.0)
    a.persist()
    assert np.all(a.obj.nvm_view()[:16] == 1.0)
    assert np.all(a.obj.nvm_view()[16:] == 2.0)


def test_parallel_kmeans_matches_serial_result():
    serial = AppFactory(ParallelKMeans, n_points=2048, n_features=4, k=6, seed=7)
    app_serial = serial.make(None)
    r1 = app_serial.run()

    rt = MulticoreRuntime(n_cores=4)
    app_mt = ParallelKMeans(runtime=rt, n_points=2048, n_features=4, k=6, seed=7)
    app_mt.setup()
    r2 = app_mt.run()
    assert r1.iterations == r2.iterations
    assert app_serial.reference_outcome() == pytest.approx(app_mt.reference_outcome())


def test_multithreaded_campaign_reaches_same_conclusions():
    """Paper Sec. 4.1: "the conclusions we draw from the results of
    multiple threads are the same as those of single thread"."""
    factory = AppFactory(ParallelKMeans, n_points=4096, n_features=4, k=6, seed=7)
    plans = {
        "none": PersistencePlan.none(),
        "crit": PersistencePlan.at_loop_end(["centroids", "inertia", "assign"]),
    }
    results = {}
    for cores in (1, 4):
        for label, plan in plans.items():
            cfg = CampaignConfig(n_tests=25, seed=9, plan=plan, n_cores=cores)
            results[(cores, label)] = run_campaign(factory, cfg).recomputability()
    # Same qualitative conclusion on 1 and 4 cores: persistence repairs
    # the fragile baseline.
    for cores in (1, 4):
        assert results[(cores, "crit")] > results[(cores, "none")] + 0.3
    assert abs(results[(1, "crit")] - results[(4, "crit")]) < 0.25

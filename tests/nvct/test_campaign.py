"""Campaign machinery: determinism, snapshot prefix property, classification."""

import numpy as np
import pytest

from repro.apps.base import AppFactory, Application
from repro.nvct.campaign import CampaignConfig, Response, run_campaign, measure_run
from repro.nvct.plan import PersistencePlan


class Counterloop(Application):
    """Trivial deterministic app: accumulates into a vector, verifies the
    exact final sum. Fragile to lost updates, fully repaired by flushing."""

    NAME = "counterloop"
    REGIONS = ("R1", "R2")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, size: int = 256, nit: int = 8, **kw):
        super().__init__(runtime, size=size, nit=nit, **kw)
        self.size = size
        self.nit = nit

    def nominal_iterations(self):
        return self.nit

    def _allocate(self):
        self.acc = self.ws.array("acc", (self.size,), candidate=True)
        self.scratch = self.ws.array("scratch", (self.size,), candidate=False, readonly=False)

    def _initialize(self):
        self.acc.np[...] = 0.0
        self.scratch.np[...] = 0.0

    def _iterate(self, it):
        with self.ws.region("R1"):
            self.scratch.write(slice(None), float(it + 1))
        with self.ws.region("R2"):
            s = self.scratch.read().copy()
            self.acc.update(slice(None), lambda a: np.add(a, s, out=a))
        return False

    def reference_outcome(self):
        return {"sum": float(self.acc.np.sum())}

    def verify(self):
        if self.golden is None:
            return True
        return self.reference_outcome()["sum"] == self.golden["sum"]


def factory(**kw):
    return AppFactory(Counterloop, **kw)


def test_campaign_is_deterministic():
    cfg = CampaignConfig(n_tests=20, seed=3)
    r1 = run_campaign(factory(), cfg)
    r2 = run_campaign(factory(), cfg)
    assert [t.response for t in r1.records] == [t.response for t in r2.records]
    assert [t.counter for t in r1.records] == [t.counter for t in r2.records]


def test_different_seed_different_points():
    a = run_campaign(factory(), CampaignConfig(n_tests=20, seed=1))
    b = run_campaign(factory(), CampaignConfig(n_tests=20, seed=2))
    assert [t.counter for t in a.records] != [t.counter for t in b.records]


def test_requested_test_count_honored():
    res = run_campaign(factory(), CampaignConfig(n_tests=15, seed=0))
    assert res.n_tests == 15


def test_flushing_repairs_the_accumulator():
    base = run_campaign(factory(), CampaignConfig(n_tests=30, seed=5))
    flushed = run_campaign(
        factory(),
        CampaignConfig(n_tests=30, seed=5, plan=PersistencePlan.at_loop_end(["acc"])),
    )
    assert flushed.recomputability() >= base.recomputability()
    assert flushed.recomputability() > 0.9


def test_verified_mode_at_least_as_good():
    cfg_n = CampaignConfig(n_tests=30, seed=5)
    cfg_v = CampaignConfig(n_tests=30, seed=5, verified_mode=True)
    normal = run_campaign(factory(), cfg_n)
    verified = run_campaign(factory(), cfg_v)
    # Fully consistent copies can only help; they are still mid-iteration
    # states, so cumulative apps may still fail the replay (paper Sec. 6:
    # the physical-machine "Verified" result is close to, and above, NVCT's).
    assert verified.recomputability() >= normal.recomputability()


def test_response_fractions_sum_to_one():
    res = run_campaign(factory(), CampaignConfig(n_tests=25, seed=7))
    assert sum(res.response_fractions().values()) == pytest.approx(1.0)


def test_records_carry_rates_and_regions():
    res = run_campaign(factory(), CampaignConfig(n_tests=10, seed=9))
    for rec in res.records:
        assert set(rec.rates) == {"acc", "scratch"} - {"scratch"} or "acc" in rec.rates
        assert rec.region in ("R1", "R2", "__main__")
        assert 0 <= rec.rates["acc"] <= 1.0


def test_region_shares_sum_to_one():
    res = run_campaign(factory(), CampaignConfig(n_tests=5, seed=1))
    shares = res.region_time_shares()
    assert sum(shares.values()) == pytest.approx(1.0)


def test_selection_vectors_aligned():
    res = run_campaign(factory(), CampaignConfig(n_tests=12, seed=2))
    vecs = res.object_rate_vectors()
    succ = res.success_vector()
    for v in vecs.values():
        assert v.shape == succ.shape


def test_measure_run_counts_persist_events():
    plan = PersistencePlan.at_loop_end(["acc"])
    stats = measure_run(factory(nit=6), CampaignConfig(plan=plan))
    assert stats.persist_op_count == 6
    assert stats.memory.nvm_writes > 0
    assert stats.iterations == 6


def test_campaign_snapshot_counter_is_within_window():
    res = run_campaign(factory(), CampaignConfig(n_tests=20, seed=11))
    assert all(t.counter >= res.run_stats.window_begin for t in res.records)
    assert all(t.counter <= res.run_stats.total_accesses for t in res.records)

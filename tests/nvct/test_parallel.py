"""Parallel campaign engine: determinism, chunking, fallback paths."""

import numpy as np
import pytest

from repro.apps.base import AppFactory, Application
from repro.apps.registry import get_factory
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.parallel import (
    chunk_indices,
    classify_snapshots,
    resolve_jobs,
    run_campaigns,
)
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import CountingRuntime, Runtime
from repro.nvct.serialize import pack_snapshot, unpack_snapshot


@pytest.fixture
def no_chaos():
    """Exact byte-level round-trips can't run under REPRO_CHAOS truncation."""
    from repro.harness import chaos

    chaos.disable()
    yield
    chaos.reset()


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1  # all CPUs
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(2) == 2  # explicit argument wins
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert resolve_jobs(None) == 1
    monkeypatch.setenv("REPRO_JOBS", "-4")
    assert resolve_jobs(None) == 1


def test_chunk_indices_cover_in_order():
    for n, jobs in [(0, 2), (1, 4), (7, 2), (100, 3), (5, 16)]:
        chunks = chunk_indices(n, jobs)
        flat = [i for lo, hi in chunks for i in range(lo, hi)]
        assert flat == list(range(n))
        assert chunks == chunk_indices(n, jobs)  # purely deterministic


@pytest.mark.parametrize("app", ["EP", "kmeans"])
def test_parallel_records_bit_identical(app):
    cfg = CampaignConfig(n_tests=10, seed=11)
    serial = run_campaign(get_factory(app), cfg, jobs=1)
    parallel = run_campaign(get_factory(app), cfg, jobs=2)
    assert serial.records == parallel.records
    assert serial.recomputability() == parallel.recomputability()


def test_parallel_engine_timeout_falls_back_serially():
    # A zero-ish timeout abandons the pool immediately; the fallback must
    # still produce the exact serial record sequence.
    factory = get_factory("EP")
    cfg = CampaignConfig(n_tests=8, seed=3)
    serial = run_campaign(factory, cfg, jobs=1)
    degraded = run_campaign(factory, cfg, jobs=2, chunk_timeout=1e-9)
    assert serial.records == degraded.records


def test_classify_snapshots_matches_inline_classification():
    from repro.nvct.campaign import _classify

    factory = get_factory("EP")
    golden, _ = factory.golden()
    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    points = np.linspace(
        (counting.window_begin or 0) + 1, counting.counter, 6, dtype=np.int64
    )
    cfg = CampaignConfig(plan=PersistencePlan.none())
    rt = Runtime(plan=cfg.plan, crash_points=points)
    factory.make(runtime=rt).run()
    inline = [_classify(factory, s, golden.iterations, cfg) for s in rt.snapshots]
    fanned = classify_snapshots(
        factory, rt.snapshots, golden.iterations, cfg, jobs=2
    )
    assert inline == fanned


def test_snapshot_pack_roundtrip(no_chaos):
    factory = get_factory("EP")
    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    rt = Runtime(crash_points=[counting.window_begin + 5], capture_consistent=True)
    factory.make(runtime=rt).run()
    snap = rt.snapshots[0]
    back = unpack_snapshot(pack_snapshot(snap))
    assert back.counter == snap.counter and back.region == snap.region
    assert back.rates == snap.rates
    assert set(back.nvm_state) == set(snap.nvm_state)
    for k in snap.nvm_state:
        np.testing.assert_array_equal(back.nvm_state[k], snap.nvm_state[k])
        np.testing.assert_array_equal(back.consistent_state[k], snap.consistent_state[k])


def test_record_sink_sees_every_record_exactly_once():
    from repro.nvct.campaign import _classify

    factory = get_factory("EP")
    golden, _ = factory.golden()
    counting = CountingRuntime()
    factory.make(runtime=counting).run()
    points = np.linspace(
        (counting.window_begin or 0) + 1, counting.counter, 8, dtype=np.int64
    )
    cfg = CampaignConfig(plan=PersistencePlan.none())
    rt = Runtime(plan=cfg.plan, crash_points=points)
    factory.make(runtime=rt).run()
    sunk: dict[int, object] = {}

    def sink(index, record):
        assert index not in sunk  # exactly once per trial
        sunk[index] = record

    fanned = classify_snapshots(
        factory, rt.snapshots, golden.iterations, cfg, jobs=2, record_sink=sink
    )
    assert sorted(sunk) == list(range(len(rt.snapshots)))
    assert [sunk[i] for i in range(len(rt.snapshots))] == fanned
    assert fanned == [
        _classify(factory, s, golden.iterations, cfg) for s in rt.snapshots
    ]


def test_worker_death_chaos_never_changes_records():
    """Injected worker deaths (os._exit in the pool) are absorbed by chunk
    retries and the serial-fallback path without touching the results."""
    from repro.harness import chaos

    factory = get_factory("EP")
    cfg = CampaignConfig(n_tests=8, seed=7)
    chaos.disable()
    serial = run_campaign(factory, cfg, jobs=1)
    chaos.enable(13, 0.3, kinds=["worker_death"])
    try:
        # short chunk timeout: a killed worker never posts its result, so
        # the timeout is the death-detection latency
        survived = run_campaign(factory, cfg, jobs=2, chunk_timeout=2.0)
    finally:
        chaos.reset()
    assert survived.records == serial.records


def test_run_campaigns_matches_serial_order():
    specs = [
        (get_factory("EP"), CampaignConfig(n_tests=6, seed=1)),
        (get_factory("kmeans"), CampaignConfig(n_tests=6, seed=1)),
    ]
    parallel = run_campaigns(specs, jobs=2)
    serial = [run_campaign(f, c, jobs=1) for f, c in specs]
    assert [r.app for r in parallel] == ["EP", "kmeans"]
    for p, s in zip(parallel, serial):
        assert p.records == s.records


class _LocalApp(Application):
    """Defined at module scope but subclassed locally below to exercise the
    unpicklable-factory fallback of run_campaigns."""

    NAME = "local"
    REGIONS = ("R",)
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, nit: int = 4, **kw):
        super().__init__(runtime, nit=nit, **kw)
        self.nit = nit

    def nominal_iterations(self):
        return self.nit

    def _allocate(self):
        self.acc = self.ws.array("acc", (64,), candidate=True)

    def _initialize(self):
        self.acc.np[...] = 0.0

    def _iterate(self, it):
        with self.ws.region("R"):
            self.acc.update(slice(None), lambda a: np.add(a, 1.0, out=a))
        return False

    def reference_outcome(self):
        return {"sum": float(self.acc.np.sum())}

    def verify(self):
        return self.golden is None or self.reference_outcome()["sum"] == self.golden["sum"]


def test_run_campaigns_unpicklable_factory_falls_back():
    class Hidden(_LocalApp):  # not importable from a worker: forces fallback
        NAME = "hidden"

    factory = AppFactory(Hidden, nit=4)
    cfg = CampaignConfig(n_tests=5, seed=2)
    # two specs so the pool path (not the single-spec serial shortcut) runs
    results = run_campaigns([(factory, cfg), (factory, cfg)], jobs=2)
    expected = run_campaign(AppFactory(Hidden, nit=4), cfg, jobs=1)
    for r in results:
        assert r.records == expected.records

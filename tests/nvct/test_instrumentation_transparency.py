"""Instrumentation transparency: simulating the memory system must never
change what the application computes.

Property: any sequence of managed-array operations produces bit-identical
architectural state under (a) no runtime, (b) the counting runtime,
(c) the full single-core runtime, and (d) the multi-core runtime —
including runs where crash snapshots fire mid-operation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.config import CacheLevelConfig, HierarchyConfig
from repro.nvct.managed import Workspace
from repro.nvct.multicore_runtime import MulticoreRuntime
from repro.nvct.runtime import CountingRuntime, Runtime

N_ELEMS = 96  # 12 blocks


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, N_ELEMS - 1), st.integers(1, N_ELEMS),
                  st.floats(-10, 10, allow_nan=False)),
        st.tuples(st.just("update"), st.integers(0, N_ELEMS - 1), st.integers(1, N_ELEMS),
                  st.floats(-2, 2, allow_nan=False)),
        st.tuples(st.just("scatter"),
                  st.lists(st.integers(0, N_ELEMS - 1), min_size=1, max_size=8, unique=True),
                  st.floats(-10, 10, allow_nan=False)),
        st.tuples(st.just("read"), st.integers(0, N_ELEMS - 1), st.integers(1, N_ELEMS)),
        st.tuples(st.just("persist")),
    ),
    min_size=1,
    max_size=25,
)


def run_ops(runtime, op_list, crash_points=None):
    ws = Workspace(runtime)
    a = ws.array("a", (N_ELEMS,))
    if runtime is not None:
        runtime.main_loop_begin()
    for op in op_list:
        if op[0] == "write":
            _, lo, n, v = op
            a.write(slice(lo, min(N_ELEMS, lo + n)), v)
        elif op[0] == "update":
            _, lo, n, v = op
            a.update(slice(lo, min(N_ELEMS, lo + n)), lambda x, v=v: np.add(x, v, out=x))
        elif op[0] == "scatter":
            _, idx, v = op
            a.write_at(np.array(idx), np.full(len(idx), v))
        elif op[0] == "read":
            _, lo, n = op
            a.read(slice(lo, min(N_ELEMS, lo + n)))
        elif op[0] == "persist":
            a.persist()
    return a.np.copy()


def tiny_hier():
    return HierarchyConfig((CacheLevelConfig("LLC", 4 * 2 * 64, 2),))


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_all_runtimes_compute_identical_state(op_list):
    plain = run_ops(None, op_list)
    counting = run_ops(CountingRuntime(), op_list)
    single = run_ops(Runtime(hierarchy=tiny_hier()), op_list)
    multi = run_ops(MulticoreRuntime(n_cores=2,
                                     l1=CacheLevelConfig("L1", 2 * 1 * 64, 1),
                                     llc=CacheLevelConfig("LLC", 4 * 2 * 64, 2)),
                    op_list)
    assert np.array_equal(plain, counting)
    assert np.array_equal(plain, single)
    assert np.array_equal(plain, multi)


@settings(max_examples=40, deadline=None)
@given(ops_strategy, st.integers(1, 200))
def test_crash_snapshots_do_not_perturb_final_state(op_list, point):
    plain = run_ops(None, op_list)
    rt = Runtime(hierarchy=tiny_hier(), crash_points=[point])
    crashed = run_ops(rt, op_list)
    assert np.array_equal(plain, crashed)


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_nvm_image_converges_after_full_flush(op_list):
    rt = Runtime(hierarchy=tiny_hier())
    ws = Workspace(rt)
    a = ws.array("a", (N_ELEMS,))
    rt.main_loop_begin()
    for op in op_list:
        if op[0] == "write":
            _, lo, n, v = op
            a.write(slice(lo, min(N_ELEMS, lo + n)), v)
        elif op[0] == "update":
            _, lo, n, v = op
            a.update(slice(lo, min(N_ELEMS, lo + n)), lambda x, v=v: np.add(x, v, out=x))
        elif op[0] == "scatter":
            _, idx, v = op
            a.write_at(np.array(idx), np.full(len(idx), v))
        elif op[0] == "read":
            _, lo, n = op
            a.read(slice(lo, min(N_ELEMS, lo + n)))
        elif op[0] == "persist":
            a.persist()
    a.persist()
    assert a.obj.inconsistent_rate() == 0.0
    assert np.array_equal(a.obj.nvm_view(), a.np)

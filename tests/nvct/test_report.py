"""Postmortem report rendering."""

from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.report import (
    campaign_summary,
    object_inconsistency_table,
    region_breakdown,
)
from tests.nvct.test_campaign import factory


def campaign():
    return run_campaign(factory(), CampaignConfig(n_tests=15, seed=2))


def test_summary_mentions_recomputability():
    res = campaign()
    text = campaign_summary(res)
    assert "recomputability" in text
    assert "S1" in text and "S4" in text
    assert res.app in text


def test_region_breakdown_lists_regions():
    text = region_breakdown(campaign())
    assert "R1" in text and "R2" in text
    assert "Time share" in text


def test_object_table_lists_candidates():
    text = object_inconsistency_table(campaign())
    assert "acc" in text
    assert "Mean | failure" in text

"""Adaptive campaign sizing and bootstrap intervals."""

import numpy as np
import pytest

from repro.nvct.adaptive import (
    recomputability_interval,
    run_campaign_until_stable,
)
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.plan import PersistencePlan
from tests.nvct.test_campaign import Counterloop, factory


def test_stabilizes_and_reports_history():
    stable = run_campaign_until_stable(
        factory(),
        CampaignConfig(n_tests=30, seed=1),
        tolerance=0.08,
        min_tests=60,
        max_tests=400,
        round_size=30,
    )
    assert stable.stable
    assert stable.rounds >= 2
    assert stable.result.n_tests >= 60
    assert len(stable.history) == stable.rounds
    assert 0.0 <= stable.recomputability <= 1.0


def test_rounds_use_distinct_crash_points():
    stable = run_campaign_until_stable(
        factory(),
        CampaignConfig(n_tests=25, seed=5),
        tolerance=0.5,  # stops after two rounds
        min_tests=50,
        max_tests=100,
        round_size=25,
    )
    counters = [r.counter for r in stable.result.records]
    # Two independent 25-point rounds rarely collide completely.
    assert len(set(counters)) > 25


def test_max_tests_bounds_growth():
    stable = run_campaign_until_stable(
        factory(),
        CampaignConfig(n_tests=20, seed=2),
        tolerance=1e-9,  # unreachable
        min_tests=40,
        max_tests=80,
        round_size=20,
    )
    assert not stable.stable
    assert stable.result.n_tests >= 80


def test_tolerance_validation():
    with pytest.raises(ValueError):
        run_campaign_until_stable(factory(), CampaignConfig(), tolerance=0.0)


def test_bootstrap_interval_contains_point_estimate():
    res = run_campaign(factory(), CampaignConfig(n_tests=60, seed=3))
    lo, hi = recomputability_interval(res, confidence=0.95)
    r = res.recomputability()
    assert lo <= r <= hi
    assert 0.0 <= lo <= hi <= 1.0


def test_bootstrap_interval_narrows_with_more_tests():
    small = run_campaign(factory(), CampaignConfig(n_tests=30, seed=3))
    big_plan = PersistencePlan.none()
    stable = run_campaign_until_stable(
        factory(),
        CampaignConfig(n_tests=60, seed=3, plan=big_plan),
        tolerance=0.5,
        min_tests=120,
        max_tests=240,
        round_size=60,
    )
    lo_s, hi_s = recomputability_interval(small)
    lo_b, hi_b = recomputability_interval(stable.result)
    assert (hi_b - lo_b) <= (hi_s - lo_s) + 0.02


def test_bootstrap_is_deterministic():
    res = run_campaign(factory(), CampaignConfig(n_tests=40, seed=4))
    assert recomputability_interval(res) == recomputability_interval(res)


def test_confidence_validation():
    res = run_campaign(factory(), CampaignConfig(n_tests=10, seed=4))
    with pytest.raises(ValueError):
        recomputability_interval(res, confidence=1.5)

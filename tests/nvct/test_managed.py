"""Managed arrays: recording, crash-exact store splitting, scatter ops."""

import numpy as np
import pytest

from repro.memsim.blocks import BLOCK_SIZE
from repro.memsim.config import CacheLevelConfig, HierarchyConfig
from repro.nvct.managed import Workspace
from repro.nvct.plan import PersistencePlan
from repro.nvct.runtime import CountingRuntime, Runtime


def tiny_runtime(crash_points=None, sets=8, ways=2):
    cfg = HierarchyConfig((CacheLevelConfig("LLC", sets * ways * 64, ways),))
    return Runtime(hierarchy=cfg, crash_points=crash_points)


def test_plain_mode_passthrough():
    ws = Workspace(None)
    a = ws.array("a", (16,))
    a.write(slice(0, 8), 3.0)
    assert np.all(a.np[:8] == 3.0)
    assert np.array_equal(a.read(slice(4, 8)), np.full(4, 3.0))


def test_counting_runtime_counts_blocks():
    rt = CountingRuntime()
    ws = Workspace(rt)
    a = ws.array("a", (32,))  # 4 blocks
    a.write(slice(None), 1.0)
    assert rt.counter == 4
    a.read(slice(0, 8))  # 1 block
    assert rt.counter == 5


def test_store_makes_cache_dirty_not_nvm():
    rt = tiny_runtime()
    ws = Workspace(rt)
    a = ws.array("a", (8,))
    a.write(slice(None), 5.0)
    assert np.all(a.obj.nvm_view() == 0.0)
    a.persist()
    assert np.all(a.obj.nvm_view() == 5.0)


def test_eviction_persists_values():
    rt = tiny_runtime(sets=1, ways=1)  # 1-block cache
    ws = Workspace(rt)
    a = ws.array("a", (16,))  # 2 blocks
    a.write(slice(None), 9.0)  # second block evicts the first
    assert np.all(a.obj.nvm_view()[:8] == 9.0)
    assert np.all(a.obj.nvm_view()[8:] == 0.0)


def test_crash_split_store_is_prefix_exact():
    # Crash after the first block of a 4-block store: NVM sees nothing
    # (still cached), architectural state holds only the prefix.
    rt = tiny_runtime(crash_points=[1], sets=8, ways=2)
    ws = Workspace(rt)
    a = ws.array("a", (32,))
    rt.main_loop_begin()
    a.write(slice(None), 7.0)
    assert len(rt.snapshots) == 1
    snap = rt.snapshots[0]
    # At the snapshot the store's tail had NOT executed architecturally.
    arch = snap.consistent_state  # not captured by default
    # The architectural array now (after the op) is fully 7.0 ...
    assert np.all(a.np == 7.0)
    # ... but the snapshot NVM image shows the pre-store values (zeros,
    # synced at main_loop_begin), because nothing was written back.
    assert np.all(snap.nvm_state["a"].view(np.float64) == 0.0)


def test_crash_split_with_eviction_sees_only_prefix_values():
    # 1-block cache: each store block evicts the previous one, so the NVM
    # image at a crash point k contains exactly the first k-1 blocks.
    rt = tiny_runtime(crash_points=[2], sets=1, ways=1)
    ws = Workspace(rt)
    a = ws.array("a", (32,))  # 4 blocks
    rt.main_loop_begin()
    a.write(slice(None), 7.0)
    snap = rt.snapshots[0].nvm_state["a"].view(np.float64)
    assert np.all(snap[:8] == 7.0)  # block 0 evicted by block 1
    assert np.all(snap[8:] == 0.0)  # blocks 1-3: cached or not yet stored


def test_update_crash_split_uses_old_values_for_tail():
    rt = tiny_runtime(crash_points=[1], sets=1, ways=1)
    ws = Workspace(rt)
    a = ws.array("a", (16,))  # 2 blocks
    a.np[...] = 1.0
    rt.main_loop_begin()
    a.obj.sync_nvm()
    a.update(slice(None), lambda v: np.multiply(v, 3.0, out=v))
    snap = rt.snapshots[0].nvm_state["a"].view(np.float64)
    # Crash after block 0's store: block 0 still cached (1-block cache
    # holds it; nothing evicted it yet) -> NVM shows old values.
    assert np.all(snap == 1.0)
    assert np.all(a.np == 3.0)  # architectural state completed after split


def test_scatter_write_at():
    rt = tiny_runtime()
    ws = Workspace(rt)
    a = ws.array("a", (64,))
    idx = np.array([0, 17, 33])
    a.write_at(idx, np.array([1.0, 2.0, 3.0]))
    assert a.np[17] == 2.0
    assert rt.counter == 3


def test_read_at_gathers():
    ws = Workspace(None)
    a = ws.array("a", (16,))
    a.np[...] = np.arange(16.0)
    assert np.array_equal(a.read_at(np.array([3, 5])), [3.0, 5.0])


def test_scalar_roundtrip_and_persist():
    rt = tiny_runtime()
    ws = Workspace(rt)
    s = ws.scalar("s", 4, np.int64)
    assert s.peek() == 4
    s.set(9)
    assert s.get() == 9
    s.persist()
    assert s.arr.obj.nvm_view()[0] == 9


def test_iterator_role():
    ws = Workspace(None)
    it = ws.iterator()
    assert ws.heap.iterator_object() is it.arr.obj
    assert not it.arr.obj.candidate


def test_noncontiguous_write_records_span():
    rt = CountingRuntime()
    ws = Workspace(rt)
    a = ws.array("a", (16, 16))  # 2048 bytes = 32 blocks
    a.write((slice(None), slice(0, 4)), 1.0)  # strided column band
    assert np.all(a.np[:, :4] == 1.0)
    assert np.all(a.np[:, 4:] == 0.0)
    assert rt.counter == 31  # bounding span of the strided view (ends at the last touched byte)


def test_region_attribution():
    rt = CountingRuntime()
    ws = Workspace(rt)
    a = ws.array("a", (8,))
    rt.main_loop_begin()
    with ws.region("R1"):
        a.write(slice(None), 1.0)
    assert rt.region_profile["R1"].accesses == 1
    assert rt.region_profile["R1"].executions == 1


def test_plan_flush_at_region_frequency():
    cfg = HierarchyConfig((CacheLevelConfig("LLC", 64 * 64, 8),))
    plan = PersistencePlan.per_region(["a"], {"R1": 2})
    rt = Runtime(hierarchy=cfg, plan=plan)
    ws = Workspace(rt)
    a = ws.array("a", (8,))
    rt.main_loop_begin()
    for i in range(4):
        with ws.region("R1"):
            a.write(slice(None), float(i))
    # Flushed after executions 2 and 4.
    assert len(rt.persist_events) == 2
    assert np.all(a.obj.nvm_view() == 3.0)


def test_plan_flush_at_iteration_end_and_iterator():
    plan = PersistencePlan.at_loop_end(["a"])
    rt = Runtime(plan=plan)
    ws = Workspace(rt)
    a = ws.array("a", (8,))
    it = ws.iterator()
    rt.main_loop_begin()
    ws.begin_iteration(0)
    a.write(slice(None), 2.5)
    it.set(0)
    ws.end_iteration()
    assert np.all(a.obj.nvm_view() == 2.5)
    assert it.arr.obj.nvm_view()[0] == 0

"""Golden-pass batched simulation: bit-identity against the legacy oracle.

The golden pass (:mod:`repro.memsim.golden`) reconstructs every crash-time
NVM image from the write-back delta log of one instrumented execution.
The legacy per-point snapshot path (``golden=False``) is retained as the
oracle; every test here asserts the two produce *bit-identical* records —
same responses, same counters, same per-object inconsistent-rate floats —
across applications with different store patterns, hierarchy depths,
parallel fan-out and journal resume.
"""

import json

import numpy as np
import pytest

from repro.apps.base import AppFactory, Application
from repro.memsim.config import HierarchyConfig
from repro.nvct.campaign import (
    CampaignConfig,
    CrashTestRecord,
    CampaignResult,
    Response,
    _dedupe_crash_points,
    _golden_default,
    run_campaign,
)
from repro.nvct.plan import PersistencePlan
from repro.nvct.serialize import pack_snapshot, record_from_dict, record_to_dict
from repro.obs import metrics


# -- applications with distinct store patterns --------------------------------


class ContigApp(Application):
    """Contiguous read-modify-write accumulator (store_range fast path)."""

    NAME = "golden-contig"
    REGIONS = ("R1", "R2")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, size: int = 512, nit: int = 6, **kw):
        super().__init__(runtime, size=size, nit=nit, **kw)
        self.size = size
        self.nit = nit

    def nominal_iterations(self):
        return self.nit

    def _allocate(self):
        self.acc = self.ws.array("acc", (self.size,), candidate=True)
        self.scratch = self.ws.array("scratch", (self.size,), candidate=False)

    def _initialize(self):
        self.acc.np[...] = 0.0
        self.scratch.np[...] = 0.0

    def _iterate(self, it):
        with self.ws.region("R1"):
            self.scratch.write(slice(None), float(it + 1))
        with self.ws.region("R2"):
            s = self.scratch.read().copy()
            self.acc.update(slice(None), lambda a: np.add(a, s, out=a))
        return False

    def reference_outcome(self):
        return {"sum": float(self.acc.np.sum())}

    def verify(self):
        if self.golden is None:
            return True
        return self.reference_outcome()["sum"] == self.golden["sum"]


class ScatterApp(Application):
    """Scatter/gather stores via ``write_at``/``read_at``, including a
    non-temporal streaming store each iteration (access_scattered path)."""

    NAME = "golden-scatter"
    REGIONS = ("gather", "scatter")
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, size: int = 512, nit: int = 6, **kw):
        super().__init__(runtime, size=size, nit=nit, **kw)
        self.size = size
        self.nit = nit

    def nominal_iterations(self):
        return self.nit

    def _allocate(self):
        self.table = self.ws.array("table", (self.size,), candidate=True)
        self.log = self.ws.array("log", (self.size,), candidate=True)

    def _initialize(self):
        self.table.np[...] = 1.0
        self.log.np[...] = 0.0

    def _iterate(self, it):
        rng = np.random.default_rng(1234 + it)
        idx = rng.permutation(self.size)[: self.size // 2]
        with self.ws.region("gather"):
            vals = self.table.read_at(idx)
        with self.ws.region("scatter"):
            self.table.write_at(idx, vals + 1.0)
            # Streaming store of the audit log: bypasses the cache (MOVNT).
            self.log.write_at(idx, vals, nontemporal=True)
        return False

    def reference_outcome(self):
        return {
            "sum": float(self.table.np.sum()),
            "log": float(self.log.np.sum()),
        }

    def verify(self):
        if self.golden is None:
            return True
        return self.reference_outcome() == self.golden


class BulkApp(Application):
    """Bulk multi-block contiguous stores: crash points frequently land
    *inside* a store, exercising the split-store path, plus single-element
    writes for the sub-block path."""

    NAME = "golden-bulk"
    REGIONS = ("bulk",)
    DEFAULT_MAX_FACTOR = 1.0

    def __init__(self, runtime=None, size: int = 2048, nit: int = 5, **kw):
        super().__init__(runtime, size=size, nit=nit, **kw)
        self.size = size
        self.nit = nit

    def nominal_iterations(self):
        return self.nit

    def _allocate(self):
        self.field = self.ws.array("field", (self.size,), candidate=True)

    def _initialize(self):
        self.field.np[...] = 0.0

    def _iterate(self, it):
        with self.ws.region("bulk"):
            base = self.field.read(slice(0, 8)).copy()
            self.field.write(slice(None), float(it) + base[0])
            self.field.write(int(it % self.size), -1.0)
        return False

    def reference_outcome(self):
        return {"sum": float(self.field.np.sum())}

    def verify(self):
        if self.golden is None:
            return True
        return self.reference_outcome()["sum"] == self.golden["sum"]


APPS = {
    "contig": lambda: AppFactory(ContigApp),
    "scatter": lambda: AppFactory(ScatterApp),
    "bulk": lambda: AppFactory(BulkApp),
}

HIERARCHIES = {
    "llc": None,  # default single-level scaled LLC
    "three-level": HierarchyConfig.scaled_three_level(),
}


def _records_json(result: CampaignResult) -> list[str]:
    return [json.dumps(record_to_dict(r), sort_keys=True) for r in result.records]


def _assert_equivalent(fac: AppFactory, cfg: CampaignConfig, **kw) -> CampaignResult:
    legacy = run_campaign(fac, cfg, golden=False, **kw)
    golden = run_campaign(fac, cfg, golden=True, **kw)
    assert _records_json(golden) == _records_json(legacy)
    assert golden.records == legacy.records
    return golden


# -- the equivalence matrix ---------------------------------------------------


@pytest.mark.parametrize("hier", sorted(HIERARCHIES))
@pytest.mark.parametrize("app", sorted(APPS))
def test_golden_matches_legacy_bit_identically(app, hier):
    cfg = CampaignConfig(n_tests=16, seed=21, hierarchy=HIERARCHIES[hier])
    res = _assert_equivalent(APPS[app](), cfg)
    assert res.n_tests == 16


PLAN_OBJECTS = {"contig": ["acc"], "scatter": ["table", "log"], "bulk": ["field"]}


@pytest.mark.parametrize("app", sorted(APPS))
def test_golden_matches_legacy_with_flush_plan(app):
    cfg = CampaignConfig(
        n_tests=12, seed=5,
        plan=PersistencePlan.at_loop_end(PLAN_OBJECTS[app]),
    )
    _assert_equivalent(APPS[app](), cfg)


def test_golden_matches_legacy_under_skewed_distribution():
    cfg = CampaignConfig(n_tests=12, seed=9, distribution="early")
    _assert_equivalent(APPS["contig"](), cfg)


def test_parallel_golden_matches_serial_legacy():
    cfg = CampaignConfig(n_tests=12, seed=13)
    legacy = run_campaign(APPS["scatter"](), cfg, jobs=1, golden=False)
    golden = run_campaign(APPS["scatter"](), cfg, jobs=2, golden=True)
    assert _records_json(golden) == _records_json(legacy)


def test_verified_mode_ignores_golden_request():
    """Verified mode needs mid-run architectural copies, which the delta
    log does not carry: asking for golden must transparently use legacy."""
    cfg = CampaignConfig(n_tests=8, seed=3, verified_mode=True)
    a = run_campaign(APPS["contig"](), cfg, golden=True)
    b = run_campaign(APPS["contig"](), cfg, golden=False)
    assert _records_json(a) == _records_json(b)


def test_golden_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_GOLDEN", raising=False)
    assert _golden_default() is True
    for v in ("0", "false", "No", "OFF"):
        monkeypatch.setenv("REPRO_GOLDEN", v)
        assert _golden_default() is False
    monkeypatch.setenv("REPRO_GOLDEN", "1")
    assert _golden_default() is True


# -- journal resume mid-batch -------------------------------------------------


def test_golden_resume_from_journal_mid_batch(tmp_path):
    fac = APPS["contig"]()
    cfg = CampaignConfig(n_tests=10, seed=17)
    baseline = run_campaign(fac, cfg, golden=False)

    path = tmp_path / "j.jsonl"
    run_campaign(fac, cfg, golden=True, journal=path)
    # Simulate a crash mid-campaign: keep the header + 4 journaled trials.
    lines = path.read_bytes().splitlines(keepends=True)
    assert len(lines) == 1 + cfg.n_tests
    path.write_bytes(b"".join(lines[:5]))

    resumed = run_campaign(fac, cfg, golden=True, journal=path)
    assert resumed.records == baseline.records
    assert _records_json(resumed) == _records_json(baseline)


# -- crash-point dedupe and record weights ------------------------------------


def test_dedupe_crash_points():
    pts, weights = _dedupe_crash_points(np.array([7, 5, 5, 9, 5, 7]))
    assert pts.tolist() == [5, 7, 9]
    assert weights.tolist() == [3, 2, 1]
    pts, weights = _dedupe_crash_points(np.array([], dtype=np.int64))
    assert pts.size == 0 and weights.size == 0


def test_record_weight_round_trips_through_serialization():
    rec = CrashTestRecord(10, 2, "R1", {"acc": 0.5}, Response.S2,
                          extra_iterations=1, weight=3)
    doc = record_to_dict(rec)
    assert doc["weight"] == 3
    assert record_from_dict(doc) == rec
    # weight-1 records keep the historical document shape
    plain = CrashTestRecord(10, 2, "R1", {"acc": 0.5}, Response.S1)
    assert "weight" not in record_to_dict(plain)
    assert record_from_dict(record_to_dict(plain)) == plain


def test_weighted_aggregations():
    records = [
        CrashTestRecord(1, 0, "R1", {}, Response.S1, weight=3),
        CrashTestRecord(2, 0, "R1", {}, Response.S2, extra_iterations=2, weight=1),
        CrashTestRecord(3, 0, "R2", {}, Response.S2, extra_iterations=5, weight=2),
        CrashTestRecord(4, 0, "R2", {}, Response.S3, weight=2),
    ]
    res = CampaignResult("x", PersistencePlan.none(), records,
                         run_stats=None, golden_iterations=4)
    assert res.n_tests == 8
    assert res.recomputability() == 3 / 8
    fr = res.response_fractions()
    assert fr[Response.S1] == 3 / 8
    assert fr[Response.S2] == 3 / 8
    assert fr[Response.S3] == 2 / 8
    assert res.mean_extra_iterations() == (2 * 1 + 5 * 2) / 3
    per = res.per_region_recomputability()
    assert per == {"R1": 3 / 4, "R2": 0.0}
    assert res.weights_vector().tolist() == [3.0, 1.0, 2.0, 2.0]


def test_uniform_sampling_yields_unit_weights():
    res = run_campaign(APPS["contig"](), CampaignConfig(n_tests=10, seed=2))
    assert all(r.weight == 1 for r in res.records)
    assert res.n_tests == 10


# -- zero-copy guarantees -----------------------------------------------------


def test_serial_golden_path_copies_no_snapshot_bytes():
    """The regression the COW satellite guards: a serial golden campaign
    materializes every image as a borrowed view — no ``pack_snapshot``
    full-array copies, no stable-copy materialization."""
    metrics.reset()
    with metrics.enabled() as reg:
        res = run_campaign(APPS["contig"](), CampaignConfig(n_tests=10, seed=8),
                           jobs=1, golden=True)
        assert reg.counter("serialize.bytes_copied", unit="bytes").value == 0
        assert reg.counter("golden.bytes_copied", unit="bytes").value == 0
        assert reg.counter("golden.images_materialized", unit="images").value == 10
        assert reg.counter("golden.deltas_recorded", unit="events").value > 0
        assert reg.counter("golden.replay_ms", unit="ms").value >= 0
    metrics.reset()
    assert res.n_tests == 10


def test_parallel_golden_path_packs_stable_copies():
    metrics.reset()
    with metrics.enabled() as reg:
        run_campaign(APPS["contig"](), CampaignConfig(n_tests=10, seed=8),
                     jobs=2, golden=True)
        assert reg.counter("serialize.bytes_copied", unit="bytes").value > 0
        assert reg.counter("golden.bytes_copied", unit="bytes").value > 0
    metrics.reset()


def test_unpacked_snapshot_arrays_are_zero_copy_views():
    from repro.nvct.serialize import unpack_snapshot

    from repro.nvct.runtime import Snapshot

    snap = Snapshot(0, 5, 1, "R1", {"a": np.arange(8, dtype=np.float64)},
                    {"a": 0.0})
    back = unpack_snapshot(pack_snapshot(snap))
    arr = back.nvm_state["a"]
    assert arr.flags.writeable is False  # frombuffer view over the payload
    np.testing.assert_array_equal(arr, np.arange(8, dtype=np.float64))


def test_borrowed_golden_views_are_read_only():
    fac = APPS["contig"]()
    cfg = CampaignConfig(n_tests=6, seed=4)
    from repro.nvct.campaign import _instrumented_run, _sample_crash_points
    from repro.nvct.runtime import CountingRuntime

    counting = CountingRuntime()
    fac.make(runtime=counting).run()
    points = _sample_crash_points(
        (counting.window_begin or 0, counting.counter), cfg.n_tests, cfg.seed,
        fac.name,
    )
    points, _ = _dedupe_crash_points(points)
    rt, _ = _instrumented_run(fac, cfg, points, golden=True)
    store = rt.golden_store()
    for snap in store.snapshots(range(store.n_images)):
        for arr in snap.nvm_state.values():
            assert arr.flags.writeable is False

"""Campaign serialization round-trip."""

import json

import pytest

from repro.core.selection import select_critical_objects
from repro.errors import SnapshotCorruptError
from repro.nvct.campaign import CampaignConfig, CrashTestRecord, Response, run_campaign
from repro.nvct.plan import PersistencePlan
from repro.nvct.serialize import (
    load_campaign,
    pack_snapshot,
    record_from_dict,
    record_to_dict,
    save_campaign,
    unpack_snapshot,
)
from tests.nvct.test_campaign import factory


@pytest.fixture(scope="module")
def campaign():
    plan = PersistencePlan.per_region(["acc"], {"R2": 2}, at_iteration_end=True)
    return run_campaign(factory(), CampaignConfig(n_tests=15, seed=8, plan=plan))


def test_roundtrip_records(tmp_path, campaign):
    path = save_campaign(campaign, tmp_path / "camp.json")
    loaded = load_campaign(path)
    assert loaded.app == campaign.app
    assert loaded.golden_iterations == campaign.golden_iterations
    assert len(loaded.records) == len(campaign.records)
    for a, b in zip(loaded.records, campaign.records):
        assert (a.counter, a.iteration, a.region, a.response) == (
            b.counter, b.iteration, b.region, b.response
        )
        assert a.rates == pytest.approx(b.rates)


def test_roundtrip_plan(tmp_path, campaign):
    loaded = load_campaign(save_campaign(campaign, tmp_path / "c.json"))
    assert loaded.plan == campaign.plan


def test_roundtrip_metrics_agree(tmp_path, campaign):
    loaded = load_campaign(save_campaign(campaign, tmp_path / "c.json"))
    assert loaded.recomputability() == campaign.recomputability()
    assert loaded.region_time_shares() == pytest.approx(campaign.region_time_shares())
    assert loaded.run_stats.memory.nvm_writes == campaign.run_stats.memory.nvm_writes
    assert loaded.run_stats.persist_op_count == campaign.run_stats.persist_op_count


def test_loaded_campaign_feeds_selection(tmp_path, campaign):
    loaded = load_campaign(save_campaign(campaign, tmp_path / "c.json"))
    sel_orig = select_critical_objects(campaign)
    sel_loaded = select_critical_objects(loaded)
    assert sel_orig.critical == sel_loaded.critical


def test_bad_format_rejected(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text('{"format": 999}')
    with pytest.raises(ValueError):
        load_campaign(p)
    # ...but a wrong format version is NOT corruption
    with pytest.raises(ValueError) as exc:
        load_campaign(p)
    assert not isinstance(exc.value, SnapshotCorruptError)


def test_truncated_file_raises_typed_corruption_error(tmp_path, campaign):
    path = save_campaign(campaign, tmp_path / "c.json")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # torn mid-write
    with pytest.raises(SnapshotCorruptError):
        load_campaign(path)


def test_garbage_file_raises_typed_corruption_error(tmp_path):
    garbage = tmp_path / "garbage.json"
    garbage.write_bytes(b"\x00\xffnot json at all")
    with pytest.raises(SnapshotCorruptError):
        load_campaign(garbage)
    # parseable JSON with the wrong shape is corruption too
    missing = tmp_path / "missing.json"
    missing.write_text(json.dumps({"format": 1, "app": "EP"}))
    with pytest.raises(SnapshotCorruptError):
        load_campaign(missing)


def test_corruption_error_is_still_a_value_error(tmp_path):
    """Legacy `except ValueError` corruption handling keeps working."""
    garbage = tmp_path / "g.json"
    garbage.write_text("{ nope")
    with pytest.raises(ValueError):
        load_campaign(garbage)


def test_unpack_rejects_corrupt_payload():
    import numpy as np

    from repro.nvct.runtime import Snapshot

    snap = Snapshot(
        index=0, counter=7, iteration=1, region="R1",
        nvm_state={"a": np.arange(8, dtype=np.float64)}, rates={"a": 0.0},
        consistent_state=None,
    )
    payload = pack_snapshot(snap)
    assert unpack_snapshot(payload).counter == 7
    torn = dict(payload)
    torn["nvm_state"] = {
        k: {**v, "data": v["data"][: len(v["data"]) // 2 + 1]}
        for k, v in payload["nvm_state"].items()
    }
    with pytest.raises(SnapshotCorruptError):
        unpack_snapshot(torn)
    with pytest.raises(SnapshotCorruptError):
        unpack_snapshot({"index": 0})  # missing keys


def test_record_error_field_roundtrip():
    clean = CrashTestRecord(1, 2, "r", {"a": 0.5}, Response.S1)
    assert "error" not in record_to_dict(clean)
    assert record_from_dict(record_to_dict(clean)) == clean
    failed = CrashTestRecord(
        1, 2, "r", {"a": 0.5}, Response.FAILED, error="RuntimeError: boom"
    )
    assert record_to_dict(failed)["error"] == "RuntimeError: boom"
    assert record_from_dict(record_to_dict(failed)) == failed


def _random_snapshot(rng, index: int):
    from repro.nvct.runtime import Snapshot

    def array():
        dtype = rng.choice(["float64", "int32", "uint8"])
        shape = tuple(int(s) for s in rng.integers(1, 6, size=int(rng.integers(1, 3))))
        return rng.integers(0, 200, size=shape).astype(dtype)

    nvm = {f"obj{k}": array() for k in range(int(rng.integers(1, 4)))}
    consistent = (
        None if rng.random() < 0.5 else {k: v.copy() for k, v in nvm.items()}
    )
    return Snapshot(
        index=index,
        counter=int(rng.integers(0, 10**6)),
        iteration=int(rng.integers(0, 100)),
        region=f"R{int(rng.integers(0, 5))}",
        nvm_state=nvm,
        rates={"x": float(rng.random()), "y": float(rng.random())},
        consistent_state=consistent,
    )


def test_snapshot_pack_roundtrip_randomized_property():
    """Seeded property-style sweep: random dtypes/shapes/metadata all
    round-trip bit-exactly through pack/unpack (CRC-verified)."""
    import numpy as np

    rng = np.random.default_rng(20260806)
    for trial in range(30):
        snap = _random_snapshot(rng, trial)
        out = unpack_snapshot(pack_snapshot(snap))
        assert (out.index, out.counter, out.iteration, out.region) == (
            snap.index, snap.counter, snap.iteration, snap.region
        )
        assert out.rates == snap.rates
        assert set(out.nvm_state) == set(snap.nvm_state)
        for name, arr in snap.nvm_state.items():
            got = out.nvm_state[name]
            assert got.dtype == arr.dtype and got.shape == arr.shape
            assert (got == arr).all()
        if snap.consistent_state is None:
            assert out.consistent_state is None
        else:
            for name, arr in snap.consistent_state.items():
                assert (out.consistent_state[name] == arr).all()


def test_packed_array_crc_detects_silent_corruption():
    import numpy as np

    rng = np.random.default_rng(7)
    packed = pack_snapshot(_random_snapshot(rng, 0))
    name = sorted(packed["nvm_state"])[0]
    entry = packed["nvm_state"][name]
    data = bytearray(entry["data"])
    data[0] ^= 0x01  # shape/dtype still valid: only the CRC can catch this
    entry["data"] = bytes(data)
    with pytest.raises(SnapshotCorruptError, match="checksum"):
        unpack_snapshot(packed)


def test_v0_packed_array_without_crc_still_unpacks():
    import numpy as np

    rng = np.random.default_rng(8)
    snap = _random_snapshot(rng, 0)
    packed = pack_snapshot(snap)
    for group in (packed["nvm_state"], packed["consistent_state"] or {}):
        for entry in group.values():
            entry.pop("crc32")
    out = unpack_snapshot(packed)  # the pre-checksum shim: reads unverified
    for name, arr in snap.nvm_state.items():
        assert (out.nvm_state[name] == arr).all()

"""Campaign serialization round-trip."""

import pytest

from repro.core.selection import select_critical_objects
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.plan import PersistencePlan
from repro.nvct.serialize import load_campaign, save_campaign
from tests.nvct.test_campaign import factory


@pytest.fixture(scope="module")
def campaign():
    plan = PersistencePlan.per_region(["acc"], {"R2": 2}, at_iteration_end=True)
    return run_campaign(factory(), CampaignConfig(n_tests=15, seed=8, plan=plan))


def test_roundtrip_records(tmp_path, campaign):
    path = save_campaign(campaign, tmp_path / "camp.json")
    loaded = load_campaign(path)
    assert loaded.app == campaign.app
    assert loaded.golden_iterations == campaign.golden_iterations
    assert len(loaded.records) == len(campaign.records)
    for a, b in zip(loaded.records, campaign.records):
        assert (a.counter, a.iteration, a.region, a.response) == (
            b.counter, b.iteration, b.region, b.response
        )
        assert a.rates == pytest.approx(b.rates)


def test_roundtrip_plan(tmp_path, campaign):
    loaded = load_campaign(save_campaign(campaign, tmp_path / "c.json"))
    assert loaded.plan == campaign.plan


def test_roundtrip_metrics_agree(tmp_path, campaign):
    loaded = load_campaign(save_campaign(campaign, tmp_path / "c.json"))
    assert loaded.recomputability() == campaign.recomputability()
    assert loaded.region_time_shares() == pytest.approx(campaign.region_time_shares())
    assert loaded.run_stats.memory.nvm_writes == campaign.run_stats.memory.nvm_writes
    assert loaded.run_stats.persist_op_count == campaign.run_stats.persist_op_count


def test_loaded_campaign_feeds_selection(tmp_path, campaign):
    loaded = load_campaign(save_campaign(campaign, tmp_path / "c.json"))
    sel_orig = select_critical_objects(campaign)
    sel_loaded = select_critical_objects(loaded)
    assert sel_orig.critical == sel_loaded.critical


def test_bad_format_rejected(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text('{"format": 999}')
    with pytest.raises(ValueError):
        load_campaign(p)

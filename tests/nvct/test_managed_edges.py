"""Edge cases of the managed-array API."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.nvct.managed import Workspace
from repro.nvct.runtime import CountingRuntime, Runtime


def test_element_write_records_one_block():
    rt = CountingRuntime()
    ws = Workspace(rt)
    a = ws.array("a", (64,))
    a.write(3, 7.5)
    assert a.np[3] == 7.5
    assert rt.counter == 1


def test_element_write_2d_key():
    rt = Runtime()
    ws = Workspace(rt)
    a = ws.array("a", (8, 8))
    a.write((2, 5), 1.25)
    assert a.np[2, 5] == 1.25
    a.persist()
    assert a.obj.nvm_view()[2, 5] == 1.25


def test_scalar_element_read_records():
    rt = CountingRuntime()
    ws = Workspace(rt)
    a = ws.array("a", (64,))
    a.np[10] = 4.0
    v = a.read(10)
    assert v == 4.0
    assert rt.counter == 1


def test_update_noncontiguous_is_atomic_but_correct():
    rt = Runtime(crash_points=[2])
    ws = Workspace(rt)
    a = ws.array("a", (16, 16))
    a.np[...] = 1.0
    rt.main_loop_begin()
    a.update((slice(None), slice(0, 2)), lambda v: np.multiply(v, 5.0, out=v))
    assert np.all(a.np[:, :2] == 5.0)
    assert np.all(a.np[:, 2:] == 1.0)
    assert len(rt.snapshots) == 1  # crash fired at the op boundary


def test_empty_slice_operations():
    rt = Runtime()
    ws = Workspace(rt)
    a = ws.array("a", (16,))
    a.write(slice(4, 4), 9.0)  # empty
    a.read(slice(4, 4))
    assert np.all(a.np == 0.0)


def test_broadcast_write():
    ws = Workspace(Runtime())
    a = ws.array("a", (4, 8))
    a.write(slice(None), np.arange(8.0))  # broadcast row
    assert np.array_equal(a.np[2], np.arange(8.0))


def test_write_with_array_value_and_crash_split():
    rt = Runtime(crash_points=[1])
    ws = Workspace(rt)
    a = ws.array("a", (32,))
    rt.main_loop_begin()
    vals = np.arange(32.0)
    a.write(slice(None), vals)
    assert np.array_equal(a.np, vals)  # completes after the snapshot


def test_dtype_preserved_on_write():
    ws = Workspace(None)
    a = ws.array("a", (8,), np.int32)
    a.write(slice(None), 7)
    assert a.np.dtype == np.int32
    assert a.dtype == np.int32


def test_int_dtype_scatter():
    rt = Runtime()
    ws = Workspace(rt)
    a = ws.array("a", (256,), np.int16)
    a.write_at(np.array([0, 100, 255]), np.array([1, 2, 3], dtype=np.int16))
    assert a.np[100] == 2
    # 3 elements x 2 bytes: elements 0 and 100 may share a block boundary
    # arrangement; the counter counts blocks, not elements.
    assert 1 <= rt.counter <= 3


def test_shape_and_size_properties():
    ws = Workspace(None)
    a = ws.array("a", (3, 5))
    assert a.shape == (3, 5)
    assert a.size == 15
    assert a.name == "a"


def test_workspace_rejects_duplicate_names():
    ws = Workspace(None)
    ws.array("a", (4,))
    with pytest.raises(AllocationError):
        ws.array("a", (4,))


def test_view_is_unrecorded():
    rt = CountingRuntime()
    ws = Workspace(rt)
    a = ws.array("a", (64,))
    _ = a.np[5]
    _ = a.np.sum()  # raw, unrecorded access path
    assert rt.counter == 0

"""CLI commands (driven in-process)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_apps(capsys):
    code, out = run_cli(capsys, "list-apps")
    assert code == 0
    for name in ("CG", "MG", "kmeans", "botsspar"):
        assert name in out


def test_system_model(capsys):
    code, out = run_cli(
        capsys, "system", "--mtbf-hours", "12", "--t-chk", "3200",
        "--recomputability", "0.82", "--ts", "0.015",
    )
    assert code == 0
    assert "with EasyCrash" in out
    assert "tau" in out


def test_campaign_none_plan(capsys):
    code, out = run_cli(capsys, "campaign", "kmeans", "--tests", "12", "--seed", "3")
    assert code == 0
    assert "recomputability" in out
    assert "per-region breakdown" in out
    assert "data inconsistent rates" in out


def test_campaign_loop_plan(capsys):
    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "12", "--plan", "loop"
    )
    assert code == 0
    assert "S1 success" in out


def test_plan_command(capsys):
    code, out = run_cli(capsys, "plan", "kmeans", "--tests", "60")
    assert code == 0
    assert "critical objects" in out
    assert "recomputability" in out


def test_unknown_app_raises():
    with pytest.raises(KeyError):
        main(["campaign", "NOPE", "--tests", "5"])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_characterize_command(capsys):
    code, out = run_cli(capsys, "characterize", "kmeans")
    assert code == 0
    assert "centroids" in out and "R/W" in out


def test_campaign_save_roundtrip(capsys, tmp_path):
    from repro.nvct.serialize import load_campaign

    target = tmp_path / "camp.json"
    code, out = run_cli(capsys, "campaign", "kmeans", "--tests", "8", "--save", str(target))
    assert code == 0
    assert target.exists()
    loaded = load_campaign(target)
    assert loaded.app == "kmeans"
    assert loaded.n_tests == 8


def test_advise_command(capsys):
    code, out = run_cli(
        capsys, "advise", "kmeans", "--tests", "40", "--t-chk", "3200",
    )
    assert code == 0
    assert "tau=" in out
    assert ("USE EasyCrash" in out) or ("plain C/R" in out)


def test_campaign_until_stable(capsys):
    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "15", "--until-stable"
    )
    assert code == 0
    assert "stabilized after" in out
    assert "95% CI" in out


def test_campaign_resume_journals_and_replays(capsys, tmp_path, monkeypatch):
    journal = tmp_path / "j.jsonl"
    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "8", "--resume", str(journal)
    )
    assert code == 0
    assert journal.read_bytes().count(b"\n") == 1 + 8  # header + one line per trial

    # a second run must replay the journal, not reclassify anything
    def explode(*a, **k):
        raise AssertionError("resumed run reclassified a journaled trial")

    monkeypatch.setattr("repro.nvct.campaign._classify", explode)
    code2, out2 = run_cli(
        capsys, "campaign", "kmeans", "--tests", "8", "--resume", str(journal)
    )
    assert code2 == 0
    assert out2 == out  # bit-identical report


def test_campaign_resume_foreign_journal_exits_2(capsys, tmp_path):
    journal = tmp_path / "j.jsonl"
    code, _ = run_cli(
        capsys, "campaign", "kmeans", "--tests", "8", "--resume", str(journal)
    )
    assert code == 0
    code = main(
        ["campaign", "kmeans", "--tests", "9", "--resume", str(journal)]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "different campaign" in err


def test_campaign_resume_conflicts_with_until_stable(capsys, tmp_path):
    code = main(
        ["campaign", "kmeans", "--tests", "8", "--until-stable",
         "--resume", str(tmp_path / "j.jsonl")]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--until-stable" in err


def test_keyboard_interrupt_exits_130_without_traceback(capsys, monkeypatch):
    def interrupted(*a, **k):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.nvct.campaign.run_campaign", interrupted)
    code = main(["campaign", "kmeans", "--tests", "4"])
    err = capsys.readouterr().err
    assert code == 130
    assert "rerun with --resume" in err


BUGGY_APP = """\
class BadApp:
    REGIONS = ("R1",)

    def _allocate(self):
        self.u = self.ws.array("u", (8,))

    def _iterate(self, it):
        with self.ws.region("R1"):
            self.u.np[0] = 1.0
        return False
"""


def test_analyze_strict_over_registry(capsys):
    code, out = run_cli(capsys, "analyze", "--strict")
    assert code == 0
    assert "analysis: OK" in out
    assert "11 apps traced" in out


def test_analyze_reports_findings(capsys, tmp_path):
    bad = tmp_path / "bad_app.py"
    bad.write_text(BUGGY_APP)
    code, out = run_cli(capsys, "analyze", str(bad), "--no-dynamic")
    assert code == 1
    assert "raw-np-escape" in out
    assert "bad_app.py" in out


def test_analyze_update_baseline_then_clean(capsys, tmp_path):
    bad = tmp_path / "bad_app.py"
    bad.write_text(BUGGY_APP)
    baseline = tmp_path / "baseline.json"
    code, out = run_cli(
        capsys, "analyze", str(bad), "--no-dynamic",
        "--baseline", str(baseline), "--update-baseline",
    )
    assert code == 0
    assert baseline.exists()
    code, out = run_cli(
        capsys, "analyze", str(bad), "--no-dynamic",
        "--strict", "--baseline", str(baseline),
    )
    assert code == 0
    assert "1 baselined" in out

"""CLI commands (driven in-process)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_apps(capsys):
    code, out = run_cli(capsys, "list-apps")
    assert code == 0
    for name in ("CG", "MG", "kmeans", "botsspar"):
        assert name in out


def test_system_model(capsys):
    code, out = run_cli(
        capsys, "system", "--mtbf-hours", "12", "--t-chk", "3200",
        "--recomputability", "0.82", "--ts", "0.015",
    )
    assert code == 0
    assert "with EasyCrash" in out
    assert "tau" in out


def test_campaign_none_plan(capsys):
    code, out = run_cli(capsys, "campaign", "kmeans", "--tests", "12", "--seed", "3")
    assert code == 0
    assert "recomputability" in out
    assert "per-region breakdown" in out
    assert "data inconsistent rates" in out


def test_campaign_loop_plan(capsys):
    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "12", "--plan", "loop"
    )
    assert code == 0
    assert "S1 success" in out


def test_plan_command(capsys):
    code, out = run_cli(capsys, "plan", "kmeans", "--tests", "60")
    assert code == 0
    assert "critical objects" in out
    assert "recomputability" in out


def test_unknown_app_raises():
    with pytest.raises(KeyError):
        main(["campaign", "NOPE", "--tests", "5"])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_characterize_command(capsys):
    code, out = run_cli(capsys, "characterize", "kmeans")
    assert code == 0
    assert "centroids" in out and "R/W" in out


def test_campaign_save_roundtrip(capsys, tmp_path):
    from repro.nvct.serialize import load_campaign

    target = tmp_path / "camp.json"
    code, out = run_cli(capsys, "campaign", "kmeans", "--tests", "8", "--save", str(target))
    assert code == 0
    assert target.exists()
    loaded = load_campaign(target)
    assert loaded.app == "kmeans"
    assert loaded.n_tests == 8


def test_advise_command(capsys):
    code, out = run_cli(
        capsys, "advise", "kmeans", "--tests", "40", "--t-chk", "3200",
    )
    assert code == 0
    assert "tau=" in out
    assert ("USE EasyCrash" in out) or ("plain C/R" in out)


def test_campaign_until_stable(capsys):
    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "15", "--until-stable"
    )
    assert code == 0
    assert "stabilized after" in out
    assert "95% CI" in out


def test_campaign_resume_journals_and_replays(capsys, tmp_path, monkeypatch):
    journal = tmp_path / "j.jsonl"
    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "8", "--resume", str(journal)
    )
    assert code == 0
    assert journal.read_bytes().count(b"\n") == 1 + 8  # header + one line per trial

    # a second run must replay the journal, not reclassify anything
    def explode(*a, **k):
        raise AssertionError("resumed run reclassified a journaled trial")

    monkeypatch.setattr("repro.nvct.campaign._classify", explode)
    code2, out2 = run_cli(
        capsys, "campaign", "kmeans", "--tests", "8", "--resume", str(journal)
    )
    assert code2 == 0
    assert out2 == out  # bit-identical report


def test_campaign_resume_foreign_journal_exits_2(capsys, tmp_path):
    journal = tmp_path / "j.jsonl"
    code, _ = run_cli(
        capsys, "campaign", "kmeans", "--tests", "8", "--resume", str(journal)
    )
    assert code == 0
    code = main(
        ["campaign", "kmeans", "--tests", "9", "--resume", str(journal)]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "different campaign" in err


def test_campaign_resume_conflicts_with_until_stable(capsys, tmp_path):
    code = main(
        ["campaign", "kmeans", "--tests", "8", "--until-stable",
         "--resume", str(tmp_path / "j.jsonl")]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--until-stable" in err


def test_campaign_multinode(capsys, tmp_path):
    save = tmp_path / "cluster.json"
    rlog = tmp_path / "recovery.json"
    code, out = run_cli(
        capsys, "campaign", "MG", "--tests", "8", "--seed", "3",
        "--nodes", "4", "--correlation", "0.3",
        "--save", str(save), "--recovery-log", str(rlog),
    )
    assert code == 0
    assert "topology: 4 node(s), correlation 0.3" in out
    assert "recovery mix" in out
    assert "Recovery mix by burst size" in out
    import json

    doc = json.loads(save.read_text())
    assert doc["kind"] == "cluster-campaign"
    log = json.loads(rlog.read_text())
    assert log["nodes"] == 4 and log["bursts"]


def test_campaign_multinode_flag_conflicts_exit_2(capsys, tmp_path):
    for extra in (
        ["--until-stable"],
        ["--cores", "2"],
        ["--crash-plan", str(tmp_path / "plan.json")],
    ):
        code = main(
            ["campaign", "MG", "--tests", "4", "--nodes", "2", *extra]
        )
        err = capsys.readouterr().err
        assert code == 2, extra
        assert "--nodes" in err


def test_campaign_multinode_bad_correlation_exits_2(capsys):
    code = main(["campaign", "MG", "--tests", "4", "--correlation", "1.5"])
    err = capsys.readouterr().err
    assert code == 2
    assert "correlation" in err


def test_campaign_multinode_resume_topology_mismatch_exits_2(capsys, tmp_path):
    journal = tmp_path / "j.jsonl"
    code, _ = run_cli(
        capsys, "campaign", "MG", "--tests", "6", "--seed", "3",
        "--nodes", "2", "--correlation", "0.3", "--resume", str(journal),
    )
    assert code == 0
    code = main(
        ["campaign", "MG", "--tests", "6", "--seed", "3",
         "--nodes", "4", "--correlation", "0.3", "--resume", str(journal)]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "different cluster topology" in err


def test_keyboard_interrupt_exits_130_without_traceback(capsys, monkeypatch):
    def interrupted(*a, **k):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.nvct.campaign.run_campaign", interrupted)
    code = main(["campaign", "kmeans", "--tests", "4"])
    err = capsys.readouterr().err
    assert code == 130
    assert "rerun with --resume" in err


BUGGY_APP = """\
class BadApp:
    REGIONS = ("R1",)

    def _allocate(self):
        self.u = self.ws.array("u", (8,))

    def _iterate(self, it):
        with self.ws.region("R1"):
            self.u.np[0] = 1.0
        return False
"""


def test_analyze_strict_over_registry(capsys):
    code, out = run_cli(capsys, "analyze", "--strict")
    assert code == 0
    assert "analysis: OK" in out
    assert "11 apps traced" in out


def test_analyze_reports_findings(capsys, tmp_path):
    bad = tmp_path / "bad_app.py"
    bad.write_text(BUGGY_APP)
    code, out = run_cli(capsys, "analyze", str(bad), "--no-dynamic")
    assert code == 1
    assert "raw-np-escape" in out
    assert "bad_app.py" in out


def test_analyze_unknown_app_exits_2(capsys):
    code = main(["analyze", "--no-dynamic", "--no-self-lint", "--apps", "NOPE"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown application 'NOPE'" in err
    assert "list-apps" in err


def test_analyze_sarif_export(capsys, tmp_path):
    bad = tmp_path / "bad_app.py"
    bad.write_text(BUGGY_APP)
    sarif = tmp_path / "report.sarif"
    code, out = run_cli(
        capsys, "analyze", str(bad), "--no-dynamic", "--no-self-lint",
        "--sarif", str(sarif),
    )
    assert code == 1
    assert "sarif report" in out

    import json

    doc = json.loads(sarif.read_text())
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["raw-np-escape"]
    assert results[0]["partialFingerprints"]["reproKey"]


def test_analyze_emit_plan_requires_one_app(capsys, tmp_path):
    code = main(
        ["analyze", "--no-dynamic", "--no-self-lint",
         "--emit-plan", str(tmp_path / "plan.json")]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--apps" in err


def test_analyze_emit_plan_then_campaign_consumes_it(capsys, tmp_path):
    plan_file = tmp_path / "plan.json"
    code, out = run_cli(
        capsys, "analyze", "--no-dynamic", "--no-self-lint",
        "--apps", "kmeans", "--emit-plan", str(plan_file),
        "--tests", "40", "--seed", "3", "--campaign-plan", "loop",
    )
    assert code == 0
    assert "equivalence classes" in out
    assert plan_file.exists()

    code, out = run_cli(
        capsys, "campaign", "kmeans", "--tests", "40", "--seed", "3",
        "--plan", "loop", "--crash-plan", str(plan_file),
    )
    assert code == 0
    assert "crash plan: executed" in out

    # a mismatched campaign is refused with a usage error, not wrong science
    code = main(
        ["campaign", "kmeans", "--tests", "41", "--seed", "3",
         "--plan", "loop", "--crash-plan", str(plan_file)]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "re-emit" in err


def test_crash_plan_conflicts_with_until_stable(capsys, tmp_path):
    code = main(
        ["campaign", "kmeans", "--tests", "8", "--until-stable",
         "--crash-plan", str(tmp_path / "plan.json")]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--until-stable" in err


def test_analyze_update_baseline_then_clean(capsys, tmp_path):
    bad = tmp_path / "bad_app.py"
    bad.write_text(BUGGY_APP)
    baseline = tmp_path / "baseline.json"
    code, out = run_cli(
        capsys, "analyze", str(bad), "--no-dynamic",
        "--baseline", str(baseline), "--update-baseline",
    )
    assert code == 0
    assert baseline.exists()
    code, out = run_cli(
        capsys, "analyze", str(bad), "--no-dynamic",
        "--strict", "--baseline", str(baseline),
    )
    assert code == 0
    assert "1 baselined" in out


def test_exit_code_taxonomy_constants():
    from repro import errors

    assert (
        errors.EXIT_OK,
        errors.EXIT_FAILURE,
        errors.EXIT_USAGE,
        errors.EXIT_CORRUPT,
        errors.EXIT_INTERRUPTED,
    ) == (0, 1, 2, 3, 130)


def test_stats_corrupt_bench_exits_3(tmp_path, capsys):
    import json

    from repro.obs.export import write_bench

    path = tmp_path / "bench.json"
    write_bench(path, [{"metric": "x", "value": 1.0, "unit": "tests/s",
                        "scale": "t", "git_sha": "s"}])
    doc = json.loads(path.read_text())
    doc["payload"][0]["value"] = 9.9  # tampered: CRC is now stale
    path.write_text(json.dumps(doc))
    code = main(["stats", str(path)])
    err = capsys.readouterr().err
    assert code == 3
    assert "corrupt" in err and "doctor fsck" in err


def test_stats_unreadable_file_still_exits_2(tmp_path, capsys):
    bad = tmp_path / "not-json.json"
    bad.write_text("{nope")
    code = main(["stats", str(bad)])
    assert code == 2


def test_doctor_preflight_ok(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_QUOTA", raising=False)
    code, out = run_cli(capsys, "doctor")
    assert code == 0
    assert "doctor: OK" in out
    assert "python" in out and "numpy" in out and "cache-dir" in out


def test_doctor_fsck_detects_then_repairs_truncated_entry(capsys, tmp_path, monkeypatch):
    from repro.harness.store import atomic_write_bytes, pack_record

    root = tmp_path / "cache"
    entry = root / "campaign" / "aa" / "aabbcc.json"
    atomic_write_bytes(entry, pack_record(b'{"fine": true}'))
    entry.write_bytes(entry.read_bytes()[:-4])  # truncated payload
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))

    code, out = run_cli(capsys, "doctor", "fsck")
    assert code == 1 and "corrupt" in out

    code, out = run_cli(capsys, "doctor", "fsck", "--repair")
    assert code == 0 and "quarantined ->" in out
    assert not entry.exists()
    assert list((root / "quarantine").iterdir())  # moved, not deleted

    code, out = run_cli(capsys, "doctor", "fsck")
    assert code == 0 and "fsck: OK" in out


def test_doctor_fsck_repairs_journal_tail(capsys, tmp_path):
    from repro.nvct.journal import CampaignJournal

    path = tmp_path / "j.jsonl"
    CampaignJournal.create(path, {"kind": "header", "key": "k"}).close()
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "trial", "ind')  # torn append
    code, out = run_cli(capsys, "doctor", "fsck", "--journal", str(path))
    assert code == 1 and "corrupt" in out
    code, out = run_cli(capsys, "doctor", "fsck", "--journal", str(path),
                        "--repair")
    assert code == 0
    assert (tmp_path / "quarantine").exists()


def test_doctor_fsck_with_nothing_to_scan_is_usage_error(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    code = main(["doctor", "fsck"])
    assert code == 2

"""Wire format: sealed lines, corruption handling, config transport."""

import json

import pytest

from repro.errors import ServiceError
from repro.nvct.campaign import CampaignConfig
from repro.nvct.plan import PersistencePlan
from repro.service.protocol import (
    LineReader,
    config_from_doc,
    config_to_doc,
    decode_line,
    encode,
)


def test_encode_decode_roundtrip():
    doc = {"op": "grant", "chunk": 3, "indices": [0, 1, 2]}
    wire = encode(doc)
    assert wire.endswith(b"\n")
    assert decode_line(wire.rstrip(b"\n")) == doc


def test_corrupt_line_is_swallowed_not_fatal():
    wire = encode({"op": "ack", "chunk": 1}).rstrip(b"\n")
    flipped = bytes([wire[0] ^ 0x01]) + wire[1:]
    assert decode_line(flipped) is None
    assert decode_line(b"not json at all") is None
    assert decode_line(json.dumps([1, 2, 3]).encode()) is None  # not an object
    # an unsealed object passes through (v0 journal-line compatibility)...
    assert decode_line(json.dumps({"op": "ack"}).encode()) == {"op": "ack"}
    # ...but a sealed object with a wrong crc is corruption, full stop
    assert decode_line(json.dumps({"op": "ack", "crc": 1}).encode()) is None


def test_line_reader_reassembles_partial_feeds():
    reader = LineReader()
    wire = encode({"op": "wait"}) + encode({"op": "done"})
    cut = len(wire) // 2
    first = reader.feed(wire[:cut])
    second = reader.feed(wire[cut:])
    assert [d["op"] for d in first + second] == ["wait", "done"]
    assert reader.feed(b"") == []


def test_line_reader_drops_only_the_bad_line():
    reader = LineReader()
    good = encode({"op": "ack", "chunk": 7})
    out = reader.feed(b"garbage line\n" + good)
    assert [d["op"] for d in out] == ["ack"]


def test_config_transport_is_lossless():
    cfg = CampaignConfig(
        n_tests=17,
        seed=9,
        plan=PersistencePlan.at_loop_end(("x", "y"), frequency=2),
        verified_mode=True,
        max_iter_factor=1.5,
        distribution="early",
        crash_model="eadr",
        nodes=3,
        correlation=0.4,
        burst_window_s=120.0,
        node=2,
    )
    doc = config_to_doc(cfg)
    json.dumps(doc)  # must be plain JSON, no numpy or dataclass leakage
    assert config_from_doc(doc) == cfg
    assert config_from_doc(config_to_doc(CampaignConfig())) == CampaignConfig()


def test_config_transport_refuses_custom_hierarchy():
    class FakeHierarchy:
        pass

    cfg = CampaignConfig(n_tests=4, hierarchy=FakeHierarchy())
    with pytest.raises(ServiceError, match="hierarchy"):
        config_to_doc(cfg)


def test_malformed_spec_raises_service_error():
    with pytest.raises(ServiceError, match="malformed"):
        config_from_doc({"n_tests": 4})  # everything else missing

"""Scheduler protocol logic on a fake clock: grant/record/commit/retry,
fencing, reaping, resume, and the lease-steal chaos hook.

No sockets anywhere — :meth:`CampaignScheduler.handle` takes decoded
messages and an explicit ``now``, which is the whole point of the design.
"""

import pytest

from repro.apps.registry import get_factory
from repro.errors import JournalError, UsageError
from repro.harness import chaos
from repro.nvct.campaign import CampaignConfig
from repro.nvct.journal import scan_journal
from repro.service import CampaignScheduler, ChunkExecutor

FACTORY = get_factory("EP")
CFG = CampaignConfig(n_tests=8, seed=2)


def make_scheduler(tmp_path, resume=False):
    sched = CampaignScheduler(
        FACTORY,
        CFG,
        journal=tmp_path / "j.jsonl",
        chunk_size=3,
        deadline_s=10.0,
        resume=resume,
    )
    sched.prepare()
    return sched


@pytest.fixture(scope="module")
def record_docs(tmp_path_factory):
    """index → record document, derived once through the worker pipeline."""
    base = tmp_path_factory.mktemp("docs")
    sched = CampaignScheduler(FACTORY, CFG, journal=base / "j.jsonl", chunk_size=3)
    sched.prepare()
    spec = sched.shards[0].spec
    n_snaps = sched.shards[0].n_snaps
    sched.close()
    executor = ChunkExecutor.from_spec(spec)
    return dict(executor.run(list(range(n_snaps))))


def _stream(sched, grant, record_docs, indices=None):
    for i in indices if indices is not None else grant["indices"]:
        replies = sched.handle(
            {"op": "record", "chunk": grant["chunk"], "token": grant["token"],
             "index": i, "record": record_docs[i]},
            now=0.0,
        )
        assert replies == []  # records are fire-and-forget


def _commit(sched, grant, now=0.0):
    (reply,) = sched.handle(
        {"op": "commit", "chunk": grant["chunk"], "token": grant["token"]}, now=now
    )
    return reply


def test_grant_record_commit_roundtrip(tmp_path, record_docs):
    sched = make_scheduler(tmp_path)
    try:
        (grant,) = sched.handle({"op": "lease", "worker": "w1"}, now=0.0)
        assert grant["op"] == "grant" and grant["chunk"] == 0 and grant["token"] == 1
        assert grant["spec"]["app"] == "EP" and grant["deadline_s"] == 10.0
        _stream(sched, grant, record_docs)
        # an index outside the chunk is rejected without touching the ledger
        bogus = max(record_docs)
        sched.handle(
            {"op": "record", "chunk": 0, "token": 1, "index": bogus,
             "record": record_docs[bogus]},
            now=0.0,
        )
        assert sched.shards[0].ledger.indices == set(grant["indices"])
        assert _commit(sched, grant) == {"op": "ack", "chunk": 0}
        assert sched.table.counts()["committed"] == 1
    finally:
        sched.close()


def test_premature_commit_lists_the_gaps(tmp_path, record_docs):
    sched = make_scheduler(tmp_path)
    try:
        (grant,) = sched.handle({"op": "lease", "worker": "w1"}, now=0.0)
        first, *rest = grant["indices"]
        _stream(sched, grant, record_docs, indices=[first])
        reply = _commit(sched, grant)
        assert reply["op"] == "retry" and reply["missing"] == rest
        _stream(sched, grant, record_docs, indices=rest)
        assert _commit(sched, grant)["op"] == "ack"
    finally:
        sched.close()


def test_wait_then_done(tmp_path, record_docs):
    sched = make_scheduler(tmp_path)
    try:
        grants = [
            sched.handle({"op": "lease", "worker": f"w{i}"}, now=0.0)[0]
            for i in range(len(sched.table.states))
        ]
        assert sched.handle({"op": "lease", "worker": "late"}, now=0.0) == [
            {"op": "wait"}
        ]
        for grant in grants:
            _stream(sched, grant, record_docs)
            assert _commit(sched, grant)["op"] == "ack"
        assert sched.done()
        assert sched.handle({"op": "lease", "worker": "late"}, now=0.0) == [
            {"op": "done"}
        ]
    finally:
        sched.close()


def test_reaper_fences_the_zombie(tmp_path, record_docs):
    sched = make_scheduler(tmp_path)
    try:
        (grant,) = sched.handle({"op": "lease", "worker": "w1"}, now=0.0)
        # heartbeats push the deadline out...
        sched.handle({"op": "heartbeat", "chunk": 0, "token": grant["token"]}, now=8.0)
        assert sched.reap(now=10.0) == 0
        # ...until they stop arriving
        assert sched.reap(now=18.0) == 1
        _stream(sched, grant, record_docs)  # zombie records still land (dedupe)
        assert _commit(sched, grant) == {"op": "fenced", "chunk": 0}
        (regrant,) = sched.handle({"op": "lease", "worker": "w2"}, now=19.0)
        assert regrant["chunk"] == 0 and regrant["token"] > grant["token"]
        assert _commit(sched, grant) == {"op": "fenced", "chunk": 0}
        assert _commit(sched, regrant)["op"] == "ack"  # ledger already complete
    finally:
        sched.close()


def test_fresh_start_refuses_leftover_lease_journal(tmp_path):
    make_scheduler(tmp_path).close()
    with pytest.raises(JournalError, match="--resume"):
        make_scheduler(tmp_path)


def test_resume_rebuilds_queue_and_fences_stale_tokens(tmp_path, record_docs):
    sched = make_scheduler(tmp_path)
    (zombie,) = sched.handle({"op": "lease", "worker": "w1"}, now=0.0)
    (grant,) = sched.handle({"op": "lease", "worker": "w2"}, now=0.0)
    _stream(sched, grant, record_docs)
    assert _commit(sched, grant)["op"] == "ack"
    sched.close()  # scheduler "dies" with chunk 0 leased out

    resumed = make_scheduler(tmp_path, resume=True)
    try:
        counts = resumed.table.counts()
        assert counts == {"pending": 2, "leased": 0, "committed": 1}
        # the zombie's token is stale even against the restarted scheduler
        assert _commit(resumed, zombie) == {"op": "fenced", "chunk": 0}
        (regrant,) = resumed.handle({"op": "lease", "worker": "w3"}, now=0.0)
        assert regrant["chunk"] == 0
        assert regrant["token"] > max(zombie["token"], grant["token"])
    finally:
        resumed.close()


def test_resume_autocommits_chunks_the_campaign_journal_covers(tmp_path, record_docs):
    sched = make_scheduler(tmp_path)
    (grant,) = sched.handle({"op": "lease", "worker": "w1"}, now=0.0)
    _stream(sched, grant, record_docs)  # records fsync'd; commit event lost
    sched.close()

    resumed = make_scheduler(tmp_path, resume=True)
    try:
        assert resumed.table.states[grant["chunk"]].status == "committed"
    finally:
        resumed.close()
    _, lines, _ = scan_journal((tmp_path / "j.jsonl.leases").read_bytes())
    recovered = [d for d, _ in lines if d.get("recovered")]
    assert len(recovered) == 1 and recovered[0]["chunk"] == grant["chunk"]


def test_lease_steal_chaos_expires_at_next_tick(tmp_path):
    sched = make_scheduler(tmp_path)
    chaos.enable(5, 1.0, kinds=["lease_steal"])
    try:
        (grant,) = sched.handle({"op": "lease", "worker": "w1"}, now=0.0)
        assert sched.reap(now=0.0) == 1  # stolen: gone long before the deadline
        assert _commit(sched, grant) == {"op": "fenced", "chunk": grant["chunk"]}
    finally:
        chaos.disable()
        sched.close()


def test_multinode_shards_mirror_the_cluster_cut(tmp_path):
    from repro.cluster.emulator import burst_schedule, trials_per_node
    from repro.cluster.topology import ClusterTopology, node_journal_path

    cfg = CampaignConfig(n_tests=10, seed=2, nodes=3, correlation=0.4)
    sched = CampaignScheduler(
        FACTORY, cfg, journal=tmp_path / "j.jsonl", chunk_size=4
    )
    sched.prepare()
    try:
        topology = ClusterTopology.from_config(cfg)
        counts = trials_per_node(
            burst_schedule(topology, cfg.n_tests, cfg.seed), topology.nodes
        )
        assert set(sched.shards) == {n for n, c in enumerate(counts) if c > 0}
        for node, shard in sched.shards.items():
            assert node_journal_path(tmp_path / "j.jsonl", node).exists()
            covered = {
                i
                for st in sched.table.states.values()
                if st.chunk.node == node
                for i in st.chunk.indices
            }
            assert covered == set(range(shard.n_snaps))
            assert shard.spec["cfg"]["node"] == node
    finally:
        sched.close()


def test_usage_guards():
    with pytest.raises(UsageError, match="chunk size"):
        CampaignScheduler(FACTORY, CFG, journal="j.jsonl", chunk_size=0)
    clustered = CampaignConfig(n_tests=8, nodes=2)
    with pytest.raises(UsageError, match="crash plan"):
        CampaignScheduler(
            FACTORY, clustered, journal="j.jsonl", crash_plan=object()
        )

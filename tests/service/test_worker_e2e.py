"""End-to-end scheduler + worker runs, in process, over a real Unix socket.

The acceptance bar for the whole service: the campaign journals a
distributed run leaves behind replay to a result **bit-identical** to the
serial ``run_campaign`` / ``run_cluster_campaign`` — under no faults,
under the full service chaos mix, and across a multi-node topology.
"""

import json
import threading

import pytest

from repro.apps.registry import get_factory
from repro.harness import chaos
from repro.nvct.campaign import CampaignConfig, run_campaign
from repro.nvct.journal import load_journal
from repro.nvct.serialize import campaign_to_dict
from repro.service import CampaignScheduler, run_worker
from repro.service.scheduler import serve_forever

FACTORY = get_factory("EP")


@pytest.fixture(autouse=True)
def _no_leaked_chaos():
    yield
    chaos.disable()


def _run_service(tmp_path, cfg, *, n_workers=1, chunk_size=4, deadline_s=30.0):
    journal = tmp_path / "j.jsonl"
    sock = str(tmp_path / "s.sock")
    sched = CampaignScheduler(
        FACTORY, cfg, journal=journal, chunk_size=chunk_size, deadline_s=deadline_s
    )
    sched.prepare()
    n_chunks = len(sched.table.states)
    server = threading.Thread(
        target=serve_forever, args=(sched, sock), kwargs={"linger_s": 0.5}
    )
    server.start()
    committed = []
    workers = [
        threading.Thread(
            target=lambda i=i: committed.append(
                run_worker(sock, name=f"w{i}", idle_timeout_s=30.0)
            )
        )
        for i in range(n_workers)
    ]
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=300)
    server.join(timeout=60)
    assert not server.is_alive() and not any(t.is_alive() for t in workers)
    return journal, n_chunks, committed


def _assert_exactly_once(journal):
    _, records, _ = load_journal(journal)
    assert set(records) == set(range(len(records)))  # no gap, no duplicate


def test_service_matches_serial_bit_for_bit(tmp_path):
    cfg = CampaignConfig(n_tests=12, seed=3)
    serial = run_campaign(FACTORY, cfg)
    journal, n_chunks, committed = _run_service(tmp_path, cfg)
    assert sum(committed) == n_chunks
    _assert_exactly_once(journal)
    replayed = run_campaign(FACTORY, cfg, journal=journal)
    assert json.dumps(campaign_to_dict(replayed), sort_keys=True) == json.dumps(
        campaign_to_dict(serial), sort_keys=True
    )


def test_service_survives_the_full_chaos_mix(tmp_path):
    """Dropped and duplicated messages, stolen leases, delayed heartbeats,
    a one-second lease deadline, and two competing workers — the journal
    must still be exactly-once and the result bit-identical."""
    cfg = CampaignConfig(n_tests=12, seed=3)
    serial = run_campaign(FACTORY, cfg)
    chaos.enable(
        7, 0.25,
        kinds=["msg_drop", "msg_duplicate", "lease_steal", "heartbeat_delay"],
    )
    try:
        journal, n_chunks, committed = _run_service(
            tmp_path, cfg, n_workers=2, deadline_s=1.0
        )
    finally:
        chaos.disable()
    # chunks whose lease was stolen/expired commit under a later grant, so
    # per-worker counts vary — but every chunk is committed exactly once
    # (the zombie of a re-granted chunk is fenced, not double-counted).
    assert sum(committed) == n_chunks
    _assert_exactly_once(journal)
    replayed = run_campaign(FACTORY, cfg, journal=journal)
    assert json.dumps(campaign_to_dict(replayed), sort_keys=True) == json.dumps(
        campaign_to_dict(serial), sort_keys=True
    )


def test_multinode_service_matches_cluster_emulator(tmp_path):
    from repro.cluster import run_cluster_campaign

    cfg = CampaignConfig(n_tests=10, seed=3, nodes=3, correlation=0.4)
    serial = run_cluster_campaign(FACTORY, cfg)
    journal, n_chunks, committed = _run_service(tmp_path, cfg, n_workers=2)
    assert sum(committed) == n_chunks
    replayed = run_cluster_campaign(FACTORY, cfg, journal=journal)
    assert json.dumps(replayed.to_dict(), sort_keys=True) == json.dumps(
        serial.to_dict(), sort_keys=True
    )

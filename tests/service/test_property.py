"""Property-based interleaving test for the service's safety invariants.

Hypothesis drives random sequences of grants, clock ticks, heartbeats,
reaper runs and commits (with current and deliberately stale tokens)
against a :class:`LeaseTable` plus :class:`TrialLedger`, checking the
three load-bearing invariants of the whole design:

* fencing tokens are **strictly increasing** across all grants, including
  re-grants of reaped chunks;
* a commit succeeds **only** under the chunk's current lease token — a
  stale token is never accepted, no matter the interleaving;
* every trial index reaches the ledger **exactly once**, however many
  times its records are delivered.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.leases import Chunk, LeaseTable, TrialLedger

N_CHUNKS = 4
INDICES = {c: tuple(range(c * 3, c * 3 + 3)) for c in range(N_CHUNKS)}

_chunk_ids = st.integers(min_value=0, max_value=N_CHUNKS - 1)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("grant"), st.sampled_from(["w1", "w2", "w3"])),
        st.tuples(st.just("tick"), st.floats(min_value=0.0, max_value=10.0)),
        st.tuples(st.just("heartbeat"), _chunk_ids),
        st.tuples(st.just("reap"), st.none()),
        st.tuples(st.just("commit"), _chunk_ids),
        st.tuples(st.just("commit_stale"), _chunk_ids),
        st.tuples(st.just("deliver"), _chunk_ids),
    ),
    max_size=80,
)


@settings(max_examples=75, deadline=None)
@given(_ops)
def test_fencing_and_exactly_once_under_arbitrary_interleavings(sequence):
    table = LeaseTable(
        [Chunk(c, 0, INDICES[c]) for c in range(N_CHUNKS)], deadline_s=5.0
    )
    ledger = TrialLedger(journal=None)
    now = 0.0
    last_token = 0
    live: dict[int, int] = {}  # chunk -> token we believe is current
    committed: set[int] = set()
    delivered: set[int] = set()  # indices the ledger accepted (model)

    def deliver(chunk_id):
        # any holder — zombie or current — may stream the chunk's records
        for i in INDICES[chunk_id]:
            if ledger.add(i, object()):
                assert i not in delivered, "index journaled twice"
                delivered.add(i)

    for op, arg in sequence:
        if op == "grant":
            state = table.grant(arg, now)
            if state is not None:
                assert state.token > last_token, "fencing tokens must increase"
                last_token = state.token
                assert state.chunk.chunk_id not in committed
                live[state.chunk.chunk_id] = state.token
        elif op == "tick":
            now += arg
        elif op == "heartbeat":
            token = live.get(arg)
            if token is not None:
                table.heartbeat(arg, token, now)
        elif op == "reap":
            for state in table.expire_due(now):
                live.pop(state.chunk.chunk_id, None)
        elif op == "commit":
            token = live.get(arg)
            if token is None:
                continue
            deliver(arg)
            assert table.commit(arg, token) == "ok"
            committed.add(arg)
            live.pop(arg)
        elif op == "commit_stale":
            stale = table.states[arg].token - 1
            deliver(arg)  # the zombie's records still landed...
            assert table.commit(arg, stale) != "ok"  # ...but its seal fences

    # ledger state is consistent with what was delivered and committed
    assert ledger.indices == delivered
    for chunk_id in committed:
        assert set(INDICES[chunk_id]) <= ledger.indices
    assert table.done() == (committed == set(range(N_CHUNKS)))
